//! Shared helpers for the bertscope-suite integration tests and examples.
