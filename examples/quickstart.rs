//! Quickstart: characterize one BERT-Large pre-training iteration.
//!
//! Reproduces the headline analysis of *"Demystifying BERT: System Design
//! Implications"* in a few lines: simulate the iteration on the calibrated
//! MI100-like device model and print where the time goes.
//!
//! Run with: `cargo run --release --example quickstart`

use bertscope::prelude::*;

fn main() {
    let gpu = GpuModel::mi100();
    let cfg = BertConfig::bert_large(); // Phase-1 inputs: n=128, B=32

    println!("model: BERT-Large ({} M parameters)", parameter_count(&cfg) / 1_000_000);
    println!("device: {} (roofline model)\n", gpu.name);

    // FP32 vs mixed precision, side by side (paper Fig. 3).
    for (label, precision) in [("FP32", Precision::Fp32), ("mixed precision", Precision::Mixed)] {
        let opts = GraphOptions { precision, ..GraphOptions::default() };
        let profile = simulate_iteration(&cfg, &opts, &gpu);
        println!(
            "[{label}] one iteration: {:.1} ms across {} kernel launches",
            profile.total_us() / 1000.0,
            profile.kernel_count()
        );
        let mut table = TextTable::new(["component", "share of runtime"]);
        for (group, time) in profile.time_by_group() {
            table.row([group.to_string(), pct(time / profile.total_us())]);
        }
        println!("{}", table.render());
        println!(
            "GEMM share: {} — the other {} is memory-bound non-GEMM work\n",
            pct(profile.gemm_fraction()),
            pct(1.0 - profile.gemm_fraction())
        );
    }

    // The paper's central contrast: GEMMs dominate arithmetic but not time.
    let ops = build_iteration(&cfg, &GraphOptions::default());
    let gemm_flops: u64 = ops.iter().filter(|o| o.is_gemm()).map(|o| o.flops).sum();
    let total_flops: u64 = ops.iter().map(|o| o.flops).sum();
    println!(
        "GEMMs perform {} of the FLOPs — yet optimizing only GEMMs leaves nearly half the\n\
         runtime on the table (Takeaways 8-9). That asymmetry is what this suite quantifies.",
        pct(gemm_flops as f64 / total_flops as f64)
    );
}
