//! Actually *train* a small BERT on synthetic data with the executable
//! substrate: masked-LM + next-sentence pre-training with the LAMB
//! optimizer, exactly the workload the paper characterizes — at a scale a
//! laptop executes in seconds.
//!
//! Along the way, the built-in tracer profiles one iteration the same way
//! the paper used rocProf, and prints the measured kernel breakdown.
//!
//! Run with: `cargo run --release --example train_tiny_bert`

use bertscope::prelude::*;
use bertscope_tensor::summarize;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 4-layer, d=64 BERT: same structure as BERT-Large, 1/6000 the size.
    let cfg = BertConfig {
        layers: 4,
        d_model: 64,
        heads: 4,
        d_ff: 256,
        vocab: 211,
        max_position: 48,
        seq_len: 32,
        batch: 8,
    };
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(7);
    let mut bert = Bert::new(cfg, TrainOptions::default(), 42);
    let mut optimizer = Lamb::new(0.02);

    println!(
        "training a {}-layer BERT ({} parameters) on a synthetic Zipf corpus\n",
        cfg.layers,
        parameter_count(&cfg)
    );

    // Profile the first iteration with the tracer (the paper's methodology:
    // one iteration characterizes the phase).
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut tracer = Tracer::new();
    let first = bert.train_step(&mut tracer, &batch).expect("train step");
    {
        let mut slots = bert.param_slots();
        optimizer.step(&mut tracer, &mut slots);
    }
    println!(
        "profiled iteration: {} kernel launches, {:.2} GFLOPs, {:.1} MB moved",
        tracer.kernel_count(),
        tracer.records().iter().map(|r| r.flops).sum::<u64>() as f64 / 1.0e9,
        tracer.records().iter().map(|r| r.bytes_total()).sum::<u64>() as f64 / 1.0e6,
    );
    let mut table = TextTable::new(["category", "kernels", "MFLOPs", "MB moved"]);
    for (cat, t) in summarize(tracer.records(), |r| r.category) {
        table.row([
            cat.to_string(),
            t.kernels.to_string(),
            format!("{:.1}", t.flops as f64 / 1.0e6),
            format!("{:.2}", t.bytes_total() as f64 / 1.0e6),
        ]);
    }
    println!("{}\n", table.render());

    // Train for a few dozen steps and watch both losses fall.
    println!("step   total    mlm     nsp");
    println!("   0  {:6.3}  {:6.3}  {:6.3}", first.loss, first.mlm_loss, first.nsp_loss);
    let mut quiet = Tracer::disabled();
    for step in 1..=40 {
        let batch = corpus.generate_batch(&mut rng, &cfg);
        let out = bert.train_step(&mut quiet, &batch).expect("train step");
        let mut slots = bert.param_slots();
        optimizer.step(&mut quiet, &mut slots);
        if step % 8 == 0 {
            println!("{step:4}  {:6.3}  {:6.3}  {:6.3}", out.loss, out.mlm_loss, out.nsp_loss);
        }
    }
    println!(
        "\ninitial MLM loss ~ ln(vocab) = {:.3}; it should now be well below that.",
        (cfg.vocab as f32).ln()
    );
}
