//! Export a timed BERT-Large iteration as a Chrome-tracing timeline.
//!
//! Writes `bertscope_trace.json`; open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to scrub through the iteration kernel by
//! kernel — the forward GEMM ridge, the long FC stretches, the dense comb
//! of elementwise kernels, and the LAMB tail at the end.
//!
//! Run with: `cargo run --release --example profile_export`

use bertscope::prelude::*;
use bertscope_sim::{classify_categories, Boundedness};

fn main() -> std::io::Result<()> {
    let gpu = GpuModel::mi100();
    let cfg = BertConfig::bert_large();
    let opts = GraphOptions::default();
    let profile = simulate_iteration(&cfg, &opts, &gpu);

    let json = chrome_trace_json(&profile);
    let path = "bertscope_trace.json";
    std::fs::write(path, &json)?;
    println!(
        "wrote {path}: {} events, {:.1} ms timeline, {:.1} KB JSON",
        profile.kernel_count(),
        profile.total_us() / 1000.0,
        json.len() as f64 / 1024.0
    );

    // Accompany the timeline with the roofline classification so each
    // category's color in the viewer has a meaning.
    println!("\nroofline classification on {} (ridge-point test):", gpu.name);
    let ops = build_iteration(&cfg, &opts);
    let mut t = TextTable::new(["category", "bound by"]);
    for (cat, b) in classify_categories(&gpu, &ops) {
        t.row([
            cat.to_string(),
            match b {
                Boundedness::ComputeBound => "compute".to_owned(),
                Boundedness::MemoryBound => "memory".to_owned(),
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Every non-GEMM category (and the attention B-GEMMs) is memory-bound — \
         the paper's Fig. 7 in one command."
    );
    Ok(())
}
