//! Export a timed BERT-Large iteration as a Chrome-tracing timeline, plus
//! the measured memory profile of a real traced training step.
//!
//! Writes `bertscope_trace.json`; open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to scrub through the iteration kernel by
//! kernel — the forward GEMM ridge, the long FC stretches, the dense comb
//! of elementwise kernels, and the LAMB tail at the end. Alongside it,
//! `bertscope_memory.json` carries the pooled allocator's measured peaks
//! (overall and per phase/category) from executing a tiny-BERT training
//! step — the measured side of the `sim::memory::footprint` model.
//!
//! Run with: `cargo run --release --example profile_export`

use bertscope::prelude::*;
use bertscope_sim::{classify_categories, Boundedness};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::io::Result<()> {
    let gpu = GpuModel::mi100();
    let cfg = BertConfig::bert_large();
    let opts = GraphOptions::default();
    let profile = simulate_iteration(&cfg, &opts, &gpu);

    let json = chrome_trace_json(&profile);
    let path = "bertscope_trace.json";
    std::fs::write(path, &json)?;
    println!(
        "wrote {path}: {} events, {:.1} ms timeline, {:.1} KB JSON",
        profile.kernel_count(),
        profile.total_us() / 1000.0,
        json.len() as f64 / 1024.0
    );

    // Accompany the timeline with the roofline classification so each
    // category's color in the viewer has a meaning.
    println!("\nroofline classification on {} (ridge-point test):", gpu.name);
    let ops = build_iteration(&cfg, &opts);
    let mut t = TextTable::new(["category", "bound by"]);
    for (cat, b) in classify_categories(&gpu, &ops) {
        t.row([
            cat.to_string(),
            match b {
                Boundedness::ComputeBound => "compute".to_owned(),
                Boundedness::MemoryBound => "memory".to_owned(),
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Every non-GEMM category (and the attention B-GEMMs) is memory-bound — \
         the paper's Fig. 7 in one command."
    );

    // Execute a tiny-BERT training step under the tracer and export the
    // measured memory profile next to the timeline.
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(7);
    let mut bert = Bert::new(cfg, TrainOptions::default(), 42);
    let mut optimizer = Lamb::new(0.02);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut tracer = Tracer::new();
    bert.train_step(&mut tracer, &batch).expect("train step");
    {
        let mut slots = bert.param_slots();
        optimizer.step(&mut tracer, &mut slots);
    }
    let mem = tracer.memory_profile();
    let mem_json = memory_profile_json(&mem);
    let mem_path = "bertscope_memory.json";
    std::fs::write(mem_path, &mem_json)?;
    println!(
        "\nwrote {mem_path}: measured peak {:.2} MB ({:.2} MB over baseline) across {} phases",
        mem.peak_bytes as f64 / 1.0e6,
        mem.peak_over_baseline() as f64 / 1.0e6,
        mem.peak_by_phase.len()
    );
    Ok(())
}
