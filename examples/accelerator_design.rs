//! Accelerator what-if studies: use the suite the way the paper's §6-7
//! intends — to evaluate design options for a BERT accelerator.
//!
//! Three questions a designer would ask:
//!  1. What happens if I only scale compute (more FLOPS, same memory)?
//!  2. What does near-memory compute buy for the optimizer?
//!  3. Which kernels should I fuse first?
//!
//! Run with: `cargo run --release --example accelerator_design`

use bertscope::prelude::*;

fn main() {
    let base_gpu = GpuModel::mi100();
    let cfg = BertConfig::bert_large();
    let opts = GraphOptions::default();

    // 1. Compute scaling: the memory wall in action (paper §7).
    println!("1) Scaling compute without scaling memory bandwidth");
    let mut t = TextTable::new(["device", "iteration", "GEMM share", "LAMB share", "speedup"]);
    let base_time = simulate_iteration(&cfg, &opts, &base_gpu).total_us();
    for factor in [1.0, 2.0, 4.0, 8.0] {
        let gpu = base_gpu.scaled_compute(factor);
        let p = simulate_iteration(&cfg, &opts, &gpu);
        t.row([
            format!("{factor}x compute"),
            format!("{:.0} ms", p.total_us() / 1000.0),
            pct(p.gemm_fraction()),
            pct(p.group_fraction(Group::Lamb)),
            format!("{:.2}x", base_time / p.total_us()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "8x the FLOPS buys nowhere near 8x the speed: the memory-bound operators\n\
         (LAMB, GeLU, softmax, LayerNorm) take over — the paper's core warning.\n"
    );

    // 2. Near-memory compute for the optimizer (paper §6.2.1).
    println!("2) Offloading LAMB to per-bank near-memory ALUs");
    let nmc_model = NmcModel::hbm2_per_bank();
    let mut t = TextTable::new(["config", "LAMB speedup vs optimistic GPU", "end-to-end"]);
    for (label, cfg, precision) in [
        ("Ph1-B32-FP32", BertConfig::bert_large(), Precision::Fp32),
        ("Ph1-B32-FP16", BertConfig::bert_large(), Precision::Mixed),
        ("Ph2-B4-FP16", BertConfig::bert_large().phase2(4), Precision::Mixed),
    ] {
        let s = nmc_study(&cfg, &GraphOptions { precision, ..opts }, &base_gpu, &nmc_model);
        t.row([
            label.to_owned(),
            format!("{:.2}x", s.lamb_speedup_vs_optimistic_gpu),
            format!("+{:.1}%", s.end_to_end_improvement * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: ~3.8x LAMB, 5-22% end-to-end)\n");

    // 3. Fusion priorities (paper §6.1, Fig. 12).
    println!("3) Which fusions pay off");
    let mut t = TextTable::new(["fusion", "kernel ratio", "traffic ratio", "runtime ratio"]);
    for r in figure12a_study(&cfg, &base_gpu) {
        t.row([
            r.name.clone(),
            format!("{:.0}x", r.kernel_ratio),
            format!("{:.1}x", r.bytes_ratio),
            format!("{:.1}x", r.runtime_ratio),
        ]);
    }
    println!("{}", t.render());
    let qkv = figure12b_study(&base_gpu, &[2, 32]);
    println!(
        "fused QKV GEMM: {:.2}x at B=2, {:.2}x at B=32 — fuse producer-consumer chains\n\
         (LayerNorm, GeLU) for traffic, fuse independent small GEMMs for utilization,\n\
         and don't expect optimizer fusion to pay beyond launch overhead.",
        qkv[0].fwd_speedup, qkv[1].fwd_speedup
    );
}
