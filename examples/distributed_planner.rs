//! Distributed-training planner: compare data parallelism and tensor
//! slicing for BERT-Large across device counts and interconnects —
//! the paper's §5 analysis as a reusable tool.
//!
//! Also demonstrates the real threaded Ring AllReduce that grounds the
//! communication model.
//!
//! Run with: `cargo run --release --example distributed_planner`

use bertscope::prelude::*;
use bertscope_dist::ring_allreduce;

fn main() {
    let gpu = GpuModel::mi100();
    let opts = GraphOptions::default();

    // The paper's Fig. 11 configuration set.
    println!("Per-device iteration breakdowns (paper Fig. 11):");
    let mut t = TextTable::new(["config", "description", "compute", "LAMB", "comm", "iteration"]);
    for pt in figure11_profiles(&gpu, &Link::pcie4()) {
        let p = &pt.profile;
        let comm = p.group_fraction(Group::Comm);
        t.row([
            pt.label.clone(),
            pt.description.clone(),
            pct(1.0 - comm - p.group_fraction(Group::Lamb)),
            pct(p.group_fraction(Group::Lamb)),
            pct(comm),
            format!("{:.0} ms", p.total_us() / 1000.0),
        ]);
    }
    println!("{}\n", t.render());

    // Tensor-slicing scaling: where does adding devices stop helping?
    println!("Tensor-slicing scaling on PCIe 4.0 vs a faster fabric (B=32):");
    let cfg = BertConfig::bert_large();
    let mut t =
        TextTable::new(["ways", "PCIe4 iteration", "PCIe4 comm", "xGMI iteration", "xGMI comm"]);
    for ways in [1usize, 2, 4, 8] {
        let pcie = tensor_slice_profile(&cfg, &opts, &gpu, &Link::pcie4(), ways);
        let xgmi = tensor_slice_profile(&cfg, &opts, &gpu, &Link::xgmi(), ways);
        t.row([
            format!("{ways}"),
            format!("{:.0} ms", pcie.total_us() / 1000.0),
            pct(pcie.group_fraction(Group::Comm)),
            format!("{:.0} ms", xgmi.total_us() / 1000.0),
            pct(xgmi.group_fraction(Group::Comm)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Communication share grows with slicing ways (Takeaway 13): slice within a node\n\
         on the fastest fabric available, data-parallel across nodes with overlap.\n"
    );

    // Ground the model: run the real threaded Ring AllReduce on a
    // BERT-layer-sized gradient and compare measured traffic to the model.
    println!("Grounding the comm model with the real Ring AllReduce (4 workers, 12.6M floats):");
    let devices = 4;
    let len = 12_600_000; // one BERT-Large layer's parameters
    let mut buffers: Vec<Vec<f32>> = (0..devices).map(|i| vec![i as f32 + 1.0; len]).collect();
    let start = std::time::Instant::now();
    let stats = ring_allreduce(&mut buffers);
    let elapsed = start.elapsed();
    let expected = buffers[0][0];
    println!(
        "  reduced in {:?}; every element = {expected} (sum of 1..={devices}); \
         {} steps, {:.1} MB sent per worker",
        elapsed,
        stats.steps,
        stats.bytes_sent_per_device as f64 / 1.0e6
    );
    let analytic = 2.0 * (devices as f64 - 1.0) / devices as f64 * (len * 4) as f64;
    println!(
        "  analytic volume 2(D-1)/D * bytes = {:.1} MB — matches the measured traffic",
        analytic / 1.0e6
    );
}
