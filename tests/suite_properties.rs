//! Property-based tests of cross-crate invariants: the relationships the
//! paper's scaling analysis (§3.3) relies on must hold for *arbitrary*
//! configurations, not just BERT-Large.

use bertscope_device::GpuModel;
use bertscope_dist::tensor_slice_ops;
use bertscope_model::{
    build_iteration, parameter_count, parameter_tensors, BertConfig, GraphOptions, Precision,
};
use bertscope_sim::simulate_iteration;
use bertscope_tensor::{Group, OpRecord, Phase};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = BertConfig> {
    // Keep dims small: these tests build graphs, not tensors, so the only
    // cost is op-list length — but heads must divide d_model.
    (1usize..6, 1usize..8, prop_oneof![Just(2usize), Just(4), Just(8)], 1usize..4, 2usize..17)
        .prop_map(|(layers, dm_mult, heads, ff_mult, seq)| {
            let d_model = heads * 16 * dm_mult;
            BertConfig {
                layers,
                d_model,
                heads,
                d_ff: d_model * ff_mult,
                vocab: 500,
                max_position: 512,
                seq_len: seq * 8,
                batch: 3,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backward GEMM MACs are exactly twice forward GEMM MACs within the
    /// Transformer layers (each forward GEMM spawns two gradient GEMMs of
    /// equal MAC count — Table 2b's structure). Compared on the contraction
    /// work alone: forward GEMMs additionally carry fused epilogue FLOPs
    /// (bias adds) that have no backward counterpart.
    #[test]
    fn backward_gemms_are_exactly_2x_forward(cfg in arb_config()) {
        let ops = build_iteration(&cfg, &GraphOptions::default());
        let gemm_macs = |ph: Phase| -> u64 {
            ops.iter()
                .filter(|o| o.phase == ph && o.is_gemm() && o.layer.is_some())
                .filter_map(|o| o.gemm)
                .map(|s| s.mac_flops())
                .sum()
        };
        prop_assert_eq!(gemm_macs(Phase::Backward), 2 * gemm_macs(Phase::Forward));
    }

    /// Update-phase traffic depends only on the model, never on B or n.
    #[test]
    fn optimizer_traffic_is_input_invariant(cfg in arb_config(), b2 in 1usize..9, n2 in 1usize..5) {
        let mut other = cfg;
        other.batch = b2;
        other.seq_len = n2 * 16;
        let upd = |c: &BertConfig| -> u64 {
            build_iteration(c, &GraphOptions::default())
                .iter()
                .filter(|o| o.phase == Phase::Update)
                .map(OpRecord::bytes_total)
                .sum()
        };
        prop_assert_eq!(upd(&cfg), upd(&other));
    }

    /// Transformer FLOPs scale exactly linearly with batch size.
    #[test]
    fn flops_scale_linearly_with_batch(cfg in arb_config(), k in 2usize..5) {
        let mut scaled = cfg;
        scaled.batch = cfg.batch * k;
        let layer_flops = |c: &BertConfig| -> u64 {
            build_iteration(c, &GraphOptions::default())
                .iter()
                .filter(|o| o.layer.is_some() && o.phase != Phase::Update)
                .map(|o| o.flops)
                .sum()
        };
        prop_assert_eq!(layer_flops(&scaled), (k as u64) * layer_flops(&cfg));
    }

    /// Parameter count equals the sum over the tensor inventory, and the
    /// per-layer share is identical for every layer.
    #[test]
    fn parameter_inventory_is_consistent(cfg in arb_config()) {
        let tensors = parameter_tensors(&cfg);
        let total: u64 = tensors.iter().map(|t| t.numel()).sum();
        prop_assert_eq!(total, parameter_count(&cfg));
        let layer_sum = |l: usize| -> u64 {
            tensors.iter().filter(|t| t.layer == Some(l)).map(|t| t.numel()).sum()
        };
        for l in 1..cfg.layers {
            prop_assert_eq!(layer_sum(l), layer_sum(0));
        }
    }

    /// Simulated iteration time is positive and monotone in layer count.
    #[test]
    fn sim_time_monotone_in_depth(cfg in arb_config()) {
        let gpu = GpuModel::mi100();
        let mut deeper = cfg;
        deeper.layers = cfg.layers + 2;
        let t1 = simulate_iteration(&cfg, &GraphOptions::default(), &gpu).total_us();
        let t2 = simulate_iteration(&deeper, &GraphOptions::default(), &gpu).total_us();
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1);
    }

    /// Mixed precision never slows an iteration down and never changes the
    /// kernel count.
    #[test]
    fn mixed_precision_is_a_pure_speedup(cfg in arb_config()) {
        let gpu = GpuModel::mi100();
        let f32p = simulate_iteration(&cfg, &GraphOptions::default(), &gpu);
        let mpp = simulate_iteration(
            &cfg,
            &GraphOptions { precision: Precision::Mixed, ..GraphOptions::default() },
            &gpu,
        );
        prop_assert_eq!(f32p.kernel_count(), mpp.kernel_count());
        prop_assert!(mpp.total_us() <= f32p.total_us());
    }

    /// Checkpointing adds kernels, never removes them, and leaves the
    /// update phase untouched.
    #[test]
    fn checkpointing_only_adds_recompute(cfg in arb_config()) {
        let base = build_iteration(&cfg, &GraphOptions::default());
        let ck = build_iteration(&cfg, &GraphOptions { checkpoint: true, ..GraphOptions::default() });
        prop_assert!(ck.len() >= base.len());
        let upd = |ops: &[OpRecord]| ops.iter().filter(|o| o.phase == Phase::Update).count();
        prop_assert_eq!(upd(&base), upd(&ck));
        // Added ops are exactly the recompute ops.
        let recompute = ck.iter().filter(|o| o.phase == Phase::Recompute).count();
        prop_assert_eq!(ck.len() - base.len(), recompute);
    }

    /// Tensor slicing conserves sliced-GEMM work: per-device FLOPs times the
    /// slice count equals the single-device FLOPs (for layer GEMMs).
    #[test]
    fn tensor_slicing_conserves_work(cfg in arb_config(), ways in prop_oneof![Just(2usize)]) {
        // Only slice configurations whose dims divide evenly.
        prop_assume!(
            cfg.heads.is_multiple_of(ways)
                && cfg.d_ff.is_multiple_of(ways)
                && cfg.d_model.is_multiple_of(ways)
        );
        let base = build_iteration(&cfg, &GraphOptions::default());
        let sliced = tensor_slice_ops(&cfg, &GraphOptions::default(), ways);
        // MAC work only: fused bias epilogues are *not* conserved — the
        // row-parallel GEMMs drop theirs (partial sums defer the bias past
        // the AllReduce).
        let layer_gemm = |ops: &[OpRecord]| -> u64 {
            ops.iter()
                .filter(|o| o.is_gemm() && o.layer.is_some())
                .filter_map(|o| o.gemm)
                .map(|s| s.mac_flops())
                .sum()
        };
        prop_assert_eq!(layer_gemm(&base), (ways as u64) * layer_gemm(&sliced));
    }

    /// The group fractions of any simulated profile sum to one.
    #[test]
    fn group_fractions_partition_unity(cfg in arb_config()) {
        let gpu = GpuModel::mi100();
        let p = simulate_iteration(&cfg, &GraphOptions::default(), &gpu);
        let sum: f64 = [Group::Transformer, Group::Embedding, Group::Output, Group::Lamb, Group::Comm]
            .iter()
            .map(|&g| p.group_fraction(g))
            .sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }
}

fn arb_gemm_spec() -> impl Strategy<Value = bertscope_tensor::GemmSpec> {
    use bertscope_tensor::{GemmSpec, Transpose};
    (1usize..4096, 1usize..4096, 1usize..4096, 1usize..64)
        .prop_map(|(m, n, k, b)| GemmSpec::batched(Transpose::No, Transpose::No, m, n, k, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GEMM efficiency is always within (0, max_gemm_efficiency].
    #[test]
    fn gemm_efficiency_is_bounded(spec in arb_gemm_spec()) {
        let gpu = GpuModel::mi100();
        let e = gpu.gemm_efficiency(&spec);
        prop_assert!(e > 0.0, "{spec}: {e}");
        prop_assert!(e <= gpu.max_gemm_efficiency + 1e-12, "{spec}: {e}");
    }

    /// Modelled op time is monotone in bytes for memory-bound ops and never
    /// below the launch overhead.
    #[test]
    fn op_time_monotone_in_bytes(bytes in 1u64..(1 << 30), extra in 1u64..(1 << 24)) {
        use bertscope_tensor::{Category, DType, OpKind, OpRecord};
        let gpu = GpuModel::mi100();
        let mk = |b: u64| OpRecord {
            access: Default::default(),
            name: "ew".into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops: 0,
            bytes_read: b,
            bytes_written: 0,
            dtype: DType::F32,
        };
        let t1 = gpu.op_time_us(&mk(bytes));
        let t2 = gpu.op_time_us(&mk(bytes + extra));
        prop_assert!(t2 >= t1);
        prop_assert!(t1 >= gpu.launch_overhead_us);
    }

    /// The threaded Ring AllReduce equals the elementwise sum for arbitrary
    /// device counts and (possibly indivisible) lengths.
    #[test]
    fn ring_allreduce_is_a_sum(devices in 2usize..6, len in 1usize..200, seedling in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seedling);
        let bufs: Vec<Vec<f32>> = (0..devices)
            .map(|_| (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let expected: Vec<f32> =
            (0..len).map(|i| bufs.iter().map(|b| b[i]).sum::<f32>()).collect();
        let mut work = bufs.clone();
        let stats = bertscope_dist::ring_allreduce(&mut work);
        prop_assert_eq!(stats.devices, devices);
        for b in &work {
            for (got, want) in b.iter().zip(&expected) {
                prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
            }
        }
    }

    /// Padding masks block exactly the padded keys, for arbitrary shapes.
    #[test]
    fn padding_mask_blocks_exactly_pads(
        seq in 2usize..24,
        heads in 1usize..5,
        lens in proptest::collection::vec(1usize..24, 1..4),
    ) {
        use bertscope_kernels::masks::padding_mask;
        use bertscope_tensor::DType;
        let lens: Vec<usize> = lens.into_iter().map(|l| l.min(seq)).collect();
        let m = padding_mask(&lens, seq, heads, DType::F32).unwrap();
        prop_assert_eq!(m.dims(), &[lens.len() * heads, seq, seq]);
        for (b, &len) in lens.iter().enumerate() {
            for h in 0..heads {
                for q in 0..seq {
                    for k in 0..seq {
                        let v = m.at(&[b * heads + h, q, k]).unwrap();
                        if k < len {
                            prop_assert_eq!(v, 0.0);
                        } else {
                            prop_assert!(v < -1.0e4);
                        }
                    }
                }
            }
        }
    }

    /// Fine-tuning never costs more than pre-training at the same
    /// configuration (the task head is strictly smaller).
    #[test]
    fn finetuning_is_never_slower_than_pretraining(cfg in arb_config()) {
        let gpu = GpuModel::mi100();
        let pt = simulate_iteration(&cfg, &GraphOptions::default(), &gpu).total_us();
        let ft = bertscope_sim::simulate_finetune(&cfg, &GraphOptions::default(), &gpu).total_us();
        prop_assert!(ft <= pt, "finetune {ft} vs pretrain {pt}");
    }
}
