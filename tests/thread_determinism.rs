//! Thread-count determinism: the worker pool must be invisible in the
//! numbers. Chunk grains are shape-only and partials merge in chunk order,
//! so every routine routed through the pool has to produce bit-identical
//! results whether it runs on 1, 2 or 8 threads (including oversubscribed
//! configurations on smaller hosts).

use bertscope_kernels::norm::{layernorm_bwd, layernorm_fwd};
use bertscope_kernels::KernelCtx;
use bertscope_tensor::init::randn;
use bertscope_tensor::{
    batched_gemm, batched_gemm_ep, gemm, gemm_bias_gelu, gemm_ep, pool, Category, DType,
    GemmEpilogue, Phase, Tracer, Transpose,
};
use bertscope_train::{Lamb, ParamSlot};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical_across_threads(label: &str, run: impl Fn() -> Vec<f32>) {
    let base = pool::with_threads(1, &run);
    assert!(
        base.iter().all(|x| x.is_finite()),
        "{label}: reference run produced non-finite values"
    );
    for threads in [2usize, 8] {
        let got = pool::with_threads(threads, &run);
        assert_eq!(
            bits(&base),
            bits(&got),
            "{label}: results differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn gemm_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(7);
    // 128 * 160 * 128 MACs crosses the parallel threshold, so the pooled
    // row-chunk path actually runs.
    let a = randn(&mut r, &[128, 160], 1.0);
    let b = randn(&mut r, &[160, 128], 1.0);
    assert_identical_across_threads("gemm nn", || {
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap().as_slice().to_vec()
    });
    assert_identical_across_threads("gemm tn", || {
        gemm(Transpose::Yes, Transpose::No, 0.5, &a, &a, 0.0, None).unwrap().as_slice().to_vec()
    });
}

#[test]
fn batched_gemm_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(8);
    let q = randn(&mut r, &[32, 48, 32], 1.0);
    let k = randn(&mut r, &[32, 48, 32], 1.0);
    assert_identical_across_threads("batched_gemm nt", || {
        batched_gemm(Transpose::No, Transpose::Yes, 1.0, &q, &k).unwrap().as_slice().to_vec()
    });
    let v = randn(&mut r, &[32, 48, 32], 1.0);
    let s = randn(&mut r, &[32, 48, 48], 1.0);
    assert_identical_across_threads("batched_gemm nn", || {
        batched_gemm(Transpose::No, Transpose::No, 1.0, &s, &v).unwrap().as_slice().to_vec()
    });
}

#[test]
fn fused_epilogue_gemm_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(17);
    for dt in [DType::F32, DType::F16, DType::BF16] {
        let a = randn(&mut r, &[128, 160], 1.0).to_dtype(dt);
        let b = randn(&mut r, &[160, 128], 1.0).to_dtype(dt);
        let bias: Vec<f32> =
            randn(&mut r, &[128], 1.0).as_slice().iter().map(|&v| dt.quantize(v)).collect();
        let bias_t = bertscope_tensor::Tensor::from_vec(bias.clone(), &[128]).unwrap();
        assert_identical_across_threads(&format!("gemm+bias {dt:?}"), || {
            gemm_ep(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None, GemmEpilogue::Bias(&bias))
                .unwrap()
                .as_slice()
                .to_vec()
        });
        assert_identical_across_threads(&format!("gemm+bias+gelu {dt:?}"), || {
            let (pre, act) =
                gemm_bias_gelu(Transpose::No, Transpose::No, 1.0, &a, &b, &bias_t).unwrap();
            let mut out = pre.as_slice().to_vec();
            out.extend_from_slice(act.as_slice());
            out
        });
    }
    let q = randn(&mut r, &[32, 48, 32], 1.0);
    let k = randn(&mut r, &[32, 48, 32], 1.0);
    let mask: Vec<f32> =
        (0..32 * 48 * 48).map(|i| if i % 5 == 0 { -10_000.0 } else { 0.0 }).collect();
    assert_identical_across_threads("batched_gemm nt +scale+mask", || {
        batched_gemm_ep(
            Transpose::No,
            Transpose::Yes,
            1.0,
            &q,
            &k,
            GemmEpilogue::ScaleMask { scale: 0.176_776_7, mask: &mask },
        )
        .unwrap()
        .as_slice()
        .to_vec()
    });
}

#[test]
fn optimizer_update_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(9);
    // Large enough to split into several optimizer chunks, run for a few
    // steps so the trust-ratio norms (chunked f64 reductions) feed back
    // into the weights.
    let w0 = randn(&mut r, &[200_000], 1.0);
    let g = randn(&mut r, &[200_000], 0.01);
    assert_identical_across_threads("lamb update", || {
        let mut w = w0.clone();
        let mut opt = Lamb::new(0.01);
        let mut tr = Tracer::disabled();
        for _ in 0..3 {
            opt.step(&mut tr, &mut [ParamSlot { name: "l0.w", value: &mut w, grad: &g }]);
        }
        w.as_slice().to_vec()
    });
}

#[test]
fn layernorm_backward_partials_merge_deterministically() {
    let mut r = StdRng::seed_from_u64(10);
    let rows = 64;
    let len = 96;
    let x = randn(&mut r, &[rows, len], 1.0);
    let gamma = randn(&mut r, &[len], 1.0);
    let beta = randn(&mut r, &[len], 1.0);
    let dy = randn(&mut r, &[rows, len], 1.0);
    let ctx = KernelCtx::new("ln", Category::DropResidualNorm, Phase::Backward);
    assert_identical_across_threads("layernorm bwd", || {
        let mut tr = Tracer::disabled();
        let (_y, state) = layernorm_fwd(&mut tr, &ctx, &x, &gamma, &beta, 1e-5).unwrap();
        let (dx, dgamma, dbeta) = layernorm_bwd(&mut tr, &ctx, &x, &gamma, &state, &dy).unwrap();
        let mut out = dx.as_slice().to_vec();
        out.extend_from_slice(dgamma.as_slice());
        out.extend_from_slice(dbeta.as_slice());
        out
    });
}

#[test]
fn pool_reports_the_overridden_thread_count() {
    let inside = pool::with_threads(5, pool::current_threads);
    assert_eq!(inside, 5);
    assert_eq!(pool::current_threads(), pool::configured_threads());
}
