//! Measured memory profile: cross-validation of the pooled allocator's
//! live-byte accounting against the analytical footprint model, the
//! paper-§4 checkpointing claim on *measured* bytes, and determinism of
//! the profile across worker-pool sizes.
//!
//! Every test here reads the allocator's process-global live-byte counter
//! through `Tracer` samples, so the tests serialize on one mutex — a
//! concurrently running test would perturb the measured peaks.

use bertscope::memory_profile_json;
use bertscope_check::check_memory;
use bertscope_model::{checkpoint_segments, parameter_count, BertConfig, GraphOptions, Precision};
use bertscope_sim::memory::{footprint, measured_to_model_ratio};
use bertscope_tensor::{pool, MemoryProfile, Tracer};
use bertscope_train::{Bert, Lamb, SyntheticCorpus, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An 8-layer miniature: big enough that `checkpoint_segments(8) = 3`
/// segment boundaries differ visibly from the full activation stash.
fn eight_layer() -> BertConfig {
    BertConfig {
        layers: 8,
        d_model: 64,
        heads: 4,
        d_ff: 256,
        vocab: 211,
        max_position: 48,
        seq_len: 32,
        batch: 4,
    }
}

/// Run one warmup step (so gradients, LAMB moments and master weights are
/// resident) and then one traced step + optimizer update from training
/// steady state. Returns the measured profile and the step's loss.
fn traced_steady_step(cfg: BertConfig, opts: TrainOptions) -> (MemoryProfile, f32) {
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(11);
    let mut bert = Bert::new(cfg, opts, 42);
    let mut opt = Lamb::new(0.01);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut quiet = Tracer::disabled();
    bert.train_step(&mut quiet, &batch).expect("warmup step");
    {
        let mut slots = bert.param_slots();
        opt.step(&mut quiet, &mut slots);
    }
    let mut tracer = Tracer::new();
    let out = bert.train_step(&mut tracer, &batch).expect("traced step");
    {
        let mut slots = bert.param_slots();
        opt.step(&mut tracer, &mut slots);
    }
    (tracer.memory_profile(), out.loss)
}

#[test]
fn checkpointing_reduces_the_measured_activation_peak() {
    let _g = lock();
    let cfg = eight_layer();
    let (plain, _) = traced_steady_step(cfg, TrainOptions::default());
    let (ck, _) =
        traced_steady_step(cfg, TrainOptions { checkpoint: true, ..TrainOptions::default() });

    // Paper §4 on measured bytes: recomputing from sqrt(N) segment
    // checkpoints must strictly lower the activation high-water mark.
    let plain_act = plain.peak_over_baseline();
    let ck_act = ck.peak_over_baseline();
    assert!(
        ck_act < plain_act,
        "checkpointing must lower the measured activation peak: {ck_act} vs {plain_act}"
    );

    // And the reduction must follow the sqrt(N)-segment curve: the
    // footprint model predicts the plain/checkpointed activation ratio
    // from `checkpoint_segments`; the measured ratio has to land within
    // 2x of it (the measured peak also carries transient GEMM pack
    // scratch and workspaces the closed form does not model).
    assert_eq!(checkpoint_segments(cfg.layers), 3);
    let modeled_plain = footprint(&cfg, &GraphOptions::default()).activations;
    let modeled_ck =
        footprint(&cfg, &GraphOptions { checkpoint: true, ..GraphOptions::default() }).activations;
    let modeled_ratio = modeled_plain as f64 / modeled_ck as f64;
    let measured_ratio = plain_act as f64 / ck_act as f64;
    assert!(modeled_ratio > 1.3, "model must predict a real reduction: {modeled_ratio}");
    assert!(
        measured_ratio > modeled_ratio / 2.0 && measured_ratio < modeled_ratio * 2.0,
        "measured activation ratio {measured_ratio:.2} vs modeled {modeled_ratio:.2}"
    );
}

#[test]
fn measured_peak_matches_the_footprint_model() {
    let _g = lock();
    // Two configurations, both f32 (the substrate stores every buffer as
    // f32, so Fp32 is the precision whose footprint the allocator can
    // reproduce byte-for-byte).
    for cfg in [BertConfig::tiny(), eight_layer()] {
        let (profile, _) = traced_steady_step(cfg, TrainOptions::default());
        let modeled = footprint(
            &cfg,
            &GraphOptions { precision: Precision::Fp32, ..GraphOptions::default() },
        );
        let ratio = measured_to_model_ratio(profile.peak_bytes, modeled.total());
        // Documented tolerance band [0.6, 1.8] (observed: 1.67 on the
        // 2-layer tiny config, 1.44 on the 8-layer miniature):
        //  * the substrate's LAMB keeps an f32 master copy even at Fp32
        //    (+4 bytes/param the model books only under mixed precision);
        //  * backward-pass transients (dx chains, per-head splits, GEMM
        //    pack scratch) are live at the peak but outside the model's
        //    saved-activation inventory — proportionally large on the
        //    miniature configurations this test can afford to execute;
        //  * conversely some of the modeled stash is already released
        //    before the measured peak.
        assert!(
            (0.6..=1.8).contains(&ratio),
            "cfg {} layers: measured {} vs modeled {} (ratio {ratio:.3})",
            cfg.layers,
            profile.peak_bytes,
            modeled.total()
        );
    }
}

#[test]
fn memory_profile_is_identical_across_thread_counts() {
    let _g = lock();
    let run = || traced_steady_step(BertConfig::tiny(), TrainOptions::default());
    let (base_profile, base_loss) = pool::with_threads(1, run);
    for threads in [2usize, 8] {
        let (profile, loss) = pool::with_threads(threads, run);
        assert_eq!(
            base_loss.to_bits(),
            loss.to_bits(),
            "loss differs between 1 and {threads} threads"
        );
        assert_eq!(base_profile, profile, "memory profile differs between 1 and {threads} threads");
    }
    assert!(base_profile.peak_bytes > base_profile.baseline_bytes);
}

#[test]
fn traced_step_passes_the_m001_memory_lint() {
    let _g = lock();
    let cfg = eight_layer();
    let (profile, _) = traced_steady_step(cfg, TrainOptions::default());
    // The peak of a steady-state training step must cover at least the
    // resident f32 weights + gradients.
    let resident_lower_bound = 2 * parameter_count(&cfg) * 4;
    let findings = check_memory(&profile, resident_lower_bound);
    assert!(findings.is_empty(), "M001 findings: {findings:?}");
    // Per-phase peaks must be present and exported alongside the trace.
    assert!(profile.peak_by_phase.len() >= 3, "phases: {:?}", profile.peak_by_phase);
    let json = memory_profile_json(&profile);
    assert!(json.contains("\"peak_by_phase\":{\"fwd\":"));
}
