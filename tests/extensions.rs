//! Integration tests for the extension studies: the systems the paper
//! discusses but does not evaluate (ZeRO sharding, hybrid parallelism,
//! in-network reduction), plus the memory-capacity model behind §4 and the
//! §7 extrapolation recipe.

use bertscope::prelude::*;
use bertscope_sim::{classify_categories, extrapolate, footprint, max_batch, Boundedness};

#[test]
fn zero_vs_plain_dp_trade() {
    let cfg = BertConfig::bert_large().phase1(16);
    let opts = GraphOptions::default();
    let gpu = GpuModel::mi100();
    let link = Link::pcie4();
    let plain = data_parallel_profile(&cfg, &opts, &gpu, &link, 8, false);
    let zero = zero_dp_profile(&cfg, &opts, &gpu, &link, 8);
    // ZeRO shrinks the update dramatically without inflating communication.
    assert!(plain.time_by_group()[&Group::Lamb] > 4.0 * zero.time_by_group()[&Group::Lamb]);
    assert!(zero.total_us() < plain.total_us());
}

#[test]
fn hybrid_parallelism_scales_throughput() {
    // At 16 devices, 2-way TS x 8-way DP processes 8x the samples of pure
    // 16-way TS per iteration at far less than 8x the time.
    let cfg = BertConfig::bert_large().phase1(16);
    let opts = GraphOptions::default();
    let gpu = GpuModel::mi100();
    let hybrid = hybrid_profile(
        &cfg,
        &opts,
        &gpu,
        &HybridPlan {
            ts_ways: 2,
            dp_replicas: 8,
            intra_link: Link::xgmi(),
            inter_link: Link::pcie4(),
        },
    );
    let pure_ts = tensor_slice_profile(&cfg, &opts, &gpu, &Link::xgmi(), 16);
    let hybrid_throughput = (cfg.batch * 8) as f64 / hybrid.total_us();
    let ts_throughput = cfg.batch as f64 / pure_ts.total_us();
    assert!(
        hybrid_throughput > 2.0 * ts_throughput,
        "hybrid {hybrid_throughput} vs pure-TS {ts_throughput} samples/us"
    );
}

#[test]
fn in_network_reduction_halves_dp_communication() {
    let sw = InNetworkSwitch::pcie4_switch();
    let grad_bytes = parameter_count(&BertConfig::bert_large()) * 4;
    let speedup = sw.speedup_vs_ring(grad_bytes, 128);
    assert!((1.7..2.5).contains(&speedup), "in-network speedup {speedup}");
}

#[test]
fn memory_model_explains_the_papers_configurations() {
    // Ph1-B32 and Ph2-B4 both fit the paper's 32 GB device; checkpointing
    // extends the feasible batch.
    let gib32 = 32u64 * (1 << 30);
    let opts = GraphOptions::default();
    assert!(footprint(&BertConfig::bert_large(), &opts).total() < gib32);
    assert!(footprint(&BertConfig::bert_large().phase2(4), &opts).total() < gib32);
    let plain = max_batch(&BertConfig::bert_large(), &opts, gib32);
    let ck =
        max_batch(&BertConfig::bert_large(), &GraphOptions { checkpoint: true, ..opts }, gib32);
    assert!(ck > plain);
}

#[test]
fn roofline_classification_matches_figure7() {
    let gpu = GpuModel::mi100();
    let ops = build_iteration(&BertConfig::bert_large(), &GraphOptions::default());
    let classes = classify_categories(&gpu, &ops);
    let memory_bound: Vec<_> =
        classes.iter().filter(|(_, b)| **b == Boundedness::MemoryBound).map(|(c, _)| *c).collect();
    // Everything except the large GEMM categories and the (GEMM-heavy)
    // output head is memory-bound.
    assert!(memory_bound.contains(&Category::AttnBgemm));
    assert!(memory_bound.contains(&Category::Gelu));
    assert!(memory_bound.contains(&Category::LambStage1));
    assert!(!memory_bound.contains(&Category::FcGemm));
}

#[test]
fn extrapolation_recipe_is_accurate_for_bandwidth_scaling_too() {
    // Scale memory bandwidth instead of compute: memory-bound categories
    // should speed up, GEMM share should grow.
    let gpu = GpuModel::mi100();
    let mut hbm3 = gpu.clone();
    hbm3.mem_bw_gbps *= 2.0;
    hbm3.name = "MI100-2x-bandwidth".into();
    let cfg = BertConfig::bert_large();
    let base = simulate_iteration(&cfg, &GraphOptions::default(), &gpu);
    let projected = extrapolate(&base, &gpu, &hbm3);
    let resim = simulate_iteration(&cfg, &GraphOptions::default(), &hbm3);
    let err = (projected - resim.total_us()).abs() / resim.total_us();
    assert!(err < 0.2, "bandwidth extrapolation error {err}");
    assert!(resim.gemm_fraction() > base.gemm_fraction());
}

#[test]
fn precision_sweep_monotonically_raises_optimizer_share() {
    let pts = bertscope_sim::precision_sweep(&BertConfig::bert_large(), &GpuModel::mi100());
    assert_eq!(pts.len(), 3);
    assert!(pts[1].lamb_fraction > pts[0].lamb_fraction, "FP16 > FP32 LAMB share");
    assert!(pts[1].total_us < pts[0].total_us);
}

#[test]
fn chrome_trace_round_trips_through_the_full_iteration() {
    let p =
        simulate_iteration(&BertConfig::bert_large(), &GraphOptions::default(), &GpuModel::mi100());
    let json = chrome_trace_json(&p);
    assert!(json.len() > 100_000, "BERT-Large trace is substantial: {} bytes", json.len());
    assert_eq!(json.matches("\"ph\":\"X\"").count(), p.kernel_count());
}
