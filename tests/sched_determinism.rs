//! Property tests for the deferred operator-graph scheduler: randomly
//! generated task DAGs executed at 1, 2 and 8 worker threads must leave
//! bit-identical buffer contents, and every completion order the executor
//! emits must replay cleanly through the static hazard rules
//! (`check_schedule` over `Schedule::from_completion_order`).

use bertscope_check::{check_schedule, has_errors, report, DepGraph, Schedule};
use bertscope_tensor::sched::TaskGraph;
use bertscope_tensor::{pool, AccessSet, BufId, Category, DType, OpKind, OpRecord, Phase, Tracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// One generated task, as indices into a shared buffer array.
#[derive(Debug, Clone)]
struct TaskSpec {
    reads: Vec<usize>,
    write: usize,
}

/// Derive a random DAG deterministically from `seed`: each task writes one
/// buffer and reads up to three others, so RAW/WAR/WAW conflicts (and
/// independent chains) all occur across the sampled space.
fn gen_tasks(n_tasks: usize, n_bufs: usize, seed: u64) -> Vec<TaskSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_tasks)
        .map(|_| {
            let write = rng.gen_range(0..n_bufs);
            let mut reads = Vec::new();
            for _ in 0..rng.gen_range(0usize..4) {
                let r = rng.gen_range(0..n_bufs);
                if r != write && !reads.contains(&r) {
                    reads.push(r);
                }
            }
            TaskSpec { reads, write }
        })
        .collect()
}

/// Mirror the task specs as one `OpRecord` per task so the emitted
/// completion order can be verified against `bertscope-check`'s own
/// dependence construction.
fn mirror_ops(tasks: &[TaskSpec], ids: &[BufId]) -> Vec<OpRecord> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let reads: Vec<BufId> = t.reads.iter().map(|&r| ids[r]).collect();
            OpRecord {
                name: format!("task{i}"),
                kind: OpKind::ElementWise,
                category: Category::Gelu,
                phase: Phase::Forward,
                layer: None,
                gemm: None,
                flops: 1,
                bytes_read: 4,
                bytes_written: 4,
                dtype: DType::F32,
                access: AccessSet::new(&reads, &[ids[t.write]]),
            }
        })
        .collect()
}

/// Run the DAG once under the current pool configuration. Each task's
/// arithmetic depends on every buffer it reads, so any mis-ordered pair of
/// conflicting tasks changes the final bits. Returns the final buffer
/// contents and the completion order the executor emitted.
fn execute(tasks: &[TaskSpec], ids: &[BufId]) -> (Vec<f32>, Vec<usize>) {
    #[allow(clippy::cast_precision_loss)]
    let cells: Vec<Mutex<f32>> =
        (0..ids.len()).map(|i| Mutex::new(0.125 * (i as f32 + 1.0))).collect();
    let mut graph = TaskGraph::new();
    for (i, t) in tasks.iter().enumerate() {
        let reads: Vec<BufId> = t.reads.iter().map(|&r| ids[r]).collect();
        let spec = t.clone();
        let cells = &cells;
        #[allow(clippy::cast_precision_loss)]
        graph.submit(format!("task{i}"), AccessSet::new(&reads, &[ids[t.write]]), move |_| {
            let mut acc = 0.0625 * (i as f32 + 1.0);
            for &r in &spec.reads {
                acc = acc.mul_add(1.001, *cells[r].lock().expect("cell"));
            }
            *cells[spec.write].lock().expect("cell") = acc;
        });
    }
    let order = graph.run(&mut Tracer::disabled()).completion_order;
    let vals = cells.iter().map(|c| *c.lock().expect("cell")).collect();
    (vals, order)
}

fn bits(vals: &[f32]) -> Vec<u32> {
    vals.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole's determinism claim, end to end: a random DAG scheduled
    /// at 1, 2 and 8 threads produces bit-identical buffers, and every
    /// emitted completion order is hazard-clean under H001–H005.
    #[test]
    fn random_dags_are_bit_identical_and_hazard_clean(
        n_tasks in 2usize..14,
        n_bufs in 2usize..7,
        seed in 0u64..10_000,
    ) {
        let tasks = gen_tasks(n_tasks, n_bufs, seed);
        let ids: Vec<BufId> = (0..n_bufs).map(|_| BufId::fresh()).collect();
        let ops = mirror_ops(&tasks, &ids);
        let graph = DepGraph::build(&ops);

        let (base, base_order) = pool::with_threads(1, || execute(&tasks, &ids));
        for v in &base {
            prop_assert!(v.is_finite(), "non-finite value from serial run");
        }
        let mut orders = vec![(1usize, base_order)];
        for threads in [2usize, 8] {
            let (vals, order) = pool::with_threads(threads, || execute(&tasks, &ids));
            prop_assert_eq!(
                bits(&vals),
                bits(&base),
                "buffers diverged at {} threads (seed {})",
                threads,
                seed
            );
            orders.push((threads, order));
        }
        for (threads, order) in orders {
            let sched = Schedule::from_completion_order(&order);
            let findings = check_schedule(&ops, &graph, &sched, "emitted");
            prop_assert!(
                !has_errors(&findings),
                "hazards in emitted order at {} threads (seed {}):\n{}",
                threads,
                seed,
                report(&findings)
            );
        }
    }
}

/// A diamond with a WAW tail pins down the exact semantics once, outside
/// the sampled space: the join must observe both arms, and the tail's
/// overwrite must land last.
#[test]
fn diamond_with_waw_tail_matches_serial_order() {
    let tasks = vec![
        TaskSpec { reads: vec![], write: 0 },
        TaskSpec { reads: vec![0], write: 1 },
        TaskSpec { reads: vec![0], write: 2 },
        TaskSpec { reads: vec![1, 2], write: 3 },
        TaskSpec { reads: vec![], write: 3 },
    ];
    let ids: Vec<BufId> = (0..4).map(|_| BufId::fresh()).collect();
    let (base, _) = pool::with_threads(1, || execute(&tasks, &ids));
    for threads in [2usize, 8] {
        let (vals, order) = pool::with_threads(threads, || execute(&tasks, &ids));
        assert_eq!(bits(&vals), bits(&base), "diamond diverged at {threads} threads");
        let last = *order.last().expect("non-empty order");
        assert_eq!(last, 4, "the WAW tail must retire after the join it overwrites");
    }
}
