//! Quantitative paper claims checked end-to-end against the reproduction.
//!
//! Each test corresponds to a numbered observation/takeaway or an evaluation
//! number from the paper text; EXPERIMENTS.md tabulates the same
//! comparisons.

use bertscope::prelude::*;

#[test]
fn table1_all_findings_hold() {
    let findings = derive_findings(&GpuModel::mi100());
    let failing: Vec<String> = findings
        .iter()
        .filter(|f| !f.holds)
        .map(|f| format!("{}: measured {}", f.id, f.measured))
        .collect();
    assert!(failing.is_empty(), "failing findings:\n{}", failing.join("\n"));
}

#[test]
fn obs1_transformer_dominates_68_to_85_pct() {
    let gpu = GpuModel::mi100();
    for pt in figure3_sweep(&gpu) {
        let f = pt.profile.group_fraction(Group::Transformer);
        assert!((0.60..0.93).contains(&f), "{}: {f}", pt.label);
    }
}

#[test]
fn takeaway1_lamb_band_matches_paper() {
    // Paper: 7-10% at Ph1-B32-FP32, ~25% at Ph1-B4-FP32.
    let gpu = GpuModel::mi100();
    let b32 = NamedConfig::phase_batch(1, 32, false).simulate(&gpu).group_fraction(Group::Lamb);
    let b4 = NamedConfig::phase_batch(1, 4, false).simulate(&gpu).group_fraction(Group::Lamb);
    assert!((0.05..0.12).contains(&b32), "B32 LAMB {b32}");
    assert!((0.18..0.33).contains(&b4), "B4 LAMB {b4}");
}

#[test]
fn takeaway2_mixed_precision_lamb_16_to_19_pct() {
    let gpu = GpuModel::mi100();
    let mp = NamedConfig::phase_batch(1, 32, true).simulate(&gpu).group_fraction(Group::Lamb);
    assert!((0.13..0.24).contains(&mp), "MP LAMB {mp}");
}

#[test]
fn fwd_bwd_speedup_from_mixed_precision_is_about_2x() {
    // Paper §3.2.1: FWD and BWD speed up ~2x under MP while LAMB stays flat.
    let gpu = GpuModel::mi100();
    let f32p = NamedConfig::phase_batch(1, 32, false).simulate(&gpu);
    let mpp = NamedConfig::phase_batch(1, 32, true).simulate(&gpu);
    let non_lamb = |p: &IterationProfile| {
        p.total_us() - p.time_by_group().get(&Group::Lamb).copied().unwrap_or(0.0)
    };
    let speedup = non_lamb(&f32p) / non_lamb(&mpp);
    assert!((1.8..3.5).contains(&speedup), "FWD+BWD MP speedup {speedup}");
    let lamb32 = f32p.time_by_group()[&Group::Lamb];
    let lamb16 = mpp.time_by_group()[&Group::Lamb];
    assert!((lamb32 - lamb16).abs() / lamb32 < 1e-6, "LAMB runtime unchanged under MP");
}

#[test]
fn nongemm_kernels_speed_up_1_5_to_1_9x_under_mp() {
    // Paper §3.2.3: memory-bound kernels gain 1.5-1.9x from halved traffic.
    let gpu = GpuModel::mi100();
    let f32p = NamedConfig::phase_batch(1, 32, false).simulate(&gpu);
    let mpp = NamedConfig::phase_batch(1, 32, true).simulate(&gpu);
    for cat in [Category::Gelu, Category::DropResidualNorm, Category::ScaleMaskSoftmaxDropout] {
        let t32 = f32p.time_by_category()[&cat];
        let t16 = mpp.time_by_category()[&cat];
        let s = t32 / t16;
        assert!((1.4..2.0).contains(&s), "{cat}: MP speedup {s}");
    }
}

#[test]
fn takeaway10_attention_share_roughly_doubles_at_n512() {
    // Paper: 7% -> 17% for attention ops; 3% -> 8% for B-GEMMs, at matched
    // token count (n=128,B=16 vs n=512,B=4).
    let gpu = GpuModel::mi100();
    let short = NamedConfig::phase_batch(1, 16, false).simulate(&gpu);
    let long = NamedConfig::phase_batch(2, 4, false).simulate(&gpu);
    let attn = |p: &IterationProfile| {
        p.category_fraction(Category::AttnBgemm)
            + p.category_fraction(Category::ScaleMaskSoftmaxDropout)
    };
    assert!(attn(&long) / attn(&short) > 1.8, "{} vs {}", attn(&long), attn(&short));
    let bg = |p: &IterationProfile| p.category_fraction(Category::AttnBgemm);
    assert!(bg(&long) / bg(&short) > 1.8);
}

#[test]
fn section4_checkpointing_33pct_kernels_27pct_runtime() {
    let s =
        checkpoint_study(&BertConfig::bert_large(), &GraphOptions::default(), &GpuModel::mi100());
    assert!((0.25..0.45).contains(&s.kernel_increase), "kernels +{}", s.kernel_increase);
    assert!((0.15..0.40).contains(&s.runtime_increase), "runtime +{}", s.runtime_increase);
    assert!(s.lamb_share_checkpointed < s.lamb_share_base);
}

#[test]
fn section621_nmc_reaches_paper_range_over_configs() {
    // Paper: LAMB 3.8x; 5-22% end-to-end. Our configurations span a
    // comparable range.
    let gpu = GpuModel::mi100();
    let nm = NmcModel::hbm2_per_bank();
    let mut improvements = Vec::new();
    for (cfg, precision) in [
        (BertConfig::bert_large(), Precision::Fp32),
        (BertConfig::bert_large().phase1(4), Precision::Fp32),
        (BertConfig::bert_large(), Precision::Mixed),
    ] {
        let s = nmc_study(&cfg, &GraphOptions { precision, ..GraphOptions::default() }, &gpu, &nm);
        assert!(
            (3.0..4.5).contains(&s.lamb_speedup_vs_optimistic_gpu),
            "LAMB speedup {}",
            s.lamb_speedup_vs_optimistic_gpu
        );
        improvements.push(s.end_to_end_improvement);
    }
    let min = improvements.iter().copied().fold(f64::INFINITY, f64::min);
    let max = improvements.iter().copied().fold(0.0f64, f64::max);
    assert!(min > 0.03, "low end {min}");
    assert!(max > 0.12, "high end {max}");
}

#[test]
fn fig12b_qkv_fusion_reaches_paper_magnitude() {
    // Paper: fusion improves performance by up to 62%, more for small inputs.
    let gpu = GpuModel::mi100();
    let pts = figure12b_study(&gpu, &[1, 4, 32]);
    assert!(pts[0].fwd_speedup >= pts[2].fwd_speedup);
    assert!(pts[0].fwd_speedup > 1.5, "small-input speedup {}", pts[0].fwd_speedup);
    assert!(pts[2].fwd_speedup > 1.0);
}

#[test]
fn fine_tuning_style_iteration_keeps_transformer_dominance() {
    // Paper §7: fine-tuning has a simpler output layer but the Transformer
    // layers still dominate. Model it as an iteration without the MLM
    // decoder cost by comparing output-light vs full configurations.
    let gpu = GpuModel::mi100();
    let p = simulate_iteration(
        &BertConfig::bert_large(),
        &GraphOptions { optimizer: OptimizerChoice::Lamb, ..GraphOptions::default() },
        &gpu,
    );
    // Even with the (pre-training) output head included, transformer >> output.
    assert!(p.group_fraction(Group::Transformer) > 8.0 * p.group_fraction(Group::Output));
}

#[test]
fn inference_iteration_has_no_update_phase() {
    // Paper §7: inference drops backprop and LAMB.
    let ops = build_iteration(
        &BertConfig::bert_large(),
        &GraphOptions { optimizer: OptimizerChoice::None, ..GraphOptions::default() },
    );
    assert!(ops.iter().all(|o| o.phase != Phase::Update));
}

#[test]
fn compute_scaling_amplifies_memory_boundedness() {
    // Paper §7: "since compute generally improves faster than memory,
    // takeaways involving memory boundedness will hold or be amplified".
    let gpu = GpuModel::mi100();
    let future = gpu.scaled_compute(4.0);
    let now = NamedConfig::phase_batch(1, 32, false).simulate(&gpu);
    let later = NamedConfig::phase_batch(1, 32, false).simulate(&future);
    assert!(later.gemm_fraction() < now.gemm_fraction(), "GEMM share shrinks as compute scales");
    assert!(
        later.group_fraction(Group::Lamb) > now.group_fraction(Group::Lamb),
        "LAMB share grows as compute scales"
    );
}
