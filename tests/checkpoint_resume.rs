//! Checkpoint/resume integration tests: a full training-state checkpoint
//! (weights, optimizer moments, loss-scaler state, step counters), pushed
//! through its binary serialization, must continue *bit-exactly* — every
//! subsequent loss and every parameter identical to the uninterrupted run.

use bertscope_model::{BertConfig, Precision};
use bertscope_tensor::Tracer;
use bertscope_train::{
    Bert, Lamb, LossScaler, SyntheticCorpus, TrainCheckpoint, TrainOptions, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg() -> BertConfig {
    BertConfig {
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 101,
        max_position: 24,
        seq_len: 16,
        batch: 4,
    }
}

/// Run `steps` micro-steps, returning each step's loss.
fn drive(
    trainer: &mut Trainer<Lamb>,
    bert: &mut Bert,
    batches: &[bertscope_train::PretrainBatch],
    steps: usize,
    offset: usize,
) -> Vec<f32> {
    let mut tr = Tracer::disabled();
    (0..steps)
        .map(|i| {
            let batch = &batches[(offset + i) % batches.len()];
            let (out, _) = trainer.micro_step(&mut tr, bert, batch).expect("clean run");
            out.loss
        })
        .collect()
}

fn resume_is_bit_exact(precision: Precision, scaler: fn() -> LossScaler, seed: u64) {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(seed);
    let batches: Vec<_> = (0..3).map(|_| corpus.generate_batch(&mut rng, &cfg)).collect();
    let opts = TrainOptions { precision, ..TrainOptions::default() };

    // Reference: 4 + 6 uninterrupted micro-steps (k=2 accumulation).
    let mut ref_bert = Bert::new(cfg, opts, 33);
    let mut ref_trainer = Trainer::new(Lamb::new(0.02), 2).with_scaler(scaler());
    drive(&mut ref_trainer, &mut ref_bert, &batches, 4, 0);
    let ref_losses = drive(&mut ref_trainer, &mut ref_bert, &batches, 6, 4);

    // Interrupted run: same 4 steps, checkpoint at the window boundary,
    // serialize through the binary format, restore into a *differently
    // seeded* model (proving every weight comes from the checkpoint).
    let mut bert = Bert::new(cfg, opts, 33);
    let mut trainer = Trainer::new(Lamb::new(0.02), 2).with_scaler(scaler());
    drive(&mut trainer, &mut bert, &batches, 4, 0);
    let ckpt = trainer.checkpoint(&mut bert).expect("window boundary");
    let bytes = ckpt.to_bytes();
    drop((trainer, bert, ckpt));

    let restored = TrainCheckpoint::read_from(&mut bytes.as_slice()).expect("well-formed bytes");
    let mut bert2 = Bert::new(cfg, opts, 777); // different init, fully overwritten
    let mut trainer2 = Trainer::new(Lamb::new(0.02), 2).with_scaler(scaler());
    trainer2.restore(&restored, &mut bert2).expect("restore");
    assert_eq!(trainer2.micro_steps(), 4);
    assert_eq!(trainer2.updates(), 2);

    let resumed_losses = drive(&mut trainer2, &mut bert2, &batches, 6, 4);
    assert_eq!(ref_losses, resumed_losses, "resumed losses must be bit-identical");

    // And the final parameters agree bit-for-bit as well.
    let ref_params = ref_bert.param_values_mut();
    let res_params = bert2.param_values_mut();
    assert_eq!(ref_params.len(), res_params.len());
    for ((name_a, a), (name_b, b)) in ref_params.iter().zip(&res_params) {
        assert_eq!(name_a, name_b);
        assert_eq!(a.as_slice(), b.as_slice(), "{name_a} diverged after resume");
    }
}

#[test]
fn fp32_resume_is_bit_exact() {
    resume_is_bit_exact(Precision::Fp32, LossScaler::none, 61);
}

#[test]
fn mixed_precision_resume_is_bit_exact() {
    resume_is_bit_exact(Precision::Mixed, || LossScaler::dynamic(512.0), 67);
}

#[test]
fn restore_rejects_a_mismatched_model() {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(71);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut bert = Bert::new(cfg, TrainOptions::default(), 5);
    let mut trainer = Trainer::new(Lamb::new(0.02), 1);
    let mut tr = Tracer::disabled();
    trainer.micro_step(&mut tr, &mut bert, &batch).expect("clean step");
    let ckpt = trainer.checkpoint(&mut bert).expect("boundary");

    // A model with a different width has differently-shaped parameters.
    let other_cfg = BertConfig { d_model: 64, d_ff: 128, ..small_cfg() };
    let mut other = Bert::new(other_cfg, TrainOptions::default(), 5);
    let mut other_trainer = Trainer::new(Lamb::new(0.02), 1);
    let err = other_trainer.restore(&ckpt, &mut other).expect_err("shape mismatch");
    assert!(err.to_string().contains("checkpoint"), "{err}");
}
