//! Whole-model task-graph execution, verified from the outside: recording
//! the full training step (and the inference pass) as a scheduled DAG must
//! change *when* work runs, never *what* it computes — at any worker
//! count, at either task grain, and with the fusion pass on.
//!
//! The fusion pass itself is pinned through `Bert::plan_eval_fusion`: at
//! op grain the plan must merge both legal patterns (FC1→GeLU and
//! residual→LayerNorm), and at layer grain it must merge nothing.

use bertscope_model::BertConfig;
use bertscope_tensor::{pool, Tracer};
use bertscope_train::{Bert, Lamb, SyntheticCorpus, TaskGrain, TrainOptions, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two structurally different configurations: the canonical tiny BERT and
/// an asymmetric deeper one (odd vocab, layers not a power of two) so the
/// graph's task layout is exercised beyond one shape.
fn configs() -> Vec<BertConfig> {
    vec![
        BertConfig::tiny(),
        BertConfig {
            layers: 3,
            d_model: 48,
            heads: 6,
            d_ff: 96,
            vocab: 131,
            max_position: 40,
            seq_len: 20,
            batch: 3,
        },
    ]
}

/// Run a few optimizer updates and return every loss and parameter bit.
fn run_training(cfg: BertConfig, opts: TrainOptions) -> (Vec<u32>, Vec<u32>) {
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(17);
    let batches: Vec<_> = (0..2).map(|_| corpus.generate_batch(&mut rng, &cfg)).collect();
    let mut bert = Bert::new(cfg, opts, 9);
    let mut trainer = Trainer::new(Lamb::new(0.01), 1);
    let mut tr = Tracer::disabled();
    let mut losses = Vec::new();
    for step in 0..3 {
        let (out, _) = trainer
            .micro_step(&mut tr, &mut bert, &batches[step % batches.len()])
            .expect("micro step");
        losses.push(out.loss.to_bits());
    }
    let params = bert
        .param_values_mut()
        .iter()
        .flat_map(|(_, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    (losses, params)
}

/// The tentpole bit-identity claim: for two configurations, the micro-step
/// driven through the whole-model task graph (Trainer + LAMB included)
/// leaves exactly the losses and parameter bits of the eager 1-thread
/// reference, at 1, 2 and 8 worker threads.
#[test]
fn graph_training_is_bit_identical_to_eager_across_threads_and_configs() {
    for cfg in configs() {
        let base = pool::with_threads(1, || run_training(cfg, TrainOptions::default()));
        for threads in [1usize, 2, 8] {
            let graphed = pool::with_threads(threads, || {
                run_training(cfg, TrainOptions { graph: true, ..TrainOptions::default() })
            });
            assert_eq!(
                graphed, base,
                "graph-mode training diverged from eager at {threads} threads \
                 ({} layers, d_model {})",
                cfg.layers, cfg.d_model
            );
        }
    }
}

/// Op-grain recording (one task per forward stage) computes the same bits
/// as eager; checkpointing composes too (it forces layer grain for the
/// recompute segments).
#[test]
fn op_grain_and_checkpointed_graph_training_match_eager() {
    let cfg = BertConfig::tiny();
    let variants = [
        TrainOptions { graph: true, grain: TaskGrain::Op, ..TrainOptions::default() },
        TrainOptions { graph: true, checkpoint: true, ..TrainOptions::default() },
    ];
    let eager_plain = pool::with_threads(1, || run_training(cfg, TrainOptions::default()));
    let eager_ckpt = pool::with_threads(1, || {
        run_training(cfg, TrainOptions { checkpoint: true, ..TrainOptions::default() })
    });
    for opts in variants {
        let reference = if opts.checkpoint { &eager_ckpt } else { &eager_plain };
        for threads in [1usize, 2, 8] {
            let graphed = pool::with_threads(threads, || run_training(cfg, opts));
            assert_eq!(
                &graphed, reference,
                "graph variant (grain {:?}, checkpoint {}) diverged at {threads} threads",
                opts.grain, opts.checkpoint
            );
        }
    }
}

/// Inference through the fused graph: the fusion pass merges task pairs
/// but every loss and accuracy bit matches the eager evaluation, at every
/// thread count.
#[test]
fn fused_graph_evaluation_matches_eager_across_threads() {
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(23);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let eager = Bert::new(cfg, TrainOptions::default(), 9);
    let mut tr = Tracer::disabled();
    let base = eager.evaluate(&mut tr, &batch).expect("eager evaluate");
    for threads in [1usize, 2, 8] {
        for fuse in [false, true] {
            let opts =
                TrainOptions { graph: true, grain: TaskGrain::Op, fuse, ..TrainOptions::default() };
            let graphed = Bert::new(cfg, opts, 9);
            let out = pool::with_threads(threads, || {
                let mut tr = Tracer::disabled();
                graphed.evaluate(&mut tr, &batch).expect("graph evaluate")
            });
            assert_eq!(base.mlm_loss.to_bits(), out.mlm_loss.to_bits(), "fuse={fuse}");
            assert_eq!(base.nsp_loss.to_bits(), out.nsp_loss.to_bits(), "fuse={fuse}");
            assert_eq!(base.mlm_accuracy.to_bits(), out.mlm_accuracy.to_bits(), "fuse={fuse}");
            assert_eq!(base.nsp_accuracy.to_bits(), out.nsp_accuracy.to_bits(), "fuse={fuse}");
        }
    }
}

/// The fusion plan merges both distinct task-pair patterns — FC1→GeLU and
/// residual→LayerNorm — on every layer at op grain, and nothing at layer
/// grain (no label matches a pattern there).
#[test]
fn eval_fusion_plan_pins_both_patterns() {
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(29);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts =
        TrainOptions { graph: true, grain: TaskGrain::Op, fuse: true, ..TrainOptions::default() };
    let bert = Bert::new(cfg, opts, 9);
    let plan = bert.plan_eval_fusion(&batch).expect("fusion plan");
    // fc1+gelu, residual1+layernorm1, residual2+layernorm2 per layer.
    assert_eq!(plan.pairs_merged(), 3 * cfg.layers, "fused groups: {:?}", plan.fused);
    assert!(
        plan.fused.iter().any(|l| l.contains("fc1") && l.contains("gelu")),
        "FC1+GeLU pattern missing: {:?}",
        plan.fused
    );
    assert!(
        plan.fused.iter().any(|l| l.contains("residual") && l.contains("layernorm")),
        "residual+LayerNorm pattern missing: {:?}",
        plan.fused
    );
    let coarse = Bert::new(cfg, TrainOptions { graph: true, ..TrainOptions::default() }, 9);
    assert_eq!(
        coarse.plan_eval_fusion(&batch).expect("coarse plan").pairs_merged(),
        0,
        "layer-grain graphs have nothing to fuse"
    );
}
