//! Backward/AllReduce overlap, verified from the outside: the deferred
//! scheduler must change *when* work runs, never *what* it computes, and
//! the optimizer must provably wait for each gradient bucket's collective.
//!
//! Two angles:
//!
//! * the deferred micro-step is bit-identical to the eager one at 1, 2 and
//!   8 worker threads — the scheduler buys inter-op parallelism without
//!   touching numerics;
//! * a live overlapped trace (observer-fired buckets, per-bucket `Comm`
//!   ops, presynced close) passes the H005 communication contract — no
//!   update-phase op reads a gradient buffer before the bucket collective
//!   that reduces it — and the same checker flags a deliberately reordered
//!   version of that trace, so the pass is not vacuous.

use bertscope_check::{check_comm_ordering, has_errors, report};
use bertscope_model::BertConfig;
use bertscope_tensor::{
    pool, AccessSet, BufId, Category, DType, OpKind, OpRecord, Phase, Tensor, Tracer,
};
use bertscope_train::{
    Bert, BucketSink, BucketedAverager, Lamb, SyntheticCorpus, TrainOptions, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

fn small_cfg() -> BertConfig {
    BertConfig {
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 101,
        max_position: 24,
        seq_len: 16,
        batch: 4,
    }
}

fn param_bits(bert: &mut Bert) -> Vec<u32> {
    bert.param_values_mut()
        .iter()
        .flat_map(|(_, t)| t.as_slice().iter().map(|v| v.to_bits()))
        .collect()
}

/// Train a few windows under the given options and return the final
/// parameter bits.
fn run_params_with(opts: TrainOptions) -> Vec<u32> {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(11);
    let batches: Vec<_> = (0..2).map(|_| corpus.generate_batch(&mut rng, &cfg)).collect();
    let mut bert = Bert::new(cfg, opts, 7);
    let mut trainer = Trainer::new(Lamb::new(0.01), 2);
    let mut tr = Tracer::disabled();
    for step in 0..4 {
        let (out, _) = trainer
            .micro_step(&mut tr, &mut bert, &batches[step % batches.len()])
            .expect("micro step");
        assert!(out.loss.is_finite(), "step {step} diverged");
    }
    param_bits(&mut bert)
}

fn run_params(deferred: bool) -> Vec<u32> {
    run_params_with(TrainOptions { deferred, ..TrainOptions::default() })
}

/// Deferred execution is a scheduling change only: at every thread count
/// the deferred micro-step leaves the exact parameter bits the eager
/// 1-thread reference run does.
#[test]
fn deferred_micro_step_is_bit_identical_to_eager_across_threads() {
    let base = pool::with_threads(1, || run_params(false));
    for threads in [1usize, 2, 8] {
        let deferred = pool::with_threads(threads, || run_params(true));
        assert_eq!(
            deferred, base,
            "deferred micro-step diverged from the eager reference at {threads} threads"
        );
    }
}

/// Whole-model task-graph execution composes with the overlap machinery:
/// recording the full step as a DAG (with and without the deferred flag
/// that the distributed worker pairs it with) leaves the exact parameter
/// bits of the eager 1-thread reference at every thread count.
#[test]
fn graph_micro_step_is_bit_identical_to_eager_across_threads() {
    let base = pool::with_threads(1, || run_params(false));
    for threads in [1usize, 2, 8] {
        for deferred in [false, true] {
            let graphed = pool::with_threads(threads, || {
                run_params_with(TrainOptions { graph: true, deferred, ..TrainOptions::default() })
            });
            assert_eq!(
                graphed, base,
                "graph-mode micro-step diverged at {threads} threads (deferred={deferred})"
            );
        }
    }
}

/// Under graph execution the observer fires from inside backward tasks,
/// but the dy dataflow serializes the chain — so the bucket sequence (and
/// every payload) must be exactly the eager one. This is the precondition
/// for ring collectives: all ranks enter bucket AllReduces in one order.
#[test]
fn graph_mode_buckets_fire_in_eager_order() {
    let fire = |graph: bool| {
        let cfg = small_cfg();
        let corpus = SyntheticCorpus::new(cfg.vocab);
        let mut rng = StdRng::seed_from_u64(13);
        let batch = corpus.generate_batch(&mut rng, &cfg);
        let opts = TrainOptions { graph, ..TrainOptions::default() };
        let mut bert = Bert::new(cfg, opts, 3);
        let mut trainer = Trainer::new(Lamb::new(0.01), 1);
        let lens: Vec<usize> =
            bert.param_values_mut().iter().map(|(_, t)| t.as_slice().len()).collect();
        let mut averager = BucketedAverager::new(&lens, 4096, Collect::default());
        let mut tracer = Tracer::disabled();
        trainer
            .micro_step_observed(&mut tracer, &mut bert, &batch, &mut averager)
            .expect("observed micro step");
        averager.into_sink().fired
    };
    let eager = fire(false);
    let graphed = fire(true);
    assert!(!eager.is_empty(), "buckets must fire");
    assert_eq!(eager.len(), graphed.len());
    for (e, g) in eager.iter().zip(&graphed) {
        assert_eq!(e.0, g.0, "bucket order diverged");
        assert_eq!(e.1, g.1, "bucket range diverged");
        let (eb, gb): (Vec<u32>, Vec<u32>) =
            (e.2.iter().map(|v| v.to_bits()).collect(), g.2.iter().map(|v| v.to_bits()).collect());
        assert_eq!(eb, gb, "bucket {} payload diverged bitwise", e.0);
    }
}

#[derive(Default)]
struct Collect {
    fired: Vec<(usize, Range<usize>, Vec<f32>)>,
}

impl BucketSink for Collect {
    fn bucket_ready(&mut self, bucket: usize, range: Range<usize>, data: &[f32]) {
        self.fired.push((bucket, range, data.to_vec()));
    }
}

/// The H005 contract on a live overlapped trace: drive the same
/// observer → bucket → per-bucket `Comm` op → presynced-close sequence the
/// distributed worker uses (world of one, so "synced" is the averaged
/// gradient itself), then assert no optimizer op reads a gradient buffer
/// before the bucket collective that reduces it — and that moving the
/// collectives after the optimizer makes the same checker fail.
#[test]
fn optimizer_never_starts_before_its_buckets_allreduce_retires() {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(13);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts = TrainOptions { deferred: true, ..TrainOptions::default() };
    let mut bert = Bert::new(cfg, opts, 3);
    let mut trainer = Trainer::new(Lamb::new(0.01), 1);
    let mut tracer = Tracer::new();

    let (dims, lens): (Vec<Vec<usize>>, Vec<usize>) = bert
        .param_values_mut()
        .iter()
        .map(|(_, t)| (t.dims().to_vec(), t.as_slice().len()))
        .unzip();
    let mut averager = BucketedAverager::new(&lens, 4096, Collect::default());
    let n_buckets = averager.bucket_ranges().len();
    assert!(n_buckets > 1, "config too small to exercise bucketing: {n_buckets} bucket(s)");

    let (_, window_full) = trainer
        .micro_step_observed(&mut tracer, &mut bert, &batch, &mut averager)
        .expect("observed micro step");
    assert!(window_full, "accumulation of one closes every window");
    let sink = averager.into_sink();
    assert_eq!(sink.fired.len(), n_buckets, "every bucket must fire during backward");

    // Reassemble the fired buckets into canonical per-slot tensors, exactly
    // as the distributed worker does after its comm thread drains.
    let total: usize = lens.iter().sum();
    let mut flat = vec![0.0f32; total];
    for (_, range, data) in &sink.fired {
        flat[range.clone()].copy_from_slice(data);
    }
    let mut offsets = vec![0usize];
    for &len in &lens {
        offsets.push(offsets.last().expect("non-empty") + len);
    }
    let averaged: Vec<Tensor> = dims
        .iter()
        .zip(offsets.windows(2))
        .map(|(d, w)| Tensor::from_vec(flat[w[0]..w[1]].to_vec(), d).expect("slot shape"))
        .collect();

    // One Comm op per bucket over the gradient tensors it covers, recorded
    // before the optimizer reads them.
    for (b, range, _) in &sink.fired {
        let ids: Vec<BufId> = averaged
            .iter()
            .zip(offsets.windows(2))
            .filter(|(_, w)| w[0] < range.end && range.start < w[1])
            .map(|(t, _)| t.buf_id())
            .collect();
        tracer.record(OpRecord {
            name: format!("test.allreduce.bucket{b}"),
            kind: OpKind::Comm,
            category: Category::Comm,
            phase: Phase::Communication,
            layer: None,
            gemm: None,
            flops: range.len() as u64,
            bytes_read: 4 * range.len() as u64,
            bytes_written: 4 * range.len() as u64,
            dtype: DType::F32,
            access: AccessSet { reads: ids.clone(), writes: ids, allocs: vec![], frees: vec![] },
        });
    }
    trainer.close_window_presynced(&mut tracer, &mut bert, averaged).expect("presynced close");

    let records = tracer.records();
    let comm_ops = records.iter().filter(|o| o.kind == OpKind::Comm).count();
    let update_ops = records.iter().filter(|o| o.phase == Phase::Update).count();
    assert_eq!(comm_ops, n_buckets, "one collective per bucket on the trace");
    assert!(update_ops > 0, "the presynced close must trace optimizer ops");

    let findings = check_comm_ordering(records);
    assert!(
        !has_errors(&findings),
        "H005 violated on the live overlapped trace:\n{}",
        report(&findings)
    );

    // Teeth check: the same trace with the collectives pushed after the
    // optimizer must fail — the checker is actually watching this order.
    let mut reordered: Vec<OpRecord> =
        records.iter().filter(|o| o.kind != OpKind::Comm).cloned().collect();
    reordered.extend(records.iter().filter(|o| o.kind == OpKind::Comm).cloned());
    assert!(
        has_errors(&check_comm_ordering(&reordered)),
        "reordering collectives after the optimizer must trip H005"
    );
}
