//! The suite's central cross-validation: executing one real training step
//! must produce exactly the operation stream the analytic graph predicts.
//!
//! Every figure in the reproduction is driven by the analytic graph
//! (`bertscope_model::build_iteration`); this test pins that graph to the
//! executable substrate (`bertscope_train`) — our equivalent of the paper
//! validating its analytical model against rocProf measurements (§5.1-5.2).

use bertscope_model::{build_iteration, BertConfig, GraphOptions, OptimizerChoice, Precision};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase, Tracer};
use bertscope_train::{Bert, Lamb, SyntheticCorpus, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The comparable signature of an op: everything except its name and layer
/// attribution (names differ cosmetically between the two producers).
type Sig = (OpKind, Category, Phase, u64, u64, u64, DType);

fn signature(op: &OpRecord) -> Sig {
    (op.kind, op.category, op.phase, op.flops, op.bytes_read, op.bytes_written, op.dtype)
}

fn executed_trace(cfg: BertConfig, opts: TrainOptions) -> Vec<OpRecord> {
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(7);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut bert = Bert::new(cfg, opts, 3);
    let mut tracer = Tracer::new();
    bert.train_step(&mut tracer, &batch).expect("train step");
    // The optimizer contributes the update-phase kernels.
    let mut opt = Lamb::new(0.001);
    opt.grad_scale = opts.loss_scale;
    let mut slots = bert.param_slots();
    opt.step(&mut tracer, &mut slots);
    tracer
        .into_records()
        .into_iter()
        .filter(|r| r.kind != OpKind::Copy) // the graph does not model copies
        .collect()
}

fn compare(cfg: BertConfig, train_opts: TrainOptions, graph_opts: GraphOptions) {
    let trace = executed_trace(cfg, train_opts);
    let graph = build_iteration(&cfg, &graph_opts);
    assert_eq!(
        trace.len(),
        graph.len(),
        "kernel counts diverge: executed {} vs analytic {}",
        trace.len(),
        graph.len()
    );
    for (i, (t, g)) in trace.iter().zip(&graph).enumerate() {
        assert_eq!(
            signature(t),
            signature(g),
            "op #{i} diverges:\n  executed: {} {:?}\n  analytic: {} {:?}",
            t.name,
            signature(t),
            g.name,
            signature(g)
        );
        // GEMM specs must agree exactly (dims and transposes) — Table 2b.
        assert_eq!(t.gemm, g.gemm, "op #{i} GEMM spec: {} vs {}", t.name, g.name);
    }
}

fn graph_opts(precision: Precision, checkpoint: bool, fused_qkv: bool) -> GraphOptions {
    GraphOptions {
        precision,
        optimizer: OptimizerChoice::Lamb,
        checkpoint,
        fused_qkv,
        // The executable substrate runs the fused GeLU kernel.
        fused_gelu: true,
        fused_epilogue: false,
    }
}

#[test]
fn fp32_trace_matches_graph() {
    compare(BertConfig::tiny(), TrainOptions::default(), graph_opts(Precision::Fp32, false, false));
}

#[test]
fn mixed_precision_trace_matches_graph() {
    compare(
        BertConfig::tiny(),
        TrainOptions { precision: Precision::Mixed, loss_scale: 64.0, ..TrainOptions::default() },
        graph_opts(Precision::Mixed, false, false),
    );
}

#[test]
fn fused_qkv_trace_matches_graph() {
    compare(
        BertConfig::tiny(),
        TrainOptions { fused_qkv: true, ..TrainOptions::default() },
        graph_opts(Precision::Fp32, false, true),
    );
}

#[test]
fn fused_epilogue_trace_matches_graph() {
    // Bias+GeLU folds into FC-1 and scale+mask into the score B-GEMM on
    // both sides; the graph must mirror every epilogue tag exactly.
    compare(
        BertConfig::tiny(),
        TrainOptions { fused_epilogue: true, ..TrainOptions::default() },
        GraphOptions { fused_epilogue: true, ..graph_opts(Precision::Fp32, false, false) },
    );
}

#[test]
fn fused_epilogue_checkpointed_trace_matches_graph() {
    // Recomputed forwards must carry the same fused epilogues as the
    // original forward pass.
    compare(
        BertConfig::tiny(),
        TrainOptions { fused_epilogue: true, checkpoint: true, ..TrainOptions::default() },
        GraphOptions { fused_epilogue: true, ..graph_opts(Precision::Fp32, true, false) },
    );
}

#[test]
fn checkpointed_trace_matches_graph() {
    compare(
        BertConfig::tiny(),
        TrainOptions { checkpoint: true, ..TrainOptions::default() },
        graph_opts(Precision::Fp32, true, false),
    );
}

#[test]
fn a_wider_deeper_config_also_matches() {
    // Different head counts, layer counts and asymmetric dims exercise the
    // shape algebra differently.
    let cfg = BertConfig {
        layers: 3,
        d_model: 48,
        heads: 6,
        d_ff: 96,
        vocab: 131,
        max_position: 40,
        seq_len: 20,
        batch: 3,
    };
    compare(cfg, TrainOptions::default(), graph_opts(Precision::Fp32, false, false));
}

/// The graph-mode projection of a record: everything except buffer
/// provenance. Whole-model task-graph execution passes values between
/// tasks through rendezvous clones, which deep-copy into fresh buffers, so
/// access-set buffer ids legitimately differ from the eager run's; every
/// other facet of the stream — names, kinds, phases, layer attribution,
/// GEMM specs, FLOP/byte counts, dtypes — must be identical, in order.
fn graph_mode_sig(op: &OpRecord) -> (String, Option<usize>, Sig) {
    (op.name.clone(), op.layer, signature(op))
}

/// Whole-model task-graph execution (`TrainOptions::graph`), replayed into
/// the tracer in program (submission) order, must produce the same op
/// stream the eager spine records.
fn graph_trace_matches_eager(opts: TrainOptions) {
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(7);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut eager = Bert::new(cfg, opts, 3);
    let mut graphed = Bert::new(cfg, TrainOptions { graph: true, ..opts }, 3);
    let mut tr_e = Tracer::new();
    let mut tr_g = Tracer::new();
    eager.train_step(&mut tr_e, &batch).expect("eager step");
    graphed.train_step(&mut tr_g, &batch).expect("graph step");
    let te = tr_e.into_records();
    let tg = tr_g.into_records();
    assert_eq!(
        te.len(),
        tg.len(),
        "kernel counts diverge: eager {} vs graph {}",
        te.len(),
        tg.len()
    );
    for (i, (e, g)) in te.iter().zip(&tg).enumerate() {
        assert_eq!(
            graph_mode_sig(e),
            graph_mode_sig(g),
            "op #{i} diverges between eager and graph execution"
        );
        assert_eq!(e.gemm, g.gemm, "op #{i} GEMM spec: {} vs {}", e.name, g.name);
    }
}

#[test]
fn whole_model_graph_trace_matches_eager_checkpointed() {
    graph_trace_matches_eager(TrainOptions { checkpoint: true, ..TrainOptions::default() });
}

#[test]
fn whole_model_graph_trace_matches_eager_fused_epilogue() {
    graph_trace_matches_eager(TrainOptions { fused_epilogue: true, ..TrainOptions::default() });
}

#[test]
fn whole_model_graph_trace_matches_eager_at_op_grain() {
    use bertscope_train::TaskGrain;
    graph_trace_matches_eager(TrainOptions { grain: TaskGrain::Op, ..TrainOptions::default() });
}

#[test]
fn trace_and_graph_agree_on_aggregate_flops_and_bytes() {
    let cfg = BertConfig::tiny();
    let trace = executed_trace(cfg, TrainOptions::default());
    let graph = build_iteration(&cfg, &graph_opts(Precision::Fp32, false, false));
    let total = |ops: &[OpRecord]| -> (u64, u64) {
        (ops.iter().map(|o| o.flops).sum(), ops.iter().map(OpRecord::bytes_total).sum())
    };
    assert_eq!(total(&trace), total(&graph));
}
