//! Fault-injection integration tests: the training runtime must survive a
//! poisoned gradient (skip the update, halve the scale, keep converging),
//! the ring collective must fail fast — not hang — on a dead rank, and the
//! static checker's scaler rules (S001/S002) must hold on live traces.

use bertscope_check::{check_stream, report};
use bertscope_model::{BertConfig, Precision};
use bertscope_tensor::{Category, DType, FaultKind, FaultPlan, OpKind, OpRecord, Phase, Tracer};
use bertscope_train::{Bert, Lamb, LossScaler, StepResult, SyntheticCorpus, TrainOptions, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn small_cfg() -> BertConfig {
    BertConfig {
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 101,
        max_position: 24,
        seq_len: 16,
        batch: 4,
    }
}

#[test]
fn injected_inf_gradient_skips_the_step_and_training_recovers() {
    // The acceptance scenario: an Inf lands in a named gradient mid-run.
    // The window must close as SkippedOverflow (no optimizer launch), the
    // dynamic scale must halve, and the run must keep improving afterwards.
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(51);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts = TrainOptions { precision: Precision::Mixed, ..TrainOptions::default() };
    let mut bert = Bert::new(cfg, opts, 9);
    // k=2 accumulation; the fault hits micro-step 4, i.e. the second window.
    let faults = FaultPlan::new().with(4, FaultKind::InfGradient { param: "l0.attn.wq".into() });
    let mut trainer = Trainer::new(Lamb::new(0.03), 2)
        .with_scaler(LossScaler::dynamic(2048.0))
        .with_faults(faults);
    let mut tr = Tracer::disabled();

    let mut results = Vec::new();
    let mut first = 0.0f32;
    let mut last = 0.0f32;
    for step in 0..24 {
        let (out, res) =
            trainer.micro_step(&mut tr, &mut bert, &batch).expect("skip-step policy recovers");
        assert!(out.loss.is_finite(), "micro-step {step} diverged");
        if step == 0 {
            first = out.loss;
        }
        last = out.loss;
        results.push(res);
    }
    assert_eq!(results[1], StepResult::Updated, "window 1 is clean");
    assert_eq!(results[3], StepResult::SkippedOverflow, "window 2 absorbs the Inf");
    assert_eq!(results[5], StepResult::Updated, "window 3 resumes updating");
    assert_eq!(trainer.skipped_updates(), 1);
    assert_eq!(trainer.updates(), 11);
    assert_eq!(trainer.scaler().scale(), 1024.0, "2048 halves to 1024 on overflow");
    assert_eq!(trainer.scaler().overflows(), 1);
    assert!(last < first - 0.3, "training still converges: {first} -> {last}");
}

#[test]
fn killed_allreduce_rank_fails_fast_instead_of_hanging() {
    use bertscope_dist::{ring_allreduce_faulty, AllReduceError};
    let mut bufs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 256]).collect();
    let timeout = Duration::from_millis(250);
    let start = Instant::now();
    let err = ring_allreduce_faulty(&mut bufs, &[FaultKind::KillRank { rank: 1 }], timeout)
        .expect_err("a dead rank must surface as an error");
    let elapsed = start.elapsed();
    assert_eq!(err, AllReduceError::RankKilled { rank: 1 });
    // Worst case is one per-hop timeout on each of the 2(D-1) hops plus
    // scheduling slack; the essential property is a bound, not a deadlock.
    assert!(elapsed < Duration::from_secs(6), "degraded exit took {elapsed:?}");
}

#[test]
fn corrupt_allreduce_segment_surfaces_as_detectable_nan() {
    use bertscope_dist::ring_allreduce_faulty;
    let mut bufs: Vec<Vec<f32>> = (0..3).map(|_| vec![1.0f32; 30]).collect();
    ring_allreduce_faulty(
        &mut bufs,
        &[FaultKind::CorruptSegment { rank: 2, chunk: 0 }],
        Duration::from_secs(5),
    )
    .expect("corruption poisons values, not the protocol");
    // The reduction spreads the NaN to every device — exactly the signal
    // the trainer's finiteness check (and an overflow skip) keys on.
    for (rank, buf) in bufs.iter().enumerate() {
        assert!(buf.iter().any(|v| v.is_nan()), "rank {rank} must see the poisoned segment");
        assert!(buf.iter().any(|v| v.is_finite()), "untouched chunks survive");
    }
}

/// Trace exactly one accumulation window through the fault-tolerant
/// trainer (multi-window traces would trip the one-iteration stream lints).
fn single_window_trace(fault: Option<FaultKind>) -> (Vec<OpRecord>, StepResult) {
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(53);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts = TrainOptions { precision: Precision::Mixed, ..TrainOptions::default() };
    let mut bert = Bert::new(cfg, opts, 13);
    let mut faults = FaultPlan::new();
    if let Some(kind) = fault {
        faults = faults.with(1, kind);
    }
    let mut trainer = Trainer::new(Lamb::new(0.01), 1)
        .with_scaler(LossScaler::dynamic(256.0))
        .with_faults(faults);
    let mut tracer = Tracer::new();
    let (_, res) = trainer.micro_step(&mut tracer, &mut bert, &batch).expect("recoverable");
    (tracer.into_records(), res)
}

#[test]
fn live_clean_window_passes_the_scaler_rules() {
    let (trace, res) = single_window_trace(None);
    assert_eq!(res, StepResult::Updated);
    assert!(trace.iter().any(|r| r.category == Category::LossScale), "scaler ops are traced");
    assert!(trace.iter().any(|r| r.category == Category::LambStage1), "optimizer ran");
    let findings = check_stream(&trace);
    assert!(findings.is_empty(), "{}", report(&findings));
}

#[test]
fn live_overflow_skip_window_passes_the_scaler_rules() {
    let (trace, res) =
        single_window_trace(Some(FaultKind::InfGradient { param: "mlm.dense.weight".into() }));
    assert_eq!(res, StepResult::SkippedOverflow);
    assert!(trace.iter().any(|r| r.name.contains("scaler.overflow")), "skip marker traced");
    assert!(
        !trace.iter().any(|r| matches!(
            r.category,
            Category::GradNorm | Category::LambStage1 | Category::LambStage2
        )),
        "a skipped step launches no optimizer kernels"
    );
    let findings = check_stream(&trace);
    assert!(findings.is_empty(), "{}", report(&findings));
}

#[test]
fn a_doctored_trace_with_an_update_after_overflow_fires_s002() {
    // Take a clean window (which ends in real optimizer kernels) and forge
    // an overflow marker in front of them: the checker must object — an
    // overflowed step that still updates weights is exactly the corruption
    // S002 exists to catch.
    let (trace, _) = single_window_trace(None);
    let first_opt = trace
        .iter()
        .position(|r| r.category == Category::GradNorm || r.category == Category::LambStage1)
        .expect("clean window contains optimizer ops");
    let mut doctored = trace;
    doctored.insert(
        first_opt,
        OpRecord {
            access: Default::default(),
            name: "scaler.overflow.update".into(),
            kind: OpKind::ElementWise,
            category: Category::LossScale,
            phase: Phase::Update,
            layer: None,
            gemm: None,
            flops: 1,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        },
    );
    let findings = check_stream(&doctored);
    assert!(
        findings.iter().any(|f| f.rule.code() == "S002"),
        "expected S002, got: {}",
        report(&findings)
    );
}
