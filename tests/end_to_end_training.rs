//! End-to-end training integration tests: the executable substrate learns,
//! mixed precision and checkpointing behave, and data-parallel replicas
//! trained through the real Ring AllReduce stay synchronized.

use bertscope_dist::ring_allreduce_mean;
use bertscope_model::{BertConfig, Precision};
use bertscope_tensor::{FaultKind, FaultPlan, Tensor, Tracer};
use bertscope_train::{
    Bert, Lamb, LossScaler, ParamSlot, Sgd, SyntheticCorpus, TrainOptions, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg() -> BertConfig {
    BertConfig {
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 101,
        max_position: 24,
        seq_len: 16,
        batch: 4,
    }
}

#[test]
fn mlm_and_nsp_losses_both_improve() {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(5);
    let batches: Vec<_> = (0..3).map(|_| corpus.generate_batch(&mut rng, &cfg)).collect();
    let mut bert = Bert::new(cfg, TrainOptions::default(), 1);
    let mut opt = Lamb::new(0.03);
    let mut tr = Tracer::disabled();
    let steps = 60;
    let mut first = (0.0f32, 0.0f32);
    let mut last = (0.0f32, 0.0f32);
    for step in 0..steps {
        let out = bert.train_step(&mut tr, &batches[step % batches.len()]).unwrap();
        if step < 3 {
            first.0 += out.mlm_loss / 3.0;
            first.1 += out.nsp_loss / 3.0;
        }
        if step >= steps - 3 {
            last.0 += out.mlm_loss / 3.0;
            last.1 += out.nsp_loss / 3.0;
        }
        let mut slots = bert.param_slots();
        opt.step(&mut tr, &mut slots);
    }
    assert!(last.0 < first.0 - 0.5, "MLM loss: {} -> {}", first.0, last.0);
    assert!(last.1 < first.1 - 0.01, "NSP loss: {} -> {}", first.1, last.1);
}

#[test]
fn mixed_precision_training_also_learns() {
    // Mixed precision now runs under the fault-tolerant trainer: a dynamic
    // loss scaler supplies the scale, and an Inf injected into a gradient
    // mid-run must be survivable — the step is skipped, the scale halves,
    // and training keeps converging.
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(6);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts = TrainOptions { precision: Precision::Mixed, ..TrainOptions::default() };
    let mut bert = Bert::new(cfg, opts, 2);
    let faults = FaultPlan::new().with(5, FaultKind::InfGradient { param: "l1.fc2.weight".into() });
    let mut trainer = Trainer::new(Lamb::new(0.03), 1)
        .with_scaler(LossScaler::dynamic(1024.0))
        .with_faults(faults);
    let mut tr = Tracer::disabled();
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..17 {
        let (out, result) =
            trainer.micro_step(&mut tr, &mut bert, &batch).expect("overflow must be recoverable");
        assert!(out.loss.is_finite(), "step {step} diverged");
        if step == 0 {
            first = out.loss;
        }
        if result.updated() {
            last = out.loss;
        }
    }
    assert_eq!(trainer.skipped_updates(), 1, "the injected Inf skips exactly one update");
    assert_eq!(trainer.scaler().scale(), 512.0, "overflow halves the dynamic scale");
    assert_eq!(trainer.updates(), 16);
    assert!(last < first - 0.3, "MP loss: {first} -> {last}");
}

#[test]
fn checkpointed_training_matches_plain_training_over_steps() {
    // The recompute path must be bit-for-bit compatible with saved
    // activations across multiple optimizer updates.
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(8);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut plain = Bert::new(cfg, TrainOptions::default(), 4);
    let mut ckpt = Bert::new(cfg, TrainOptions { checkpoint: true, ..TrainOptions::default() }, 4);
    let mut opt_a = Sgd::new(0.05);
    let mut opt_b = Sgd::new(0.05);
    let mut tr = Tracer::disabled();
    for step in 0..4 {
        let a = plain.train_step(&mut tr, &batch).unwrap();
        let b = ckpt.train_step(&mut tr, &batch).unwrap();
        assert!((a.loss - b.loss).abs() < 1e-4, "step {step}: {} vs {}", a.loss, b.loss);
        let mut sa = plain.param_slots();
        opt_a.step(&mut tr, &mut sa);
        let mut sb = ckpt.param_slots();
        opt_b.step(&mut tr, &mut sb);
    }
}

#[test]
fn data_parallel_replicas_stay_synchronized_through_real_allreduce() {
    // Two model replicas on disjoint batches; gradients averaged with the
    // threaded Ring AllReduce; parameters must remain identical and match a
    // single-model run on the concatenated batch (up to fp error).
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(13);
    let batch_a = corpus.generate_batch(&mut rng, &cfg);
    let batch_b = corpus.generate_batch(&mut rng, &cfg);

    let mut replica_a = Bert::new(cfg, TrainOptions::default(), 21);
    let mut replica_b = Bert::new(cfg, TrainOptions::default(), 21); // same init
    let mut opt_a = Sgd::new(0.05);
    let mut opt_b = Sgd::new(0.05);
    let mut tr = Tracer::disabled();

    for step in 0..3 {
        replica_a.train_step(&mut tr, &batch_a).unwrap();
        replica_b.train_step(&mut tr, &batch_b).unwrap();
        // Gather both replicas' gradients into flat buffers, average them
        // with the real ring AllReduce, and scatter back.
        let ga: Vec<f32> =
            replica_a.param_slots().iter().flat_map(|s| s.grad.as_slice().to_vec()).collect();
        let gb: Vec<f32> =
            replica_b.param_slots().iter().flat_map(|s| s.grad.as_slice().to_vec()).collect();
        let mut bufs = vec![ga, gb];
        ring_allreduce_mean(&mut bufs);
        assert_eq!(bufs[0].len(), bufs[1].len());
        for (x, y) in bufs[0].iter().zip(&bufs[1]) {
            assert!((x - y).abs() < 1e-6, "replicas see identical averaged gradients");
        }
        // Apply the averaged gradients on both replicas.
        let apply = |bert: &mut Bert, avg: &[f32], opt: &mut Sgd| {
            let mut offset = 0;
            let mut slots = bert.param_slots();
            let avg_tensors: Vec<Tensor> = slots
                .iter()
                .map(|s| {
                    let n = s.grad.numel();
                    let t =
                        Tensor::from_vec(avg[offset..offset + n].to_vec(), s.grad.dims()).unwrap();
                    offset += n;
                    t
                })
                .collect();
            let mut avg_slots: Vec<ParamSlot<'_>> = slots
                .iter_mut()
                .zip(&avg_tensors)
                .map(|(s, g)| ParamSlot { name: s.name, value: s.value, grad: g })
                .collect();
            let mut t = Tracer::disabled();
            opt.step(&mut t, &mut avg_slots);
        };
        apply(&mut replica_a, &bufs[0], &mut opt_a);
        apply(&mut replica_b, &bufs[1], &mut opt_b);

        // Replicas remain bit-identical.
        let pa = replica_a.param_slots();
        let pb = replica_b.param_slots();
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(
                a.value.as_slice(),
                b.value.as_slice(),
                "step {step}: {} diverged across replicas",
                a.name
            );
        }
    }
}

#[test]
fn fused_qkv_training_matches_serial_training() {
    // Fusion is an execution-strategy change only: losses and gradients must
    // be numerically identical (paper §6.1.2).
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(31);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut serial = Bert::new(cfg, TrainOptions::default(), 9);
    let mut fused = Bert::new(cfg, TrainOptions { fused_qkv: true, ..TrainOptions::default() }, 9);
    let mut tr = Tracer::disabled();
    let a = serial.train_step(&mut tr, &batch).unwrap();
    let b = fused.train_step(&mut tr, &batch).unwrap();
    assert!((a.loss - b.loss).abs() < 1e-4, "{} vs {}", a.loss, b.loss);
    for (sa, sb) in serial.param_slots().iter().zip(&fused.param_slots()) {
        assert!(
            sa.grad.max_abs_diff(sb.grad).unwrap() < 1e-3,
            "{} gradients diverge between fused and serial QKV",
            sa.name
        );
    }
}

#[test]
fn bf16_training_learns_without_loss_scaling() {
    // bf16 keeps the f32 exponent range, so no loss scaling is required —
    // the "more aggressive quantization" direction the paper projects.
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(17);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let opts = TrainOptions { precision: Precision::MixedBf16, ..TrainOptions::default() };
    let mut bert = Bert::new(cfg, opts, 3);
    let mut opt = Lamb::new(0.03);
    let mut tr = Tracer::disabled();
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..16 {
        let out = bert.train_step(&mut tr, &batch).unwrap();
        assert!(out.loss.is_finite(), "step {step} diverged");
        if step == 0 {
            first = out.loss;
        }
        last = out.loss;
        let mut slots = bert.param_slots();
        opt.step(&mut tr, &mut slots);
    }
    assert!(last < first - 0.3, "bf16 loss: {first} -> {last}");
}

#[test]
fn bf16_trace_also_matches_the_analytic_graph() {
    use bertscope_model::{build_iteration, GraphOptions, OptimizerChoice};
    use bertscope_tensor::OpKind;
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(19);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut bert = Bert::new(
        cfg,
        TrainOptions { precision: Precision::MixedBf16, ..TrainOptions::default() },
        5,
    );
    let mut tracer = Tracer::new();
    bert.train_step(&mut tracer, &batch).unwrap();
    let mut opt = Lamb::new(0.001);
    let mut slots = bert.param_slots();
    opt.step(&mut tracer, &mut slots);
    let trace: Vec<_> =
        tracer.into_records().into_iter().filter(|r| r.kind != OpKind::Copy).collect();
    let graph = build_iteration(
        &cfg,
        &GraphOptions {
            precision: Precision::MixedBf16,
            optimizer: OptimizerChoice::Lamb,
            fused_gelu: true,
            ..GraphOptions::default()
        },
    );
    assert_eq!(trace.len(), graph.len());
    for (t, g) in trace.iter().zip(&graph) {
        assert_eq!(
            (t.kind, t.dtype, t.flops, t.bytes_read),
            (g.kind, g.dtype, g.flops, g.bytes_read)
        );
    }
}

#[test]
fn evaluation_accuracy_rises_above_chance_with_training() {
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(23);
    let train_batch = corpus.generate_batch(&mut rng, &cfg);
    let mut bert = Bert::new(cfg, TrainOptions::default(), 11);
    let mut tr = Tracer::disabled();
    let before = bert.evaluate(&mut tr, &train_batch).unwrap();
    let mut opt = Lamb::new(0.05);
    for _ in 0..30 {
        bert.train_step(&mut tr, &train_batch).unwrap();
        let mut slots = bert.param_slots();
        opt.step(&mut tr, &mut slots);
    }
    let after = bert.evaluate(&mut tr, &train_batch).unwrap();
    // MLM accuracy starts near zero (1/vocab chance) and rises well above it
    // once the batch is memorized.
    assert!(before.mlm_accuracy < 0.1, "before {:?}", before);
    assert!(after.mlm_accuracy > 0.3, "after {:?}", after);
    assert!(after.mlm_loss < before.mlm_loss);
    // NSP accuracy at or above the 50% coin flip.
    assert!(after.nsp_accuracy >= 0.5, "nsp accuracy {}", after.nsp_accuracy);
}

#[test]
fn evaluation_trace_matches_the_inference_graph() {
    // Cross-validation for the forward-only path: the paper's §7 inference
    // discussion, pinned the same way the training iteration is.
    use bertscope_model::{build_inference, GraphOptions};
    use bertscope_tensor::OpKind;
    let cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(29);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let bert = Bert::new(cfg, TrainOptions::default(), 7);
    let mut tracer = Tracer::new();
    bert.evaluate(&mut tracer, &batch).unwrap();
    let trace: Vec<_> =
        tracer.into_records().into_iter().filter(|r| r.kind != OpKind::Copy).collect();
    let graph =
        build_inference(&cfg, &GraphOptions { fused_gelu: true, ..GraphOptions::default() });
    assert_eq!(trace.len(), graph.len(), "inference kernel counts diverge");
    for (t, g) in trace.iter().zip(&graph) {
        assert_eq!(
            (t.kind, t.category, t.phase, t.flops, t.bytes_read, t.bytes_written),
            (g.kind, g.category, g.phase, g.flops, g.bytes_read, g.bytes_written),
            "inference op diverges: {} vs {}",
            t.name,
            g.name
        );
    }
}

#[test]
fn padding_is_numerically_invisible_to_the_loss() {
    // The same content evaluated at its natural length and PAD-extended to a
    // longer sequence must produce the same losses: the padding mask keeps
    // real tokens from attending to pads, and padded positions carry no
    // loss. This is the strongest end-to-end check of the masking path.
    use bertscope_kernels::loss::IGNORE_INDEX;
    use bertscope_train::data::special;
    let cfg_short = BertConfig { seq_len: 12, max_position: 24, ..small_cfg() };
    let cfg_long = BertConfig { seq_len: 20, max_position: 24, ..small_cfg() };
    let corpus = SyntheticCorpus::new(cfg_short.vocab);
    let mut rng = StdRng::seed_from_u64(41);
    let short = corpus.generate_batch(&mut rng, &cfg_short);

    // Re-lay the same content into the longer shape with PAD tails.
    let (b, ns, nl) = (cfg_short.batch, cfg_short.seq_len, cfg_long.seq_len);
    let mut long = bertscope_train::PretrainBatch {
        input_ids: vec![special::PAD; b * nl],
        segment_ids: vec![1; b * nl],
        position_ids: (0..b * nl).map(|i| i % nl).collect(),
        mlm_targets: vec![IGNORE_INDEX; b * nl],
        nsp_labels: short.nsp_labels.clone(),
        lengths: vec![ns; b],
    };
    for s in 0..b {
        for p in 0..ns {
            long.input_ids[s * nl + p] = short.input_ids[s * ns + p];
            long.segment_ids[s * nl + p] = short.segment_ids[s * ns + p];
            long.mlm_targets[s * nl + p] = short.mlm_targets[s * ns + p];
        }
    }

    let mut tr = Tracer::disabled();
    // Identical weights: same seed, and initialization does not depend on
    // seq_len (only on max_position, which matches).
    let bert_short = Bert::new(cfg_short, TrainOptions::default(), 77);
    let bert_long = Bert::new(cfg_long, TrainOptions::default(), 77);
    let es = bert_short.evaluate(&mut tr, &short).unwrap();
    let el = bert_long.evaluate(&mut tr, &long).unwrap();
    assert!(
        (es.mlm_loss - el.mlm_loss).abs() < 2e-3,
        "MLM loss: {} vs padded {}",
        es.mlm_loss,
        el.mlm_loss
    );
    assert!(
        (es.nsp_loss - el.nsp_loss).abs() < 2e-3,
        "NSP loss: {} vs padded {}",
        es.nsp_loss,
        el.nsp_loss
    );
    assert_eq!(es.mlm_accuracy, el.mlm_accuracy);
}

#[test]
fn causal_attention_trains_with_identical_kernel_structure() {
    // Paper §2.3: a decoder differs only by masking future tokens — "it does
    // not affect training (it only zeros certain matrix elements)".
    let cfg = small_cfg();
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(43);
    let batch = corpus.generate_batch(&mut rng, &cfg);

    let mut encoder = Bert::new(cfg, TrainOptions::default(), 55);
    let mut decoder =
        Bert::new(cfg, TrainOptions { causal_attention: true, ..TrainOptions::default() }, 55);
    let mut tr_e = Tracer::new();
    let out_e = encoder.train_step(&mut tr_e, &batch).unwrap();
    let mut tr_d = Tracer::new();
    let out_d = decoder.train_step(&mut tr_d, &batch).unwrap();
    // Different numerics (future tokens hidden)...
    assert!(out_e.loss.is_finite() && out_d.loss.is_finite());
    assert_ne!(out_e.mlm_loss, out_d.mlm_loss);
    // ...but identical kernel structure, shape for shape.
    assert_eq!(tr_e.kernel_count(), tr_d.kernel_count());
    for (e, d) in tr_e.records().iter().zip(tr_d.records()) {
        assert_eq!((e.kind, e.flops, e.bytes_read), (d.kind, d.flops, d.bytes_read), "{}", e.name);
    }
    // And the decoder still learns.
    let mut opt = Lamb::new(0.05);
    let mut tr = Tracer::disabled();
    let mut last = out_d.loss;
    for _ in 0..12 {
        let mut slots = decoder.param_slots();
        opt.step(&mut tr, &mut slots);
        last = decoder.train_step(&mut tr, &batch).unwrap().loss;
    }
    assert!(last < out_d.loss - 0.3, "decoder loss {} -> {last}", out_d.loss);
}

#[test]
fn padded_batches_train_stably() {
    let cfg = BertConfig { seq_len: 16, ..small_cfg() };
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(47);
    let mut bert = Bert::new(cfg, TrainOptions::default(), 61);
    let mut opt = Lamb::new(0.04);
    let mut tr = Tracer::disabled();
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..16 {
        let batch = corpus.generate_padded_batch(&mut rng, &cfg, 8);
        assert!(batch.lengths.iter().any(|&l| l < cfg.seq_len), "some padding expected");
        let out = bert.train_step(&mut tr, &batch).unwrap();
        assert!(out.loss.is_finite());
        if step == 0 {
            first = out.loss;
        }
        last = out.loss;
        let mut slots = bert.param_slots();
        opt.step(&mut tr, &mut slots);
    }
    assert!(last < first, "padded training learns: {first} -> {last}");
}
