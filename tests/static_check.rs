//! The static verifier must accept both producers of operator streams: the
//! analytic graph and the executed, traced substrate. `trace_matches_graph`
//! already pins the two producers to each other; this test pins both to the
//! *third*, independent implementation of the bookkeeping rules in
//! `bertscope-check`.

use bertscope_check::{check_iteration, check_stream, report};
use bertscope_model::{BertConfig, GraphOptions, OptimizerChoice, Precision};
use bertscope_tensor::{OpKind, OpRecord, Tracer};
use bertscope_train::{Bert, Lamb, SyntheticCorpus, TrainOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn executed_trace(cfg: BertConfig, opts: TrainOptions) -> Vec<OpRecord> {
    let corpus = SyntheticCorpus::new(cfg.vocab);
    let mut rng = StdRng::seed_from_u64(11);
    let batch = corpus.generate_batch(&mut rng, &cfg);
    let mut bert = Bert::new(cfg, opts, 3);
    let mut tracer = Tracer::new();
    bert.train_step(&mut tracer, &batch).expect("train step");
    let mut opt = Lamb::new(0.001);
    opt.grad_scale = opts.loss_scale;
    let mut slots = bert.param_slots();
    opt.step(&mut tracer, &mut slots);
    tracer.into_records()
}

#[test]
fn executed_fp32_trace_is_clean() {
    let trace = executed_trace(BertConfig::tiny(), TrainOptions::default());
    // The raw trace, copies included: the stream-level lints must tolerate
    // data movement interleaved anywhere.
    let findings = check_stream(&trace);
    assert!(findings.is_empty(), "{}", report(&findings));
}

#[test]
fn executed_mixed_trace_is_clean_even_against_the_config() {
    let cfg = BertConfig::tiny();
    let train =
        TrainOptions { precision: Precision::Mixed, loss_scale: 64.0, ..TrainOptions::default() };
    let trace: Vec<OpRecord> = executed_trace(cfg, train)
        .into_iter()
        .filter(|r| r.kind != OpKind::Copy) // config checks count kernels
        .collect();
    let opts = GraphOptions {
        precision: Precision::Mixed,
        optimizer: OptimizerChoice::Lamb,
        fused_gelu: true,
        ..GraphOptions::default()
    };
    let findings = check_iteration(&cfg, &opts, &trace);
    assert!(findings.is_empty(), "{}", report(&findings));
}

#[test]
fn executed_checkpointed_trace_is_clean() {
    let cfg = BertConfig::tiny();
    let trace = executed_trace(cfg, TrainOptions { checkpoint: true, ..TrainOptions::default() });
    let findings = check_stream(&trace);
    assert!(findings.is_empty(), "{}", report(&findings));
}

#[test]
fn a_corrupted_trace_is_caught() {
    let mut trace = executed_trace(BertConfig::tiny(), TrainOptions::default());
    let i = trace.iter().position(OpRecord::is_gemm).unwrap();
    trace[i].flops /= 2;
    let findings = check_stream(&trace);
    assert!(findings.iter().any(|f| f.rule.code() == "C001"), "{}", report(&findings));
}
