/root/repo/target/release/deps/bertscope_dist-2e9d477f42321e11.d: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

/root/repo/target/release/deps/libbertscope_dist-2e9d477f42321e11.rlib: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

/root/repo/target/release/deps/libbertscope_dist-2e9d477f42321e11.rmeta: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

crates/dist/src/lib.rs:
crates/dist/src/allreduce.rs:
crates/dist/src/dp.rs:
crates/dist/src/hybrid.rs:
crates/dist/src/ts.rs:
crates/dist/src/zero.rs:
