/root/repo/target/release/deps/bertscope_model-417e3144519a95ad.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

/root/repo/target/release/deps/libbertscope_model-417e3144519a95ad.rlib: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

/root/repo/target/release/deps/libbertscope_model-417e3144519a95ad.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/fusion.rs:
crates/model/src/gemms.rs:
crates/model/src/graph.rs:
crates/model/src/params.rs:
