/root/repo/target/release/deps/bertscope_check-60f5a71b97dea846.d: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

/root/repo/target/release/deps/libbertscope_check-60f5a71b97dea846.rlib: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

/root/repo/target/release/deps/libbertscope_check-60f5a71b97dea846.rmeta: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

crates/check/src/lib.rs:
crates/check/src/finding.rs:
crates/check/src/rules.rs:
crates/check/src/config_checks.rs:
crates/check/src/conservation.rs:
crates/check/src/dataflow.rs:
crates/check/src/phase.rs:
crates/check/src/scaler.rs:
