/root/repo/target/release/deps/bertscope_kernels-68b2b9b1a60c4a4a.d: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

/root/repo/target/release/deps/libbertscope_kernels-68b2b9b1a60c4a4a.rlib: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

/root/repo/target/release/deps/libbertscope_kernels-68b2b9b1a60c4a4a.rmeta: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/activation.rs:
crates/kernels/src/attention.rs:
crates/kernels/src/ctx.rs:
crates/kernels/src/dropout.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/embedding.rs:
crates/kernels/src/linear.rs:
crates/kernels/src/loss.rs:
crates/kernels/src/masks.rs:
crates/kernels/src/norm.rs:
