/root/repo/target/release/deps/bertscope_train-90f8bb678d953dd9.d: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libbertscope_train-90f8bb678d953dd9.rlib: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libbertscope_train-90f8bb678d953dd9.rmeta: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/bert.rs:
crates/train/src/checkpoint.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/layer.rs:
crates/train/src/optim.rs:
crates/train/src/scaler.rs:
crates/train/src/trainer.rs:
