/root/repo/target/release/deps/bertscope_bench-9f265df9f3e95729.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libbertscope_bench-9f265df9f3e95729.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libbertscope_bench-9f265df9f3e95729.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
