/root/repo/target/release/deps/bertscope_suite-1e63c481697e1f03.d: suite/lib.rs

/root/repo/target/release/deps/libbertscope_suite-1e63c481697e1f03.rlib: suite/lib.rs

/root/repo/target/release/deps/libbertscope_suite-1e63c481697e1f03.rmeta: suite/lib.rs

suite/lib.rs:
