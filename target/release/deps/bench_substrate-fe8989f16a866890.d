/root/repo/target/release/deps/bench_substrate-fe8989f16a866890.d: crates/bench/src/bin/bench_substrate.rs

/root/repo/target/release/deps/bench_substrate-fe8989f16a866890: crates/bench/src/bin/bench_substrate.rs

crates/bench/src/bin/bench_substrate.rs:
