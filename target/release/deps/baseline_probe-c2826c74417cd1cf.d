/root/repo/target/release/deps/baseline_probe-c2826c74417cd1cf.d: crates/bench/src/bin/baseline_probe.rs

/root/repo/target/release/deps/baseline_probe-c2826c74417cd1cf: crates/bench/src/bin/baseline_probe.rs

crates/bench/src/bin/baseline_probe.rs:
