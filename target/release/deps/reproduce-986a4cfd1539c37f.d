/root/repo/target/release/deps/reproduce-986a4cfd1539c37f.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-986a4cfd1539c37f: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
