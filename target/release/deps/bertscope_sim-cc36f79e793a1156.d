/root/repo/target/release/deps/bertscope_sim-cc36f79e793a1156.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libbertscope_sim-cc36f79e793a1156.rlib: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs

/root/repo/target/release/deps/libbertscope_sim-cc36f79e793a1156.rmeta: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/heterogeneity.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/inference.rs:
crates/sim/src/intensity.rs:
crates/sim/src/memory.rs:
crates/sim/src/profile.rs:
crates/sim/src/roofline.rs:
crates/sim/src/simulate.rs:
crates/sim/src/studies.rs:
crates/sim/src/sweep.rs:
