/root/repo/target/release/deps/bertscope-d567632e6c45559d.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

/root/repo/target/release/deps/libbertscope-d567632e6c45559d.rlib: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

/root/repo/target/release/deps/libbertscope-d567632e6c45559d.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/takeaways.rs:
