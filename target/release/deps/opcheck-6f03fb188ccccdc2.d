/root/repo/target/release/deps/opcheck-6f03fb188ccccdc2.d: crates/check/src/bin/opcheck.rs

/root/repo/target/release/deps/opcheck-6f03fb188ccccdc2: crates/check/src/bin/opcheck.rs

crates/check/src/bin/opcheck.rs:
