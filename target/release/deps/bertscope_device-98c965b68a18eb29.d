/root/repo/target/release/deps/bertscope_device-98c965b68a18eb29.d: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

/root/repo/target/release/deps/libbertscope_device-98c965b68a18eb29.rlib: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

/root/repo/target/release/deps/libbertscope_device-98c965b68a18eb29.rmeta: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

crates/device/src/lib.rs:
crates/device/src/energy.rs:
crates/device/src/gpu.rs:
crates/device/src/interconnect.rs:
crates/device/src/nmc.rs:
