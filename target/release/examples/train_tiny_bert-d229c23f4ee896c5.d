/root/repo/target/release/examples/train_tiny_bert-d229c23f4ee896c5.d: examples/train_tiny_bert.rs

/root/repo/target/release/examples/train_tiny_bert-d229c23f4ee896c5: examples/train_tiny_bert.rs

examples/train_tiny_bert.rs:
