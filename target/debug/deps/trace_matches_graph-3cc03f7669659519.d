/root/repo/target/debug/deps/trace_matches_graph-3cc03f7669659519.d: tests/trace_matches_graph.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_matches_graph-3cc03f7669659519.rmeta: tests/trace_matches_graph.rs Cargo.toml

tests/trace_matches_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
