/root/repo/target/debug/deps/bertscope_device-20c6cb6e3b2b2a84.d: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

/root/repo/target/debug/deps/bertscope_device-20c6cb6e3b2b2a84: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

crates/device/src/lib.rs:
crates/device/src/energy.rs:
crates/device/src/gpu.rs:
crates/device/src/interconnect.rs:
crates/device/src/nmc.rs:
