/root/repo/target/debug/deps/bertscope_dist-f7d9919cb69c6b77.d: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

/root/repo/target/debug/deps/bertscope_dist-f7d9919cb69c6b77: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

crates/dist/src/lib.rs:
crates/dist/src/allreduce.rs:
crates/dist/src/dp.rs:
crates/dist/src/hybrid.rs:
crates/dist/src/ts.rs:
crates/dist/src/zero.rs:
