/root/repo/target/debug/deps/bertscope_kernels-ca611064b46ec8b7.d: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

/root/repo/target/debug/deps/libbertscope_kernels-ca611064b46ec8b7.rlib: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

/root/repo/target/debug/deps/libbertscope_kernels-ca611064b46ec8b7.rmeta: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/activation.rs:
crates/kernels/src/attention.rs:
crates/kernels/src/ctx.rs:
crates/kernels/src/dropout.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/embedding.rs:
crates/kernels/src/linear.rs:
crates/kernels/src/loss.rs:
crates/kernels/src/masks.rs:
crates/kernels/src/norm.rs:
