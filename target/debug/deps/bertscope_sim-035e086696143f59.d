/root/repo/target/debug/deps/bertscope_sim-035e086696143f59.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs

/root/repo/target/debug/deps/bertscope_sim-035e086696143f59: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/heterogeneity.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/inference.rs:
crates/sim/src/intensity.rs:
crates/sim/src/memory.rs:
crates/sim/src/profile.rs:
crates/sim/src/roofline.rs:
crates/sim/src/simulate.rs:
crates/sim/src/studies.rs:
crates/sim/src/sweep.rs:
