/root/repo/target/debug/deps/suite_properties-e831f132292dbc18.d: tests/suite_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_properties-e831f132292dbc18.rmeta: tests/suite_properties.rs Cargo.toml

tests/suite_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
