/root/repo/target/debug/deps/bertscope_model-6d7cceffc610b3da.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libbertscope_model-6d7cceffc610b3da.rlib: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libbertscope_model-6d7cceffc610b3da.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/fusion.rs:
crates/model/src/gemms.rs:
crates/model/src/graph.rs:
crates/model/src/params.rs:
