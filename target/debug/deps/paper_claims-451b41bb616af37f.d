/root/repo/target/debug/deps/paper_claims-451b41bb616af37f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-451b41bb616af37f: tests/paper_claims.rs

tests/paper_claims.rs:
