/root/repo/target/debug/deps/bertscope_tensor-f6d9b7842e756cc9.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs

/root/repo/target/debug/deps/libbertscope_tensor-f6d9b7842e756cc9.rlib: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs

/root/repo/target/debug/deps/libbertscope_tensor-f6d9b7842e756cc9.rmeta: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/error.rs:
crates/tensor/src/fault.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/init.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/trace.rs:
