/root/repo/target/debug/deps/bertscope_kernels-5141f15129795dd3.d: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

/root/repo/target/debug/deps/bertscope_kernels-5141f15129795dd3: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/activation.rs:
crates/kernels/src/attention.rs:
crates/kernels/src/ctx.rs:
crates/kernels/src/dropout.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/embedding.rs:
crates/kernels/src/linear.rs:
crates/kernels/src/loss.rs:
crates/kernels/src/masks.rs:
crates/kernels/src/norm.rs:
