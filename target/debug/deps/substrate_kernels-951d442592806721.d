/root/repo/target/debug/deps/substrate_kernels-951d442592806721.d: crates/bench/benches/substrate_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_kernels-951d442592806721.rmeta: crates/bench/benches/substrate_kernels.rs Cargo.toml

crates/bench/benches/substrate_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
