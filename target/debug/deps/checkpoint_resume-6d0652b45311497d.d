/root/repo/target/debug/deps/checkpoint_resume-6d0652b45311497d.d: tests/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_resume-6d0652b45311497d.rmeta: tests/checkpoint_resume.rs Cargo.toml

tests/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
