/root/repo/target/debug/deps/end_to_end_training-5c8661163a107194.d: tests/end_to_end_training.rs

/root/repo/target/debug/deps/end_to_end_training-5c8661163a107194: tests/end_to_end_training.rs

tests/end_to_end_training.rs:
