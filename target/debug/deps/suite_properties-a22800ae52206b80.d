/root/repo/target/debug/deps/suite_properties-a22800ae52206b80.d: tests/suite_properties.rs

/root/repo/target/debug/deps/suite_properties-a22800ae52206b80: tests/suite_properties.rs

tests/suite_properties.rs:
