/root/repo/target/debug/deps/bertscope_suite-85584d4d44102273.d: suite/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_suite-85584d4d44102273.rmeta: suite/lib.rs Cargo.toml

suite/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
