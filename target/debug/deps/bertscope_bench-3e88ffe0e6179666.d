/root/repo/target/debug/deps/bertscope_bench-3e88ffe0e6179666.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_bench-3e88ffe0e6179666.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
