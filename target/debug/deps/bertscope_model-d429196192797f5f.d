/root/repo/target/debug/deps/bertscope_model-d429196192797f5f.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

/root/repo/target/debug/deps/bertscope_model-d429196192797f5f: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/fusion.rs:
crates/model/src/gemms.rs:
crates/model/src/graph.rs:
crates/model/src/params.rs:
