/root/repo/target/debug/deps/fault_injection-8d8506ae79b74103.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-8d8506ae79b74103: tests/fault_injection.rs

tests/fault_injection.rs:
