/root/repo/target/debug/deps/reproduce-d233a2e417b03aea.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-d233a2e417b03aea: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
