/root/repo/target/debug/deps/bertscope_model-ccc56a994a863f5c.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_model-ccc56a994a863f5c.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/fusion.rs:
crates/model/src/gemms.rs:
crates/model/src/graph.rs:
crates/model/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
