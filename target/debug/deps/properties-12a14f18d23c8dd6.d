/root/repo/target/debug/deps/properties-12a14f18d23c8dd6.d: crates/check/tests/properties.rs

/root/repo/target/debug/deps/properties-12a14f18d23c8dd6: crates/check/tests/properties.rs

crates/check/tests/properties.rs:
