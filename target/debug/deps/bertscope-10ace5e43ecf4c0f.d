/root/repo/target/debug/deps/bertscope-10ace5e43ecf4c0f.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

/root/repo/target/debug/deps/bertscope-10ace5e43ecf4c0f: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/takeaways.rs:
