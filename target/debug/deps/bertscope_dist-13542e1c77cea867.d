/root/repo/target/debug/deps/bertscope_dist-13542e1c77cea867.d: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

/root/repo/target/debug/deps/libbertscope_dist-13542e1c77cea867.rlib: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

/root/repo/target/debug/deps/libbertscope_dist-13542e1c77cea867.rmeta: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs

crates/dist/src/lib.rs:
crates/dist/src/allreduce.rs:
crates/dist/src/dp.rs:
crates/dist/src/hybrid.rs:
crates/dist/src/ts.rs:
crates/dist/src/zero.rs:
