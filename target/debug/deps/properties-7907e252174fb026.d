/root/repo/target/debug/deps/properties-7907e252174fb026.d: crates/tensor/tests/properties.rs

/root/repo/target/debug/deps/properties-7907e252174fb026: crates/tensor/tests/properties.rs

crates/tensor/tests/properties.rs:
