/root/repo/target/debug/deps/opcheck-e96f71dc94ef898c.d: crates/check/src/bin/opcheck.rs

/root/repo/target/debug/deps/opcheck-e96f71dc94ef898c: crates/check/src/bin/opcheck.rs

crates/check/src/bin/opcheck.rs:
