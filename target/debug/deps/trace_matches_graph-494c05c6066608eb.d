/root/repo/target/debug/deps/trace_matches_graph-494c05c6066608eb.d: tests/trace_matches_graph.rs

/root/repo/target/debug/deps/trace_matches_graph-494c05c6066608eb: tests/trace_matches_graph.rs

tests/trace_matches_graph.rs:
