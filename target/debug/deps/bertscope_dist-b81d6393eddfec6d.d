/root/repo/target/debug/deps/bertscope_dist-b81d6393eddfec6d.d: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_dist-b81d6393eddfec6d.rmeta: crates/dist/src/lib.rs crates/dist/src/allreduce.rs crates/dist/src/dp.rs crates/dist/src/hybrid.rs crates/dist/src/ts.rs crates/dist/src/zero.rs Cargo.toml

crates/dist/src/lib.rs:
crates/dist/src/allreduce.rs:
crates/dist/src/dp.rs:
crates/dist/src/hybrid.rs:
crates/dist/src/ts.rs:
crates/dist/src/zero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
