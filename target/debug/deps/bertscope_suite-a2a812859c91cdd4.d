/root/repo/target/debug/deps/bertscope_suite-a2a812859c91cdd4.d: suite/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_suite-a2a812859c91cdd4.rmeta: suite/lib.rs Cargo.toml

suite/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
