/root/repo/target/debug/deps/end_to_end_training-f032c4eb21288abc.d: tests/end_to_end_training.rs

/root/repo/target/debug/deps/end_to_end_training-f032c4eb21288abc: tests/end_to_end_training.rs

tests/end_to_end_training.rs:
