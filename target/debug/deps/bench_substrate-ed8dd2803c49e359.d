/root/repo/target/debug/deps/bench_substrate-ed8dd2803c49e359.d: crates/bench/src/bin/bench_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libbench_substrate-ed8dd2803c49e359.rmeta: crates/bench/src/bin/bench_substrate.rs Cargo.toml

crates/bench/src/bin/bench_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
