/root/repo/target/debug/deps/bertscope_kernels-12b3d4b6b946dded.d: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_kernels-12b3d4b6b946dded.rmeta: crates/kernels/src/lib.rs crates/kernels/src/activation.rs crates/kernels/src/attention.rs crates/kernels/src/ctx.rs crates/kernels/src/dropout.rs crates/kernels/src/elementwise.rs crates/kernels/src/embedding.rs crates/kernels/src/linear.rs crates/kernels/src/loss.rs crates/kernels/src/masks.rs crates/kernels/src/norm.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/activation.rs:
crates/kernels/src/attention.rs:
crates/kernels/src/ctx.rs:
crates/kernels/src/dropout.rs:
crates/kernels/src/elementwise.rs:
crates/kernels/src/embedding.rs:
crates/kernels/src/linear.rs:
crates/kernels/src/loss.rs:
crates/kernels/src/masks.rs:
crates/kernels/src/norm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
