/root/repo/target/debug/deps/reproduce-bc047bf7f2fd4bb1.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-bc047bf7f2fd4bb1: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
