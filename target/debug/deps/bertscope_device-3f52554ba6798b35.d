/root/repo/target/debug/deps/bertscope_device-3f52554ba6798b35.d: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_device-3f52554ba6798b35.rmeta: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/energy.rs:
crates/device/src/gpu.rs:
crates/device/src/interconnect.rs:
crates/device/src/nmc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
