/root/repo/target/debug/deps/checkpoint_resume-59ea7fb3b1a313ca.d: tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-59ea7fb3b1a313ca: tests/checkpoint_resume.rs

tests/checkpoint_resume.rs:
