/root/repo/target/debug/deps/corruptions-94aabb5f8654d1eb.d: crates/check/tests/corruptions.rs

/root/repo/target/debug/deps/corruptions-94aabb5f8654d1eb: crates/check/tests/corruptions.rs

crates/check/tests/corruptions.rs:
