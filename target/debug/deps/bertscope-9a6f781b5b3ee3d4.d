/root/repo/target/debug/deps/bertscope-9a6f781b5b3ee3d4.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope-9a6f781b5b3ee3d4.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/takeaways.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
