/root/repo/target/debug/deps/bertscope_bench-c21ff3190c973343.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libbertscope_bench-c21ff3190c973343.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libbertscope_bench-c21ff3190c973343.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
