/root/repo/target/debug/deps/opcheck-dc5936772a258c00.d: crates/check/src/bin/opcheck.rs

/root/repo/target/debug/deps/opcheck-dc5936772a258c00: crates/check/src/bin/opcheck.rs

crates/check/src/bin/opcheck.rs:
