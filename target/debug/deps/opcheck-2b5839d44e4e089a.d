/root/repo/target/debug/deps/opcheck-2b5839d44e4e089a.d: crates/check/src/bin/opcheck.rs Cargo.toml

/root/repo/target/debug/deps/libopcheck-2b5839d44e4e089a.rmeta: crates/check/src/bin/opcheck.rs Cargo.toml

crates/check/src/bin/opcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
