/root/repo/target/debug/deps/training_step-37fc5301751f4e80.d: crates/bench/benches/training_step.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_step-37fc5301751f4e80.rmeta: crates/bench/benches/training_step.rs Cargo.toml

crates/bench/benches/training_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
