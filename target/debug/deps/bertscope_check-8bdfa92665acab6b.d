/root/repo/target/debug/deps/bertscope_check-8bdfa92665acab6b.d: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_check-8bdfa92665acab6b.rmeta: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/finding.rs:
crates/check/src/rules.rs:
crates/check/src/config_checks.rs:
crates/check/src/conservation.rs:
crates/check/src/dataflow.rs:
crates/check/src/phase.rs:
crates/check/src/scaler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
