/root/repo/target/debug/deps/bertscope_suite-a558dd3363db2d96.d: suite/lib.rs

/root/repo/target/debug/deps/bertscope_suite-a558dd3363db2d96: suite/lib.rs

suite/lib.rs:
