/root/repo/target/debug/deps/end_to_end_training-43ed60de5b742f80.d: tests/end_to_end_training.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_training-43ed60de5b742f80.rmeta: tests/end_to_end_training.rs Cargo.toml

tests/end_to_end_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
