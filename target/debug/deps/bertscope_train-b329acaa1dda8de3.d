/root/repo/target/debug/deps/bertscope_train-b329acaa1dda8de3.d: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/bertscope_train-b329acaa1dda8de3: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/bert.rs:
crates/train/src/checkpoint.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/layer.rs:
crates/train/src/optim.rs:
crates/train/src/scaler.rs:
crates/train/src/trainer.rs:
