/root/repo/target/debug/deps/bertscope_tensor-15973be2b6c7ad77.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs

/root/repo/target/debug/deps/bertscope_tensor-15973be2b6c7ad77: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/error.rs:
crates/tensor/src/fault.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/init.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/trace.rs:
