/root/repo/target/debug/deps/bertscope_model-22d388cc09ef3a84.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_model-22d388cc09ef3a84.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/fusion.rs crates/model/src/gemms.rs crates/model/src/graph.rs crates/model/src/params.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/fusion.rs:
crates/model/src/gemms.rs:
crates/model/src/graph.rs:
crates/model/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
