/root/repo/target/debug/deps/suite_properties-19c0b9aab8c3e070.d: tests/suite_properties.rs

/root/repo/target/debug/deps/suite_properties-19c0b9aab8c3e070: tests/suite_properties.rs

tests/suite_properties.rs:
