/root/repo/target/debug/deps/bertscope_tensor-fb35f96fe3f651ba.d: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_tensor-fb35f96fe3f651ba.rmeta: crates/tensor/src/lib.rs crates/tensor/src/dtype.rs crates/tensor/src/error.rs crates/tensor/src/fault.rs crates/tensor/src/gemm.rs crates/tensor/src/init.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/trace.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/dtype.rs:
crates/tensor/src/error.rs:
crates/tensor/src/fault.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/init.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
