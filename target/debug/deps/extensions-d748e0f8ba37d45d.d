/root/repo/target/debug/deps/extensions-d748e0f8ba37d45d.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d748e0f8ba37d45d: tests/extensions.rs

tests/extensions.rs:
