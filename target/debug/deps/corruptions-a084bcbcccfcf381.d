/root/repo/target/debug/deps/corruptions-a084bcbcccfcf381.d: crates/check/tests/corruptions.rs Cargo.toml

/root/repo/target/debug/deps/libcorruptions-a084bcbcccfcf381.rmeta: crates/check/tests/corruptions.rs Cargo.toml

crates/check/tests/corruptions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
