/root/repo/target/debug/deps/extensions-098bffa1c59a4185.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-098bffa1c59a4185: tests/extensions.rs

tests/extensions.rs:
