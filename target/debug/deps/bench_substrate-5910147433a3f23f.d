/root/repo/target/debug/deps/bench_substrate-5910147433a3f23f.d: crates/bench/src/bin/bench_substrate.rs

/root/repo/target/debug/deps/bench_substrate-5910147433a3f23f: crates/bench/src/bin/bench_substrate.rs

crates/bench/src/bin/bench_substrate.rs:
