/root/repo/target/debug/deps/bertscope_train-2b7e21f57d68c88d.d: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_train-2b7e21f57d68c88d.rmeta: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/bert.rs:
crates/train/src/checkpoint.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/layer.rs:
crates/train/src/optim.rs:
crates/train/src/scaler.rs:
crates/train/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
