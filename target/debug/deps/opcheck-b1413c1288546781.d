/root/repo/target/debug/deps/opcheck-b1413c1288546781.d: crates/check/src/bin/opcheck.rs Cargo.toml

/root/repo/target/debug/deps/libopcheck-b1413c1288546781.rmeta: crates/check/src/bin/opcheck.rs Cargo.toml

crates/check/src/bin/opcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
