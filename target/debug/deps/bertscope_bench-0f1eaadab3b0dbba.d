/root/repo/target/debug/deps/bertscope_bench-0f1eaadab3b0dbba.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_bench-0f1eaadab3b0dbba.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
