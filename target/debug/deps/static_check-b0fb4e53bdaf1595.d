/root/repo/target/debug/deps/static_check-b0fb4e53bdaf1595.d: tests/static_check.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_check-b0fb4e53bdaf1595.rmeta: tests/static_check.rs Cargo.toml

tests/static_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
