/root/repo/target/debug/deps/bertscope_sim-34639dfb84102d88.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope_sim-34639dfb84102d88.rmeta: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/heterogeneity.rs crates/sim/src/hierarchy.rs crates/sim/src/inference.rs crates/sim/src/intensity.rs crates/sim/src/memory.rs crates/sim/src/profile.rs crates/sim/src/roofline.rs crates/sim/src/simulate.rs crates/sim/src/studies.rs crates/sim/src/sweep.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/heterogeneity.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/inference.rs:
crates/sim/src/intensity.rs:
crates/sim/src/memory.rs:
crates/sim/src/profile.rs:
crates/sim/src/roofline.rs:
crates/sim/src/simulate.rs:
crates/sim/src/studies.rs:
crates/sim/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
