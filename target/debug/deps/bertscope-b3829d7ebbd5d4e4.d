/root/repo/target/debug/deps/bertscope-b3829d7ebbd5d4e4.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

/root/repo/target/debug/deps/libbertscope-b3829d7ebbd5d4e4.rlib: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

/root/repo/target/debug/deps/libbertscope-b3829d7ebbd5d4e4.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/takeaways.rs:
