/root/repo/target/debug/deps/properties-27f6607f5f5569cb.d: crates/check/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-27f6607f5f5569cb.rmeta: crates/check/tests/properties.rs Cargo.toml

crates/check/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
