/root/repo/target/debug/deps/bertscope_suite-178405c2a6e488a5.d: suite/lib.rs

/root/repo/target/debug/deps/bertscope_suite-178405c2a6e488a5: suite/lib.rs

suite/lib.rs:
