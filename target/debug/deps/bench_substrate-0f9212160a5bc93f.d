/root/repo/target/debug/deps/bench_substrate-0f9212160a5bc93f.d: crates/bench/src/bin/bench_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libbench_substrate-0f9212160a5bc93f.rmeta: crates/bench/src/bin/bench_substrate.rs Cargo.toml

crates/bench/src/bin/bench_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
