/root/repo/target/debug/deps/thread_determinism-91a936656fe7317c.d: tests/thread_determinism.rs

/root/repo/target/debug/deps/thread_determinism-91a936656fe7317c: tests/thread_determinism.rs

tests/thread_determinism.rs:
