/root/repo/target/debug/deps/bertscope-0cc11b74d4a7cf82.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs Cargo.toml

/root/repo/target/debug/deps/libbertscope-0cc11b74d4a7cf82.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/report.rs crates/core/src/takeaways.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/report.rs:
crates/core/src/takeaways.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
