/root/repo/target/debug/deps/bertscope_device-a7ef6fb8d3b32eac.d: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

/root/repo/target/debug/deps/libbertscope_device-a7ef6fb8d3b32eac.rlib: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

/root/repo/target/debug/deps/libbertscope_device-a7ef6fb8d3b32eac.rmeta: crates/device/src/lib.rs crates/device/src/energy.rs crates/device/src/gpu.rs crates/device/src/interconnect.rs crates/device/src/nmc.rs

crates/device/src/lib.rs:
crates/device/src/energy.rs:
crates/device/src/gpu.rs:
crates/device/src/interconnect.rs:
crates/device/src/nmc.rs:
