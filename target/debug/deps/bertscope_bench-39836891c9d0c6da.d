/root/repo/target/debug/deps/bertscope_bench-39836891c9d0c6da.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/bertscope_bench-39836891c9d0c6da: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
