/root/repo/target/debug/deps/bertscope_train-e5b3f2e399f82b78.d: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/libbertscope_train-e5b3f2e399f82b78.rlib: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/libbertscope_train-e5b3f2e399f82b78.rmeta: crates/train/src/lib.rs crates/train/src/bert.rs crates/train/src/checkpoint.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/layer.rs crates/train/src/optim.rs crates/train/src/scaler.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/bert.rs:
crates/train/src/checkpoint.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/layer.rs:
crates/train/src/optim.rs:
crates/train/src/scaler.rs:
crates/train/src/trainer.rs:
