/root/repo/target/debug/deps/thread_determinism-696c20792b7a5f92.d: tests/thread_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libthread_determinism-696c20792b7a5f92.rmeta: tests/thread_determinism.rs Cargo.toml

tests/thread_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
