/root/repo/target/debug/deps/static_check-cd0e00c9d7dcf8b6.d: tests/static_check.rs

/root/repo/target/debug/deps/static_check-cd0e00c9d7dcf8b6: tests/static_check.rs

tests/static_check.rs:
