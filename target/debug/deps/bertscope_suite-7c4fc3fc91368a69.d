/root/repo/target/debug/deps/bertscope_suite-7c4fc3fc91368a69.d: suite/lib.rs

/root/repo/target/debug/deps/libbertscope_suite-7c4fc3fc91368a69.rlib: suite/lib.rs

/root/repo/target/debug/deps/libbertscope_suite-7c4fc3fc91368a69.rmeta: suite/lib.rs

suite/lib.rs:
