/root/repo/target/debug/deps/trace_matches_graph-327d021f9f38cdd2.d: tests/trace_matches_graph.rs

/root/repo/target/debug/deps/trace_matches_graph-327d021f9f38cdd2: tests/trace_matches_graph.rs

tests/trace_matches_graph.rs:
