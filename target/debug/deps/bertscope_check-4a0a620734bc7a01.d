/root/repo/target/debug/deps/bertscope_check-4a0a620734bc7a01.d: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

/root/repo/target/debug/deps/libbertscope_check-4a0a620734bc7a01.rlib: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

/root/repo/target/debug/deps/libbertscope_check-4a0a620734bc7a01.rmeta: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

crates/check/src/lib.rs:
crates/check/src/finding.rs:
crates/check/src/rules.rs:
crates/check/src/config_checks.rs:
crates/check/src/conservation.rs:
crates/check/src/dataflow.rs:
crates/check/src/phase.rs:
crates/check/src/scaler.rs:
