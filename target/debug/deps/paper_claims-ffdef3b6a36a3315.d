/root/repo/target/debug/deps/paper_claims-ffdef3b6a36a3315.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ffdef3b6a36a3315: tests/paper_claims.rs

tests/paper_claims.rs:
