/root/repo/target/debug/deps/bertscope_check-e63546c39d4174ed.d: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

/root/repo/target/debug/deps/bertscope_check-e63546c39d4174ed: crates/check/src/lib.rs crates/check/src/finding.rs crates/check/src/rules.rs crates/check/src/config_checks.rs crates/check/src/conservation.rs crates/check/src/dataflow.rs crates/check/src/phase.rs crates/check/src/scaler.rs

crates/check/src/lib.rs:
crates/check/src/finding.rs:
crates/check/src/rules.rs:
crates/check/src/config_checks.rs:
crates/check/src/conservation.rs:
crates/check/src/dataflow.rs:
crates/check/src/phase.rs:
crates/check/src/scaler.rs:
