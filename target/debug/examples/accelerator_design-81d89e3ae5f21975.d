/root/repo/target/debug/examples/accelerator_design-81d89e3ae5f21975.d: examples/accelerator_design.rs

/root/repo/target/debug/examples/accelerator_design-81d89e3ae5f21975: examples/accelerator_design.rs

examples/accelerator_design.rs:
