/root/repo/target/debug/examples/distributed_planner-a9882b08fff07f52.d: examples/distributed_planner.rs

/root/repo/target/debug/examples/distributed_planner-a9882b08fff07f52: examples/distributed_planner.rs

examples/distributed_planner.rs:
