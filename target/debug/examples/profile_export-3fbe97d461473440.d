/root/repo/target/debug/examples/profile_export-3fbe97d461473440.d: examples/profile_export.rs

/root/repo/target/debug/examples/profile_export-3fbe97d461473440: examples/profile_export.rs

examples/profile_export.rs:
