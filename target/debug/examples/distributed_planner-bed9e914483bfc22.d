/root/repo/target/debug/examples/distributed_planner-bed9e914483bfc22.d: examples/distributed_planner.rs

/root/repo/target/debug/examples/distributed_planner-bed9e914483bfc22: examples/distributed_planner.rs

examples/distributed_planner.rs:
