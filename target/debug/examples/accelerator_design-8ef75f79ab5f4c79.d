/root/repo/target/debug/examples/accelerator_design-8ef75f79ab5f4c79.d: examples/accelerator_design.rs

/root/repo/target/debug/examples/accelerator_design-8ef75f79ab5f4c79: examples/accelerator_design.rs

examples/accelerator_design.rs:
