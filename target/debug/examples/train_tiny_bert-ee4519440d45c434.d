/root/repo/target/debug/examples/train_tiny_bert-ee4519440d45c434.d: examples/train_tiny_bert.rs

/root/repo/target/debug/examples/train_tiny_bert-ee4519440d45c434: examples/train_tiny_bert.rs

examples/train_tiny_bert.rs:
