/root/repo/target/debug/examples/train_tiny_bert-32f55dc41c792cea.d: examples/train_tiny_bert.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_tiny_bert-32f55dc41c792cea.rmeta: examples/train_tiny_bert.rs Cargo.toml

examples/train_tiny_bert.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
