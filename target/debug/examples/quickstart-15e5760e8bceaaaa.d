/root/repo/target/debug/examples/quickstart-15e5760e8bceaaaa.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-15e5760e8bceaaaa: examples/quickstart.rs

examples/quickstart.rs:
