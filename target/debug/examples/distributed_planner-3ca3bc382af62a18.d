/root/repo/target/debug/examples/distributed_planner-3ca3bc382af62a18.d: examples/distributed_planner.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_planner-3ca3bc382af62a18.rmeta: examples/distributed_planner.rs Cargo.toml

examples/distributed_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
