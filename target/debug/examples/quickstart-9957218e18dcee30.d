/root/repo/target/debug/examples/quickstart-9957218e18dcee30.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9957218e18dcee30: examples/quickstart.rs

examples/quickstart.rs:
