/root/repo/target/debug/examples/train_tiny_bert-5bae502d0f3d77b4.d: examples/train_tiny_bert.rs

/root/repo/target/debug/examples/train_tiny_bert-5bae502d0f3d77b4: examples/train_tiny_bert.rs

examples/train_tiny_bert.rs:
