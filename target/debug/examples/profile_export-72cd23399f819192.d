/root/repo/target/debug/examples/profile_export-72cd23399f819192.d: examples/profile_export.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_export-72cd23399f819192.rmeta: examples/profile_export.rs Cargo.toml

examples/profile_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
