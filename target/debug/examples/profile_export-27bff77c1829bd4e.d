/root/repo/target/debug/examples/profile_export-27bff77c1829bd4e.d: examples/profile_export.rs

/root/repo/target/debug/examples/profile_export-27bff77c1829bd4e: examples/profile_export.rs

examples/profile_export.rs:
