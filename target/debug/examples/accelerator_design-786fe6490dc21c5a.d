/root/repo/target/debug/examples/accelerator_design-786fe6490dc21c5a.d: examples/accelerator_design.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_design-786fe6490dc21c5a.rmeta: examples/accelerator_design.rs Cargo.toml

examples/accelerator_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
