//! Offline stand-in for the subset of the `rand` 0.8 API that the bertscope
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides source-compatible replacements for:
//!
//! - [`RngCore`] / [`Rng`] (`gen`, `gen_range`, `gen_bool`)
//! - [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//! - [`distributions::Distribution`]
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! adequate for test-data generation (it is the seeding generator of the
//! xoshiro family). It is NOT the same stream as upstream `StdRng`
//! (ChaCha12), so seeds produce different (but still deterministic) data.
//! Nothing in this workspace depends on the exact upstream stream, and this
//! shim must never be used for cryptographic purposes.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, layered over [`RngCore`] exactly as
/// in upstream `rand`.
pub trait Rng: RngCore {
    /// A uniformly random value of a supported primitive type
    /// (floats are uniform in `[0, 1)`).
    fn gen<T: Standard01>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (floats: `[0, 1)`).
pub trait Standard01 {
    /// Draw one standard sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard01 for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard01 for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard01 for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Distributions over values, sampled with an [`Rng`].
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform range sampling.
    pub mod uniform {
        use crate::Rng;
        use std::ops::{Range, RangeInclusive};

        /// A range usable with [`Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draw one uniform sample from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width range: every word is a valid sample.
                            return rng.next_u64() as $t;
                        }
                        lo + (rng.next_u64() % span) as $t
                    }
                }
            )*};
        }
        int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_sample_range {
            ($($t:ty => $std:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let u = <$t as crate::Standard01>::sample_standard(rng);
                        self.start + (self.end - self.start) * u
                    }
                }
            )*};
        }
        float_sample_range!(f32 => f32, f64 => f64);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.gen::<f64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(5u64..=6);
            assert!((5..=6).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
