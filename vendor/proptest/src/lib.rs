//! Offline stand-in for the subset of the `proptest` API used by the
//! bertscope workspace.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! re-implements the pieces the test suites rely on:
//!
//! - the [`proptest!`] macro (including the `#![proptest_config(..)]`
//!   header form) which turns `fn f(x in strategy, ..)` items into `#[test]`
//!   functions that run the body over many sampled cases,
//! - [`strategy::Strategy`] with `prop_map`, numeric range strategies,
//!   [`strategy::Just`], tuple strategies, [`prop_oneof!`] unions and
//!   [`collection::vec`],
//! - the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` assertion macros,
//! - [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: sampling is purely random (no shrinking and no
//! regression-file persistence), and assertion failures panic immediately
//! with the sampled inputs left to the panic message of the inner assert.

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator driving all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test-specific value.
        #[must_use]
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `0..n`.
        ///
        /// # Panics
        ///
        /// Panics when `n` is zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty domain");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Box this strategy for heterogeneous storage ([`Union`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between alternative strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.next_f64() as $t)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLenRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// A vector strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len) = len.bounds();
        assert!(min_len < max_len, "empty vec length range");
        VecStrategy { element, min_len, max_len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min_len + rng.index(self.max_len - self.min_len);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seed from the test name so distinct properties explore
            // distinct (but reproducible) streams.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                });
            let mut rng = $crate::test_runner::TestRng::seeded(seed);
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in -1.5f32..2.5, c in 0u16..=u16::MAX) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.5..2.5).contains(&b));
            let _always_true = usize::from(c) <= usize::from(u16::MAX);
            prop_assert!(_always_true);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u8..4, 2..5),
                               t in (1usize..3, prop_oneof![Just(10usize), Just(20)])) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            let mapped = (5usize..6).prop_map(|x| x * 2);
            prop_assert_eq!(crate::strategy::Strategy::sample(&mapped,
                &mut crate::test_runner::TestRng::seeded(1)), 10);
            prop_assert!(t.0 >= 1 && (t.1 == 10 || t.1 == 20));
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u64..100) {
            prop_assert!(x < 100);
            prop_assume!(x > 0);
            prop_assert_ne!(x, 0);
        }
    }
}
