//! Offline stand-in for the subset of the `criterion` API used by the
//! bertscope benchmarks.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! keeps `cargo bench` working with the same bench sources: it runs each
//! registered benchmark a configurable number of iterations, reports the
//! median wall-clock time per iteration (plus derived element throughput
//! when declared), and performs none of upstream Criterion's statistical
//! analysis, warm-up scheduling, or HTML reporting.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size, throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, None, f);
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so the report can derive a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time one sample of `f` (upstream runs many iterations per sample;
    /// this shim runs one, which is adequate for the workspace's
    /// millisecond-scale kernels).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

/// Work performed per iteration, for derived-rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter label.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_one<F>(group: &str, id: &BenchmarkId, sample_size: usize, tp: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    while b.samples.len() < sample_size {
        let before = b.samples.len();
        f(&mut b);
        if b.samples.len() == before {
            // The closure never called iter(); avoid an infinite loop.
            break;
        }
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let rate = match tp {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.1} Melem/s", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {:>12.3} ms/iter{rate}", median * 1e3);
}

/// Group benchmark functions under a name, optionally with a configured
/// [`Criterion`] (`name = ..; config = ..; targets = ..` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500usize), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = a_bench
    );

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }
}
