//! M-series lints over a measured [`MemoryProfile`].
//!
//! Unlike the C/D/P/S rules, which lint an operator stream, these rules
//! lint the run-level memory accounting the tracer folds out of the pooled
//! allocator's live-byte samples. They catch accounting bugs (double frees
//! driving live bytes negative) and implausible peaks (a training run whose
//! peak does not even cover the resident weights and gradients).

use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::MemoryProfile;

/// Lint a measured memory profile (rule M001).
///
/// `resident_lower_bound` is the caller's floor on what must be live at the
/// peak — for a traced training step, at least the model weights plus
/// gradients (`2 * params * element_size`). Pass `0` to skip the bound
/// check (e.g. for forward-only traces).
#[must_use]
pub fn check_memory(profile: &MemoryProfile, resident_lower_bound: u64) -> Vec<Finding> {
    let mut out = Vec::new();
    if profile.min_live_bytes < 0 {
        out.push(
            Finding::err(RuleId::MemoryAccounting, "measured live bytes went negative").with_note(
                format!(
                    "minimum live sample {} bytes; frees exceeded allocations",
                    profile.min_live_bytes
                ),
            ),
        );
    }
    if profile.peak_bytes < profile.baseline_bytes {
        out.push(
            Finding::err(RuleId::MemoryAccounting, "measured peak fell below the trace baseline")
                .with_note(format!(
                    "peak {} bytes < baseline {} bytes",
                    profile.peak_bytes, profile.baseline_bytes
                )),
        );
    }
    if resident_lower_bound > 0 && profile.peak_bytes < resident_lower_bound {
        out.push(
            Finding::err(
                RuleId::MemoryAccounting,
                "measured peak does not cover the resident weights+gradients",
            )
            .with_note(format!(
                "peak {} bytes < lower bound {resident_lower_bound} bytes",
                profile.peak_bytes
            )),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(baseline: u64, peak: u64, min_live: i64) -> MemoryProfile {
        MemoryProfile {
            baseline_bytes: baseline,
            peak_bytes: peak,
            min_live_bytes: min_live,
            ..MemoryProfile::default()
        }
    }

    #[test]
    fn consistent_profile_is_clean() {
        let findings = check_memory(&profile(1000, 5000, 1000), 2000);
        assert!(findings.is_empty());
    }

    #[test]
    fn negative_live_bytes_fire_m001() {
        let findings = check_memory(&profile(0, 100, -8), 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule.code(), "M001");
        assert!(findings[0].is_error());
    }

    #[test]
    fn peak_below_baseline_fires_m001() {
        let findings = check_memory(&profile(4096, 1024, 1024), 0);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("baseline"));
    }

    #[test]
    fn peak_below_resident_lower_bound_fires_m001() {
        let findings = check_memory(&profile(100, 500, 100), 10_000);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("weights+gradients"));
        // A zero bound disables the check.
        assert!(check_memory(&profile(100, 500, 100), 0).is_empty());
    }
}
