//! `racecheck`: sweep the static hazard & lifetime analyzer over every
//! paper configuration — BERT-Base/Large x Fp32/Mixed/MixedBf16 x
//! checkpointing on/off x LAMB/Adam, for pre-training, fine-tuning and
//! inference streams.
//!
//! For each stream the analyzer reconstructs the operator dependence DAG
//! from buffer provenance and verifies two schedules against it: plain
//! program order, and the max-parallel ASAP schedule in which every op
//! starts at the first step its dependence predecessors allow (the static
//! analogue of running the stream across unlimited GPU execution streams
//! with event-based synchronization). Buffer lifetimes are replayed through
//! the L-series state machine along the way. Exits nonzero if any stream
//! carries an error-severity finding under either schedule.
//!
//! `racecheck --stats` additionally prints each DAG's depth, width and
//! critical-path FLOPs — the work/span parallelism the schedule analysis
//! exposes.

use bertscope_check::{
    check_schedule, hazard, lifetime, report, DepGraph, Finding, RuleId, Schedule, Severity,
};
use bertscope_model::{
    build_finetune, build_inference, build_iteration, BertConfig, GraphOptions, OptimizerChoice,
    Precision,
};
use bertscope_tensor::OpRecord;

fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "fp32",
        Precision::Mixed => "fp16",
        Precision::MixedBf16 => "bf16",
    }
}

fn optimizer_label(o: OptimizerChoice) -> &'static str {
    match o {
        OptimizerChoice::Lamb => "lamb",
        OptimizerChoice::Adam => "adam",
        OptimizerChoice::None => "none",
    }
}

struct Tally {
    streams: usize,
    errors: usize,
    warnings: usize,
    stats: bool,
}

fn analyze(ops: &[OpRecord]) -> (Vec<Finding>, DepGraph) {
    let graph = DepGraph::build(ops);
    let mut findings = check_schedule(ops, &graph, &Schedule::program_order(ops.len()), "program");
    findings.extend(check_schedule(ops, &graph, &Schedule::asap(&graph), "asap"));
    findings.extend(hazard::check_comm_ordering(ops));
    findings.extend(lifetime::check(ops));
    (findings, graph)
}

fn check_one(tally: &mut Tally, model: &str, workload: &str, opts: GraphOptions, ops: &[OpRecord]) {
    let (findings, graph) = analyze(ops);
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    tally.streams += 1;
    tally.errors += errors;
    tally.warnings += warnings;
    let label = format!(
        "{model} {workload} {} {}{}",
        precision_label(opts.precision),
        optimizer_label(opts.optimizer),
        if opts.checkpoint { " ckpt" } else { "" },
    );
    if findings.is_empty() {
        println!("ok    {label:<44} ({} ops, {} edges)", ops.len(), graph.edges.len());
    } else {
        println!(
            "FAIL  {label:<44} ({} ops, {} edges, {errors} errors, {warnings} warnings)",
            ops.len(),
            graph.edges.len()
        );
        println!("{}", report(&findings));
    }
    if tally.stats {
        println!("      {}", graph.report(ops));
    }
}

/// Check externally-captured operator streams (one per file), e.g. the
/// per-rank traces a `dist::proc` worker dumps with
/// `bertscope_tensor::tracefile`. Returns the process exit code.
fn run_traces(paths: &[String], stats: bool) -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0, stats };
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("racecheck: cannot read {path}: {e}");
                return 2;
            }
        };
        let ops = match bertscope_tensor::tracefile::parse_records(&text) {
            Ok(ops) => ops,
            Err(e) => {
                eprintln!("racecheck: {path}: {e}");
                return 2;
            }
        };
        if ops.is_empty() {
            eprintln!("racecheck: {path}: empty trace");
            return 2;
        }
        let (findings, graph) = analyze(&ops);
        let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
        let warnings = findings.len() - errors;
        tally.streams += 1;
        tally.errors += errors;
        tally.warnings += warnings;
        if findings.is_empty() {
            println!("ok    {path:<44} ({} ops, {} edges)", ops.len(), graph.edges.len());
        } else {
            println!(
                "FAIL  {path:<44} ({} ops, {} edges, {errors} errors, {warnings} warnings)",
                ops.len(),
                graph.edges.len()
            );
            println!("{}", report(&findings));
        }
        if tally.stats {
            println!("      {}", graph.report(&ops));
        }
    }
    println!(
        "racecheck: {} traced streams checked under 2 schedules each, {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

fn run(stats: bool) -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0, stats };
    let models = [("BERT-Base", BertConfig::bert_base()), ("BERT-Large", BertConfig::bert_large())];
    let precisions = [Precision::Fp32, Precision::Mixed, Precision::MixedBf16];
    for (model, cfg) in &models {
        for &precision in &precisions {
            for checkpoint in [false, true] {
                for optimizer in [OptimizerChoice::Lamb, OptimizerChoice::Adam] {
                    let opts = GraphOptions {
                        precision,
                        optimizer,
                        checkpoint,
                        ..GraphOptions::default()
                    };
                    check_one(&mut tally, model, "pretrain", opts, &build_iteration(cfg, &opts));
                    if !checkpoint {
                        // build_finetune does not model checkpointing.
                        check_one(&mut tally, model, "finetune", opts, &build_finetune(cfg, &opts));
                    }
                }
            }
            let inf = GraphOptions {
                precision,
                optimizer: OptimizerChoice::None,
                ..GraphOptions::default()
            };
            check_one(&mut tally, model, "inference", inf, &build_inference(cfg, &inf));
        }
    }
    println!(
        "racecheck: {} streams checked under 2 schedules each, {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => std::process::exit(run(false)),
        Some("--stats") if args.len() == 1 => std::process::exit(run(true)),
        Some("--trace") => {
            let mut stats = false;
            let mut paths: Vec<String> = Vec::new();
            for a in &args[1..] {
                if a == "--stats" {
                    stats = true;
                } else {
                    paths.push(a.clone());
                }
            }
            if paths.is_empty() {
                eprintln!("racecheck: --trace needs at least one trace file");
                std::process::exit(2);
            }
            std::process::exit(run_traces(&paths, stats));
        }
        Some("--list-rules") if args.len() == 1 => {
            for rule in RuleId::all() {
                let code = rule.code();
                if code.starts_with('H') || code.starts_with('L') {
                    println!("{code}  {}", rule.summary());
                }
            }
        }
        Some("--help" | "-h") if args.len() == 1 => {
            println!(
                "racecheck: statically race- and lifetime-check the operator streams of\n\
                 every paper configuration\n\
                 \n\
                 usage: racecheck [--stats | --list-rules | --trace FILE... [--stats]]\n\
                 \n\
                 With no arguments, sweeps BERT-Base/Large x fp32/fp16/bf16 x checkpointing\n\
                 on/off x LAMB/Adam (pre-training, fine-tuning and inference), rebuilds each\n\
                 stream's dependence DAG from buffer provenance, and verifies both program\n\
                 order and the max-parallel ASAP schedule against it. Exits 1 if any stream\n\
                 carries an error-severity finding.\n\
                 \n\
                 --stats        also print DAG depth/width/critical-path parallelism\n\
                 --list-rules   print the H- and L-series rule registry\n\
                 --trace FILE   check externally-captured operator streams instead\n\
                \u{20}               (the per-rank traces dist::proc workers dump)"
            );
        }
        Some(other) => {
            eprintln!("racecheck: unrecognized argument `{other}` (try --help)");
            std::process::exit(2);
        }
    }
}
