//! `racecheck`: sweep the static hazard & lifetime analyzer over every
//! paper configuration — BERT-Base/Large x Fp32/Mixed/MixedBf16 x
//! checkpointing on/off x LAMB/Adam, for pre-training, fine-tuning and
//! inference streams.
//!
//! For each stream the analyzer reconstructs the operator dependence DAG
//! from buffer provenance and verifies two schedules against it: plain
//! program order, and the max-parallel ASAP schedule in which every op
//! starts at the first step its dependence predecessors allow (the static
//! analogue of running the stream across unlimited GPU execution streams
//! with event-based synchronization). Buffer lifetimes are replayed through
//! the L-series state machine along the way. Exits nonzero if any stream
//! carries an error-severity finding under either schedule.
//!
//! `racecheck --stats` additionally prints each DAG's depth, width and
//! critical-path FLOPs — the work/span parallelism the schedule analysis
//! exposes.

use bertscope_check::{
    check_fusion, check_schedule, hazard, lifetime, report, DepGraph, Finding, RuleId, Schedule,
    Severity,
};
use bertscope_model::{
    build_finetune, build_inference, build_iteration, BertConfig, GraphOptions, OptimizerChoice,
    Precision,
};
use bertscope_tensor::sched::{self, FusePattern};
use bertscope_tensor::{AccessSet, OpRecord};

fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "fp32",
        Precision::Mixed => "fp16",
        Precision::MixedBf16 => "bf16",
    }
}

fn optimizer_label(o: OptimizerChoice) -> &'static str {
    match o {
        OptimizerChoice::Lamb => "lamb",
        OptimizerChoice::Adam => "adam",
        OptimizerChoice::None => "none",
    }
}

struct Tally {
    streams: usize,
    errors: usize,
    warnings: usize,
    stats: bool,
}

fn analyze(ops: &[OpRecord]) -> (Vec<Finding>, DepGraph) {
    let graph = DepGraph::build(ops);
    let mut findings = check_schedule(ops, &graph, &Schedule::program_order(ops.len()), "program");
    findings.extend(check_schedule(ops, &graph, &Schedule::asap(&graph), "asap"));
    findings.extend(hazard::check_comm_ordering(ops));
    findings.extend(lifetime::check(ops));
    (findings, graph)
}

fn check_one(tally: &mut Tally, model: &str, workload: &str, opts: GraphOptions, ops: &[OpRecord]) {
    let (findings, graph) = analyze(ops);
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    tally.streams += 1;
    tally.errors += errors;
    tally.warnings += warnings;
    let label = format!(
        "{model} {workload} {} {}{}",
        precision_label(opts.precision),
        optimizer_label(opts.optimizer),
        if opts.checkpoint { " ckpt" } else { "" },
    );
    if findings.is_empty() {
        println!("ok    {label:<44} ({} ops, {} edges)", ops.len(), graph.edges.len());
    } else {
        println!(
            "FAIL  {label:<44} ({} ops, {} edges, {errors} errors, {warnings} warnings)",
            ops.len(),
            graph.edges.len()
        );
        println!("{}", report(&findings));
    }
    if tally.stats {
        println!("      {}", graph.report(ops));
    }
}

/// Check externally-captured operator streams (one per file), e.g. the
/// per-rank traces a `dist::proc` worker dumps with
/// `bertscope_tensor::tracefile`. Returns the process exit code.
fn run_traces(paths: &[String], stats: bool) -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0, stats };
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("racecheck: cannot read {path}: {e}");
                return 2;
            }
        };
        let ops = match bertscope_tensor::tracefile::parse_records(&text) {
            Ok(ops) => ops,
            Err(e) => {
                eprintln!("racecheck: {path}: {e}");
                return 2;
            }
        };
        if ops.is_empty() {
            eprintln!("racecheck: {path}: empty trace");
            return 2;
        }
        let (findings, graph) = analyze(&ops);
        let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
        let warnings = findings.len() - errors;
        tally.streams += 1;
        tally.errors += errors;
        tally.warnings += warnings;
        if findings.is_empty() {
            println!("ok    {path:<44} ({} ops, {} edges)", ops.len(), graph.edges.len());
        } else {
            println!(
                "FAIL  {path:<44} ({} ops, {} edges, {errors} errors, {warnings} warnings)",
                ops.len(),
                graph.edges.len()
            );
            println!("{}", report(&findings));
        }
        if tally.stats {
            println!("      {}", graph.report(&ops));
        }
    }
    println!(
        "racecheck: {} traced streams checked under 2 schedules each, {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

/// Verify the operator-graph scheduler's *emitted* orders: for a sample
/// of the paper configurations, plan a completion order with
/// `bertscope_tensor::sched::plan_order` at several worker counts — with
/// the fusion pass off and on — then re-check that order against the
/// stream's dependence DAG (H-series), verify any fusion grouping with the
/// F-series legality rules, and replay the reordered stream through the
/// communication-ordering and L-series lifetime rules. This is the closed
/// loop the scheduler claims: every schedule it emits, fused or not, is
/// one the static analyzer accepts. A malformed emitted order (not a
/// permutation) is surfaced with the offending task's name instead of a
/// panic.
#[allow(clippy::too_many_lines)]
fn run_sched(stats: bool) -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0, stats };
    let base = BertConfig::bert_base();
    let large = BertConfig::bert_large();
    let opts = |precision, optimizer, checkpoint| GraphOptions {
        precision,
        optimizer,
        checkpoint,
        ..GraphOptions::default()
    };
    let sample: Vec<(&str, &str, GraphOptions, Vec<OpRecord>)> = vec![
        {
            let o = opts(Precision::Fp32, OptimizerChoice::Lamb, false);
            ("BERT-Base", "pretrain", o, build_iteration(&base, &o))
        },
        {
            let o = opts(Precision::Mixed, OptimizerChoice::Lamb, true);
            ("BERT-Base", "pretrain", o, build_iteration(&base, &o))
        },
        {
            let o = opts(Precision::MixedBf16, OptimizerChoice::Adam, false);
            ("BERT-Base", "pretrain", o, build_iteration(&base, &o))
        },
        {
            let o = opts(Precision::Fp32, OptimizerChoice::Lamb, true);
            ("BERT-Large", "pretrain", o, build_iteration(&large, &o))
        },
        {
            let o = opts(Precision::Mixed, OptimizerChoice::Lamb, false);
            ("BERT-Base", "finetune", o, build_finetune(&base, &o))
        },
        {
            let o = opts(Precision::Fp32, OptimizerChoice::None, false);
            ("BERT-Base", "inference", o, build_inference(&base, &o))
        },
        {
            let o = opts(Precision::MixedBf16, OptimizerChoice::None, false);
            ("BERT-Large", "inference", o, build_inference(&large, &o))
        },
    ];
    for (model, workload, o, ops) in &sample {
        let accesses: Vec<&AccessSet> = ops.iter().map(|op| &op.access).collect();
        let graph = DepGraph::build(ops);
        // Plan the legal fusion grouping over the stream's own labels —
        // the same patterns the whole-model task graph uses. Training
        // streams decline every pair (backward keeps the intermediates
        // multi-successor); inference streams merge residual+LayerNorm
        // chains. Either way the grouping must pass the F-rules and the
        // fused emitted orders must still satisfy the per-op DAG.
        let labels: Vec<String> = ops.iter().map(|op| op.name.clone()).collect();
        let patterns = [FusePattern::new("fc1", "gelu"), FusePattern::new("residual", "layernorm")];
        let groups = sched::plan_fusion(&labels, &accesses, &patterns);
        let fused_pairs: usize = groups.iter().map(|g| g.len() - 1).sum();
        let merged: Vec<AccessSet> = groups
            .iter()
            .map(|g| {
                let ga: Vec<&AccessSet> = g.iter().map(|&i| &ops[i].access).collect();
                sched::merge_accesses(&ga)
            })
            .collect();
        let merged_refs: Vec<&AccessSet> = merged.iter().collect();
        for workers in [1usize, 2, 8] {
            for fuse in [false, true] {
                let order = if fuse {
                    sched::expand_order(&groups, &sched::plan_order(&merged_refs, workers))
                } else {
                    sched::plan_order(&accesses, workers)
                };
                let tag = if fuse {
                    format!("sched-w{workers}-fused")
                } else {
                    format!("sched-w{workers}")
                };
                let sched = match Schedule::try_from_completion_order(&order) {
                    Ok(s) => s,
                    Err(e) => {
                        let name = ops.get(e.op()).map_or("<out of range>", |op| op.name.as_str());
                        eprintln!(
                            "racecheck: {model} {workload} {tag}: rejected emitted order: \
                             {e} (task `{name}`)"
                        );
                        return 2;
                    }
                };
                let mut findings = check_schedule(ops, &graph, &sched, &tag);
                if fuse {
                    findings.extend(check_fusion(ops, &groups));
                }
                // Replay the emitted order as a stream: the communication
                // contract and lifetime state machine must hold in that
                // order too, not just the dependence edges.
                let permuted: Vec<OpRecord> = order.iter().map(|&i| ops[i].clone()).collect();
                findings.extend(hazard::check_comm_ordering(&permuted));
                findings.extend(lifetime::check(&permuted));
                let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
                let warnings = findings.len() - errors;
                tally.streams += 1;
                tally.errors += errors;
                tally.warnings += warnings;
                let label = format!(
                    "{model} {workload} {} {}{} w{workers}{}",
                    precision_label(o.precision),
                    optimizer_label(o.optimizer),
                    if o.checkpoint { " ckpt" } else { "" },
                    if fuse { format!(" fused({fused_pairs})") } else { String::new() },
                );
                if findings.is_empty() {
                    println!("ok    {label:<44} ({} ops, {} edges)", ops.len(), graph.edges.len());
                } else {
                    println!(
                        "FAIL  {label:<44} ({} ops, {} edges, {errors} errors, \
                         {warnings} warnings)",
                        ops.len(),
                        graph.edges.len()
                    );
                    println!("{}", report(&findings));
                }
            }
        }
        if tally.stats {
            println!("      {}", graph.report(ops));
        }
    }
    println!(
        "racecheck: {} scheduler-emitted orders checked (fusion off/on), {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

fn run(stats: bool) -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0, stats };
    let models = [("BERT-Base", BertConfig::bert_base()), ("BERT-Large", BertConfig::bert_large())];
    let precisions = [Precision::Fp32, Precision::Mixed, Precision::MixedBf16];
    for (model, cfg) in &models {
        for &precision in &precisions {
            for checkpoint in [false, true] {
                for optimizer in [OptimizerChoice::Lamb, OptimizerChoice::Adam] {
                    let opts = GraphOptions {
                        precision,
                        optimizer,
                        checkpoint,
                        ..GraphOptions::default()
                    };
                    check_one(&mut tally, model, "pretrain", opts, &build_iteration(cfg, &opts));
                    if !checkpoint {
                        // build_finetune does not model checkpointing.
                        check_one(&mut tally, model, "finetune", opts, &build_finetune(cfg, &opts));
                    }
                }
            }
            let inf = GraphOptions {
                precision,
                optimizer: OptimizerChoice::None,
                ..GraphOptions::default()
            };
            check_one(&mut tally, model, "inference", inf, &build_inference(cfg, &inf));
        }
    }
    println!(
        "racecheck: {} streams checked under 2 schedules each, {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => std::process::exit(run(false)),
        Some("--stats") if args.len() == 1 => std::process::exit(run(true)),
        Some("--sched") if args.len() <= 2 => {
            let stats = args.get(1).map(String::as_str) == Some("--stats");
            if args.len() == 2 && !stats {
                eprintln!("racecheck: unrecognized argument after --sched (try --help)");
                std::process::exit(2);
            }
            std::process::exit(run_sched(stats));
        }
        Some("--trace") => {
            let mut stats = false;
            let mut paths: Vec<String> = Vec::new();
            for a in &args[1..] {
                if a == "--stats" {
                    stats = true;
                } else {
                    paths.push(a.clone());
                }
            }
            if paths.is_empty() {
                eprintln!("racecheck: --trace needs at least one trace file");
                std::process::exit(2);
            }
            std::process::exit(run_traces(&paths, stats));
        }
        Some("--list-rules") if args.len() == 1 => {
            for rule in RuleId::all() {
                let code = rule.code();
                if code.starts_with('H') || code.starts_with('L') || code.starts_with('F') {
                    println!("{code}  {}", rule.summary());
                }
            }
        }
        Some("--help" | "-h") if args.len() == 1 => {
            println!(
                "racecheck: statically race- and lifetime-check the operator streams of\n\
                 every paper configuration\n\
                 \n\
                 usage: racecheck [--stats | --sched [--stats] | --list-rules |\n\
                \u{20}                 --trace FILE... [--stats]]\n\
                 \n\
                 With no arguments, sweeps BERT-Base/Large x fp32/fp16/bf16 x checkpointing\n\
                 on/off x LAMB/Adam (pre-training, fine-tuning and inference), rebuilds each\n\
                 stream's dependence DAG from buffer provenance, and verifies both program\n\
                 order and the max-parallel ASAP schedule against it. Exits 1 if any stream\n\
                 carries an error-severity finding.\n\
                 \n\
                 --stats        also print DAG depth/width/critical-path parallelism\n\
                 --sched        plan completion orders with the operator-graph scheduler\n\
                \u{20}               at 1/2/8 workers (fusion pass off and on) for a sample of\n\
                \u{20}               the configurations, verify any fusion grouping with the\n\
                \u{20}               F-rules, and re-check each emitted order against the H-\n\
                \u{20}               and L-rules; malformed orders are reported with the\n\
                \u{20}               offending task's name\n\
                 --list-rules   print the H-, L- and F-series rule registry\n\
                 --trace FILE   check externally-captured operator streams instead\n\
                \u{20}               (the per-rank traces dist::proc workers dump)"
            );
        }
        Some(other) => {
            eprintln!("racecheck: unrecognized argument `{other}` (try --help)");
            std::process::exit(2);
        }
    }
}
