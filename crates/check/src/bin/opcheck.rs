//! `opcheck`: sweep the static operator-stream verifier over every paper
//! configuration — BERT-Base/Large x Fp32/Mixed/MixedBf16 x checkpointing
//! on/off x LAMB/Adam, for pre-training, fine-tuning and inference streams
//! — and exit nonzero if any stream carries an error-severity finding.
//!
//! `opcheck --list-rules` prints the rule registry.

use bertscope_check::{check_iteration, report, RuleId, Severity};
use bertscope_model::{
    build_finetune, build_inference, build_iteration, BertConfig, GraphOptions, OptimizerChoice,
    Precision,
};
use bertscope_tensor::OpRecord;

fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::Fp32 => "fp32",
        Precision::Mixed => "fp16",
        Precision::MixedBf16 => "bf16",
    }
}

fn optimizer_label(o: OptimizerChoice) -> &'static str {
    match o {
        OptimizerChoice::Lamb => "lamb",
        OptimizerChoice::Adam => "adam",
        OptimizerChoice::None => "none",
    }
}

struct Tally {
    streams: usize,
    errors: usize,
    warnings: usize,
}

fn check_one(
    tally: &mut Tally,
    model: &str,
    workload: &str,
    cfg: &BertConfig,
    opts: GraphOptions,
    ops: &[OpRecord],
) {
    let findings = check_iteration(cfg, &opts, ops);
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    tally.streams += 1;
    tally.errors += errors;
    tally.warnings += warnings;
    let label = format!(
        "{model} {workload} {} {}{}",
        precision_label(opts.precision),
        optimizer_label(opts.optimizer),
        if opts.checkpoint { " ckpt" } else { "" },
    );
    if findings.is_empty() {
        println!("ok    {label:<44} ({} ops)", ops.len());
    } else {
        println!("FAIL  {label:<44} ({} ops, {errors} errors, {warnings} warnings)", ops.len());
        println!("{}", report(&findings));
    }
}

fn run() -> i32 {
    let mut tally = Tally { streams: 0, errors: 0, warnings: 0 };
    let models = [("BERT-Base", BertConfig::bert_base()), ("BERT-Large", BertConfig::bert_large())];
    let precisions = [Precision::Fp32, Precision::Mixed, Precision::MixedBf16];
    for (model, cfg) in &models {
        for &precision in &precisions {
            for checkpoint in [false, true] {
                for optimizer in [OptimizerChoice::Lamb, OptimizerChoice::Adam] {
                    let opts = GraphOptions {
                        precision,
                        optimizer,
                        checkpoint,
                        ..GraphOptions::default()
                    };
                    check_one(
                        &mut tally,
                        model,
                        "pretrain",
                        cfg,
                        opts,
                        &build_iteration(cfg, &opts),
                    );
                    if !checkpoint {
                        // build_finetune does not model checkpointing.
                        check_one(
                            &mut tally,
                            model,
                            "finetune",
                            cfg,
                            opts,
                            &build_finetune(cfg, &opts),
                        );
                    }
                }
            }
            let inf = GraphOptions {
                precision,
                optimizer: OptimizerChoice::None,
                ..GraphOptions::default()
            };
            check_one(&mut tally, model, "inference", cfg, inf, &build_inference(cfg, &inf));
        }
    }
    println!(
        "opcheck: {} streams checked, {} errors, {} warnings",
        tally.streams, tally.errors, tally.warnings
    );
    i32::from(tally.errors > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => std::process::exit(run()),
        Some("--list-rules") if args.len() == 1 => {
            for rule in RuleId::all() {
                println!("{}  {}", rule.code(), rule.summary());
            }
        }
        Some("--help" | "-h") if args.len() == 1 => {
            println!(
                "opcheck: statically verify the operator streams of every paper configuration\n\
                 \n\
                 usage: opcheck [--list-rules]\n\
                 \n\
                 With no arguments, sweeps BERT-Base/Large x fp32/fp16/bf16 x checkpointing\n\
                 on/off x LAMB/Adam (pre-training, fine-tuning and inference) and exits 1 if\n\
                 any stream carries an error-severity finding."
            );
        }
        Some(other) => {
            eprintln!("opcheck: unrecognized argument `{other}` (try --help)");
            std::process::exit(2);
        }
    }
}
