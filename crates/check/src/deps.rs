//! Operator-DAG reconstruction from buffer provenance.
//!
//! Every [`OpRecord`] may carry an [`AccessSet`] naming the buffers it
//! reads and writes (minted by `bertscope_tensor::alloc` for traced
//! streams, by `bertscope_model::BufEnv` for analytic ones). From those
//! sets this module rebuilds the true dependence DAG of the stream —
//! producer→consumer (RAW), anti (WAR) and output (WAW) edges — which is
//! what a GPU runtime's stream/event machinery enforces dynamically and
//! this crate verifies statically.
//!
//! Ops whose access set is empty are *opaque*: they contribute no edges and
//! no lifetime events, so un-annotated streams degrade gracefully to
//! vacuous hazard checks rather than false positives.

use bertscope_tensor::{BufId, OpRecord};
use std::collections::BTreeMap;

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write: the consumer reads a value the producer wrote.
    Raw,
    /// Write-after-read: the writer overwrites a value the reader consumed.
    War,
    /// Write-after-write: two writers of the same buffer must stay ordered.
    Waw,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DepKind::Raw => "RAW",
            DepKind::War => "WAR",
            DepKind::Waw => "WAW",
        })
    }
}

/// One dependence edge between two ops (indices into the checked stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Stream index of the earlier op (the dependence source).
    pub from: usize,
    /// Stream index of the later op (must not start before `from`).
    pub to: usize,
    /// Hazard class of the edge.
    pub kind: DepKind,
    /// The buffer the two ops conflict on.
    pub buf: BufId,
}

/// The reconstructed dependence graph of one operator stream.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Number of ops in the stream the graph was built from.
    pub ops: usize,
    /// Every dependence edge, in discovery order (sorted by `to`, then
    /// `from`).
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Build the dependence graph of `ops` from their access sets.
    ///
    /// Per buffer, the builder tracks the last writer and the readers since
    /// that write: a read depends on the last writer (RAW); a write depends
    /// on those readers (WAR) and on the previous writer (WAW). An op both
    /// reading and writing a buffer (in-place update) orders as a read then
    /// a write; self-edges are never emitted.
    #[must_use]
    pub fn build(ops: &[OpRecord]) -> Self {
        struct BufState {
            last_writer: Option<usize>,
            readers_since: Vec<usize>,
        }
        let mut state: BTreeMap<BufId, BufState> = BTreeMap::new();
        let mut edges = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            for &b in &op.access.reads {
                let s = state
                    .entry(b)
                    .or_insert(BufState { last_writer: None, readers_since: Vec::new() });
                if let Some(w) = s.last_writer {
                    if w != i {
                        edges.push(DepEdge { from: w, to: i, kind: DepKind::Raw, buf: b });
                    }
                }
                s.readers_since.push(i);
            }
            for &b in &op.access.writes {
                let s = state
                    .entry(b)
                    .or_insert(BufState { last_writer: None, readers_since: Vec::new() });
                for &r in &s.readers_since {
                    if r != i {
                        edges.push(DepEdge { from: r, to: i, kind: DepKind::War, buf: b });
                    }
                }
                if let Some(w) = s.last_writer {
                    if w != i {
                        edges.push(DepEdge { from: w, to: i, kind: DepKind::Waw, buf: b });
                    }
                }
                s.last_writer = Some(i);
                s.readers_since.clear();
            }
        }
        edges.sort_by_key(|e| (e.to, e.from, e.kind));
        edges.dedup_by_key(|e| (e.to, e.from, e.kind, e.buf));
        DepGraph { ops: ops.len(), edges }
    }

    /// Successor adjacency lists (by op index).
    #[must_use]
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.ops];
        for e in &self.edges {
            succ[e.from].push(e.to);
        }
        succ
    }

    /// Predecessor adjacency lists (by op index).
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut pred = vec![Vec::new(); self.ops];
        for e in &self.edges {
            pred[e.to].push(e.from);
        }
        pred
    }

    /// ASAP level of every op: 0 for ops with no predecessors, else one
    /// more than the deepest predecessor. This is the max-parallel legal
    /// schedule — every op starts the first step its inputs allow.
    #[must_use]
    pub fn asap_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.ops];
        // Edges always point forward in the stream, so one in-order pass
        // settles every level.
        for e in &self.edges {
            level[e.to] = level[e.to].max(level[e.from] + 1);
        }
        level
    }

    /// The FLOP total along the heaviest dependence chain — the work that
    /// cannot be parallelized away no matter how many execution streams the
    /// device offers.
    #[must_use]
    pub fn critical_path_flops(&self, ops: &[OpRecord]) -> u64 {
        assert_eq!(ops.len(), self.ops, "graph built from a different stream");
        let mut best = vec![0u64; self.ops];
        for (i, op) in ops.iter().enumerate() {
            best[i] += op.flops;
        }
        // In-order relaxation works because every edge points forward.
        let mut chain = best.clone();
        for e in &self.edges {
            let through = chain[e.from] + ops[e.to].flops;
            chain[e.to] = chain[e.to].max(through);
        }
        chain.into_iter().max().unwrap_or(0)
    }

    /// Drop every edge implied by a longer path (transitive reduction).
    ///
    /// The reduction preserves reachability exactly; hazard checking uses
    /// the full edge set, while reports and DOT-style dumps read better
    /// reduced.
    #[must_use]
    pub fn transitive_reduction(&self) -> Vec<DepEdge> {
        let succ = self.successors();
        let mut keep = Vec::new();
        for e in &self.edges {
            // e is redundant iff some other successor of `from` reaches `to`.
            let redundant = succ[e.from]
                .iter()
                .any(|&mid| mid != e.to && mid < e.to && reaches(&succ, mid, e.to));
            if !redundant {
                keep.push(*e);
            }
        }
        keep.dedup_by_key(|e| (e.to, e.from));
        keep
    }

    /// Summary statistics of the DAG under its ASAP schedule.
    #[must_use]
    pub fn report(&self, ops: &[OpRecord]) -> DagReport {
        let levels = self.asap_levels();
        let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
        let mut width = vec![0usize; depth];
        let annotated = ops.iter().filter(|o| !o.access.is_empty()).count();
        for (i, &l) in levels.iter().enumerate() {
            if !ops[i].access.is_empty() {
                width[l] += 1;
            }
        }
        DagReport {
            ops: self.ops,
            annotated_ops: annotated,
            edges: self.edges.len(),
            depth,
            max_width: width.iter().copied().max().unwrap_or(0),
            critical_path_flops: self.critical_path_flops(ops),
            total_flops: ops.iter().map(|o| o.flops).sum(),
        }
    }
}

fn reaches(succ: &[Vec<usize>], from: usize, to: usize) -> bool {
    // Forward-pointing edges make this a DAG walk bounded by `to`.
    let mut stack = vec![from];
    let mut seen = vec![false; succ.len()];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if n > to || seen[n] {
            continue;
        }
        seen[n] = true;
        stack.extend(succ[n].iter().copied().filter(|&s| s <= to));
    }
    false
}

/// Parallelism statistics of one stream's dependence DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagReport {
    /// Ops in the stream.
    pub ops: usize,
    /// Ops carrying buffer provenance (the rest are opaque).
    pub annotated_ops: usize,
    /// Dependence edges.
    pub edges: usize,
    /// Length of the longest dependence chain, in scheduling steps.
    pub depth: usize,
    /// Most annotated ops runnable in one ASAP step (available parallelism).
    pub max_width: usize,
    /// FLOPs on the heaviest dependence chain.
    pub critical_path_flops: u64,
    /// FLOPs across the whole stream.
    pub total_flops: u64,
}

impl DagReport {
    /// Ratio of total work to critical-path work — the classic
    /// work/span parallelism bound.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.critical_path_flops == 0 {
            1.0
        } else {
            self.total_flops as f64 / self.critical_path_flops as f64
        }
    }
}

impl std::fmt::Display for DagReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops ({} annotated), {} edges, depth {}, max width {}, \
             critical path {:.3e} of {:.3e} FLOPs (parallelism {:.1}x)",
            self.ops,
            self.annotated_ops,
            self.edges,
            self.depth,
            self.max_width,
            self.critical_path_flops as f64,
            self.total_flops as f64,
            self.parallelism()
        )
    }
}

/// Why a claimed permutation cannot be turned into a [`Schedule`]: the
/// executor (or a corrupted report) emitted an order that is not a
/// permutation of `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// An op index exceeds the stream length.
    OutOfRange {
        /// The offending op index.
        op: usize,
        /// The step it was claimed to run at.
        step: usize,
        /// Number of ops in the stream.
        len: usize,
    },
    /// The same op appears at two steps.
    Duplicate {
        /// The offending op index.
        op: usize,
        /// The step it first appeared at.
        first_step: usize,
        /// The later step it reappeared at.
        second_step: usize,
    },
}

impl ScheduleError {
    /// The op index the error is about — callers with the stream in hand
    /// can name the offending task in their diagnostics.
    #[must_use]
    pub fn op(&self) -> usize {
        match *self {
            ScheduleError::OutOfRange { op, .. } | ScheduleError::Duplicate { op, .. } => op,
        }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ScheduleError::OutOfRange { op, step, len } => {
                write!(f, "not a permutation: op {op} at step {step} out of range for {len} ops")
            }
            ScheduleError::Duplicate { op, first_step, second_step } => {
                write!(
                    f,
                    "not a permutation: op {op} appears at step {first_step} and again at \
                     step {second_step}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A candidate execution schedule: the step at which each op starts. Ops
/// sharing a step are claimed to run concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `step_of[i]` is the step op `i` starts in.
    pub step_of: Vec<usize>,
}

impl Schedule {
    /// The serial program-order schedule: op `i` runs at step `i`.
    #[must_use]
    pub fn program_order(ops: usize) -> Self {
        Schedule { step_of: (0..ops).collect() }
    }

    /// A schedule from explicit per-op steps.
    #[must_use]
    pub fn from_steps(step_of: Vec<usize>) -> Self {
        Schedule { step_of }
    }

    /// The serial schedule that executes ops in the order of `perm`
    /// (`perm[k]` is the op run at step `k`).
    ///
    /// # Panics
    ///
    /// Panics when `perm` is not a permutation of `0..len` — an op index
    /// out of range, or the same op at two steps. Use
    /// [`Schedule::try_from_permutation`] to handle that structurally.
    #[must_use]
    pub fn from_permutation(perm: &[usize]) -> Self {
        match Self::try_from_permutation(perm) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Schedule::from_permutation`]: returns a structured
    /// [`ScheduleError`] instead of panicking when `perm` is not a
    /// permutation of `0..len`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::OutOfRange`] when an op index exceeds the stream,
    /// [`ScheduleError::Duplicate`] when an op appears at two steps.
    pub fn try_from_permutation(perm: &[usize]) -> Result<Self, ScheduleError> {
        let mut step_of = vec![usize::MAX; perm.len()];
        for (step, &op) in perm.iter().enumerate() {
            if op >= perm.len() {
                return Err(ScheduleError::OutOfRange { op, step, len: perm.len() });
            }
            if step_of[op] != usize::MAX {
                return Err(ScheduleError::Duplicate {
                    op,
                    first_step: step_of[op],
                    second_step: step,
                });
            }
            step_of[op] = step;
        }
        Ok(Schedule { step_of })
    }

    /// The serial schedule replaying an executor's observed *completion
    /// order* — e.g. [`bertscope_tensor::sched::RunReport::completion_order`]
    /// from the deferred operator-graph scheduler — so an emitted schedule
    /// can be re-checked against the very hazard rules that gate program
    /// order.
    ///
    /// Semantically [`Schedule::from_permutation`]; the separate name
    /// records intent (a measured retirement order, not a hypothetical).
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..len`. Use
    /// [`Schedule::try_from_completion_order`] to handle that structurally.
    #[must_use]
    pub fn from_completion_order(order: &[usize]) -> Self {
        Self::from_permutation(order)
    }

    /// Fallible [`Schedule::from_completion_order`]: a malformed executor
    /// report (duplicate or out-of-range task index) becomes a structured
    /// [`ScheduleError`] naming the offending op instead of a panic —
    /// `racecheck --sched` surfaces it with the task's name.
    ///
    /// # Errors
    ///
    /// See [`Schedule::try_from_permutation`].
    pub fn try_from_completion_order(order: &[usize]) -> Result<Self, ScheduleError> {
        Self::try_from_permutation(order)
    }

    /// The max-parallel ASAP schedule of a dependence graph.
    #[must_use]
    pub fn asap(graph: &DepGraph) -> Self {
        Schedule { step_of: graph.asap_levels() }
    }
}

/// A buffer lifetime event reconstructed from access order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The buffer.
    pub buf: BufId,
    /// Op index of the explicit allocation, or of the first write when the
    /// stream carries no explicit alloc events. `None` for *foreign*
    /// buffers (read before any write — weights, inputs, RNG state): they
    /// live across the stream and are exempt from leak detection.
    pub alloc: Option<usize>,
    /// Op index of the explicit release to the pool, when the stream
    /// records one.
    pub free: Option<usize>,
    /// Op index of the last read or write.
    pub last_use: Option<usize>,
}

/// Reconstruct per-buffer lifetimes from explicit `allocs`/`frees` events
/// when present, falling back to first-write/last-use order otherwise.
#[must_use]
pub fn annotate_lifetimes(ops: &[OpRecord]) -> BTreeMap<BufId, Lifetime> {
    let mut lifetimes: BTreeMap<BufId, Lifetime> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        for &b in &op.access.allocs {
            lifetimes
                .entry(b)
                .or_insert(Lifetime { buf: b, alloc: None, free: None, last_use: None })
                .alloc
                .get_or_insert(i);
        }
        for &b in &op.access.reads {
            // A read before any write or alloc marks a foreign buffer:
            // entry stays with alloc == None.
            let lt = lifetimes.entry(b).or_insert(Lifetime {
                buf: b,
                alloc: None,
                free: None,
                last_use: None,
            });
            lt.last_use = Some(i);
        }
        for &b in &op.access.writes {
            let lt = lifetimes.entry(b).or_insert(Lifetime {
                buf: b,
                alloc: Some(i),
                free: None,
                last_use: None,
            });
            // First write allocates, unless the buffer was already foreign
            // (read first) or explicitly allocated.
            lt.last_use = Some(i);
        }
        for &b in &op.access.frees {
            let lt = lifetimes.entry(b).or_insert(Lifetime {
                buf: b,
                alloc: None,
                free: None,
                last_use: None,
            });
            if lt.free.is_none() {
                lt.free = Some(i);
            }
        }
    }
    lifetimes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{AccessSet, Category, DType, OpKind, Phase};

    fn op(name: &str, reads: &[BufId], writes: &[BufId]) -> OpRecord {
        OpRecord {
            access: AccessSet::new(reads, writes),
            name: name.into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops: 10,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    fn bufs<const N: usize>() -> [BufId; N] {
        std::array::from_fn(|_| BufId::fresh())
    }

    #[test]
    fn raw_war_waw_edges_are_found() {
        let [a, b] = bufs();
        let ops = vec![
            op("w0", &[], &[a]),  // writes a
            op("r0", &[a], &[b]), // reads a (RAW from 0), writes b
            op("w1", &[], &[a]),  // rewrites a: WAR from 1, WAW from 0
        ];
        let g = DepGraph::build(&ops);
        let kinds: Vec<(usize, usize, DepKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(kinds.contains(&(0, 1, DepKind::Raw)));
        assert!(kinds.contains(&(1, 2, DepKind::War)));
        assert!(kinds.contains(&(0, 2, DepKind::Waw)));
    }

    #[test]
    fn opaque_ops_contribute_no_edges() {
        let [a] = bufs();
        let ops = vec![op("w", &[], &[a]), op("opaque", &[], &[]), op("r", &[a], &[])];
        let g = DepGraph::build(&ops);
        assert!(g.edges.iter().all(|e| e.from != 1 && e.to != 1));
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn in_place_update_emits_no_self_edge() {
        let [a] = bufs();
        let ops = vec![op("init", &[], &[a]), op("inplace", &[a], &[a])];
        let g = DepGraph::build(&ops);
        assert!(g.edges.iter().all(|e| e.from != e.to));
        // RAW and WAW from the init write.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn asap_levels_expose_parallelism() {
        let [a, b, c] = bufs();
        // Two independent writers feed one consumer.
        let ops = vec![op("w0", &[], &[a]), op("w1", &[], &[b]), op("r", &[a, b], &[c])];
        let g = DepGraph::build(&ops);
        assert_eq!(g.asap_levels(), vec![0, 0, 1]);
        let rep = g.report(&ops);
        assert_eq!(rep.depth, 2);
        assert_eq!(rep.max_width, 2);
        assert_eq!(rep.total_flops, 30);
        assert_eq!(rep.critical_path_flops, 20);
    }

    #[test]
    fn transitive_reduction_drops_implied_edges() {
        let [a, b] = bufs();
        // 0 -> 1 -> 2 and the direct RAW 0 -> 2 (reads a, which 0 wrote).
        let ops = vec![op("w", &[], &[a]), op("mid", &[a], &[b]), op("end", &[a, b], &[])];
        let g = DepGraph::build(&ops);
        assert_eq!(g.edges.len(), 3);
        let reduced = g.transitive_reduction();
        assert_eq!(reduced.len(), 2, "0->2 is implied by 0->1->2: {reduced:?}");
        assert!(reduced.iter().all(|e| (e.from, e.to) != (0, 2)));
    }

    #[test]
    fn critical_path_tracks_heaviest_chain() {
        let [a, b] = bufs();
        let mut heavy = op("heavy", &[], &[a]);
        heavy.flops = 1000;
        let ops = vec![heavy, op("light", &[], &[b]), op("sink", &[a], &[])];
        let g = DepGraph::build(&ops);
        assert_eq!(g.critical_path_flops(&ops), 1010);
    }

    #[test]
    fn lifetimes_distinguish_foreign_and_local_buffers() {
        let [w, x] = bufs();
        // `w` is read before ever being written (a weight); `x` is written
        // first (a stream-local activation).
        let ops = vec![op("use_w", &[w], &[x]), op("use_x", &[x], &[])];
        let lt = annotate_lifetimes(&ops);
        assert_eq!(lt[&w].alloc, None, "foreign buffer");
        assert_eq!(lt[&x].alloc, Some(0));
        assert_eq!(lt[&x].last_use, Some(1));
        assert_eq!(lt[&x].free, None);
    }

    #[test]
    fn schedule_constructors_agree() {
        assert_eq!(Schedule::program_order(3), Schedule::from_permutation(&[0, 1, 2]));
        let s = Schedule::from_permutation(&[2, 0, 1]);
        assert_eq!(s.step_of, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation: op 0 appears at step 0 and again at step 1")]
    fn bad_permutation_is_rejected() {
        let _ = Schedule::from_permutation(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation: op 7 at step 2 out of range for 3 ops")]
    fn out_of_range_op_is_rejected() {
        let _ = Schedule::from_permutation(&[0, 1, 7]);
    }

    #[test]
    fn completion_order_replays_as_a_serial_schedule() {
        let s = Schedule::from_completion_order(&[2, 0, 1]);
        assert_eq!(s, Schedule::from_permutation(&[2, 0, 1]));
    }

    #[test]
    fn try_constructors_return_structured_errors() {
        let dup = Schedule::try_from_completion_order(&[0, 0, 1]).unwrap_err();
        assert_eq!(dup, ScheduleError::Duplicate { op: 0, first_step: 0, second_step: 1 });
        assert_eq!(dup.op(), 0);
        assert_eq!(
            dup.to_string(),
            "not a permutation: op 0 appears at step 0 and again at step 1"
        );
        let oor = Schedule::try_from_permutation(&[0, 1, 7]).unwrap_err();
        assert_eq!(oor, ScheduleError::OutOfRange { op: 7, step: 2, len: 3 });
        assert_eq!(oor.op(), 7);
        assert_eq!(oor.to_string(), "not a permutation: op 7 at step 2 out of range for 3 ops");
        assert_eq!(
            Schedule::try_from_completion_order(&[2, 0, 1]).unwrap(),
            Schedule::from_completion_order(&[2, 0, 1])
        );
    }
}
