//! Diagnostics produced by the checker.

use crate::rules::RuleId;
use bertscope_tensor::OpRecord;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// The stream provably violates an invariant; `opcheck` exits nonzero.
    Error,
    /// Suspicious but not provably wrong; reported, never fatal.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One diagnostic: which rule fired, where, and why.
///
/// Renders in rustc/clippy style:
///
/// ```text
/// error[C001]: recorded FLOPs disagree with the GEMM spec
///   --> op #42 `l3.fc1.gemm.fwd`
///   = note: recorded 100 FLOPs, spec nn,4,4,2 implies 2*4*4*2*1 = 64
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Severity of the violation.
    pub severity: Severity,
    /// Index of the offending op in the checked stream, when a single op is
    /// at fault (stream-level findings have none).
    pub op_index: Option<usize>,
    /// Name of the offending op, when one is at fault.
    pub op_name: Option<String>,
    /// Human-readable statement of the violation.
    pub message: String,
    /// Optional expected-vs-recorded elaboration.
    pub note: Option<String>,
}

impl Finding {
    /// An error-severity finding with no location yet.
    #[must_use]
    pub fn err(rule: RuleId, message: impl Into<String>) -> Self {
        Finding {
            rule,
            severity: Severity::Error,
            op_index: None,
            op_name: None,
            message: message.into(),
            note: None,
        }
    }

    /// A warning-severity finding with no location yet.
    #[must_use]
    pub fn warn(rule: RuleId, message: impl Into<String>) -> Self {
        Finding { severity: Severity::Warning, ..Finding::err(rule, message) }
    }

    /// Attach the offending op's stream index and name.
    #[must_use]
    pub fn at(mut self, index: usize, op: &OpRecord) -> Self {
        self.op_index = Some(index);
        self.op_name = Some(op.name.clone());
        self
    }

    /// Attach an expected-vs-recorded note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Whether this finding is fatal for `opcheck`.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule.code(), self.message)?;
        if let Some(i) = self.op_index {
            match &self.op_name {
                Some(name) => write!(f, "\n  --> op #{i} `{name}`")?,
                None => write!(f, "\n  --> op #{i}")?,
            }
        }
        if let Some(note) = &self.note {
            write!(f, "\n  = note: {note}")?;
        }
        Ok(())
    }
}

/// Sort findings for display: errors first, then by rule code, then by
/// stream position.
pub(crate) fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.severity, a.rule.code(), a.op_index).cmp(&(b.severity, b.rule.code(), b.op_index))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, DType, OpKind, Phase};

    fn op(name: &str) -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: name.into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: Some(3),
            gemm: None,
            flops: 1,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    #[test]
    fn display_is_rustc_style() {
        let finding = Finding::err(RuleId::GemmFlops, "recorded FLOPs disagree with the GEMM spec")
            .at(42, &op("l3.fc1.gemm.fwd"))
            .with_note("recorded 100 FLOPs, spec implies 64");
        let text = finding.to_string();
        assert!(text.starts_with("error[C001]: "));
        assert!(text.contains("--> op #42 `l3.fc1.gemm.fwd`"));
        assert!(text.contains("= note: recorded 100"));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut v = vec![
            Finding::warn(RuleId::GhostOp, "w"),
            Finding::err(RuleId::PhaseOrder, "e2").at(9, &op("x")),
            Finding::err(RuleId::GemmFlops, "e1"),
        ];
        sort(&mut v);
        assert_eq!(v[0].rule, RuleId::GemmFlops);
        assert_eq!(v[1].rule, RuleId::PhaseOrder);
        assert_eq!(v[2].severity, Severity::Warning);
    }
}
