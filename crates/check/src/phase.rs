//! P-series lints: phase legality.
//!
//! A training iteration is legal when: every layer's forward precedes its
//! backward (P001); the forward pass ascends the layer stack and the
//! backward pass descends it (P002) — an ordering that holds under
//! activation checkpointing too, because both the segments and the layers
//! within each segment are walked in reverse; recompute work sits strictly
//! between the end of the forward pass and the owning layer's backward
//! (P003); a stream that backpropagates anything backpropagates everything
//! it forwarded, and never updates weights without gradients (P004); and
//! the optimizer runs last, gradient-norm first, with every LAMB stage-2
//! preceded by its stage-1 (P001/P005).
//!
//! Communication ops ([`OpKind::Comm`]) are exempt from ordering: overlap
//! with both passes is exactly what distributed schedules do.

use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{Category, OpKind, OpRecord, Phase};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = Vec::new();
    let view: Vec<(usize, &OpRecord)> = ops
        .iter()
        .enumerate()
        .filter(|&(_, o)| {
            !matches!(o.kind, OpKind::Copy | OpKind::Comm) && o.phase != Phase::Communication
        })
        .collect();
    update_last(&view, &mut out);
    category_phase_agreement(&view, &mut out);
    per_layer_order(&view, &mut out);
    recompute_placement(&view, &mut out);
    missing_backward(&view, &mut out);
    optimizer_stage_order(&view, &mut out);
    out
}

/// P001: once the optimizer update begins, nothing else may run.
fn update_last(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    let Some(first) = view.iter().position(|&(_, o)| o.phase == Phase::Update) else {
        return;
    };
    for &(i, op) in &view[first..] {
        if op.phase != Phase::Update {
            out.push(
                Finding::err(RuleId::PhaseOrder, "op runs after the optimizer update began")
                    .at(i, op)
                    .with_note(format!("{} work must precede the weight update", op.phase)),
            );
        }
    }
}

/// P001: update-phase categories (optimizer kernels and loss-scaler
/// bookkeeping) appear only in the update phase, and the update phase
/// contains only those categories.
fn category_phase_agreement(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    for &(i, op) in view {
        let update_cat = matches!(
            op.category,
            Category::GradNorm | Category::LambStage1 | Category::LambStage2 | Category::LossScale
        );
        if op.phase == Phase::Update && !update_cat {
            out.push(
                Finding::err(RuleId::PhaseOrder, "non-optimizer op in the update phase")
                    .at(i, op)
                    .with_note(format!("category {} cannot run as a weight update", op.category)),
            );
        }
        if op.phase != Phase::Update && update_cat {
            out.push(
                Finding::err(RuleId::PhaseOrder, "update-phase op outside the update phase")
                    .at(i, op)
                    .with_note(format!("category {} belongs to the update phase", op.category)),
            );
        }
    }
}

/// P001 per layer + P002 stack order.
fn per_layer_order(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    let mut last_fwd: BTreeMap<usize, usize> = BTreeMap::new();
    let mut first_bwd: BTreeMap<usize, usize> = BTreeMap::new();
    for &(i, op) in view {
        if let Some(l) = op.layer {
            match op.phase {
                Phase::Forward => {
                    last_fwd.insert(l, i);
                }
                Phase::Backward => {
                    first_bwd.entry(l).or_insert(i);
                }
                _ => {}
            }
        }
    }
    for (l, &fwd) in &last_fwd {
        if let Some(&bwd) = first_bwd.get(l) {
            if fwd > bwd {
                out.push(Finding::err(
                    RuleId::PhaseOrder,
                    format!(
                        "layer {l} forward op (op #{fwd}) runs after its backward began (op #{bwd})"
                    ),
                ));
            }
        }
    }
    // Forward ascends the stack; backward descends it.
    let mut prev_fwd: Option<usize> = None;
    let mut prev_bwd: Option<usize> = None;
    for &(i, op) in view {
        let Some(l) = op.layer else { continue };
        match op.phase {
            Phase::Forward => {
                if prev_fwd.is_some_and(|p| l < p) {
                    out.push(
                        Finding::err(RuleId::LayerOrder, "forward pass revisits an earlier layer")
                            .at(i, op)
                            .with_note(format!(
                                "layer {l} after layer {}",
                                prev_fwd.expect("checked")
                            )),
                    );
                }
                prev_fwd = Some(l);
            }
            Phase::Backward => {
                if prev_bwd.is_some_and(|p| l > p) {
                    out.push(
                        Finding::err(RuleId::LayerOrder, "backward pass ascends the layer stack")
                            .at(i, op)
                            .with_note(format!(
                                "layer {l} after layer {}; backprop must walk layers in reverse",
                                prev_bwd.expect("checked")
                            )),
                    );
                }
                prev_bwd = Some(l);
            }
            _ => {}
        }
    }
}

/// P003: recompute starts only after the whole forward pass, and each
/// layer's recompute completes before that layer's backward begins.
fn recompute_placement(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    let last_fwd_overall =
        view.iter().filter(|&&(_, o)| o.phase == Phase::Forward).map(|&(i, _)| i).max();
    let mut last_rec: BTreeMap<usize, usize> = BTreeMap::new();
    let mut first_bwd: BTreeMap<usize, usize> = BTreeMap::new();
    for &(i, op) in view {
        match (op.phase, op.layer) {
            (Phase::Recompute, Some(l)) => {
                last_rec.insert(l, i);
                if last_fwd_overall.is_some_and(|f| i < f) {
                    out.push(
                        Finding::err(
                            RuleId::RecomputePlacement,
                            "recompute op before the forward pass completed",
                        )
                        .at(i, op),
                    );
                }
            }
            (Phase::Recompute, None) => {
                out.push(
                    Finding::err(RuleId::RecomputePlacement, "recompute op without a layer")
                        .at(i, op)
                        .with_note("only Transformer layers are checkpointed"),
                );
            }
            (Phase::Backward, Some(l)) => {
                first_bwd.entry(l).or_insert(i);
            }
            _ => {}
        }
    }
    for (l, &rec) in &last_rec {
        if first_bwd.get(l).is_some_and(|&bwd| rec > bwd) {
            out.push(Finding::err(
                RuleId::RecomputePlacement,
                format!("layer {l} recompute (op #{rec}) runs after its backward began"),
            ));
        }
    }
}

/// P004: a stream that backpropagates any layer must backpropagate every
/// forwarded layer, and an optimizer update requires a backward pass.
fn missing_backward(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    let mut fwd_layers: BTreeSet<usize> = BTreeSet::new();
    let mut bwd_layers: BTreeSet<usize> = BTreeSet::new();
    let mut any_bwd = false;
    let mut any_upd = false;
    for &(_, op) in view {
        match op.phase {
            Phase::Forward => {
                if let Some(l) = op.layer {
                    fwd_layers.insert(l);
                }
            }
            Phase::Backward => {
                any_bwd = true;
                if let Some(l) = op.layer {
                    bwd_layers.insert(l);
                }
            }
            Phase::Update => any_upd = true,
            _ => {}
        }
    }
    if any_bwd {
        for l in fwd_layers.difference(&bwd_layers) {
            out.push(Finding::err(
                RuleId::MissingBackward,
                format!("layer {l} has forward ops but is never backpropagated"),
            ));
        }
    }
    if any_upd && !any_bwd {
        out.push(Finding::err(
            RuleId::MissingBackward,
            "optimizer update without a backward pass: there are no gradients to apply",
        ));
    }
}

/// P005: gradient norm precedes the stages; every stage-2 has a stage-1
/// before it; stages pair up one-to-one.
fn optimizer_stage_order(view: &[(usize, &OpRecord)], out: &mut Vec<Finding>) {
    let upd: Vec<(usize, &OpRecord)> =
        view.iter().filter(|&&(_, o)| o.phase == Phase::Update).map(|&(i, o)| (i, o)).collect();
    let n_s2 = upd.iter().filter(|&&(_, o)| o.category == Category::LambStage2).count();
    if n_s2 == 0 {
        return; // Adam (or no optimizer): no stage pairing to enforce.
    }
    let n_s1 = upd.iter().filter(|&&(_, o)| o.category == Category::LambStage1).count();
    if n_s1 != n_s2 {
        out.push(Finding::err(RuleId::OptimizerStageOrder, "unpaired LAMB stages").with_note(
            format!("{n_s1} stage-1 kernels vs {n_s2} stage-2 kernels; every group runs both"),
        ));
    }
    let norm_positions: Vec<usize> =
        upd.iter().filter(|&&(_, o)| o.category == Category::GradNorm).map(|&(i, _)| i).collect();
    if norm_positions.is_empty() {
        out.push(Finding::err(
            RuleId::OptimizerStageOrder,
            "LAMB stages present but no gradient-norm reduction: \
             the trust ratio needs the global norm first",
        ));
    }
    let first_stage = upd
        .iter()
        .find(|&&(_, o)| matches!(o.category, Category::LambStage1 | Category::LambStage2))
        .map(|&(i, _)| i);
    if let Some(first) = first_stage {
        for &pos in &norm_positions {
            if pos > first {
                out.push(Finding::err(
                    RuleId::OptimizerStageOrder,
                    format!(
                        "gradient-norm reduction (op #{pos}) runs after the LAMB stages began \
                         (op #{first})"
                    ),
                ));
            }
        }
    }
    // Prefix property: at every point, stage-2 kernels seen <= stage-1 seen.
    let (mut seen1, mut seen2) = (0usize, 0usize);
    for &(i, op) in &upd {
        match op.category {
            Category::LambStage1 => seen1 += 1,
            Category::LambStage2 => {
                seen2 += 1;
                if seen2 > seen1 {
                    out.push(
                        Finding::err(
                            RuleId::OptimizerStageOrder,
                            "LAMB stage-2 runs before its stage-1",
                        )
                        .at(i, op)
                        .with_note(format!(
                            "stage-2 kernel #{seen2} but only {seen1} stage-1 kernels so far"
                        )),
                    );
                }
            }
            _ => {}
        }
    }
}
