//! C-series lints: FLOP/byte conservation.
//!
//! Every expected quantity here is recomputed from first principles (GEMM
//! dims, element sizes, per-parameter optimizer costs) rather than through
//! the helper methods the producers themselves call (`GemmSpec::flops`,
//! `DType::size_bytes`, the graph's per-parameter constants). A corrupted
//! formula on either the graph side or the kernels side therefore trips a
//! lint instead of being silently trusted on both sides at once.

use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{Category, DType, Epilogue, OpRecord, Phase};

/// Element size in bytes, independent of `DType::size_bytes`.
pub(crate) fn elem_size(dtype: DType) -> u64 {
    match dtype {
        DType::F32 => 4,
        DType::F16 | DType::BF16 => 2,
    }
}

/// FLOPs per parameter of LAMB stage 1 (momentum/velocity update, bias
/// correction, update direction, weight decay), kept deliberately separate
/// from the graph crate's constant of the same value.
const LAMB_STAGE1_FLOPS: u64 = 14;
/// FLOPs per parameter of LAMB stage 2 (trust-ratio scale + weight update).
const LAMB_STAGE2_FLOPS: u64 = 4;
/// FLOPs per parameter of a fused Adam kernel.
const ADAM_FLOPS: u64 = 12;

/// Per-output-element FLOPs of a fused epilogue, recomputed from the
/// variant's arithmetic rather than `Epilogue::flops_per_element`: a bias
/// add or scale is one op, residual-add and scale+mask are two, bias+GeLU
/// is the add plus the 12-FLOP `GeLU` chain.
fn epilogue_flops_per_element(ep: Epilogue) -> u64 {
    match ep {
        Epilogue::None => 0,
        Epilogue::Bias | Epilogue::Scale => 1,
        Epilogue::BiasGelu => 13,
        Epilogue::BiasResidual | Epilogue::ScaleMask => 2,
    }
}

/// Extra elements a fused epilogue reads beyond the two GEMM operands:
/// a bias vector is one element per output row per batch slice; residual
/// and mask operands are full output-sized tensors.
fn epilogue_read_elements(ep: Epilogue, m: u64, n: u64, b: u64) -> u64 {
    match ep {
        Epilogue::None | Epilogue::Scale => 0,
        Epilogue::Bias | Epilogue::BiasGelu => m * b,
        Epilogue::BiasResidual => m * b + m * n * b,
        Epilogue::ScaleMask => m * n * b,
    }
}

pub(crate) fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(spec) = op.gemm {
            let (m, n, k, b) = (spec.m as u64, spec.n as u64, spec.k as u64, spec.batch as u64);
            let ep = spec.epilogue;
            let flops = 2 * m * n * k * b + epilogue_flops_per_element(ep) * m * n * b;
            if op.flops != flops {
                out.push(
                    Finding::err(RuleId::GemmFlops, "recorded FLOPs disagree with the GEMM spec")
                        .at(i, op)
                        .with_note(format!(
                            "recorded {} FLOPs, spec {spec} implies 2*{m}*{n}*{k}*{b} \
                             + epilogue = {flops}",
                            op.flops
                        )),
                );
            }
            let es = elem_size(op.dtype);
            let read = ((m * k + k * n) * b + epilogue_read_elements(ep, m, n, b)) * es;
            if op.bytes_read != read {
                out.push(
                    Finding::err(RuleId::GemmBytes, "recorded read bytes disagree with the spec")
                        .at(i, op)
                        .with_note(format!(
                            "recorded {} bytes read, spec {spec} at {} implies \
                             (({m}*{k} + {k}*{n})*{b} + epilogue operands)*{es} = {read}",
                            op.bytes_read, op.dtype
                        )),
                );
            }
            // Bias+GeLU stores both the pre-activation and the activation.
            let copies = if ep == Epilogue::BiasGelu { 2 } else { 1 };
            let written = m * n * b * copies * es;
            if op.bytes_written != written {
                out.push(
                    Finding::err(
                        RuleId::GemmBytes,
                        "recorded written bytes disagree with the spec",
                    )
                    .at(i, op)
                    .with_note(format!(
                        "recorded {} bytes written, spec {spec} at {} implies \
                             {m}*{n}*{b}*{copies}*{es} = {written}",
                        op.bytes_written, op.dtype
                    )),
                );
            }
        }
    }
    optimizer_conservation(ops, &mut out);
    out
}

/// Derive the parameter count an optimizer op claims from its FLOPs, verify
/// its traffic against the per-parameter byte costs, and return the count.
fn claimed_params(
    out: &mut Vec<Finding>,
    i: usize,
    op: &OpRecord,
    what: &str,
    flops_per: u64,
    read_per: u64,
    written_per: Option<u64>,
) -> u64 {
    if !op.flops.is_multiple_of(flops_per) {
        out.push(
            Finding::err(
                RuleId::OptimizerConservation,
                format!("{what} FLOPs are not a multiple of {flops_per} per parameter"),
            )
            .at(i, op)
            .with_note(format!("recorded {} FLOPs", op.flops)),
        );
        return 0;
    }
    let n = op.flops / flops_per;
    if op.bytes_read != n * read_per {
        out.push(
            Finding::err(RuleId::OptimizerConservation, format!("{what} read traffic is wrong"))
                .at(i, op)
                .with_note(format!(
                    "{n} parameters imply {} bytes read ({read_per}/param), recorded {}",
                    n * read_per,
                    op.bytes_read
                )),
        );
    }
    if let Some(w) = written_per {
        if op.bytes_written != n * w {
            out.push(
                Finding::err(
                    RuleId::OptimizerConservation,
                    format!("{what} write traffic is wrong"),
                )
                .at(i, op)
                .with_note(format!(
                    "{n} parameters imply {} bytes written ({w}/param), recorded {}",
                    n * w,
                    op.bytes_written
                )),
            );
        }
    }
    n
}

/// Cross-check the optimizer ops against each other: stage 1, stage 2 and
/// the gradient norm must all imply the same total parameter count, and each
/// op's byte traffic must match its per-parameter cost (paper Takeaway 7:
/// stage 1 reads 4x the model size, stage 2 reads 2x and writes 1x).
fn optimizer_conservation(ops: &[OpRecord], out: &mut Vec<Finding>) {
    let upd: Vec<(usize, &OpRecord)> =
        ops.iter().enumerate().filter(|&(_, o)| o.phase == Phase::Update).collect();
    if upd.is_empty() {
        return;
    }
    // A fused Adam kernel shares Category::LambStage1 in the trace taxonomy
    // but performs 12 FLOPs/param and has no stage 2; the presence of any
    // stage-2 op identifies the stream as LAMB.
    let lamb = upd.iter().any(|&(_, o)| o.category == Category::LambStage2);
    let stage1_flops = if lamb { LAMB_STAGE1_FLOPS } else { ADAM_FLOPS };
    let (mut s1, mut s2, mut norm) = (0u64, 0u64, 0u64);
    for &(i, op) in &upd {
        match op.category {
            Category::GradNorm => {
                norm += claimed_params(out, i, op, "gradient-norm", 2, 4, None);
                if op.bytes_written != 8 {
                    out.push(
                        Finding::err(
                            RuleId::OptimizerConservation,
                            "gradient-norm reduction writes more than its scalar result",
                        )
                        .at(i, op)
                        .with_note(format!(
                            "recorded {} bytes written, expected 8",
                            op.bytes_written
                        )),
                    );
                }
            }
            Category::LambStage1 => {
                s1 += claimed_params(out, i, op, "optimizer stage-1", stage1_flops, 16, Some(12));
            }
            Category::LambStage2 => {
                s2 += claimed_params(out, i, op, "LAMB stage-2", LAMB_STAGE2_FLOPS, 8, Some(4));
            }
            _ => {}
        }
    }
    if lamb && s1 != s2 {
        out.push(
            Finding::err(
                RuleId::OptimizerConservation,
                "LAMB stages disagree on the parameter count",
            )
            .with_note(format!("stage-1 ops cover {s1} parameters, stage-2 ops cover {s2}")),
        );
    }
    if norm > 0 && s1 > 0 && norm != s1 {
        out.push(
            Finding::err(
                RuleId::OptimizerConservation,
                "gradient norm and update stages disagree on the parameter count",
            )
            .with_note(format!("norm reduces {norm} gradients, stage-1 updates {s1} parameters")),
        );
    }
}
