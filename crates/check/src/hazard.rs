//! H-series rules: schedule hazard checking over the dependence DAG.
//!
//! A GPU runtime enforces ordering dynamically with streams and events;
//! this module is the static stand-in. Given the dependence graph
//! reconstructed by [`deps::DepGraph`](crate::deps::DepGraph) and a
//! candidate [`Schedule`], every RAW/WAR/WAW edge must strictly increase in
//! step — two conflicting ops in the same step are a race, and an inverted
//! edge reads stale data (RAW), clobbers a live value (WAR) or commits the
//! wrong final write (WAW).
//!
//! Violated edges are classified most-specific-first: an edge whose
//! producer is a communication op feeding an update-phase consumer is H005
//! (the AllReduce→optimizer contract), an edge crossing any phase boundary
//! is H004, and same-phase edges report as H001/H002/H003 by hazard kind.
//! Independently of any schedule, [`check`] also verifies the program-order
//! communication contract: once a gradient buffer has been handed to a
//! communication op for reduction, no update-phase op may have consumed it
//! earlier.

use crate::deps::{DepEdge, DepGraph, DepKind, Schedule};
use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{OpKind, OpRecord, Phase};

/// Check a candidate schedule against the dependence graph of `ops`.
///
/// A [`DepEdge`] `from → to` is satisfied iff
/// `schedule.step_of[to] > schedule.step_of[from]`; every violated edge
/// yields one error finding. `schedule_name` labels the findings (e.g.
/// `"program order"`, `"asap"`).
///
/// # Panics
///
/// Panics when the schedule's length disagrees with the stream's.
#[must_use]
pub fn check_schedule(
    ops: &[OpRecord],
    graph: &DepGraph,
    schedule: &Schedule,
    schedule_name: &str,
) -> Vec<Finding> {
    assert_eq!(
        schedule.step_of.len(),
        ops.len(),
        "schedule covers a different stream ({} steps vs {} ops)",
        schedule.step_of.len(),
        ops.len()
    );
    let mut out = Vec::new();
    for e in &graph.edges {
        let (sf, st) = (schedule.step_of[e.from], schedule.step_of[e.to]);
        if st > sf {
            continue;
        }
        let rule = classify(ops, e);
        let relation = if st == sf { "concurrently with" } else { "before" };
        out.push(
            Finding::err(
                rule,
                format!(
                    "schedule `{schedule_name}` runs `{}` (step {st}) {relation} `{}` \
                     (step {sf}) despite a {} dependence on buffer {}",
                    ops[e.to].name, ops[e.from].name, e.kind, e.buf
                ),
            )
            .at(e.to, &ops[e.to])
            .with_note(format!(
                "edge: op {} `{}` [{}] -> op {} `{}` [{}]",
                e.from, ops[e.from].name, ops[e.from].phase, e.to, ops[e.to].name, ops[e.to].phase
            )),
        );
    }
    out
}

/// Most-specific rule for a violated edge.
fn classify(ops: &[OpRecord], e: &DepEdge) -> RuleId {
    let (from, to) = (&ops[e.from], &ops[e.to]);
    if is_comm(from) && to.phase == Phase::Update {
        return RuleId::CommUpdateOrder;
    }
    if from.phase != to.phase {
        return RuleId::CrossPhaseRace;
    }
    match e.kind {
        DepKind::Raw => RuleId::HazardRaw,
        DepKind::War => RuleId::HazardWar,
        DepKind::Waw => RuleId::HazardWaw,
    }
}

fn is_comm(op: &OpRecord) -> bool {
    op.kind == OpKind::Comm || op.phase == Phase::Communication
}

/// Program-order communication contract (semantic H005): an update-phase op
/// must not read a gradient buffer that a *later* communication op writes —
/// the optimizer would consume the local, unreduced gradient.
#[must_use]
pub fn check_comm_ordering(ops: &[OpRecord]) -> Vec<Finding> {
    use std::collections::BTreeMap;
    // For each buffer, the earliest update-phase read.
    let mut first_update_read: BTreeMap<bertscope_tensor::BufId, usize> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        if op.phase == Phase::Update {
            for &b in &op.access.reads {
                first_update_read.entry(b).or_insert(i);
            }
        }
    }
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if !is_comm(op) {
            continue;
        }
        for &b in &op.access.writes {
            if let Some(&r) = first_update_read.get(&b) {
                if r < i {
                    out.push(
                        Finding::err(
                            RuleId::CommUpdateOrder,
                            format!(
                                "update op `{}` (index {r}) consumes buffer {b} before \
                                 communication op `{}` (index {i}) reduces it",
                                ops[r].name, op.name
                            ),
                        )
                        .at(r, &ops[r])
                        .with_note(
                            "optimizers must read globally-reduced gradients, \
                             not local partials",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Run every hazard lint that applies to a stream in program order: the
/// program-order schedule itself (which any correctly-built graph satisfies
/// by construction — violations mean the provenance annotations are
/// inconsistent) and the communication contract.
#[must_use]
pub fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let graph = DepGraph::build(ops);
    let mut out = check_schedule(ops, &graph, &Schedule::program_order(ops.len()), "program order");
    out.extend(check_comm_ordering(ops));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{AccessSet, BufId, Category, DType};

    fn op(name: &str, phase: Phase, reads: &[BufId], writes: &[BufId]) -> OpRecord {
        OpRecord {
            access: AccessSet::new(reads, writes),
            name: name.into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase,
            layer: None,
            gemm: None,
            flops: 1,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn program_order_satisfies_its_own_graph() {
        let [a, b] = [BufId::fresh(), BufId::fresh()];
        let ops = vec![
            op("w", Phase::Forward, &[], &[a]),
            op("r", Phase::Forward, &[a], &[b]),
            op("rw", Phase::Backward, &[b], &[a]),
        ];
        assert!(check(&ops).is_empty());
    }

    #[test]
    fn inverted_raw_edge_fires_h001() {
        let [a] = [BufId::fresh()];
        let ops = vec![op("w", Phase::Forward, &[], &[a]), op("r", Phase::Forward, &[a], &[])];
        let g = DepGraph::build(&ops);
        let f = check_schedule(&ops, &g, &Schedule::from_permutation(&[1, 0]), "swapped");
        assert_eq!(codes(&f), vec!["H001"]);
    }

    #[test]
    fn concurrent_conflicting_ops_fire() {
        let [a] = [BufId::fresh()];
        let ops = vec![op("w", Phase::Forward, &[], &[a]), op("r", Phase::Forward, &[a], &[])];
        let g = DepGraph::build(&ops);
        let f = check_schedule(&ops, &g, &Schedule::from_steps(vec![0, 0]), "same-step");
        assert_eq!(codes(&f), vec!["H001"]);
        assert!(f[0].to_string().contains("concurrently"));
    }

    #[test]
    fn war_and_waw_inversions_classify() {
        let [a] = [BufId::fresh()];
        let ops = vec![
            op("w0", Phase::Forward, &[], &[a]),
            op("r", Phase::Forward, &[a], &[]),
            op("w1", Phase::Forward, &[], &[a]),
        ];
        let g = DepGraph::build(&ops);
        // Run the second writer first: inverts WAR (r->w1) and WAW (w0->w1).
        let f = check_schedule(&ops, &g, &Schedule::from_permutation(&[2, 0, 1]), "bad");
        let mut c = codes(&f);
        c.sort_unstable();
        assert_eq!(c, vec!["H002", "H003"]);
    }

    #[test]
    fn cross_phase_inversion_fires_h004() {
        let [a] = [BufId::fresh()];
        let ops = vec![op("fwd", Phase::Forward, &[], &[a]), op("bwd", Phase::Backward, &[a], &[])];
        let g = DepGraph::build(&ops);
        let f = check_schedule(&ops, &g, &Schedule::from_permutation(&[1, 0]), "bad");
        assert_eq!(codes(&f), vec!["H004"]);
    }

    #[test]
    fn comm_to_update_inversion_fires_h005() {
        let [g_] = [BufId::fresh()];
        let mut allreduce = op("allreduce.g", Phase::Communication, &[g_], &[g_]);
        allreduce.kind = OpKind::Comm;
        allreduce.category = Category::Comm;
        let ops = vec![allreduce, op("adam", Phase::Update, &[g_], &[])];
        let g = DepGraph::build(&ops);
        let f = check_schedule(&ops, &g, &Schedule::from_permutation(&[1, 0]), "bad");
        assert!(codes(&f).contains(&"H005"), "{f:?}");
    }

    #[test]
    fn update_before_comm_in_program_order_fires_h005() {
        let [g_] = [BufId::fresh()];
        let mut allreduce = op("allreduce.g", Phase::Communication, &[g_], &[g_]);
        allreduce.kind = OpKind::Comm;
        let ops = vec![op("adam", Phase::Update, &[g_], &[]), allreduce];
        let f = check_comm_ordering(&ops);
        assert_eq!(codes(&f), vec!["H005"]);
    }

    #[test]
    fn opaque_streams_are_vacuous() {
        let ops = vec![op("a", Phase::Forward, &[], &[]), op("b", Phase::Backward, &[], &[])];
        let g = DepGraph::build(&ops);
        assert!(g.edges.is_empty());
        assert!(check(&ops).is_empty());
        // Even a fully reversed schedule is legal with no edges.
        let f = check_schedule(&ops, &g, &Schedule::from_permutation(&[1, 0]), "rev");
        assert!(f.is_empty());
    }
}
