//! F-series: fusion-legality verification.
//!
//! The operator-graph scheduler's fusion pass
//! (`bertscope_tensor::sched::TaskGraph::fuse`) merges chains of tasks —
//! bias+GeLU, residual+LayerNorm — into single dispatches. Merging is only
//! legal when the dependence DAG proves nothing can observe the
//! intermediate state: the fused ops must be **adjacent** in submission
//! order (so the merged node occupies a contiguous span and no edge can
//! invert), each producer's **sole** dependence successor must be its
//! fused consumer (RAW, WAR and WAW all counted — anything else waiting on
//! the producer would deadlock or race), and every member must carry
//! buffer provenance (an opaque op is a scheduling barrier and must stay
//! one). [`check_fusion`] re-proves all three conditions from the op
//! stream itself, independently of the scheduler's own planner — the same
//! trust-but-verify loop `racecheck --sched` closes for emitted schedules.

use crate::deps::DepGraph;
use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::OpRecord;

/// Verify a claimed fusion grouping (original op ids per post-fusion task,
/// e.g. `bertscope_tensor::sched::FusionReport::groups`) against the
/// dependence DAG reconstructed from `ops`. Returns one error-severity
/// F001 finding per violated condition; an empty vec means every merged
/// group is provably legal. Groups must cover `0..ops.len()` exactly once,
/// in submission order — a malformed cover is itself reported.
#[must_use]
pub fn check_fusion(ops: &[OpRecord], groups: &[Vec<usize>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let covered: Vec<usize> = groups.iter().flatten().copied().collect();
    if covered != (0..ops.len()).collect::<Vec<_>>() {
        findings.push(Finding::err(
            RuleId::FusionLegality,
            format!(
                "fusion groups do not cover the stream: {} ids over {} ops",
                covered.len(),
                ops.len()
            ),
        ));
        return findings;
    }
    let graph = DepGraph::build(ops);
    let succs = graph.successors();
    for group in groups.iter().filter(|g| g.len() > 1) {
        for pair in group.windows(2) {
            let (producer, consumer) = (pair[0], pair[1]);
            if consumer != producer + 1 {
                findings.push(
                    Finding::err(
                        RuleId::FusionLegality,
                        format!(
                            "fused ops {producer} and {consumer} are not adjacent in \
                             submission order"
                        ),
                    )
                    .at(producer, &ops[producer]),
                );
                continue;
            }
            if ops[producer].access.is_empty() || ops[consumer].access.is_empty() {
                findings.push(
                    Finding::err(
                        RuleId::FusionLegality,
                        "fused op has opaque provenance and must remain a scheduling barrier",
                    )
                    .at(producer, &ops[producer]),
                );
                continue;
            }
            let mut others: Vec<usize> =
                succs[producer].iter().copied().filter(|&s| s != consumer).collect();
            others.sort_unstable();
            others.dedup();
            if !others.is_empty() {
                findings.push(
                    Finding::err(
                        RuleId::FusionLegality,
                        format!(
                            "producer op {producer} has dependence successors besides its \
                             fused consumer {consumer}"
                        ),
                    )
                    .at(producer, &ops[producer])
                    .with_note(format!(
                        "also feeds op{} {}",
                        if others.len() == 1 { "" } else { "s" },
                        others
                            .iter()
                            .map(|&s| format!("#{s} `{}`", ops[s].name))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{AccessSet, BufId, Category, DType, OpKind, Phase};

    fn op(name: &str, reads: &[BufId], writes: &[BufId]) -> OpRecord {
        OpRecord {
            access: AccessSet::new(reads, writes),
            name: name.into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops: 1,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    fn bufs<const N: usize>() -> [BufId; N] {
        std::array::from_fn(|_| BufId::fresh())
    }

    #[test]
    fn legal_sole_consumer_chain_passes() {
        let [a, b, c] = bufs();
        let ops = vec![op("fc1", &[], &[a]), op("gelu", &[a], &[b]), op("fc2", &[b], &[c])];
        assert!(check_fusion(&ops, &[vec![0, 1], vec![2]]).is_empty());
    }

    #[test]
    fn extra_successor_fires_f001_with_the_witness() {
        let [a, b, c] = bufs();
        // `fc1`'s output feeds both `gelu` and `saver`: fusing fc1+gelu
        // would hide the value `saver` still needs.
        let ops = vec![op("fc1", &[], &[a]), op("gelu", &[a], &[b]), op("saver", &[a], &[c])];
        let findings = check_fusion(&ops, &[vec![0, 1], vec![2]]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule.code(), "F001");
        assert!(findings[0].note.as_deref().unwrap().contains("`saver`"), "{:?}", findings[0]);
    }

    #[test]
    fn non_adjacent_and_opaque_members_are_rejected() {
        let [a, b] = bufs();
        let ops = vec![op("w", &[], &[a]), op("mid", &[], &[b]), op("r", &[a], &[])];
        let non_adjacent = check_fusion(&ops, &[vec![0, 2], vec![1]]);
        assert!(!non_adjacent.is_empty(), "permuted cover must fail");

        let mut opaque = ops.clone();
        opaque[1].access = AccessSet::default();
        let findings = check_fusion(&opaque, &[vec![0], vec![1, 2]]);
        assert!(
            findings.iter().any(|f| f.message.contains("opaque")),
            "opaque member must fire: {findings:?}"
        );
    }

    #[test]
    fn malformed_cover_is_reported() {
        let [a] = bufs();
        let ops = vec![op("w", &[], &[a])];
        let findings = check_fusion(&ops, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("do not cover"));
    }
}
