//! L-series rules: pooled buffer-lifetime verification.
//!
//! The pooled allocator (`bertscope_tensor::pool`) recycles device-sized
//! buffers aggressively; the price is a family of temporal bugs the borrow
//! checker cannot see across an *operator stream*: using a buffer after it
//! went back to the pool, releasing it twice, or writing into storage a
//! later allocation may already own. This module replays each buffer's
//! access sequence through a small state machine:
//!
//! ```text
//!            write/alloc            free
//!   Unseen ─────────────▶ Live ───────────▶ Freed
//!      │ read                │ read/write      │ read  → L001
//!      ▼                     ▼                 │ write → L003
//!   Foreign (weights/inputs: live across the stream, exempt)
//!      ▲                                       │ free  → L002
//!      └───────────────────────────────────────┘ (alloc revives to Live)
//! ```
//!
//! Leak detection (L004) only arms when the stream records at least one
//! explicit free — a stream with no lifetime events at all (e.g. the purely
//! analytic graphs, which model steady-state iteration where activations
//! persist) is not accused of leaking everything.

use crate::deps::annotate_lifetimes;
use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{BufId, OpRecord};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Written (or explicitly allocated) inside the stream and not yet
    /// released; carries the op index that made it live.
    Live(usize),
    /// Released to the pool at the recorded op index.
    Freed(usize),
    /// First touched by a read: a weight, input or RNG buffer owned outside
    /// the stream. Exempt from lifetime rules.
    Foreign,
}

/// Verify every buffer's access sequence describes a legal pooled lifetime.
#[must_use]
pub fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let mut state: BTreeMap<BufId, State> = BTreeMap::new();
    let mut out = Vec::new();
    let mut any_free = false;

    for (i, op) in ops.iter().enumerate() {
        for &b in &op.access.allocs {
            // An alloc event always (re)vives the buffer, even after a free:
            // the pool handed the id's logical slot back out.
            state.insert(b, State::Live(i));
        }
        for &b in &op.access.reads {
            match state.get(&b) {
                None => {
                    state.insert(b, State::Foreign);
                }
                Some(State::Freed(at)) => {
                    out.push(
                        Finding::err(
                            RuleId::UseAfterFree,
                            format!(
                                "op `{}` reads buffer {b} released to the pool by op {at} \
                                 (`{}`)",
                                op.name, ops[*at].name
                            ),
                        )
                        .at(i, op)
                        .with_note("the pool may have recycled this storage already"),
                    );
                }
                Some(State::Live(_) | State::Foreign) => {}
            }
        }
        for &b in &op.access.writes {
            match state.get(&b) {
                Some(State::Freed(at)) => {
                    out.push(
                        Finding::err(
                            RuleId::WriteAfterReuse,
                            format!(
                                "op `{}` writes buffer {b} whose storage re-entered the \
                                 free list at op {at} (`{}`)",
                                op.name, ops[*at].name
                            ),
                        )
                        .at(i, op)
                        .with_note(
                            "a later allocation may own this memory — the write can \
                             corrupt an unrelated tensor",
                        ),
                    );
                    // One diagnosis per illegal write is enough; keep Freed so
                    // further uses keep firing rather than masking the bug.
                }
                Some(State::Foreign | State::Live(_)) => {}
                None => {
                    state.insert(b, State::Live(i));
                }
            }
        }
        for &b in &op.access.frees {
            any_free = true;
            match state.get(&b) {
                Some(State::Freed(at)) => {
                    out.push(
                        Finding::err(
                            RuleId::DoubleFree,
                            format!(
                                "op `{}` releases buffer {b} to the pool again (first \
                                 released by op {at} `{}`)",
                                op.name, ops[*at].name
                            ),
                        )
                        .at(i, op)
                        .with_note("double release puts one storage block on the free list twice"),
                    );
                }
                _ => {
                    state.insert(b, State::Freed(i));
                }
            }
        }
    }

    if any_free {
        report_leaks(ops, &state, &mut out);
    }
    out
}

/// L004: every buffer still `Live` at stream end leaks (only called when the
/// stream releases at least one buffer).
fn report_leaks(ops: &[OpRecord], state: &BTreeMap<BufId, State>, out: &mut Vec<Finding>) {
    let lifetimes = annotate_lifetimes(ops);
    for (b, st) in state {
        if let State::Live(at) = st {
            let last = lifetimes.get(b).and_then(|lt| lt.last_use).unwrap_or(*at);
            out.push(
                Finding::warn(
                    RuleId::BufferLeak,
                    format!(
                        "buffer {b} allocated by op {at} (`{}`) is still live at \
                         stream end (last use: op {last})",
                        ops[*at].name
                    ),
                )
                .at(*at, &ops[*at])
                .with_note(
                    "streams that release buffers are expected to release all of \
                     them; a persistent buffer should be foreign (read-first) or \
                     freed",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{AccessSet, Category, DType, OpKind, Phase};

    fn op(name: &str, access: AccessSet) -> OpRecord {
        OpRecord {
            access,
            name: name.into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops: 1,
            bytes_read: 4,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn legal_lifecycle_is_clean() {
        let [w, x] = [BufId::fresh(), BufId::fresh()];
        let ops = vec![
            op("alloc", AccessSet::new(&[], &[x]).with_allocs(&[x])),
            op("use", AccessSet::new(&[w, x], &[x])),
            op("free", AccessSet::default().with_frees(&[x])),
        ];
        assert!(check(&ops).is_empty());
    }

    #[test]
    fn read_after_free_fires_l001() {
        let [x] = [BufId::fresh()];
        let ops = vec![
            op("alloc", AccessSet::new(&[], &[x])),
            op("free", AccessSet::default().with_frees(&[x])),
            op("read", AccessSet::new(&[x], &[])),
        ];
        assert_eq!(codes(&check(&ops)), vec!["L001"]);
    }

    #[test]
    fn double_free_fires_l002() {
        let [x] = [BufId::fresh()];
        let ops = vec![
            op("alloc", AccessSet::new(&[], &[x])),
            op("free1", AccessSet::default().with_frees(&[x])),
            op("free2", AccessSet::default().with_frees(&[x])),
        ];
        assert_eq!(codes(&check(&ops)), vec!["L002"]);
    }

    #[test]
    fn write_after_free_fires_l003() {
        let [x] = [BufId::fresh()];
        let ops = vec![
            op("alloc", AccessSet::new(&[], &[x])),
            op("free", AccessSet::default().with_frees(&[x])),
            op("write", AccessSet::new(&[], &[x])),
        ];
        assert_eq!(codes(&check(&ops)), vec!["L003"]);
    }

    #[test]
    fn leak_fires_l004_only_when_stream_frees() {
        let [x, y] = [BufId::fresh(), BufId::fresh()];
        // No frees anywhere: steady-state analytic stream, no leak verdicts.
        let quiet = vec![op("a", AccessSet::new(&[], &[x])), op("b", AccessSet::new(&[x], &[y]))];
        assert!(check(&quiet).is_empty());
        // One buffer freed, the other forgotten: leak warning.
        let leaky = vec![
            op("a", AccessSet::new(&[], &[x])),
            op("b", AccessSet::new(&[x], &[y])),
            op("free_x", AccessSet::default().with_frees(&[x])),
        ];
        let f = check(&leaky);
        assert_eq!(codes(&f), vec!["L004"]);
        assert!(!f[0].is_error(), "leaks are warnings, not errors");
    }

    #[test]
    fn foreign_buffers_are_exempt() {
        let [w, x] = [BufId::fresh(), BufId::fresh()];
        // `w` is read first (a weight) and never freed — not a leak even
        // though the stream frees `x`.
        let ops = vec![
            op("fwd", AccessSet::new(&[w], &[x])),
            op("free_x", AccessSet::default().with_frees(&[x])),
        ];
        assert!(check(&ops).is_empty());
    }

    #[test]
    fn realloc_after_free_revives_the_buffer() {
        let [x] = [BufId::fresh()];
        let ops = vec![
            op("alloc1", AccessSet::new(&[], &[x]).with_allocs(&[x])),
            op("free1", AccessSet::default().with_frees(&[x])),
            op("alloc2", AccessSet::new(&[], &[x]).with_allocs(&[x])),
            op("use", AccessSet::new(&[x], &[])),
            op("free2", AccessSet::default().with_frees(&[x])),
        ];
        assert!(check(&ops).is_empty());
    }
}
