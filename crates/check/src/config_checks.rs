//! Configuration-aware checks: with a [`BertConfig`] and [`GraphOptions`]
//! in hand, the stream's totals can be pinned to closed forms the stream
//! itself cannot know — the parameter inventory of `params.rs` (C004/C006),
//! the Table 2b GEMM dimensions (C005), and the checkpointing schedule
//! (P006).

use crate::check_stream;
use crate::finding::{sort, Finding};
use crate::rules::RuleId;
use bertscope_model::{
    gemm_spec, parameter_count, BertConfig, GemmPass, GemmSite, GraphOptions, OptimizerChoice,
};
use bertscope_tensor::{Category, GemmSpec, OpRecord, Phase};

/// Run every stream-level lint plus the configuration-aware C004/C005/C006
/// and P006 checks on the operator stream of one training iteration built
/// for (`cfg`, `opts`) — by `build_iteration`, `build_finetune` (with
/// `checkpoint: false`, which that builder does not model), or
/// `build_inference` (with `optimizer: None`).
#[must_use]
pub fn check_iteration(cfg: &BertConfig, opts: &GraphOptions, ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = check_stream(ops);
    layer_closed_forms(cfg, *opts, ops, &mut out);
    optimizer_inventory(cfg, *opts, ops, &mut out);
    checkpoint_coverage(cfg, *opts, ops, &mut out);
    sort(&mut out);
    out
}

/// Independent MAC recomputation — never `GemmSpec::flops()`.
fn macs(s: GemmSpec) -> u64 {
    2 * s.m as u64 * s.n as u64 * s.k as u64 * s.batch as u64
}

/// The Table 2b closed form for one layer's forward GEMM FLOPs: four linear
/// projections (Q/K/V/output — identical whether or not Q/K/V are fused),
/// the two attention B-GEMMs, and the two FC GEMMs. MACs only; fused
/// epilogue work is accounted separately by [`forward_epilogue_flops`].
fn expected_forward_gemm_flops(cfg: &BertConfig) -> u64 {
    4 * macs(gemm_spec(cfg, GemmSite::Linear, GemmPass::Forward))
        + macs(gemm_spec(cfg, GemmSite::AttnScore, GemmPass::Forward))
        + macs(gemm_spec(cfg, GemmSite::AttnOutput, GemmPass::Forward))
        + macs(gemm_spec(cfg, GemmSite::Fc1, GemmPass::Forward))
        + macs(gemm_spec(cfg, GemmSite::Fc2, GemmPass::Forward))
}

/// Epilogue FLOPs folded into one layer's forward GEMMs. Bias adds ride
/// along unconditionally (one FLOP per output element of the six biased
/// linears: Q, K, V, attention-output, FC-1, FC-2); under
/// `fused_epilogue` FC-1's bias becomes a 13-FLOP bias+GeLU tail and the
/// score B-GEMM absorbs the two-FLOP scale+mask pair.
fn forward_epilogue_flops(cfg: &BertConfig, opts: GraphOptions) -> u64 {
    let act = cfg.tokens() as u64 * cfg.d_model as u64;
    let inter = cfg.tokens() as u64 * cfg.d_ff as u64;
    let scores = (cfg.batch * cfg.heads * cfg.seq_len * cfg.seq_len) as u64;
    // Q/K/V (3x) + attention output + FC-2 outputs are [T, d]; FC-1's
    // output is [T, d_ff].
    let bias_linears = 5 * act;
    if opts.fused_epilogue {
        bias_linears + 13 * inter + 2 * scores
    } else {
        bias_linears + inter
    }
}

/// C005: every layer's per-phase GEMM FLOPs and non-GEMM activation FLOPs
/// match the closed forms. Backward is exactly 2x forward because each
/// Table 2b site runs one grad-activation and one grad-weight GEMM of
/// identical MAC count.
fn layer_closed_forms(
    cfg: &BertConfig,
    opts: GraphOptions,
    ops: &[OpRecord],
    out: &mut Vec<Finding>,
) {
    let expect_macs = expected_forward_gemm_flops(cfg);
    // Forward (and recompute) GEMMs carry fused epilogues; backward GEMMs
    // never do, so the 2x relation holds against the MAC-only form.
    let expect_fwd = expect_macs + forward_epilogue_flops(cfg, opts);
    let has_bwd = ops.iter().any(|o| o.phase == Phase::Backward);
    let scores = (cfg.batch * cfg.heads * cfg.seq_len * cfg.seq_len) as u64;
    let inter = cfg.tokens() as u64 * cfg.d_ff as u64;
    for l in 0..cfg.layers {
        let gemm_flops = |ph: Phase| -> u64 {
            ops.iter()
                .filter(|o| o.layer == Some(l) && o.phase == ph && o.is_gemm())
                .map(|o| o.flops)
                .sum()
        };
        let cat_flops = |ph: Phase, cat: Category| -> u64 {
            ops.iter()
                .filter(|o| o.layer == Some(l) && o.phase == ph && o.category == cat)
                .map(|o| o.flops)
                .sum()
        };
        let fwd = gemm_flops(Phase::Forward);
        if fwd != expect_fwd {
            out.push(
                Finding::err(RuleId::LayerClosedForm, format!("layer {l} forward GEMM FLOPs"))
                    .with_note(format!("stream has {fwd}, Table 2b implies {expect_fwd}")),
            );
        }
        if has_bwd {
            let bwd = gemm_flops(Phase::Backward);
            if bwd != 2 * expect_macs {
                out.push(
                    Finding::err(RuleId::LayerClosedForm, format!("layer {l} backward GEMM FLOPs"))
                        .with_note(format!(
                            "stream has {bwd}, Table 2b implies 2x forward MACs = {}",
                            2 * expect_macs
                        )),
                );
            }
        }
        if opts.checkpoint {
            let rec = gemm_flops(Phase::Recompute);
            if rec != expect_fwd {
                out.push(
                    Finding::err(
                        RuleId::LayerClosedForm,
                        format!("layer {l} recompute GEMM FLOPs"),
                    )
                    .with_note(format!(
                        "recomputation repeats the forward: expected {expect_fwd}, got {rec}"
                    )),
                );
            }
        }
        // Activation closed forms: the GeLU forward chain performs 12 FLOPs
        // per intermediate element whether fused or not, and the
        // scale/mask/softmax/dropout forward chain 8 per score element.
        // Under `fused_epilogue` the GeLU and the scale+mask pair move into
        // the producing GEMM's record (verified above), leaving no
        // standalone GeLU kernel and only softmax+dropout (6 FLOPs per
        // score element) in the SMSD category.
        let expect_gelu = if opts.fused_epilogue { 0 } else { 12 * inter };
        let gelu = cat_flops(Phase::Forward, Category::Gelu);
        if gelu != expect_gelu {
            out.push(
                Finding::err(RuleId::LayerClosedForm, format!("layer {l} forward GeLU FLOPs"))
                    .with_note(format!(
                        "stream has {gelu}, {inter} intermediate elements imply {expect_gelu}"
                    )),
            );
        }
        let expect_smsd = if opts.fused_epilogue { 6 * scores } else { 8 * scores };
        let smsd = cat_flops(Phase::Forward, Category::ScaleMaskSoftmaxDropout);
        if smsd != expect_smsd {
            out.push(
                Finding::err(
                    RuleId::LayerClosedForm,
                    format!("layer {l} forward scale/mask/softmax/dropout FLOPs"),
                )
                .with_note(format!(
                    "stream has {smsd}, {scores} score elements imply {expect_smsd}"
                )),
            );
        }
    }
}

/// C004 + C006: the optimizer's traffic and kernel count must match the
/// parameter inventory — stage 1 reads 4x the (f32) model size, stage 2
/// writes it once, the norm reduces every gradient, and LAMB launches two
/// kernels per update group plus the norm.
fn optimizer_inventory(
    cfg: &BertConfig,
    opts: GraphOptions,
    ops: &[OpRecord],
    out: &mut Vec<Finding>,
) {
    // Loss-scaler bookkeeping shares the update phase but is not an
    // optimizer kernel; live mixed-precision traces interleave it freely.
    let upd: Vec<&OpRecord> = ops
        .iter()
        .filter(|o| o.phase == Phase::Update && o.category != Category::LossScale)
        .collect();
    let groups = cfg.layers as u64 + 2; // per-layer + embeddings + output
    let expect_kernels = match opts.optimizer {
        OptimizerChoice::Lamb => 2 * groups + 1,
        OptimizerChoice::Adam => groups,
        OptimizerChoice::None => 0,
    };
    if upd.len() as u64 != expect_kernels {
        out.push(
            Finding::err(RuleId::OptimizerKernelCount, "optimizer kernel count is wrong")
                .with_note(format!(
                    "{:?} over {groups} update groups implies {expect_kernels} kernels, \
                     stream has {}",
                    opts.optimizer,
                    upd.len()
                )),
        );
    }
    if opts.optimizer == OptimizerChoice::None {
        return;
    }
    let p = parameter_count(cfg);
    let sum = |cat: Category, f: fn(&OpRecord) -> u64| -> u64 {
        upd.iter().filter(|o| o.category == cat).map(|o| f(o)).sum()
    };
    let s1_read = sum(Category::LambStage1, |o| o.bytes_read);
    if s1_read != 16 * p {
        out.push(
            Finding::err(RuleId::ParamTraffic, "optimizer stage-1 read traffic is wrong")
                .with_note(format!(
                    "{p} parameters imply 4x model size = {} bytes (Takeaway 7), stream reads {}",
                    16 * p,
                    s1_read
                )),
        );
    }
    if opts.optimizer == OptimizerChoice::Lamb {
        let norm_flops = sum(Category::GradNorm, |o| o.flops);
        if norm_flops != 2 * p {
            out.push(
                Finding::err(RuleId::ParamTraffic, "gradient-norm FLOPs are wrong").with_note(
                    format!("{p} gradients imply {} FLOPs, stream has {norm_flops}", 2 * p),
                ),
            );
        }
        let s2_written = sum(Category::LambStage2, |o| o.bytes_written);
        if s2_written != 4 * p {
            out.push(
                Finding::err(RuleId::ParamTraffic, "LAMB stage-2 write traffic is wrong")
                    .with_note(format!(
                        "{p} parameters imply one model size = {} bytes, stream writes {}",
                        4 * p,
                        s2_written
                    )),
            );
        }
    }
}

/// P006: checkpointing must actually re-emit recompute ops for every layer;
/// without checkpointing there must be none.
fn checkpoint_coverage(
    cfg: &BertConfig,
    opts: GraphOptions,
    ops: &[OpRecord],
    out: &mut Vec<Finding>,
) {
    if opts.checkpoint {
        for l in 0..cfg.layers {
            if !ops.iter().any(|o| o.phase == Phase::Recompute && o.layer == Some(l)) {
                out.push(Finding::err(
                    RuleId::CheckpointRecompute,
                    format!("checkpointing is enabled but layer {l} is never recomputed"),
                ));
            }
        }
    } else if let Some(i) = ops.iter().position(|o| o.phase == Phase::Recompute) {
        out.push(
            Finding::err(
                RuleId::CheckpointRecompute,
                "recompute op in a stream built without checkpointing",
            )
            .at(i, &ops[i]),
        );
    }
}
