//! Static verification of bertscope operator streams.
//!
//! The whole suite trades in one currency: streams of
//! [`OpRecord`](bertscope_tensor::OpRecord)s, produced either analytically
//! (`bertscope_model::build_iteration` and friends) or by executing the
//! substrate under a [`Tracer`](bertscope_tensor::Tracer). This crate is a
//! lint pass over that currency — it verifies, without executing any
//! arithmetic, that a stream is *internally consistent*:
//!
//! * **Conservation** (`C` rules): every op's recorded FLOP/byte counts
//!   match an independent closed-form recomputation from its own metadata,
//!   and — given a configuration — per-layer and optimizer totals match
//!   the Table 2b and parameter-inventory closed forms.
//! * **Dataflow** (`D` rules): producer→consumer shapes chain through each
//!   layer, dtypes obey the precision contract (f32 optimizer and losses,
//!   one uniform activation dtype), and no op is a ghost.
//! * **Phase legality** (`P` rules): forward before backward, backward in
//!   reverse layer order, recompute correctly sandwiched, optimizer last
//!   and internally ordered.
//! * **Scaler/skip semantics** (`S` rules): loss-scaler bookkeeping sits
//!   between backward and the optimizer, and a step the scaler skipped on
//!   overflow launches no optimizer kernels.
//! * **Memory accounting** (`M` rules, via [`check_memory`]): the measured
//!   memory profile must be internally consistent — live bytes never
//!   negative, the peak at least the resident weights+gradients bound.
//! * **Hazards** (`H` rules, via [`deps`] + [`hazard`]): from each op's
//!   buffer read/write sets the checker reconstructs the true operator DAG
//!   and verifies that a candidate parallel schedule respects every
//!   RAW/WAR/WAW edge, never races across phase boundaries, and orders
//!   gradient communication before the optimizer — statically, where a GPU
//!   runtime would rely on stream/event dependency tracking. `cargo run -p
//!   bertscope-check --bin racecheck` sweeps every paper configuration
//!   under both program order and the max-parallel ASAP schedule.
//! * **Lifetimes** (`L` rules, via [`lifetime`]): buffer provenance must
//!   describe legal pooled lifetimes — no use after release, no double
//!   release, no write into recycled storage, no leaked stream-local
//!   allocation.
//! * **Fusion legality** (`F` rules, via [`fusion`]): every task pair the
//!   operator-graph scheduler's fusion pass merges must be provable on the
//!   dependence DAG — adjacent in submission order, the producer's sole
//!   successor its fused consumer, both sides carrying provenance.
//!
//! The two sides of the suite's central cross-validation (`graph.rs` and
//! the kernels crate) intentionally share their formulas; this checker is
//! the *third*, independent implementation that keeps an agreed-upon-but-
//! wrong formula from slipping through. `cargo run -p bertscope-check --bin
//! opcheck` sweeps every paper configuration and exits nonzero on any
//! error-severity finding.
//!
//! # Examples
//!
//! ```
//! use bertscope_check::{check_stream, check_iteration};
//! use bertscope_model::{build_iteration, BertConfig, GraphOptions};
//!
//! let cfg = BertConfig::tiny();
//! let opts = GraphOptions::default();
//! let ops = build_iteration(&cfg, &opts);
//! assert!(check_iteration(&cfg, &opts, &ops).is_empty());
//!
//! // Corrupt one GEMM's FLOP count and the conservation lint fires.
//! let mut bad = ops.clone();
//! let i = bad.iter().position(|o| o.is_gemm()).unwrap();
//! bad[i].flops += 1;
//! let findings = check_stream(&bad);
//! assert_eq!(findings[0].rule.code(), "C001");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::similar_names
)]

pub mod deps;
pub mod finding;
pub mod fusion;
pub mod hazard;
pub mod lifetime;
pub mod rules;

mod config_checks;
mod conservation;
mod dataflow;
mod memory;
mod phase;
mod scaler;

pub use config_checks::check_iteration;
pub use deps::{
    annotate_lifetimes, DagReport, DepEdge, DepGraph, DepKind, Lifetime, Schedule, ScheduleError,
};
pub use finding::{Finding, Severity};
pub use fusion::check_fusion;
pub use hazard::{check_comm_ordering, check_schedule};
pub use memory::check_memory;
pub use rules::RuleId;

use bertscope_tensor::OpRecord;

/// Run every stream-level lint (no configuration required) over an operator
/// stream — analytic or traced. Returns the findings sorted errors-first.
///
/// Copy and communication ops are tolerated wherever they appear (the
/// analytic graph omits them; live traces and distributed schedules
/// interleave them freely).
#[must_use]
pub fn check_stream(ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = conservation::check(ops);
    out.extend(dataflow::check(ops));
    out.extend(phase::check(ops));
    out.extend(scaler::check(ops));
    out.extend(hazard::check(ops));
    out.extend(lifetime::check(ops));
    finding::sort(&mut out);
    out
}

/// Whether any finding is error severity (the `opcheck` exit criterion).
#[must_use]
pub fn has_errors(findings: &[Finding]) -> bool {
    findings.iter().any(Finding::is_error)
}

/// Render findings as one rustc-style report, one blank line apart.
#[must_use]
pub fn report(findings: &[Finding]) -> String {
    findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_model::{build_iteration, BertConfig, GraphOptions};

    #[test]
    fn clean_stream_has_no_findings() {
        let cfg = BertConfig::tiny();
        let opts = GraphOptions::default();
        let findings = check_iteration(&cfg, &opts, &build_iteration(&cfg, &opts));
        assert!(findings.is_empty(), "{}", report(&findings));
    }

    #[test]
    fn report_joins_findings() {
        let mut ops = build_iteration(&BertConfig::tiny(), &GraphOptions::default());
        let i = ops.iter().position(OpRecord::is_gemm).unwrap();
        ops[i].flops = 1;
        let findings = check_stream(&ops);
        assert!(has_errors(&findings));
        assert!(report(&findings).contains("error[C001]"));
    }
}
