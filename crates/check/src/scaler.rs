//! S-series lints: loss-scaler placement and overflow-skip semantics.
//!
//! Dynamic loss scaling (the apex/AMP recipe) adds three kinds of kernels
//! to a mixed-precision stream, all in [`Category::LossScale`]: the fused
//! unscale + finiteness reduction over every gradient
//! (`scaler.unscale_check`), an overflow marker when that reduction finds a
//! non-finite value (`scaler.overflow`), and the scale-factor rescale
//! (`scaler.rescale`). Two invariants make the machinery legal:
//!
//! * **S001**: scaler ops run in the update phase, after some backward work
//!   produced gradients to unscale, and before the first optimizer kernel —
//!   the finiteness verdict is what gates the update.
//! * **S002**: a stream carrying an overflow marker was *skipped*; it must
//!   launch no optimizer kernels at all, or the skipped step silently
//!   applied garbage gradients.

use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{Category, OpRecord, Phase};

/// Substring identifying the overflow marker op among scaler ops.
const OVERFLOW_MARKER: &str = "scaler.overflow";

fn is_optimizer_cat(op: &OpRecord) -> bool {
    matches!(op.category, Category::GradNorm | Category::LambStage1 | Category::LambStage2)
}

pub(crate) fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = Vec::new();
    let scaler: Vec<(usize, &OpRecord)> =
        ops.iter().enumerate().filter(|&(_, o)| o.category == Category::LossScale).collect();
    let first_opt = ops.iter().position(is_optimizer_cat);
    if let Some((first_scaler, _)) = scaler.first() {
        // S001a: scaler bookkeeping belongs to the update phase.
        for &(i, op) in &scaler {
            if op.phase != Phase::Update {
                out.push(
                    Finding::err(RuleId::ScalerPlacement, "scaler op outside the update phase")
                        .at(i, op)
                        .with_note("unscale/overflow bookkeeping runs between backward and update"),
                );
            }
        }
        // S001b: there must be backward work before the first scaler op —
        // gradients are what get unscaled and checked.
        if !ops[..*first_scaler].iter().any(|o| o.phase == Phase::Backward) {
            out.push(
                Finding::err(
                    RuleId::ScalerPlacement,
                    "scaler op before any backward work: there are no gradients to unscale",
                )
                .at(*first_scaler, &ops[*first_scaler]),
            );
        }
        // S001c: no scaler op may run after the optimizer began — the
        // finiteness verdict must be in hand before any weight moves.
        if let Some(fo) = first_opt {
            for &(i, op) in &scaler {
                if i > fo {
                    out.push(
                        Finding::err(
                            RuleId::ScalerPlacement,
                            "scaler op runs after the optimizer update began",
                        )
                        .at(i, op)
                        .with_note(format!(
                            "the overflow verdict gates the update; optimizer began at op #{fo}"
                        )),
                    );
                }
            }
        }
    }
    // S002: an overflow marker means the scaler skipped this step.
    let overflow = scaler.iter().find(|&&(_, o)| o.name.contains(OVERFLOW_MARKER));
    if let (Some(&(i, op)), Some(fo)) = (overflow, first_opt) {
        out.push(
            Finding::err(
                RuleId::OverflowSkipsUpdate,
                "overflow-skipped step still launches optimizer kernels",
            )
            .at(i, op)
            .with_note(format!(
                "`{OVERFLOW_MARKER}` marks a skipped step, yet op #{fo} ({}) updates weights",
                ops[fo].name
            )),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{DType, OpKind};

    fn op(name: &str, category: Category, phase: Phase) -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: name.into(),
            kind: OpKind::ElementWise,
            category,
            phase,
            layer: None,
            gemm: None,
            flops: 8,
            bytes_read: 32,
            bytes_written: 4,
            dtype: DType::F32,
        }
    }

    fn codes(ops: &[OpRecord]) -> Vec<&'static str> {
        check(ops).iter().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn clean_scaled_update_passes() {
        let ops = vec![
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Update),
            op("scaler.rescale.update", Category::LossScale, Phase::Update),
            op("lamb.grad_norm.update", Category::GradNorm, Phase::Update),
            op("lamb.stage1.update", Category::LambStage1, Phase::Update),
        ];
        assert!(codes(&ops).is_empty());
    }

    #[test]
    fn skipped_step_without_optimizer_passes() {
        let ops = vec![
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Update),
            op("scaler.overflow.update", Category::LossScale, Phase::Update),
        ];
        assert!(codes(&ops).is_empty());
    }

    #[test]
    fn overflow_then_optimizer_is_s002() {
        let ops = vec![
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Update),
            op("scaler.overflow.update", Category::LossScale, Phase::Update),
            op("lamb.grad_norm.update", Category::GradNorm, Phase::Update),
        ];
        assert!(codes(&ops).contains(&"S002"));
    }

    #[test]
    fn scaler_after_optimizer_is_s001() {
        let ops = vec![
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("lamb.grad_norm.update", Category::GradNorm, Phase::Update),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Update),
        ];
        assert!(codes(&ops).contains(&"S001"));
    }

    #[test]
    fn scaler_without_backward_is_s001() {
        let ops = vec![
            op("fc1.fwd", Category::FcGemm, Phase::Forward),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Update),
        ];
        assert!(codes(&ops).contains(&"S001"));
    }

    #[test]
    fn scaler_in_wrong_phase_is_s001() {
        let ops = vec![
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("scaler.unscale_check.update", Category::LossScale, Phase::Backward),
        ];
        assert!(codes(&ops).contains(&"S001"));
    }

    #[test]
    fn unscaled_stream_is_untouched() {
        let ops = vec![
            op("fc1.fwd", Category::FcGemm, Phase::Forward),
            op("fc1.bwd", Category::FcGemm, Phase::Backward),
            op("lamb.grad_norm.update", Category::GradNorm, Phase::Update),
        ];
        assert!(codes(&ops).is_empty());
    }
}
