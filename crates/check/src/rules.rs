//! The lint rule registry.
//!
//! Every diagnostic the checker can produce carries one of these stable
//! identifiers, grouped into three families:
//!
//! * **C-series (conservation)**: recorded FLOP/byte counts must match an
//!   independent closed-form recomputation from the op's own metadata
//!   (GEMM dims, dtype, optimizer per-parameter costs) or, with a
//!   configuration in hand, from the model's parameter inventory.
//! * **D-series (dataflow)**: symbolic shape/dtype propagation — an op's
//!   kind must agree with its spec, producer→consumer shapes must chain,
//!   dtypes must obey the precision contract, and no op may be a ghost
//!   (zero traffic or unexplained zero arithmetic).
//! * **P-series (phase legality)**: forward before backward, backward in
//!   reverse layer order, recompute sandwiched correctly, optimizer last
//!   and internally ordered.
//! * **S-series (scaler/skip)**: mixed-precision loss-scaler bookkeeping —
//!   the unscale/overflow-check kernels sit between backward and the
//!   optimizer, and a step the scaler skipped must launch no optimizer
//!   kernels at all.
//! * **M-series (memory)**: the measured memory profile from the pooled
//!   allocator must be internally consistent — live bytes never negative
//!   and the peak at least the resident weights+gradients lower bound.
//! * **H-series (hazard)**: a candidate parallel schedule must respect
//!   every RAW/WAR/WAW dependence edge of the reconstructed operator DAG,
//!   including edges crossing phase boundaries and the AllReduce→optimizer
//!   ordering (the static stand-in for GPU stream/event dependency
//!   tracking).
//! * **L-series (lifetime)**: buffer provenance must describe legal pooled
//!   lifetimes — no use after release, no double release, no write into
//!   storage already back on the free list, and no leaked stream-local
//!   allocation.
//! * **F-series (fusion legality)**: a claimed task fusion must be provable
//!   on the dependence DAG — the merged ops adjacent in submission order,
//!   each producer's sole successor its fused consumer, and every side
//!   carrying buffer provenance.

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// C001: a GEMM op's recorded FLOPs disagree with `2·M·N·K·batch`.
    GemmFlops,
    /// C002: a GEMM op's recorded bytes disagree with its spec and dtype.
    GemmBytes,
    /// C003: optimizer ops' FLOPs and bytes imply inconsistent parameter
    /// counts (stage 1 vs stage 2 vs the gradient norm).
    OptimizerConservation,
    /// C004 (config-aware): optimizer traffic disagrees with the model's
    /// closed-form parameter count.
    ParamTraffic,
    /// C005 (config-aware): a layer's per-category totals disagree with the
    /// Table 2b / activation closed forms.
    LayerClosedForm,
    /// C006 (config-aware): optimizer kernel count disagrees with the
    /// update-group inventory.
    OptimizerKernelCount,
    /// D001: producer→consumer shapes do not chain within a layer segment.
    ShapeChain,
    /// D002: dtype violates the precision contract (non-f32 optimizer or
    /// loss op, GEMM dtype diverging from the stream's activation dtype).
    DtypeContract,
    /// D003: ghost op — zero bytes moved, or zero FLOPs on an arithmetic
    /// kind that cannot legitimately be free.
    GhostOp,
    /// D004: a layer segment is missing expected operations.
    SegmentStructure,
    /// D005: op kind and `GemmSpec` presence/batchedness disagree.
    KindSpec,
    /// P001: phase ordering violated (forward after its backward began,
    /// non-update work after the optimizer started, or an op in a phase its
    /// category cannot belong to).
    PhaseOrder,
    /// P002: forward layer order is not ascending, or backward not
    /// descending.
    LayerOrder,
    /// P003: a recompute op appears before the forward pass completed or
    /// after its layer's backward began.
    RecomputePlacement,
    /// P004: a training stream backpropagates some layers but not others,
    /// or updates weights without any backward pass.
    MissingBackward,
    /// P005: optimizer stage ordering violated (missing or late gradient
    /// norm, stage 2 without a preceding stage 1, unpaired stages).
    OptimizerStageOrder,
    /// P006 (config-aware): checkpointing enabled but a layer is never
    /// recomputed, or recompute ops present without checkpointing.
    CheckpointRecompute,
    /// S001: loss-scaler ops must run in the update phase, after some
    /// backward work (there is nothing to unscale otherwise) and before the
    /// first optimizer kernel (the finiteness verdict gates the update).
    ScalerPlacement,
    /// S002: a stream carrying an overflow marker (`scaler.overflow`) was
    /// skipped by the scaler and must therefore launch no optimizer kernels.
    OverflowSkipsUpdate,
    /// M001: measured live bytes must never go negative, and the measured
    /// peak must be at least the weights+gradients lower bound.
    MemoryAccounting,
    /// H001: a candidate schedule runs a reader at or before the step of the
    /// writer it depends on (read-after-write hazard).
    HazardRaw,
    /// H002: a candidate schedule overwrites a buffer at or before the step
    /// of a reader of its previous value (write-after-read hazard).
    HazardWar,
    /// H003: a candidate schedule reorders two writers of the same buffer
    /// (write-after-write hazard).
    HazardWaw,
    /// H004: a dependence edge crossing a phase boundary (forward/backward/
    /// recompute/update) is inverted by the candidate schedule — a
    /// cross-phase race.
    CrossPhaseRace,
    /// H005: communication/update ordering — an update-phase op consumes a
    /// gradient buffer before the communication op (AllReduce/ReduceScatter)
    /// that produces its globally-reduced value.
    CommUpdateOrder,
    /// L001: an op uses a buffer after it was released to the pool.
    UseAfterFree,
    /// L002: a buffer is released to the pool twice without an intervening
    /// reallocation.
    DoubleFree,
    /// L003: a buffer is written after its backing storage re-entered the
    /// free list (write lands in memory a later allocation may own).
    WriteAfterReuse,
    /// L004: a buffer allocated inside the stream is still live when the
    /// stream ends even though the stream releases other buffers (leak).
    BufferLeak,
    /// F001: a claimed task fusion is illegal — the fused pair is not
    /// adjacent in submission order, the producer has dependence successors
    /// other than its fused consumer, or a side has opaque (empty)
    /// provenance and must remain a scheduling barrier.
    FusionLegality,
}

impl RuleId {
    /// The rule's stable diagnostic code (`C001`, `D003`, `P005`, ...).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::GemmFlops => "C001",
            RuleId::GemmBytes => "C002",
            RuleId::OptimizerConservation => "C003",
            RuleId::ParamTraffic => "C004",
            RuleId::LayerClosedForm => "C005",
            RuleId::OptimizerKernelCount => "C006",
            RuleId::ShapeChain => "D001",
            RuleId::DtypeContract => "D002",
            RuleId::GhostOp => "D003",
            RuleId::SegmentStructure => "D004",
            RuleId::KindSpec => "D005",
            RuleId::PhaseOrder => "P001",
            RuleId::LayerOrder => "P002",
            RuleId::RecomputePlacement => "P003",
            RuleId::MissingBackward => "P004",
            RuleId::OptimizerStageOrder => "P005",
            RuleId::CheckpointRecompute => "P006",
            RuleId::ScalerPlacement => "S001",
            RuleId::OverflowSkipsUpdate => "S002",
            RuleId::MemoryAccounting => "M001",
            RuleId::HazardRaw => "H001",
            RuleId::HazardWar => "H002",
            RuleId::HazardWaw => "H003",
            RuleId::CrossPhaseRace => "H004",
            RuleId::CommUpdateOrder => "H005",
            RuleId::UseAfterFree => "L001",
            RuleId::DoubleFree => "L002",
            RuleId::WriteAfterReuse => "L003",
            RuleId::BufferLeak => "L004",
            RuleId::FusionLegality => "F001",
        }
    }

    /// One-line summary of what the rule verifies.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::GemmFlops => "GEMM FLOPs match 2*M*N*K*batch recomputed from the spec",
            RuleId::GemmBytes => "GEMM bytes match (M*K + K*N) reads and M*N writes at the dtype",
            RuleId::OptimizerConservation => {
                "optimizer stages imply one consistent parameter count"
            }
            RuleId::ParamTraffic => "optimizer traffic matches the model's parameter count",
            RuleId::LayerClosedForm => "per-layer totals match the Table 2b closed forms",
            RuleId::OptimizerKernelCount => "optimizer kernel count matches the group inventory",
            RuleId::ShapeChain => "producer/consumer shapes chain through each layer",
            RuleId::DtypeContract => "dtypes obey the precision contract",
            RuleId::GhostOp => "no zero-byte or unexplained zero-FLOP ops",
            RuleId::SegmentStructure => "layer segments contain their expected GEMMs",
            RuleId::KindSpec => "op kind agrees with its GemmSpec",
            RuleId::PhaseOrder => "forward precedes backward; the update comes last",
            RuleId::LayerOrder => "forward ascends and backward descends the layer stack",
            RuleId::RecomputePlacement => "recompute sits between forward and its backward",
            RuleId::MissingBackward => "training streams backpropagate every forwarded layer",
            RuleId::OptimizerStageOrder => "grad-norm precedes paired LAMB stages in order",
            RuleId::CheckpointRecompute => "checkpointing re-emits recompute ops per layer",
            RuleId::ScalerPlacement => "loss-scaler ops sit between backward and the optimizer",
            RuleId::OverflowSkipsUpdate => "an overflow-skipped step launches no optimizer kernels",
            RuleId::MemoryAccounting => {
                "measured live bytes stay non-negative and peak covers weights+grads"
            }
            RuleId::HazardRaw => "schedules never run a reader before its producing writer",
            RuleId::HazardWar => "schedules never overwrite a buffer before its readers finish",
            RuleId::HazardWaw => "schedules never reorder two writers of one buffer",
            RuleId::CrossPhaseRace => "schedules never invert a dependence across phase boundaries",
            RuleId::CommUpdateOrder => "updates consume gradients only after their reduction",
            RuleId::UseAfterFree => "no buffer is used after its release to the pool",
            RuleId::DoubleFree => "no buffer is released to the pool twice",
            RuleId::WriteAfterReuse => "no write lands in storage already back on the free list",
            RuleId::BufferLeak => "stream-allocated buffers are released by stream end",
            RuleId::FusionLegality => {
                "fused task pairs are adjacent, sole-successor and fully annotated"
            }
        }
    }

    /// All rules, in code order.
    #[must_use]
    pub fn all() -> &'static [RuleId] {
        &[
            RuleId::GemmFlops,
            RuleId::GemmBytes,
            RuleId::OptimizerConservation,
            RuleId::ParamTraffic,
            RuleId::LayerClosedForm,
            RuleId::OptimizerKernelCount,
            RuleId::ShapeChain,
            RuleId::DtypeContract,
            RuleId::GhostOp,
            RuleId::SegmentStructure,
            RuleId::KindSpec,
            RuleId::PhaseOrder,
            RuleId::LayerOrder,
            RuleId::RecomputePlacement,
            RuleId::MissingBackward,
            RuleId::OptimizerStageOrder,
            RuleId::CheckpointRecompute,
            RuleId::ScalerPlacement,
            RuleId::OverflowSkipsUpdate,
            RuleId::MemoryAccounting,
            RuleId::HazardRaw,
            RuleId::HazardWar,
            RuleId::HazardWaw,
            RuleId::CrossPhaseRace,
            RuleId::CommUpdateOrder,
            RuleId::UseAfterFree,
            RuleId::DoubleFree,
            RuleId::WriteAfterReuse,
            RuleId::BufferLeak,
            RuleId::FusionLegality,
        ]
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = RuleId::all().iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "duplicate rule code");
    }

    #[test]
    fn every_rule_has_a_summary() {
        for r in RuleId::all() {
            assert!(!r.summary().is_empty());
            assert_eq!(r.code().len(), 4);
        }
    }
}
