//! D-series lints: dataflow.
//!
//! These rules treat the stream as a symbolic program: each op's kind must
//! agree with its metadata (D005), no op may be a ghost (D003), dtypes must
//! obey the precision contract (D002), and — the core of the pass — the
//! shapes of producers and consumers must chain through each Transformer
//! layer's contiguous operator segment (D001/D004): FC-1's output feeds
//! `GeLU` feeds FC-2, and the attention-score matrix feeds the
//! scale/mask/softmax/dropout chain and the context batched GEMM.

use crate::conservation::elem_size;
use crate::finding::Finding;
use crate::rules::RuleId;
use bertscope_tensor::{Category, DType, GemmSpec, OpKind, OpRecord, Phase};
use std::collections::BTreeMap;

pub(crate) fn check(ops: &[OpRecord]) -> Vec<Finding> {
    let mut out = Vec::new();
    per_op(ops, &mut out);
    dtype_contract(ops, &mut out);
    for seg in collect_segments(ops) {
        match seg.phase {
            Phase::Forward | Phase::Recompute => check_forward_segment(ops, &seg, &mut out),
            Phase::Backward => check_backward_segment(ops, &seg, &mut out),
            _ => {}
        }
    }
    out
}

/// D003 + D005: per-op kind/spec agreement and ghost detection.
fn per_op(ops: &[OpRecord], out: &mut Vec<Finding>) {
    for (i, op) in ops.iter().enumerate() {
        match (op.kind, op.gemm) {
            (OpKind::Gemm, Some(s)) if s.batch != 1 => out.push(
                Finding::err(RuleId::KindSpec, "plain-GEMM op carries a batched spec")
                    .at(i, op)
                    .with_note(format!("spec {s} has batch {}", s.batch)),
            ),
            (OpKind::BatchedGemm, Some(s)) if s.batch < 2 => out.push(
                Finding::err(RuleId::KindSpec, "batched-GEMM op has a non-batched spec")
                    .at(i, op)
                    .with_note(format!("spec {s} has batch {}", s.batch)),
            ),
            (OpKind::Gemm | OpKind::BatchedGemm, None) => out
                .push(Finding::err(RuleId::KindSpec, "GEMM-kind op carries no GemmSpec").at(i, op)),
            (OpKind::ElementWise | OpKind::Reduction | OpKind::Copy | OpKind::Comm, Some(s)) => {
                out.push(
                    Finding::err(RuleId::KindSpec, "non-GEMM op carries a GemmSpec")
                        .at(i, op)
                        .with_note(format!("kind {} with spec {s}", op.kind)),
                );
            }
            _ => {}
        }
        // Pure data movements and communication fragments legitimately
        // perform no arithmetic; everything else must both move bytes and
        // (except embedding gathers) do work.
        if matches!(op.kind, OpKind::Copy | OpKind::Comm) {
            continue;
        }
        if op.bytes_read + op.bytes_written == 0 {
            out.push(Finding::err(RuleId::GhostOp, "op moves zero bytes").at(i, op));
        }
        if op.flops == 0 {
            let is_gather = op.kind == OpKind::ElementWise
                && op.category == Category::Embedding
                && op.phase == Phase::Forward;
            if !is_gather {
                out.push(
                    Finding::err(RuleId::GhostOp, "arithmetic op performs zero FLOPs")
                        .at(i, op)
                        .with_note(
                            "only embedding-table gathers are zero-FLOP; \
                             pure moves must be OpKind::Copy",
                        ),
                );
            }
        }
    }
}

/// D002: the `Precision` contract.
///
/// * Optimizer (update-phase) ops are always f32, in every precision mode.
/// * Loss (cross-entropy) ops are always f32.
/// * All forward/backward/recompute GEMMs share one activation dtype — the
///   modal dtype of the forward GEMMs. A single f32 GEMM inside a
///   mixed-precision stream (or a stray f16 GEMM inside an f32 stream) is
///   flagged.
fn dtype_contract(ops: &[OpRecord], out: &mut Vec<Finding>) {
    for (i, op) in ops.iter().enumerate() {
        if op.phase == Phase::Update && op.dtype != DType::F32 {
            out.push(
                Finding::err(RuleId::DtypeContract, "optimizer op is not f32").at(i, op).with_note(
                    format!(
                        "update-phase data stays f32 in every precision mode, recorded {}",
                        op.dtype
                    ),
                ),
            );
        }
        if op.name.contains("xent") && op.dtype != DType::F32 {
            out.push(
                Finding::err(RuleId::DtypeContract, "loss op is not f32")
                    .at(i, op)
                    .with_note(format!("cross-entropy runs in f32, recorded {}", op.dtype)),
            );
        }
    }
    let mut counts: BTreeMap<DType, usize> = BTreeMap::new();
    for op in ops.iter().filter(|o| o.is_gemm() && o.phase == Phase::Forward) {
        *counts.entry(op.dtype).or_default() += 1;
    }
    let Some((&modal, _)) = counts.iter().max_by_key(|&(_, &c)| c) else {
        return; // No forward GEMMs: no activation-dtype contract to enforce.
    };
    for (i, op) in ops.iter().enumerate() {
        let activation = matches!(op.phase, Phase::Forward | Phase::Backward | Phase::Recompute);
        if activation && op.is_gemm() && op.dtype != modal {
            out.push(
                Finding::err(
                    RuleId::DtypeContract,
                    "GEMM dtype diverges from the stream's activation dtype",
                )
                .at(i, op)
                .with_note(format!("stream activations are {modal}, this GEMM is {}", op.dtype)),
            );
        }
    }
}

/// A maximal contiguous run of ops belonging to one `(layer, phase)`,
/// ignoring interleaved copies and communication fragments.
struct Segment {
    layer: usize,
    phase: Phase,
    idxs: Vec<usize>,
}

fn collect_segments(ops: &[OpRecord]) -> Vec<Segment> {
    let mut segs: Vec<Segment> = Vec::new();
    let mut current: Option<(usize, Phase)> = None;
    for (i, op) in ops.iter().enumerate() {
        if matches!(op.kind, OpKind::Copy | OpKind::Comm) {
            continue; // transparent to segmentation
        }
        let key = match (op.layer, op.phase) {
            (Some(l), Phase::Forward | Phase::Recompute | Phase::Backward) => Some((l, op.phase)),
            _ => None,
        };
        match key {
            Some(k) if current == Some(k) => {
                segs.last_mut().expect("open segment").idxs.push(i);
            }
            Some(k) => {
                current = Some(k);
                segs.push(Segment { layer: k.0, phase: k.1, idxs: vec![i] });
            }
            None => current = None,
        }
    }
    segs
}

/// The GEMMs of a segment belonging to one category, in stream order.
fn gemms_of(ops: &[OpRecord], seg: &Segment, cat: Category) -> Vec<(usize, GemmSpec)> {
    seg.idxs
        .iter()
        .filter_map(|&i| {
            let op = &ops[i];
            (op.category == cat).then_some(()).and(op.gemm).map(|g| (i, g))
        })
        .collect()
}

/// Every op of a segment in one category must write exactly `elems` values
/// at its own dtype (the activation tensor the chain carries).
fn check_chain_bytes(
    ops: &[OpRecord],
    seg: &Segment,
    cat: Category,
    elems: u64,
    produced_by: &str,
    out: &mut Vec<Finding>,
) {
    for &i in &seg.idxs {
        let op = &ops[i];
        if op.category != cat {
            continue;
        }
        let expect = elems * elem_size(op.dtype);
        if op.bytes_written != expect {
            out.push(
                Finding::err(
                    RuleId::ShapeChain,
                    format!("{cat} op does not match its input shape"),
                )
                .at(i, op)
                .with_note(format!(
                    "{produced_by} produces {elems} elements ({expect} bytes at {}), \
                         op writes {} bytes",
                    op.dtype, op.bytes_written
                )),
            );
        }
    }
}

fn segment_err(seg: &Segment, ops: &[OpRecord], msg: String) -> Finding {
    let i = seg.idxs[0];
    Finding::err(RuleId::SegmentStructure, msg).at(i, &ops[i])
}

/// Forward/recompute layer segment: Q/K/V + score + softmax-chain + context
/// + output projection + FC-1 + `GeLU` + FC-2.
fn check_forward_segment(ops: &[OpRecord], seg: &Segment, out: &mut Vec<Finding>) {
    let l = seg.layer;
    let ph = seg.phase;
    let fc = gemms_of(ops, seg, Category::FcGemm);
    if fc.len() == 2 {
        let (_, f1) = fc[0];
        let (i2, f2) = fc[1];
        if f2.k != f1.m || f2.n != f1.n {
            out.push(
                Finding::err(RuleId::ShapeChain, "FC-2 input shape does not match FC-1 output")
                    .at(i2, &ops[i2])
                    .with_note(format!(
                        "FC-1 produces [{}x{}], FC-2 consumes [{}x{}]",
                        f1.m, f1.n, f2.k, f2.n
                    )),
            );
        }
        check_chain_bytes(ops, seg, Category::Gelu, (f1.m * f1.n) as u64, "FC-1", out);
    } else {
        out.push(segment_err(
            seg,
            ops,
            format!("layer {l} {ph} segment has {} FC GEMMs, expected 2 (FC-1, FC-2)", fc.len()),
        ));
    }
    let bg = gemms_of(ops, seg, Category::AttnBgemm);
    if bg.len() == 2 {
        let (_, score) = bg[0];
        let (ic, ctx) = bg[1];
        if ctx.batch != score.batch {
            out.push(
                Finding::err(RuleId::ShapeChain, "attention GEMM batches disagree")
                    .at(ic, &ops[ic])
                    .with_note(format!(
                        "score batch {} vs context batch {}",
                        score.batch, ctx.batch
                    )),
            );
        }
        if ctx.k != score.m {
            out.push(
                Finding::err(
                    RuleId::ShapeChain,
                    "context GEMM does not contract over the score matrix",
                )
                .at(ic, &ops[ic])
                .with_note(format!(
                    "score matrix is [{}x{}], context contracts over {}",
                    score.m, score.n, ctx.k
                )),
            );
        }
        let scores = (score.m * score.n * score.batch) as u64;
        check_chain_bytes(
            ops,
            seg,
            Category::ScaleMaskSoftmaxDropout,
            scores,
            "the score B-GEMM",
            out,
        );
    } else {
        out.push(segment_err(
            seg,
            ops,
            format!(
                "layer {l} {ph} segment has {} attention B-GEMMs, expected 2 (score, context)",
                bg.len()
            ),
        ));
    }
}

/// Backward layer segment: the same chains in reverse — FC-2 grads feed `GeLU`
/// backward feeds FC-1 grads; the score-matrix gradient (context grad-V
/// output) feeds the softmax-chain backward.
fn check_backward_segment(ops: &[OpRecord], seg: &Segment, out: &mut Vec<Finding>) {
    let l = seg.layer;
    let fc = gemms_of(ops, seg, Category::FcGemm);
    if fc.len() == 4 {
        // [fc2.grad_act, fc2.grad_wt, fc1.grad_act, fc1.grad_wt]
        let (_, f2ga) = fc[0];
        let (i1, f1ga) = fc[2];
        if f1ga.k != f2ga.m || f1ga.n != f2ga.n {
            out.push(
                Finding::err(
                    RuleId::ShapeChain,
                    "FC-1 grad-activation input does not match FC-2 grad-activation output",
                )
                .at(i1, &ops[i1])
                .with_note(format!(
                    "FC-2 grad-act produces [{}x{}], FC-1 grad-act consumes [{}x{}]",
                    f2ga.m, f2ga.n, f1ga.k, f1ga.n
                )),
            );
        }
        check_chain_bytes(ops, seg, Category::Gelu, (f2ga.m * f2ga.n) as u64, "FC-2 grad-act", out);
    } else {
        out.push(segment_err(
            seg,
            ops,
            format!("layer {l} backward segment has {} FC GEMMs, expected 4", fc.len()),
        ));
    }
    let bg = gemms_of(ops, seg, Category::AttnBgemm);
    if bg.len() == 4 {
        // [context.grad_act, context.grad_v, score.grad_q, score.grad_k]
        let batch = bg[0].1.batch;
        for &(i, g) in &bg[1..] {
            if g.batch != batch {
                out.push(
                    Finding::err(RuleId::ShapeChain, "attention backward GEMM batches disagree")
                        .at(i, &ops[i])
                        .with_note(format!("batch {} vs {}", g.batch, batch)),
                );
            }
        }
        let (_, grad_v) = bg[1]; // output = gradient w.r.t. the score matrix
        let scores = (grad_v.m * grad_v.n * grad_v.batch) as u64;
        check_chain_bytes(
            ops,
            seg,
            Category::ScaleMaskSoftmaxDropout,
            scores,
            "the score-matrix gradient",
            out,
        );
    } else {
        out.push(segment_err(
            seg,
            ops,
            format!("layer {l} backward segment has {} attention B-GEMMs, expected 4", bg.len()),
        ));
    }
}
