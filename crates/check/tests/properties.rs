//! Property-based tests: for *arbitrary* valid configurations the checker
//! stays silent on every builder's output, and targeted random corruptions
//! are always flagged.

use bertscope_check::{check_iteration, check_stream, has_errors, report};
use bertscope_model::{
    build_finetune, build_inference, build_iteration, BertConfig, GraphOptions, OptimizerChoice,
    Precision,
};
use bertscope_tensor::{DType, OpRecord, Phase};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = BertConfig> {
    // Graphs only — cost is op-list length, but heads must divide d_model.
    (1usize..6, 1usize..8, prop_oneof![Just(2usize), Just(4), Just(8)], 1usize..4, 2usize..17)
        .prop_map(|(layers, dm_mult, heads, ff_mult, seq)| {
            let d_model = heads * 16 * dm_mult;
            BertConfig {
                layers,
                d_model,
                heads,
                d_ff: d_model * ff_mult,
                vocab: 500,
                max_position: 512,
                seq_len: seq * 8,
                batch: 3,
            }
        })
}

fn arb_options() -> impl Strategy<Value = GraphOptions> {
    (0usize..3, 0usize..2, 0usize..2).prop_map(|(p, c, o)| GraphOptions {
        precision: [Precision::Fp32, Precision::Mixed, Precision::MixedBf16][p],
        checkpoint: c == 1,
        optimizer: [OptimizerChoice::Lamb, OptimizerChoice::Adam][o],
        ..GraphOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The checker accepts every pre-training iteration any valid
    /// configuration can produce, under every option combination.
    #[test]
    fn any_valid_pretrain_stream_is_clean(cfg in arb_config(), opts in arb_options()) {
        let findings = check_iteration(&cfg, &opts, &build_iteration(&cfg, &opts));
        prop_assert!(findings.is_empty(), "{}", report(&findings));
    }

    /// Likewise for fine-tuning (which never checkpoints) and inference
    /// (which never runs an optimizer).
    #[test]
    fn any_valid_finetune_and_inference_stream_is_clean(
        cfg in arb_config(),
        opts in arb_options(),
    ) {
        let ft = GraphOptions { checkpoint: false, ..opts };
        let findings = check_iteration(&cfg, &ft, &build_finetune(&cfg, &ft));
        prop_assert!(findings.is_empty(), "finetune: {}", report(&findings));

        let inf = GraphOptions { optimizer: OptimizerChoice::None, checkpoint: false, ..opts };
        let findings = check_iteration(&cfg, &inf, &build_inference(&cfg, &inf));
        prop_assert!(findings.is_empty(), "inference: {}", report(&findings));
    }

    /// Corrupting any single GEMM's FLOP count is always detected.
    #[test]
    fn any_gemm_flop_corruption_is_flagged(
        cfg in arb_config(),
        opts in arb_options(),
        pick in 0usize..1000,
        delta in 1u64..1_000_000,
    ) {
        let mut ops = build_iteration(&cfg, &opts);
        let gemms: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_gemm())
            .map(|(i, _)| i)
            .collect();
        let i = gemms[pick % gemms.len()];
        ops[i].flops += delta;
        prop_assert!(has_errors(&check_stream(&ops)));
    }

    /// Corrupting any single op's byte traffic is always detected — GEMMs by
    /// spec conservation, optimizer ops by parameter-inventory conservation,
    /// activation chains by the shape chain.
    #[test]
    fn any_byte_corruption_on_checked_ops_is_flagged(
        cfg in arb_config(),
        opts in arb_options(),
        pick in 0usize..1000,
    ) {
        let ops = build_iteration(&cfg, &opts);
        let targets: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_gemm() || o.phase == Phase::Update)
            .map(|(i, _)| i)
            .collect();
        let i = targets[pick % targets.len()];
        let mut bad = ops;
        bad[i].bytes_read = bad[i].bytes_read.wrapping_add(4);
        prop_assert!(has_errors(&check_stream(&bad)));
    }

    /// Flipping any activation GEMM's dtype is always detected.
    #[test]
    fn any_dtype_flip_on_gemms_is_flagged(
        cfg in arb_config(),
        opts in arb_options(),
        pick in 0usize..1000,
    ) {
        let mut ops = build_iteration(&cfg, &opts);
        let gemms: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.is_gemm()
                    && matches!(o.phase, Phase::Forward | Phase::Backward | Phase::Recompute)
            })
            .map(|(i, _)| i)
            .collect();
        let i = gemms[pick % gemms.len()];
        ops[i].dtype = match ops[i].dtype {
            DType::F32 => DType::F16,
            DType::F16 | DType::BF16 => DType::F32,
        };
        prop_assert!(has_errors(&check_stream(&ops)));
    }

    /// Deleting any layer's whole backward pass is always detected.
    #[test]
    fn any_truncated_backward_is_flagged(
        cfg in arb_config(),
        opts in arb_options(),
        pick in 0usize..8,
    ) {
        let victim = pick % cfg.layers;
        let ops: Vec<OpRecord> = build_iteration(&cfg, &opts)
            .into_iter()
            .filter(|o| !(o.phase == Phase::Backward && o.layer == Some(victim)))
            .collect();
        prop_assert!(has_errors(&check_stream(&ops)));
    }
}
