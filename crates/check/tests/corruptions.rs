//! Mutation coverage for the checker: every rule family must fire on a
//! deliberately corrupted stream and stay silent on the pristine one.

use bertscope_check::{check_iteration, check_stream, has_errors, Finding};
use bertscope_model::{
    build_finetune, build_inference, build_iteration, BertConfig, GraphOptions, OptimizerChoice,
    Precision,
};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

fn pretrain() -> (BertConfig, GraphOptions, Vec<OpRecord>) {
    let cfg = BertConfig::tiny();
    let opts = GraphOptions { optimizer: OptimizerChoice::Lamb, ..GraphOptions::default() };
    let ops = build_iteration(&cfg, &opts);
    (cfg, opts, ops)
}

#[test]
fn clean_streams_pass_everywhere() {
    let cfg = BertConfig::tiny();
    for precision in [Precision::Fp32, Precision::Mixed, Precision::MixedBf16] {
        for checkpoint in [false, true] {
            for optimizer in [OptimizerChoice::Lamb, OptimizerChoice::Adam] {
                let opts =
                    GraphOptions { precision, checkpoint, optimizer, ..GraphOptions::default() };
                let f = check_iteration(&cfg, &opts, &build_iteration(&cfg, &opts));
                assert!(f.is_empty(), "pretrain {precision:?}/{checkpoint}/{optimizer:?}: {f:?}");
                if !checkpoint {
                    let f = check_iteration(&cfg, &opts, &build_finetune(&cfg, &opts));
                    assert!(f.is_empty(), "finetune {precision:?}/{optimizer:?}: {f:?}");
                }
            }
        }
        let inf =
            GraphOptions { precision, optimizer: OptimizerChoice::None, ..GraphOptions::default() };
        let f = check_iteration(&cfg, &inf, &build_inference(&cfg, &inf));
        assert!(f.is_empty(), "inference {precision:?}: {f:?}");
    }
}

#[test]
fn corrupted_gemm_flops_fires_c001() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(OpRecord::is_gemm).unwrap();
    ops[i].flops += 2;
    assert!(codes(&check_stream(&ops)).contains(&"C001"));
}

#[test]
fn corrupted_gemm_bytes_fires_c002() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(OpRecord::is_gemm).unwrap();
    ops[i].bytes_read += 4;
    assert!(codes(&check_stream(&ops)).contains(&"C002"));
}

#[test]
fn swapped_activation_dtype_fires_d002_and_c002() {
    let cfg = BertConfig::tiny();
    let opts = GraphOptions { precision: Precision::Mixed, ..GraphOptions::default() };
    let mut ops = build_iteration(&cfg, &opts);
    // One forward GEMM silently promoted to f32 inside a mixed stream: the
    // dtype contract breaks, and so do the byte counts it recorded at f16.
    let i = ops
        .iter()
        .position(|o| o.is_gemm() && o.phase == Phase::Forward && o.dtype == DType::F16)
        .unwrap();
    ops[i].dtype = DType::F32;
    let c = codes(&check_stream(&ops));
    assert!(c.contains(&"D002"), "{c:?}");
    assert!(c.contains(&"C002"), "{c:?}");
}

#[test]
fn non_f32_optimizer_op_fires_d002() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(|o| o.phase == Phase::Update).unwrap();
    ops[i].dtype = DType::F16;
    assert!(codes(&check_stream(&ops)).contains(&"D002"));
}

#[test]
fn kind_spec_disagreement_fires_d005() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(OpRecord::is_gemm).unwrap();
    ops[i].kind = OpKind::ElementWise; // still carries its GemmSpec
    assert!(codes(&check_stream(&ops)).contains(&"D005"));
}

#[test]
fn zero_flop_arithmetic_op_fires_d003() {
    let (_, _, mut ops) = pretrain();
    let i = ops
        .iter()
        .position(|o| {
            o.kind == OpKind::ElementWise && o.category != Category::Embedding && o.flops > 0
        })
        .unwrap();
    ops[i].flops = 0;
    assert!(codes(&check_stream(&ops)).contains(&"D003"));
}

#[test]
fn zero_byte_op_fires_d003() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(|o| o.kind == OpKind::ElementWise).unwrap();
    ops[i].bytes_read = 0;
    ops[i].bytes_written = 0;
    assert!(codes(&check_stream(&ops)).contains(&"D003"));
}

#[test]
fn dropped_fc2_gemm_fires_d004() {
    let (_, _, ops) = pretrain();
    let second_fc = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            o.category == Category::FcGemm && o.phase == Phase::Forward && o.layer == Some(0)
        })
        .map(|(i, _)| i)
        .nth(1)
        .unwrap();
    let ops: Vec<OpRecord> =
        ops.into_iter().enumerate().filter(|&(i, _)| i != second_fc).map(|(_, o)| o).collect();
    assert!(codes(&check_stream(&ops)).contains(&"D004"));
}

#[test]
fn optimizer_before_backward_fires_p001() {
    let (_, _, ops) = pretrain();
    // Stable-partition the update phase to the front of the stream.
    let (upd, rest): (Vec<OpRecord>, Vec<OpRecord>) =
        ops.into_iter().partition(|o| o.phase == Phase::Update);
    let reordered: Vec<OpRecord> = upd.into_iter().chain(rest).collect();
    assert!(codes(&check_stream(&reordered)).contains(&"P001"));
}

#[test]
fn forward_revisiting_a_layer_fires_p002() {
    let (_, _, mut ops) = pretrain();
    let last_fwd =
        ops.iter().rposition(|o| o.phase == Phase::Forward && o.layer == Some(1)).unwrap();
    ops[last_fwd].layer = Some(0);
    assert!(codes(&check_stream(&ops)).contains(&"P002"));
}

#[test]
fn truncated_backward_fires_p004() {
    let (_, _, ops) = pretrain();
    let ops: Vec<OpRecord> =
        ops.into_iter().filter(|o| !(o.phase == Phase::Backward && o.layer == Some(0))).collect();
    assert!(codes(&check_stream(&ops)).contains(&"P004"));
}

#[test]
fn update_without_backward_fires_p004() {
    let (_, _, ops) = pretrain();
    let ops: Vec<OpRecord> = ops.into_iter().filter(|o| o.phase != Phase::Backward).collect();
    assert!(codes(&check_stream(&ops)).contains(&"P004"));
}

#[test]
fn missing_gradient_norm_fires_p005() {
    let (_, _, ops) = pretrain();
    let ops: Vec<OpRecord> = ops.into_iter().filter(|o| o.category != Category::GradNorm).collect();
    assert!(codes(&check_stream(&ops)).contains(&"P005"));
}

#[test]
fn lamb_stage2_before_stage1_fires_p005() {
    let (_, _, mut ops) = pretrain();
    let s1 = ops.iter().position(|o| o.category == Category::LambStage1).unwrap();
    let s2 = ops.iter().position(|o| o.category == Category::LambStage2).unwrap();
    ops.swap(s1, s2);
    assert!(codes(&check_stream(&ops)).contains(&"P005"));
}

#[test]
fn corrupted_stage1_traffic_fires_c003() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(|o| o.category == Category::LambStage1).unwrap();
    ops[i].bytes_read += 16;
    assert!(codes(&check_stream(&ops)).contains(&"C003"));
}

#[test]
fn dropped_update_kernel_fires_c006() {
    let (cfg, opts, ops) = pretrain();
    let i = ops.iter().position(|o| o.category == Category::LambStage1).unwrap();
    let ops: Vec<OpRecord> =
        ops.into_iter().enumerate().filter(|&(j, _)| j != i).map(|(_, o)| o).collect();
    assert!(codes(&check_iteration(&cfg, &opts, &ops)).contains(&"C006"));
}

#[test]
fn corrupted_layer_total_fires_c005() {
    let (cfg, opts, mut ops) = pretrain();
    // Shrink one forward GEMM consistently (spec, FLOPs and bytes all
    // rewritten to agree): per-op conservation stays clean, but the layer's
    // Table 2b closed form no longer holds.
    let i = ops
        .iter()
        .position(|o| o.is_gemm() && o.phase == Phase::Forward && o.layer == Some(0))
        .unwrap();
    let mut spec = ops[i].gemm.unwrap();
    spec.k /= 2;
    let es = match ops[i].dtype {
        DType::F32 => 4u64,
        DType::F16 | DType::BF16 => 2,
    };
    let (rows, cols, inner, batch) =
        (spec.m as u64, spec.n as u64, spec.k as u64, spec.batch as u64);
    ops[i].gemm = Some(spec);
    ops[i].flops = 2 * rows * cols * inner * batch;
    ops[i].bytes_read = (rows * inner + inner * cols) * batch * es;
    ops[i].bytes_written = rows * cols * batch * es;
    let findings = check_iteration(&cfg, &opts, &ops);
    assert!(codes(&findings).contains(&"C005"), "{findings:?}");
}

#[test]
fn stripped_recompute_fires_p006() {
    let cfg = BertConfig::tiny();
    let opts = GraphOptions { checkpoint: true, ..GraphOptions::default() };
    let ops: Vec<OpRecord> =
        build_iteration(&cfg, &opts).into_iter().filter(|o| o.phase != Phase::Recompute).collect();
    assert!(codes(&check_iteration(&cfg, &opts, &ops)).contains(&"P006"));
}

#[test]
fn stray_recompute_fires_p006() {
    let cfg = BertConfig::tiny();
    let plain = GraphOptions::default();
    let ckpt = GraphOptions { checkpoint: true, ..GraphOptions::default() };
    // Graft one recompute op (placed legally, after the forward pass) into a
    // stream whose options never asked for checkpointing.
    let donor = build_iteration(&cfg, &ckpt);
    let rec = donor.iter().find(|o| o.phase == Phase::Recompute).unwrap().clone();
    let mut ops = build_iteration(&cfg, &plain);
    let first_bwd = ops.iter().position(|o| o.phase == Phase::Backward).unwrap();
    ops.insert(first_bwd, rec);
    assert!(codes(&check_iteration(&cfg, &plain, &ops)).contains(&"P006"));
}

#[test]
fn every_corruption_is_error_severity() {
    let (_, _, mut ops) = pretrain();
    let i = ops.iter().position(OpRecord::is_gemm).unwrap();
    ops[i].flops = 1;
    assert!(has_errors(&check_stream(&ops)));
}
