//! Mutation and property coverage for the H- and L-series analyzers: every
//! rule fires on a deliberately corrupted real stream, stays silent on the
//! pristine one, and — property-tested — a randomly permuted schedule is
//! flagged exactly when it inverts a true dependence edge.

use bertscope_check::{
    annotate_lifetimes, check_schedule, check_stream, hazard, lifetime, DepGraph, DepKind, Finding,
    Schedule,
};
use bertscope_model::{build_iteration, BertConfig, GraphOptions, OptimizerChoice};
use bertscope_tensor::{AccessSet, BufId, Category, DType, OpKind, OpRecord, Phase};
use proptest::prelude::*;

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

fn pretrain() -> Vec<OpRecord> {
    let cfg = BertConfig::tiny();
    let opts = GraphOptions { optimizer: OptimizerChoice::Lamb, ..GraphOptions::default() };
    build_iteration(&cfg, &opts)
}

/// A synthetic pool-release event: pure data-movement bookkeeping, exempt
/// from the phase/dataflow families by its `Copy` kind.
fn free_op(name: &str, phase: Phase, bufs: &[BufId]) -> OpRecord {
    OpRecord {
        access: AccessSet::default().with_frees(bufs),
        name: name.into(),
        kind: OpKind::Copy,
        category: Category::DropResidualNorm,
        phase,
        layer: None,
        gemm: None,
        flops: 0,
        bytes_read: 0,
        bytes_written: 64,
        dtype: DType::F32,
    }
}

/// A synthetic `AllReduce` over `bufs` (in-place read+write).
fn allreduce_op(name: &str, bufs: &[BufId]) -> OpRecord {
    OpRecord {
        access: AccessSet::new(bufs, bufs),
        name: name.into(),
        kind: OpKind::Comm,
        category: Category::Comm,
        phase: Phase::Communication,
        layer: None,
        gemm: None,
        flops: 0,
        bytes_read: 1024,
        bytes_written: 1024,
        dtype: DType::F32,
    }
}

/// The identity schedule with the steps of ops `a` and `b` exchanged.
fn swapped(n: usize, a: usize, b: usize) -> Schedule {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.swap(a, b);
    Schedule::from_permutation(&perm)
}

/// Find one dependence edge of `kind` whose endpoints satisfy `pred`.
fn find_edge(
    ops: &[OpRecord],
    graph: &DepGraph,
    kind: DepKind,
    pred: impl Fn(&OpRecord, &OpRecord) -> bool,
) -> (usize, usize) {
    let e = graph
        .edges
        .iter()
        .find(|e| e.kind == kind && pred(&ops[e.from], &ops[e.to]))
        .unwrap_or_else(|| panic!("no {kind:?} edge matching predicate"));
    (e.from, e.to)
}

#[test]
fn pristine_stream_is_hazard_and_lifetime_clean() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    assert!(graph.edges.len() > ops.len(), "analytic streams are densely annotated");
    assert!(hazard::check(&ops).is_empty());
    assert!(lifetime::check(&ops).is_empty());
    // The max-parallel ASAP schedule is legal by construction and strictly
    // shorter than serial execution.
    let f = check_schedule(&ops, &graph, &Schedule::asap(&graph), "asap");
    assert!(f.is_empty(), "{f:?}");
    let rep = graph.report(&ops);
    assert!(rep.depth < ops.len(), "ASAP must compress the stream");
    assert!(rep.max_width > 1, "BERT exposes intra-step parallelism");
    assert!(rep.critical_path_flops < rep.total_flops);
}

#[test]
fn inverted_same_phase_raw_edge_fires_h001() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    let (a, b) = find_edge(&ops, &graph, DepKind::Raw, |f, t| {
        f.phase == t.phase && f.phase == Phase::Forward
    });
    let f = check_schedule(&ops, &graph, &swapped(ops.len(), a, b), "swapped");
    assert!(codes(&f).contains(&"H001"), "{:?}", codes(&f));
}

#[test]
fn inverted_same_phase_war_edge_fires_h002() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    let (a, b) = find_edge(&ops, &graph, DepKind::War, |f, t| f.phase == t.phase);
    let f = check_schedule(&ops, &graph, &swapped(ops.len(), a, b), "swapped");
    assert!(codes(&f).contains(&"H002"), "{:?}", codes(&f));
}

#[test]
fn inverted_same_phase_waw_edge_fires_h003() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    let (a, b) = find_edge(&ops, &graph, DepKind::Waw, |f, t| f.phase == t.phase);
    let f = check_schedule(&ops, &graph, &swapped(ops.len(), a, b), "swapped");
    assert!(codes(&f).contains(&"H003"), "{:?}", codes(&f));
}

#[test]
fn inverted_cross_phase_edge_fires_h004() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    // A forward activation consumed by its backward: the classic edge the
    // GPU runtime protects with an event between streams.
    let (a, b) = find_edge(&ops, &graph, DepKind::Raw, |f, t| {
        f.phase == Phase::Forward && t.phase == Phase::Backward
    });
    let f = check_schedule(&ops, &graph, &swapped(ops.len(), a, b), "swapped");
    assert!(codes(&f).contains(&"H004"), "{:?}", codes(&f));
}

/// The first update-phase op with annotated gradient reads, plus those ids.
fn update_reads(ops: &[OpRecord]) -> (usize, Vec<BufId>) {
    let i = ops
        .iter()
        .position(|o| o.phase == Phase::Update && !o.access.reads.is_empty())
        .expect("annotated update op");
    (i, ops[i].access.reads.clone())
}

#[test]
fn comm_scheduled_after_its_update_fires_h005() {
    let mut ops = pretrain();
    let (upd, grads) = update_reads(&ops);
    // Insert the gradient AllReduce just before the optimizer (legal), then
    // invert the pair in the candidate schedule.
    ops.insert(upd, allreduce_op("allreduce.grads", &grads));
    let graph = DepGraph::build(&ops);
    assert!(check_schedule(&ops, &graph, &Schedule::program_order(ops.len()), "program").is_empty());
    let f = check_schedule(&ops, &graph, &swapped(ops.len(), upd, upd + 1), "swapped");
    assert!(codes(&f).contains(&"H005"), "{:?}", codes(&f));
}

#[test]
fn update_consuming_unreduced_gradient_fires_h005_in_program_order() {
    let mut ops = pretrain();
    let (_, grads) = update_reads(&ops);
    // The AllReduce lands after the optimizer already consumed the local
    // gradients — the distributed-training bug H005 exists to catch.
    ops.push(allreduce_op("allreduce.grads", &grads));
    let f = hazard::check(&ops);
    assert!(codes(&f).contains(&"H005"), "{:?}", codes(&f));
    // The full lint front door surfaces it too.
    assert!(codes(&check_stream(&ops)).contains(&"H005"));
}

/// Insert `op` at stream position `at`.
fn inserted(mut ops: Vec<OpRecord>, at: usize, op: OpRecord) -> Vec<OpRecord> {
    ops.insert(at, op);
    ops
}

#[test]
fn premature_release_fires_l001() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    // Free a buffer right after its producer even though a later op still
    // reads it.
    let (w, r) = find_edge(&ops, &graph, DepKind::Raw, |_, _| true);
    let buf = graph.edges.iter().find(|e| (e.from, e.to) == (w, r)).unwrap().buf;
    let bad = inserted(ops, w + 1, free_op("pool.release.early", Phase::Forward, &[buf]));
    let f = lifetime::check(&bad);
    assert!(codes(&f).contains(&"L001"), "{:?}", codes(&f));
    assert!(codes(&check_stream(&bad)).contains(&"L001"));
}

#[test]
fn double_release_fires_l002() {
    let mut ops = pretrain();
    let local = *annotate_lifetimes(&ops)
        .values()
        .find(|lt| lt.alloc.is_some())
        .map(|lt| &lt.buf)
        .expect("stream-local buffer");
    ops.push(free_op("pool.release.1", Phase::Update, &[local]));
    ops.push(free_op("pool.release.2", Phase::Update, &[local]));
    let f = lifetime::check(&ops);
    assert!(codes(&f).contains(&"L002"), "{:?}", codes(&f));
    assert!(codes(&check_stream(&ops)).contains(&"L002"));
}

#[test]
fn write_into_released_storage_fires_l003() {
    let ops = pretrain();
    let graph = DepGraph::build(&ops);
    // Release a buffer between two writers: the second write lands in
    // storage the pool may already have handed to someone else.
    let e = *graph.edges.iter().find(|e| e.kind == DepKind::Waw).expect("a WAW edge");
    let bad = inserted(ops, e.from + 1, free_op("pool.release.early", Phase::Forward, &[e.buf]));
    let f = lifetime::check(&bad);
    assert!(codes(&f).contains(&"L003"), "{:?}", codes(&f));
}

#[test]
fn leaked_local_buffer_fires_l004_as_warning() {
    let mut ops = pretrain();
    let lifetimes = annotate_lifetimes(&ops);
    let mut locals = lifetimes.values().filter(|lt| lt.alloc.is_some()).map(|lt| lt.buf);
    let released = locals.next().expect("stream-local buffer");
    assert!(locals.next().is_some(), "need a second local buffer to leak");
    // Releasing one local buffer arms leak detection; every other live
    // local is now an L004 warning.
    ops.push(free_op("pool.release.final", Phase::Update, &[released]));
    let f = lifetime::check(&ops);
    assert!(codes(&f).contains(&"L004"), "{:?}", codes(&f));
    assert!(
        f.iter().filter(|x| x.rule.code() == "L004").all(|x| !x.is_error()),
        "leaks warn, they do not error"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomly permuting a legal stream's schedule is flagged by the
    /// H-series exactly when the permutation inverts (or collapses) a true
    /// dependence edge — no false positives on legal reorderings, no missed
    /// races on illegal ones.
    #[test]
    fn hazards_fire_iff_a_dependence_edge_is_inverted(
        swaps in proptest::collection::vec((0usize..10_000, 0usize..10_000), 0..12),
    ) {
        let cfg = BertConfig::tiny();
        let opts = GraphOptions { optimizer: OptimizerChoice::Adam, ..GraphOptions::default() };
        let ops = build_iteration(&cfg, &opts);
        let graph = DepGraph::build(&ops);
        let mut perm: Vec<usize> = (0..ops.len()).collect();
        for (a, b) in swaps {
            let n = perm.len();
            perm.swap(a % n, b % n);
        }
        let schedule = Schedule::from_permutation(&perm);
        let inverted = graph
            .edges
            .iter()
            .any(|e| schedule.step_of[e.to] <= schedule.step_of[e.from]);
        let findings = check_schedule(&ops, &graph, &schedule, "permuted");
        prop_assert_eq!(
            !findings.is_empty(),
            inverted,
            "schedule legality must match edge inversion; findings: {:?}",
            codes(&findings)
        );
        // Every schedule finding is H-series, error severity.
        for f in &findings {
            prop_assert!(f.rule.code().starts_with('H'), "{}", f.rule.code());
            prop_assert!(f.is_error());
        }
    }

    /// Any ASAP-respecting coarsening of the DAG levels stays legal: ops
    /// may be delayed, never hoisted above their dependences.
    #[test]
    fn delaying_ops_never_introduces_hazards(extra in proptest::collection::vec(0usize..3, 1..200)) {
        let cfg = BertConfig::tiny();
        let opts = GraphOptions::default();
        let ops = build_iteration(&cfg, &opts);
        let graph = DepGraph::build(&ops);
        let mut steps = graph.asap_levels();
        // Cumulative non-negative delays preserve every strict inequality.
        let mut drift = 0usize;
        for (i, s) in steps.iter_mut().enumerate() {
            drift += extra[i % extra.len()];
            *s += drift;
        }
        let findings = check_schedule(&ops, &graph, &Schedule::from_steps(steps), "delayed");
        prop_assert!(findings.is_empty(), "{:?}", codes(&findings));
    }
}
