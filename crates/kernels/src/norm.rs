//! Softmax and LayerNorm: the reduction-flavoured non-GEMM kernels.
//!
//! Both perform row-wise reductions followed by elementwise fix-ups and have
//! low arithmetic intensity (paper §3.2.3, Fig. 7): softmax sits in the
//! attention `Scale+Mask+DR+SM` phase, LayerNorm in the `DR+RC+LN` phase.

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{pool, AccessSet, Buffer, OpKind, Tensor, TensorError, Tracer};

/// Elements per pool task for row-parallel norm kernels. Derived from the
/// problem shape only, so chunk boundaries — and results — are identical at
/// any thread count.
const NORM_GRAIN_ELEMS: usize = 1 << 13;

/// Rows per pool task for rows of `len` elements (at least one).
fn rows_grain(len: usize) -> usize {
    (NORM_GRAIN_ELEMS / len.max(1)).max(1)
}

/// Interpret a tensor as rows of its last axis: `(rows, row_len)`.
fn rows_of(x: &Tensor) -> Result<(usize, usize)> {
    if x.shape().rank() == 0 {
        return Err(TensorError::InvalidArgument("rank-0 tensor has no rows".into()));
    }
    let row_len = *x.dims().last().expect("rank >= 1");
    if row_len == 0 {
        return Err(TensorError::InvalidArgument("rows must be non-empty".into()));
    }
    Ok((x.numel() / row_len, row_len))
}

/// Numerically-stable softmax over the last axis.
///
/// # Errors
///
/// Returns an error for rank-0 or zero-length-row tensors.
pub fn softmax_fwd(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor) -> Result<Tensor> {
    let (_, len) = rows_of(x)?;
    let mut out = Buffer::zeroed(x.numel());
    let xs = x.as_slice();
    // Each row's math is self-contained, so row chunks parallelize with
    // bit-identical results at any pool size.
    pool::parallel_for_mut(&mut out, rows_grain(len) * len, |off, chunk| {
        for (rr, orow) in chunk.chunks_mut(len).enumerate() {
            let r = off / len + rr;
            let row = &xs[r * len..(r + 1) * len];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f64;
            for (o, &v) in orow.iter_mut().zip(row) {
                let e = (v - max).exp();
                *o = e;
                sum += f64::from(e);
            }
            let inv = (1.0 / sum) as f32;
            for o in orow {
                *o *= inv;
            }
        }
    });
    let mut y = Tensor::from_buffer(out, x.dims())?;
    if ctx.dtype_of().is_half() {
        y = y.to_dtype(ctx.dtype_of());
    }
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    // max + sub + exp + sum + div: ~5 ops/element, two passes over the data.
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "softmax", OpKind::Reduction, 5 * n, n * es, n * es, access);
    Ok(y)
}

/// Softmax backward given the forward *output* `y`:
/// `dx = y * (dy - sum(dy * y, axis=-1))`.
///
/// # Errors
///
/// Returns a shape error when `y` and `dy` disagree.
pub fn softmax_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    y: &Tensor,
    dy: &Tensor,
) -> Result<Tensor> {
    if y.dims() != dy.dims() {
        return Err(TensorError::shape("softmax_bwd", y.dims(), dy.dims()));
    }
    let (_, len) = rows_of(y)?;
    let mut out = Buffer::zeroed(y.numel());
    let ys = y.as_slice();
    let dys = dy.as_slice();
    pool::parallel_for_mut(&mut out, rows_grain(len) * len, |off, chunk| {
        for (rr, orow) in chunk.chunks_mut(len).enumerate() {
            let r = off / len + rr;
            let yr = &ys[r * len..(r + 1) * len];
            let dyr = &dys[r * len..(r + 1) * len];
            let dot: f64 = yr.iter().zip(dyr).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
            for ((o, &yv), &dyv) in orow.iter_mut().zip(yr).zip(dyr) {
                *o = yv * (dyv - dot as f32);
            }
        }
    });
    let dx = Tensor::from_buffer(out, y.dims())?;
    let es = ctx.dtype_of().size_bytes();
    let n = y.numel() as u64;
    let access = AccessSet::new(&[y.buf_id(), dy.buf_id()], &[dx.buf_id()]);
    ctx.trace_acc(tracer, "softmax", OpKind::Reduction, 4 * n, 2 * n * es, n * es, access);
    Ok(dx)
}

/// Saved LayerNorm statistics needed by the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormState {
    /// Per-row mean.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

/// LayerNorm forward over the last axis with learned `gamma`/`beta`.
///
/// Returns the output and the per-row statistics for [`layernorm_bwd`].
///
/// # Errors
///
/// Returns a shape error when `gamma`/`beta` do not match the row length.
pub fn layernorm_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormState)> {
    let (rows, len) = rows_of(x)?;
    if gamma.numel() != len || beta.numel() != len {
        return Err(TensorError::shape("layernorm params", &[len], gamma.dims()));
    }
    let xs = x.as_slice();
    let g = gamma.as_slice();
    let b = beta.as_slice();
    let mut out = Buffer::zeroed(x.numel());
    let mut mean = vec![0.0f32; rows];
    let mut rstd = vec![0.0f32; rows];
    let grain = rows_grain(len);
    // Row chunks carry three outputs (values, mean, rstd), so build the
    // task list by zipping matching chunks of all three buffers.
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(grain * len)
        .zip(mean.chunks_mut(grain).zip(rstd.chunks_mut(grain)))
        .enumerate()
        .map(|(ci, (ochunk, (mchunk, rchunk)))| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for (rr, orow) in ochunk.chunks_mut(len).enumerate() {
                    let r = ci * grain + rr;
                    let row = &xs[r * len..(r + 1) * len];
                    let mu = row.iter().map(|&v| f64::from(v)).sum::<f64>() / len as f64;
                    let var =
                        row.iter().map(|&v| (f64::from(v) - mu).powi(2)).sum::<f64>() / len as f64;
                    let rs = 1.0 / (var + f64::from(eps)).sqrt();
                    mchunk[rr] = mu as f32;
                    rchunk[rr] = rs as f32;
                    for (j, (o, &v)) in orow.iter_mut().zip(row).enumerate() {
                        *o = ((f64::from(v) - mu) * rs) as f32 * g[j] + b[j];
                    }
                }
            });
            task
        })
        .collect();
    pool::run_tasks(tasks);
    let mut y = Tensor::from_buffer(out, x.dims())?;
    if ctx.dtype_of().is_half() {
        y = y.to_dtype(ctx.dtype_of());
    }
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let param_bytes = 2 * len as u64 * es;
    // mean + variance reductions plus normalize/scale/shift: ~8 ops/element.
    let access = AccessSet::new(&[x.buf_id(), gamma.buf_id(), beta.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(
        tracer,
        "layernorm",
        OpKind::Reduction,
        8 * n,
        n * es + param_bytes,
        n * es,
        access,
    );
    Ok((y, LayerNormState { mean, rstd }))
}

/// LayerNorm backward. Returns `(dx, dgamma, dbeta)`.
///
/// # Errors
///
/// Returns shape errors when operands disagree.
pub fn layernorm_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    gamma: &Tensor,
    state: &LayerNormState,
    dy: &Tensor,
) -> Result<(Tensor, Tensor, Tensor)> {
    if x.dims() != dy.dims() {
        return Err(TensorError::shape("layernorm_bwd", x.dims(), dy.dims()));
    }
    let (rows, len) = rows_of(x)?;
    if gamma.numel() != len || state.mean.len() != rows {
        return Err(TensorError::shape("layernorm_bwd params", &[len], gamma.dims()));
    }
    let xs = x.as_slice();
    let g = gamma.as_slice();
    let dys = dy.as_slice();
    let mut dx = Buffer::zeroed(x.numel());
    let mut dgamma = Buffer::zeroed(len);
    let mut dbeta = Buffer::zeroed(len);
    let grain = rows_grain(len);
    // dgamma/dbeta reduce across rows: each chunk accumulates into its own
    // partial, and partials are merged serially in chunk order below, so
    // the association order is a function of the shape alone (bit-identical
    // at any thread count).
    let chunk_count = rows.div_ceil(grain);
    let mut partials: Vec<(Vec<f32>, Vec<f32>)> = Vec::with_capacity(chunk_count);
    partials.resize_with(chunk_count, || (vec![0.0f32; len], vec![0.0f32; len]));
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = dx
        .chunks_mut(grain * len)
        .zip(partials.iter_mut())
        .enumerate()
        .map(|(ci, (dxchunk, (pgamma, pbeta)))| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for (rr, dxrow) in dxchunk.chunks_mut(len).enumerate() {
                    let r = ci * grain + rr;
                    let row = &xs[r * len..(r + 1) * len];
                    let dyr = &dys[r * len..(r + 1) * len];
                    let mu = f64::from(state.mean[r]);
                    let rs = f64::from(state.rstd[r]);
                    // xhat and the two row means needed by the dx formula.
                    let mut mean_dxhat = 0.0f64;
                    let mut mean_dxhat_xhat = 0.0f64;
                    let mut xhat = vec![0.0f64; len];
                    for j in 0..len {
                        let xh = (f64::from(row[j]) - mu) * rs;
                        xhat[j] = xh;
                        let dxh = f64::from(dyr[j]) * f64::from(g[j]);
                        mean_dxhat += dxh;
                        mean_dxhat_xhat += dxh * xh;
                        pgamma[j] += (f64::from(dyr[j]) * xh) as f32;
                        pbeta[j] += dyr[j];
                    }
                    mean_dxhat /= len as f64;
                    mean_dxhat_xhat /= len as f64;
                    for (j, o) in dxrow.iter_mut().enumerate() {
                        let dxh = f64::from(dyr[j]) * f64::from(g[j]);
                        *o = (rs * (dxh - mean_dxhat - xhat[j] * mean_dxhat_xhat)) as f32;
                    }
                }
            });
            task
        })
        .collect();
    pool::run_tasks(tasks);
    for (pgamma, pbeta) in &partials {
        for j in 0..len {
            dgamma[j] += pgamma[j];
            dbeta[j] += pbeta[j];
        }
    }
    let dx = Tensor::from_buffer(dx, x.dims())?;
    let dgamma = Tensor::from_buffer(dgamma, gamma.dims())?;
    let dbeta = Tensor::from_buffer(dbeta, gamma.dims())?;
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    ctx.trace_acc(
        tracer,
        "layernorm",
        OpKind::Reduction,
        11 * n,
        2 * n * es + gamma.numel() as u64 * es,
        n * es + 2 * len as u64 * 4,
        AccessSet::new(
            &[x.buf_id(), gamma.buf_id(), dy.buf_id()],
            &[dx.buf_id(), dgamma.buf_id(), dbeta.buf_id()],
        ),
    );
    Ok((dx, dgamma, dbeta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_grad, rand_tensor};
    use bertscope_tensor::{Category, Phase};

    fn sm_ctx() -> KernelCtx {
        KernelCtx::new("sm", Category::ScaleMaskSoftmaxDropout, Phase::Forward)
    }
    fn ln_ctx() -> KernelCtx {
        KernelCtx::new("ln", Category::DropResidualNorm, Phase::Forward)
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let mut tr = Tracer::new();
        let x = rand_tensor(1, &[6, 10]);
        let y = softmax_fwd(&mut tr, &sm_ctx(), &x).unwrap();
        for r in 0..6 {
            let row = &y.as_slice()[r * 10..(r + 1) * 10];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // Larger logits get larger probabilities.
        let x2 = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y2 = softmax_fwd(&mut tr, &sm_ctx(), &x2).unwrap();
        assert!(y2.as_slice()[2] > y2.as_slice()[1] && y2.as_slice()[1] > y2.as_slice()[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut tr = Tracer::disabled();
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let y = softmax_fwd(&mut tr, &sm_ctx(), &x).unwrap();
        assert!(y.all_finite());
        assert!((y.as_slice()[0] + y.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_gradient_matches_finite_differences() {
        let mut tr = Tracer::disabled();
        let x = rand_tensor(2, &[3, 5]);
        // Use a weighted sum as the scalar objective so the gradient is
        // non-trivial per element.
        let w = rand_tensor(3, &[3, 5]);
        let y = softmax_fwd(&mut tr, &sm_ctx(), &x).unwrap();
        let dx = softmax_bwd(&mut tr, &sm_ctx(), &y, &w).unwrap();
        check_grad(&x, &dx, 1e-3, 2e-2, |xp| {
            let mut t = Tracer::disabled();
            let yp = softmax_fwd(&mut t, &sm_ctx(), xp).unwrap();
            yp.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut tr = Tracer::new();
        let x = rand_tensor(4, &[8, 16]);
        let gamma = Tensor::ones(&[16]);
        let beta = Tensor::zeros(&[16]);
        let (y, state) = layernorm_fwd(&mut tr, &ln_ctx(), &x, &gamma, &beta, 1e-5).unwrap();
        for r in 0..8 {
            let row = &y.as_slice()[r * 16..(r + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
        assert_eq!(state.mean.len(), 8);
        assert_eq!(state.rstd.len(), 8);
    }

    #[test]
    fn layernorm_gamma_beta_affect_output_affinely() {
        let mut tr = Tracer::disabled();
        let x = rand_tensor(6, &[2, 4]);
        let gamma = Tensor::full(&[4], 2.0);
        let beta = Tensor::full(&[4], 0.5);
        let (y, _) = layernorm_fwd(&mut tr, &ln_ctx(), &x, &gamma, &beta, 1e-5).unwrap();
        let (y0, _) =
            layernorm_fwd(&mut tr, &ln_ctx(), &x, &Tensor::ones(&[4]), &Tensor::zeros(&[4]), 1e-5)
                .unwrap();
        let reconstructed = y0.scale(2.0).map(|v| v + 0.5);
        assert!(y.max_abs_diff(&reconstructed).unwrap() < 1e-5);
    }

    #[test]
    fn layernorm_input_gradient_matches_finite_differences() {
        let mut tr = Tracer::disabled();
        let x = rand_tensor(7, &[3, 6]);
        let gamma = rand_tensor(8, &[6]).map(|v| v + 1.5);
        let beta = rand_tensor(9, &[6]);
        let w = rand_tensor(10, &[3, 6]);
        let (_, state) = layernorm_fwd(&mut tr, &ln_ctx(), &x, &gamma, &beta, 1e-5).unwrap();
        let (dx, dgamma, dbeta) =
            layernorm_bwd(&mut tr, &ln_ctx(), &x, &gamma, &state, &w).unwrap();
        let objective = |xp: &Tensor, gp: &Tensor, bp: &Tensor| {
            let mut t = Tracer::disabled();
            let (yp, _) = layernorm_fwd(&mut t, &ln_ctx(), xp, gp, bp, 1e-5).unwrap();
            yp.mul(&w).unwrap().sum()
        };
        check_grad(&x, &dx, 1e-3, 3e-2, |xp| objective(xp, &gamma, &beta));
        check_grad(&gamma, &dgamma, 1e-3, 3e-2, |gp| objective(&x, gp, &beta));
        check_grad(&beta, &dbeta, 1e-3, 3e-2, |bp| objective(&x, &gamma, bp));
    }

    #[test]
    fn layernorm_rejects_bad_param_shapes() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[2, 4]);
        let bad = Tensor::ones(&[5]);
        assert!(layernorm_fwd(&mut tr, &ln_ctx(), &x, &bad, &bad, 1e-5).is_err());
    }

    #[test]
    fn norm_kernels_are_memory_bound_in_trace() {
        let mut tr = Tracer::new();
        let x = rand_tensor(11, &[32, 64]);
        softmax_fwd(&mut tr, &sm_ctx(), &x).unwrap();
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        layernorm_fwd(&mut tr, &ln_ctx(), &x, &gamma, &beta, 1e-5).unwrap();
        for r in tr.records() {
            assert_eq!(r.kind, OpKind::Reduction);
            // Paper Fig. 7: both are low-intensity, far below GEMM levels.
            assert!(r.arithmetic_intensity() < 3.0, "{} {}", r.name, r.arithmetic_intensity());
        }
    }
}
