//! Attention-mask builders: padding masks for variable-length batches and
//! the causal mask of decoder-style models.
//!
//! The paper (§2.3) notes that a Transformer *decoder* differs from the
//! encoder only in that "its attention layer is masked to consider only
//! past tokens", and that this "does not affect training (it only zeros
//! certain matrix elements)" — both mask kinds here produce the same
//! additive `[B*h, n, n]` tensor shape the attention kernels consume, so
//! the kernel stream is bit-identical in structure.

use bertscope_tensor::{Buffer, DType, Tensor, TensorError};

/// The additive value used to suppress an attention connection in f32.
pub const MASK_NEG: f32 = -1.0e9;

/// The largest suppression value representable at a precision: f16/bf16
/// saturate to infinity near 6.5e4, which would poison softmax, so
/// half-precision masks use a smaller (still decisive) sentinel.
#[must_use]
pub fn mask_neg_for(dtype: DType) -> f32 {
    if dtype.is_half() {
        -6.0e4
    } else {
        MASK_NEG
    }
}

/// Build an additive padding mask of shape `[B*h, n, n]`: queries may attend
/// only to key positions `< lengths[b]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when `lengths` has the wrong
/// count or any length exceeds `n`.
pub fn padding_mask(
    lengths: &[usize],
    seq: usize,
    heads: usize,
    dtype: DType,
) -> Result<Tensor, TensorError> {
    let b = lengths.len();
    for (i, &len) in lengths.iter().enumerate() {
        if len > seq {
            return Err(TensorError::InvalidArgument(format!(
                "sequence {i} length {len} exceeds n = {seq}"
            )));
        }
    }
    let neg = mask_neg_for(dtype);
    let mut data = Buffer::zeroed(b * heads * seq * seq);
    for (bi, &len) in lengths.iter().enumerate() {
        for h in 0..heads {
            let base = (bi * heads + h) * seq * seq;
            for q in 0..seq {
                for k in len..seq {
                    data[base + q * seq + k] = neg;
                }
            }
        }
    }
    let mut t = Tensor::from_buffer(data, &[b * heads, seq, seq])?;
    if dtype.is_half() {
        t = t.to_dtype(dtype);
    }
    Ok(t)
}

/// Build the additive causal (decoder) mask of shape `[B*h, n, n]`: queries
/// attend only to positions `<= q` (paper §2.3's masked attention).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a zero batch.
pub fn causal_mask(
    batch: usize,
    seq: usize,
    heads: usize,
    dtype: DType,
) -> Result<Tensor, TensorError> {
    if batch == 0 {
        return Err(TensorError::InvalidArgument("batch must be non-zero".into()));
    }
    let neg = mask_neg_for(dtype);
    let mut data = Buffer::zeroed(batch * heads * seq * seq);
    for bh in 0..batch * heads {
        let base = bh * seq * seq;
        for q in 0..seq {
            for k in (q + 1)..seq {
                data[base + q * seq + k] = neg;
            }
        }
    }
    let mut t = Tensor::from_buffer(data, &[batch * heads, seq, seq])?;
    if dtype.is_half() {
        t = t.to_dtype(dtype);
    }
    Ok(t)
}

/// Combine two additive masks elementwise (e.g. causal + padding).
///
/// # Errors
///
/// Returns a shape error when the masks disagree.
pub fn combine(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    a.zip_map(b, |x, y| (x + y).max(MASK_NEG))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_mask_blocks_only_padded_keys() {
        let m = padding_mask(&[3, 5], 5, 2, DType::F32).unwrap();
        assert_eq!(m.dims(), &[4, 5, 5]);
        // Sequence 0 (length 3): keys 3,4 masked for every query and head.
        for h in 0..2 {
            for q in 0..5 {
                for k in 0..5 {
                    let v = m.at(&[h, q, k]).unwrap();
                    if k < 3 {
                        assert_eq!(v, 0.0, "h{h} q{q} k{k}");
                    } else {
                        assert!(v <= -1.0e4, "h{h} q{q} k{k}");
                    }
                }
            }
        }
        // Sequence 1 (full length): nothing masked.
        for bh in 2..4 {
            for q in 0..5 {
                for k in 0..5 {
                    assert_eq!(m.at(&[bh, q, k]).unwrap(), 0.0);
                }
            }
        }
    }

    #[test]
    fn causal_mask_is_lower_triangular() {
        let m = causal_mask(1, 4, 1, DType::F32).unwrap();
        for q in 0..4 {
            for k in 0..4 {
                let v = m.at(&[0, q, k]).unwrap();
                if k <= q {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(v <= -1.0e4);
                }
            }
        }
    }

    #[test]
    fn combine_takes_the_union_of_blocks() {
        let c = causal_mask(1, 4, 1, DType::F32).unwrap();
        let p = padding_mask(&[3], 4, 1, DType::F32).unwrap();
        let m = combine(&c, &p).unwrap();
        // Position (1, 3) blocked by both; (1, 2) blocked by neither...
        assert!(m.at(&[0, 1, 3]).unwrap() <= -1.0e4);
        assert_eq!(m.at(&[0, 1, 1]).unwrap(), 0.0);
        // (0, 2) blocked only by causal; (3, 3) only by padding.
        assert!(m.at(&[0, 0, 2]).unwrap() <= -1.0e4);
        assert!(m.at(&[0, 3, 3]).unwrap() <= -1.0e4);
        // Combination never exceeds the sentinel (stays f16-safe).
        assert!(m.as_slice().iter().all(|&v| v >= MASK_NEG));
    }

    #[test]
    fn validation() {
        assert!(padding_mask(&[6], 5, 1, DType::F32).is_err());
        assert!(causal_mask(0, 4, 1, DType::F32).is_err());
    }

    #[test]
    fn half_precision_masks_stay_finite() {
        let m = padding_mask(&[2], 4, 1, DType::F16).unwrap();
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        let c = causal_mask(1, 4, 2, DType::BF16).unwrap();
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }
}
