//! Kernel invocation context: where in the network a kernel call sits,
//! plus the deferred recording mode ([`GroupTask`]/[`run_group`]) that
//! hands independent kernel calls to the operator-graph scheduler.

use bertscope_tensor::sched::{RunReport, Slot, TaskGraph};
use bertscope_tensor::{AccessSet, Category, DType, GemmSpec, OpKind, OpRecord, Phase, Tracer};

/// Describes the network position of a kernel invocation so the tracer can
/// attribute it correctly (paper Fig. 3/4 groupings).
///
/// `KernelCtx` is deliberately `Copy`-cheap apart from the name prefix, and
/// builder-style so call sites read naturally:
///
/// ```
/// use bertscope_kernels::KernelCtx;
/// use bertscope_tensor::{Category, Phase};
/// let ctx = KernelCtx::new("fc1", Category::FcGemm, Phase::Forward).layer(3);
/// assert_eq!(ctx.full_name("gemm"), "l3.fc1.gemm.fwd");
/// ```
#[derive(Debug, Clone)]
pub struct KernelCtx {
    name: String,
    category: Category,
    phase: Phase,
    layer: Option<usize>,
    dtype: DType,
}

impl KernelCtx {
    /// A context with the given name prefix, category and phase, in `f32`.
    #[must_use]
    pub fn new(name: &str, category: Category, phase: Phase) -> Self {
        KernelCtx { name: name.to_owned(), category, phase, layer: None, dtype: DType::F32 }
    }

    /// Attach a Transformer layer index.
    #[must_use]
    pub fn layer(mut self, layer: usize) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Override the data precision recorded for this kernel.
    #[must_use]
    pub fn dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Switch the phase (e.g. re-running forward kernels as
    /// [`Phase::Recompute`] under activation checkpointing).
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phase = phase;
        self
    }

    /// The category this context attributes kernels to.
    #[must_use]
    pub fn category(&self) -> Category {
        self.category
    }

    /// The recorded precision.
    #[must_use]
    pub fn dtype_of(&self) -> DType {
        self.dtype
    }

    /// The fully-qualified kernel name: `l<layer>.<prefix>.<op>.<phase>`.
    #[must_use]
    pub fn full_name(&self, op: &str) -> String {
        match self.layer {
            Some(l) => format!("l{l}.{}.{op}.{}", self.name, self.phase),
            None => format!("{}.{op}.{}", self.name, self.phase),
        }
    }

    /// Emit a trace record for a non-GEMM kernel with unknown provenance.
    pub fn trace(
        &self,
        tracer: &mut Tracer,
        op: &str,
        kind: OpKind,
        flops: u64,
        bytes_read: u64,
        bytes_written: u64,
    ) {
        self.trace_acc(tracer, op, kind, flops, bytes_read, bytes_written, AccessSet::default());
    }

    /// Emit a trace record for a non-GEMM kernel, carrying the buffer
    /// read/write provenance the static hazard and lifetime analyses
    /// (`bertscope-check`) consume.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_acc(
        &self,
        tracer: &mut Tracer,
        op: &str,
        kind: OpKind,
        flops: u64,
        bytes_read: u64,
        bytes_written: u64,
        access: AccessSet,
    ) {
        if !tracer.is_enabled() {
            return;
        }
        tracer.record(OpRecord {
            name: self.full_name(op),
            kind,
            category: self.category,
            phase: self.phase,
            layer: self.layer,
            gemm: None,
            flops,
            bytes_read,
            bytes_written,
            dtype: self.dtype,
            access,
        });
    }

    /// Emit a trace record for a (batched) GEMM kernel with unknown
    /// provenance. FLOPs and bytes are derived from the spec at this
    /// context's precision.
    pub fn trace_gemm(&self, tracer: &mut Tracer, op: &str, spec: GemmSpec) {
        self.trace_gemm_acc(tracer, op, spec, AccessSet::default());
    }

    /// Emit a trace record for a (batched) GEMM kernel, carrying buffer
    /// read/write provenance.
    pub fn trace_gemm_acc(&self, tracer: &mut Tracer, op: &str, spec: GemmSpec, access: AccessSet) {
        if !tracer.is_enabled() {
            return;
        }
        let kind = if spec.batch > 1 { OpKind::BatchedGemm } else { OpKind::Gemm };
        tracer.record(OpRecord {
            name: self.full_name(op),
            kind,
            category: self.category,
            phase: self.phase,
            layer: self.layer,
            gemm: Some(spec),
            flops: spec.flops(),
            bytes_read: spec.bytes_read(self.dtype),
            bytes_written: spec.bytes_written(self.dtype),
            dtype: self.dtype,
            access,
        });
    }
}

/// One kernel call recorded for deferred execution: a display label, the
/// [`AccessSet`] provenance the scheduler derives dependences from, and the
/// body that actually runs the kernel (tracing into the private tracer it
/// is handed).
pub struct GroupTask<'scope, T> {
    label: String,
    access: AccessSet,
    body: Box<dyn FnOnce(&mut Tracer) -> T + Send + 'scope>,
}

impl<'scope, T> GroupTask<'scope, T> {
    /// Record a kernel call for deferred execution. `access` must declare
    /// every buffer the body reads and writes; an empty set degrades the
    /// task to a full barrier (safe but serial).
    pub fn new(
        label: impl Into<String>,
        access: AccessSet,
        body: impl FnOnce(&mut Tracer) -> T + Send + 'scope,
    ) -> Self {
        GroupTask { label: label.into(), access, body: Box::new(body) }
    }
}

impl<T> std::fmt::Debug for GroupTask<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupTask").field("label", &self.label).finish()
    }
}

/// Deferred mode: run a group of recorded kernel calls as an operator
/// graph. Dependences come from the declared access sets, independent
/// tasks retire concurrently on the worker pool, and results are returned
/// in *submission* order — so swapping an eager call sequence for a
/// `run_group` is behaviour-preserving: bit-identical values, an identical
/// merged trace, and only the real schedule (captured in the returned
/// [`RunReport`]) differs.
///
/// # Panics
///
/// Propagates task panics after the group quiesces.
pub fn run_group<T: Send>(
    tracer: &mut Tracer,
    tasks: Vec<GroupTask<'_, T>>,
) -> (Vec<T>, RunReport) {
    let slots: Vec<Slot<T>> = tasks.iter().map(|_| Slot::new()).collect();
    let mut graph = TaskGraph::new();
    for (task, slot) in tasks.into_iter().zip(&slots) {
        let GroupTask { label, access, body } = task;
        graph.submit(label, access, move |tr: &mut Tracer| slot.put(body(tr)));
    }
    let report = graph.run(tracer);
    let outputs =
        slots.iter().map(|s| s.take().expect("deferred task produced no value")).collect();
    (outputs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::Transpose;

    #[test]
    fn full_name_includes_layer_and_phase() {
        let ctx = KernelCtx::new("attn", Category::AttnLinear, Phase::Backward).layer(7);
        assert_eq!(ctx.full_name("q_proj"), "l7.attn.q_proj.bwd");
        let no_layer = KernelCtx::new("mlm", Category::Output, Phase::Forward);
        assert_eq!(no_layer.full_name("decode"), "mlm.decode.fwd");
    }

    #[test]
    fn trace_records_category_and_dtype() {
        let mut tr = Tracer::new();
        let ctx = KernelCtx::new("gelu", Category::Gelu, Phase::Forward).dtype(DType::F16).layer(0);
        ctx.trace(&mut tr, "erf", OpKind::ElementWise, 100, 20, 20);
        let r = &tr.records()[0];
        assert_eq!(r.category, Category::Gelu);
        assert_eq!(r.dtype, DType::F16);
        assert_eq!(r.layer, Some(0));
        assert_eq!(r.flops, 100);
    }

    #[test]
    fn trace_gemm_derives_counts_from_spec() {
        let mut tr = Tracer::new();
        let ctx = KernelCtx::new("fc1", Category::FcGemm, Phase::Forward);
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 8, 4, 2);
        ctx.trace_gemm(&mut tr, "gemm", spec);
        let r = &tr.records()[0];
        assert_eq!(r.kind, OpKind::Gemm);
        assert_eq!(r.flops, 2 * 8 * 4 * 2);
        assert_eq!(r.bytes_read, (8 * 2 + 2 * 4) * 4);
        assert_eq!(r.bytes_written, 8 * 4 * 4);
        // Batched spec flips the kind.
        let bspec = GemmSpec::batched(Transpose::No, Transpose::Yes, 4, 4, 2, 6);
        ctx.trace_gemm(&mut tr, "bgemm", bspec);
        assert_eq!(tr.records()[1].kind, OpKind::BatchedGemm);
    }

    #[test]
    fn run_group_returns_submission_order_and_merges_traces() {
        use bertscope_tensor::BufId;
        let mut tr = Tracer::new();
        let bufs: Vec<BufId> = (0..3).map(|_| BufId::fresh()).collect();
        let tasks: Vec<GroupTask<'_, usize>> = bufs
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                GroupTask::new(format!("task{i}"), AccessSet::new(&[], &[b]), move |tr| {
                    let ctx = KernelCtx::new("group", Category::Gelu, Phase::Forward);
                    ctx.trace_acc(
                        tr,
                        &format!("op{i}"),
                        OpKind::ElementWise,
                        1,
                        4,
                        4,
                        AccessSet::new(&[], &[b]),
                    );
                    i * 10
                })
            })
            .collect();
        let (outs, report) = run_group(&mut tr, tasks);
        assert_eq!(outs, vec![0, 10, 20], "results come back in submission order");
        assert_eq!(report.completion_order.len(), 3);
        let names: Vec<&str> = tr.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["group.op0.fwd", "group.op1.fwd", "group.op2.fwd"]);
    }

    #[test]
    fn disabled_tracer_short_circuits() {
        let mut tr = Tracer::disabled();
        let ctx = KernelCtx::new("x", Category::Gelu, Phase::Forward);
        ctx.trace(&mut tr, "y", OpKind::ElementWise, 1, 1, 1);
        ctx.trace_gemm(&mut tr, "z", GemmSpec::new(Transpose::No, Transpose::No, 1, 1, 1));
        assert_eq!(tr.kernel_count(), 0);
    }
}
