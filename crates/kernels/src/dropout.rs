//! Inverted dropout with deterministic, seed-derived masks.
//!
//! Dropout manifests as an elementwise multiply of the activation with a
//! pre-scaled 0/(1/(1-p)) mask (paper §3.2.3). The mask is materialized so
//! the backward pass can reuse it, exactly as the framework the paper
//! profiled does; mask bytes are accounted at one byte per element, the
//! storage a real implementation uses.

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{AccessSet, Buffer, OpKind, Tensor, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dropout mask: keep/drop decisions pre-scaled by `1/(1-p)`.
#[derive(Debug, Clone)]
pub struct DropoutMask {
    scale_per_keep: f32,
    mask: Tensor,
}

impl DropoutMask {
    /// The mask tensor (elements are `0` or `1/(1-p)`).
    #[must_use]
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// The keep scale `1/(1-p)`.
    #[must_use]
    pub fn keep_scale(&self) -> f32 {
        self.scale_per_keep
    }
}

/// Dropout forward. With `p == 0` the mask keeps everything (used to make
/// training deterministic in tests); otherwise elements are dropped i.i.d.
/// with probability `p` using a generator seeded by `seed`.
///
/// Returns the output and the mask required by [`dropout_bwd`].
///
/// # Errors
///
/// Returns [`bertscope_tensor::TensorError::InvalidArgument`] when `p` is
/// not in `[0, 1)`.
pub fn dropout_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    p: f32,
    seed: u64,
) -> Result<(Tensor, DropoutMask)> {
    if !(0.0..1.0).contains(&p) {
        return Err(bertscope_tensor::TensorError::InvalidArgument(format!(
            "dropout probability must be in [0, 1), got {p}"
        )));
    }
    let keep = 1.0 / (1.0 - p);
    // The RNG stream is consumed serially so the mask is a pure function of
    // the seed, independent of thread count.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask_data = Buffer::zeroed(x.numel());
    for m in mask_data.iter_mut() {
        *m = if p > 0.0 && rng.gen::<f32>() < p { 0.0 } else { keep };
    }
    let mask = Tensor::from_buffer(mask_data, x.dims())?;
    let y = x.mul(&mask)?;
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    // Reads the activation + a 1-byte mask per element; writes the output.
    let access = AccessSet::new(&[x.buf_id(), mask.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "dropout", OpKind::ElementWise, n, n * es + n, n * es, access);
    Ok((y, DropoutMask { scale_per_keep: keep, mask }))
}

/// Dropout backward: `dx = dy * mask`.
///
/// # Errors
///
/// Returns a shape error when `dy` and the mask disagree.
pub fn dropout_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    mask: &DropoutMask,
    dy: &Tensor,
) -> Result<Tensor> {
    let dx = dy.mul(&mask.mask)?;
    let es = ctx.dtype_of().size_bytes();
    let n = dy.numel() as u64;
    let access = AccessSet::new(&[dy.buf_id(), mask.mask.buf_id()], &[dx.buf_id()]);
    ctx.trace_acc(tracer, "dropout", OpKind::ElementWise, n, n * es + n, n * es, access);
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::rand_tensor;
    use bertscope_tensor::{Category, Phase};

    fn ctx() -> KernelCtx {
        KernelCtx::new("dr", Category::ScaleMaskSoftmaxDropout, Phase::Forward)
    }

    #[test]
    fn p_zero_is_identity() {
        let mut tr = Tracer::new();
        let x = rand_tensor(5, &[8, 8]);
        let (y, mask) = dropout_fwd(&mut tr, &ctx(), &x, 0.0, 1).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
        assert!(mask.mask().as_slice().iter().all(|&m| m == 1.0));
        assert_eq!(mask.keep_scale(), 1.0);
    }

    #[test]
    fn drop_rate_is_roughly_p_and_survivors_are_scaled() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[10_000]);
        let (y, _) = dropout_fwd(&mut tr, &ctx(), &x, 0.25, 7).unwrap();
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = dropped as f32 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "dropped fraction {frac}");
        let kept: Vec<f32> = y.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(kept.iter().all(|&v| (v - 1.0 / 0.75).abs() < 1e-6));
        // Expectation is preserved (inverted dropout).
        assert!((y.mean() - 1.0).abs() < 0.03);
    }

    #[test]
    fn same_seed_reproduces_mask() {
        let mut tr = Tracer::disabled();
        let x = rand_tensor(2, &[64]);
        let (y1, _) = dropout_fwd(&mut tr, &ctx(), &x, 0.5, 99).unwrap();
        let (y2, _) = dropout_fwd(&mut tr, &ctx(), &x, 0.5, 99).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
        let (y3, _) = dropout_fwd(&mut tr, &ctx(), &x, 0.5, 100).unwrap();
        assert_ne!(y1.as_slice(), y3.as_slice());
    }

    #[test]
    fn backward_routes_gradients_through_kept_elements() {
        let mut tr = Tracer::disabled();
        let x = Tensor::ones(&[256]);
        let (_, mask) = dropout_fwd(&mut tr, &ctx(), &x, 0.5, 3).unwrap();
        let dy = Tensor::ones(&[256]);
        let dx = dropout_bwd(&mut tr, &ctx(), &mask, &dy).unwrap();
        for (m, d) in mask.mask().as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*d, *m);
        }
    }

    #[test]
    fn invalid_p_rejected() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[4]);
        assert!(dropout_fwd(&mut tr, &ctx(), &x, 1.0, 0).is_err());
        assert!(dropout_fwd(&mut tr, &ctx(), &x, -0.1, 0).is_err());
    }

    #[test]
    fn trace_accounts_one_byte_masks() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[100]);
        dropout_fwd(&mut tr, &ctx(), &x, 0.1, 0).unwrap();
        let r = &tr.records()[0];
        assert_eq!(r.bytes_read, 100 * 4 + 100);
        assert_eq!(r.bytes_written, 400);
    }
}
