//! Neural-network kernels for the bertscope BERT substrate.
//!
//! Every kernel here comes in a forward and a hand-derived backward form and
//! reports itself to a [`Tracer`](bertscope_tensor::Tracer), recording the
//! manifestation, shape, FLOPs and bytes that the characterization in
//! *"Demystifying BERT"* (IISWC 2022) is built on. The inventory covers
//! exactly the operations the paper enumerates:
//!
//! * [`linear`] — the linear-projection and fully-connected GEMMs (+bias);
//! * [`norm`] — softmax and LayerNorm (reduction-flavoured non-GEMMs);
//! * [`activation`] — GeLU with its error-function implementation;
//! * [`dropout`] — inverted dropout with deterministic seeded masks;
//! * [`elementwise`] — scale, additive mask and residual addition;
//! * [`embedding`] — token/position/segment embedding lookup and its
//!   scatter-add backward;
//! * [`loss`] — softmax cross-entropy for the MLM and NSP heads;
//! * [`attention`] — the full multi-head attention composite, including the
//!   batched score/context GEMMs and the optional fused-QKV execution of
//!   paper §6.1.2.
//!
//! All kernels take the tracer first, then a [`KernelCtx`] describing where
//! in the network the call sits (category, phase, layer), then data.

pub mod activation;
pub mod attention;
pub mod ctx;
pub mod dropout;
pub mod elementwise;
pub mod embedding;
pub mod linear;
pub mod loss;
pub mod masks;
pub mod norm;

pub use ctx::{run_group, GroupTask, KernelCtx};

/// Result alias re-used from the tensor substrate.
pub type Result<T> = bertscope_tensor::Result<T>;

/// Test-support helpers: deterministic random tensors and finite-difference
/// gradient checking. Public so downstream crates (the trainable model, the
/// integration tests) can reuse the same gradient-checking harness.
pub mod testsupport {
    use bertscope_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic random tensor for tests.
    pub fn rand_tensor(seed: u64, dims: &[usize]) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..dims.iter().product::<usize>()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor::from_vec(data, dims).expect("sized by construction")
    }

    /// Central finite difference of `f` with respect to `x[i]`.
    pub fn finite_diff(x: &Tensor, i: usize, eps: f32, mut f: impl FnMut(&Tensor) -> f32) -> f32 {
        let mut plus = x.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x.clone();
        minus.as_mut_slice()[i] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    /// Assert every element of an analytic gradient matches finite
    /// differences of a scalar-valued function.
    pub fn check_grad(
        x: &Tensor,
        analytic: &Tensor,
        eps: f32,
        tol: f32,
        mut f: impl FnMut(&Tensor) -> f32,
    ) {
        assert_eq!(x.dims(), analytic.dims());
        for i in 0..x.numel() {
            let fd = finite_diff(x, i, eps, &mut f);
            let an = analytic.as_slice()[i];
            let denom = 1.0f32.max(fd.abs()).max(an.abs());
            assert!(
                (fd - an).abs() / denom < tol,
                "grad mismatch at {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}
