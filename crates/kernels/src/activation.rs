//! GeLU activation (paper §3.2.3, Equation 1) and its error function.
//!
//! `GELU(x) = x * 1/2 * [1 + erf(x / sqrt(2))]` — a chain of elementwise
//! add/multiply/divide/erf operations. When executed unfused, each step is a
//! separate memory-bound kernel; here we execute it as the (fused) composite
//! and let the fusion study in `bertscope-model` account for the unfused
//! variant's kernel counts and extra traffic.

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::Tracer;
use bertscope_tensor::{AccessSet, OpKind, Tensor};

// The scalar GeLU/erf chain lives in the tensor crate so the fused GEMM
// epilogue (`gemm_bias_gelu`) evaluates the exact same approximation as the
// standalone kernels below; re-exported here for existing callers.
pub use bertscope_tensor::mathfn::{erf, gelu_grad_scalar, gelu_scalar, GELU_FLOPS_PER_ELEMENT};

/// GeLU forward: elementwise over `x`.
///
/// # Errors
///
/// Never fails for valid tensors; the `Result` mirrors the other kernels.
pub fn gelu_fwd(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor) -> Result<Tensor> {
    let y = x.map(gelu_scalar);
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(
        tracer,
        "gelu",
        OpKind::ElementWise,
        GELU_FLOPS_PER_ELEMENT * n,
        n * es,
        n * es,
        access,
    );
    Ok(y)
}

/// GeLU backward: `dx = dy * gelu'(x)`.
///
/// # Errors
///
/// Returns a shape error when `x` and `dy` disagree.
pub fn gelu_bwd(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let dx = x.zip_map(dy, |xv, dyv| dyv * gelu_grad_scalar(xv))?;
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    // Reads the saved input and the incoming gradient, writes dx.
    ctx.trace_acc(
        tracer,
        "gelu",
        OpKind::ElementWise,
        (GELU_FLOPS_PER_ELEMENT + 2) * n,
        2 * n * es,
        n * es,
        AccessSet::new(&[x.buf_id(), dy.buf_id()], &[dx.buf_id()]),
    );
    Ok(dx)
}

/// Tanh forward (the NSP pooler activation).
///
/// # Errors
///
/// Never fails for valid tensors.
pub fn tanh_fwd(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor) -> Result<Tensor> {
    let y = x.map(f32::tanh);
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "tanh", OpKind::ElementWise, 5 * n, n * es, n * es, access);
    Ok(y)
}

/// Tanh backward given the forward *output*: `dx = dy * (1 - y^2)`.
///
/// # Errors
///
/// Returns a shape error when `y` and `dy` disagree.
pub fn tanh_bwd(tracer: &mut Tracer, ctx: &KernelCtx, y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let dx = y.zip_map(dy, |yv, dyv| dyv * (1.0 - yv * yv))?;
    let es = ctx.dtype_of().size_bytes();
    let n = y.numel() as u64;
    let access = AccessSet::new(&[y.buf_id(), dy.buf_id()], &[dx.buf_id()]);
    ctx.trace_acc(tracer, "tanh", OpKind::ElementWise, 3 * n, 2 * n * es, n * es, access);
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_grad, rand_tensor};
    use bertscope_tensor::{Category, Phase};

    #[test]
    fn tanh_forward_and_gradient() {
        let mut tr = Tracer::disabled();
        let ctx = KernelCtx::new("pooler", Category::Output, Phase::Forward);
        let x = rand_tensor(21, &[3, 4]).scale(2.0);
        let y = tanh_fwd(&mut tr, &ctx, &x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        let dy = Tensor::ones(&[3, 4]);
        let dx = tanh_bwd(&mut tr, &ctx, &y, &dy).unwrap();
        check_grad(&x, &dx, 1e-3, 2e-2, |xp| {
            let mut t = Tracer::disabled();
            tanh_fwd(&mut t, &ctx, xp).unwrap().sum()
        });
    }

    #[test]
    fn erf_matches_known_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0f32, 0.0f32),
            (0.5, 0.520_499_9),
            (1.0, 0.842_700_8),
            (2.0, 0.995_322_3),
            (-1.0, -0.842_700_8),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x}) = {} want {want}", erf(x));
        }
        assert!(erf(5.0) > 0.999_999);
        assert!(erf(-5.0) < -0.999_999);
    }

    #[test]
    fn gelu_limits_and_fixed_points() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        // Large positive inputs pass through; large negative ones vanish.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
        // GeLU is below identity for positive x, slightly negative near -1.
        assert!(gelu_scalar(1.0) < 1.0 && gelu_scalar(1.0) > 0.8);
        assert!(gelu_scalar(-1.0) < 0.0);
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        let mut tr = Tracer::disabled();
        let ctx = KernelCtx::new("gelu", Category::Gelu, Phase::Backward);
        let x = rand_tensor(3, &[4, 5]);
        let dy = Tensor::ones(&[4, 5]);
        let dx = gelu_bwd(&mut tr, &ctx, &x, &dy).unwrap();
        check_grad(&x, &dx, 1e-3, 2e-2, |xp| {
            let mut t = Tracer::disabled();
            gelu_fwd(&mut t, &ctx, xp).unwrap().sum()
        });
    }

    #[test]
    fn trace_counts_elementwise_traffic() {
        let mut tr = Tracer::new();
        let ctx = KernelCtx::new("gelu", Category::Gelu, Phase::Forward).layer(1);
        let x = rand_tensor(1, &[8, 4]);
        gelu_fwd(&mut tr, &ctx, &x).unwrap();
        let r = &tr.records()[0];
        assert_eq!(r.kind, OpKind::ElementWise);
        assert_eq!(r.bytes_read, 32 * 4);
        assert_eq!(r.bytes_written, 32 * 4);
        assert_eq!(r.flops, GELU_FLOPS_PER_ELEMENT * 32);
        // GeLU's intensity is low: it is memory-bound (paper Fig. 7).
        assert!(r.arithmetic_intensity() < 2.0);
    }
}
