//! Multi-head self-attention: the composite of paper Fig. 5.
//!
//! The forward pass is the exact kernel sequence the paper profiles:
//! Q/K/V linear projections (three GEMMs, or one fused GEMM per §6.1.2),
//! head split, the batched attention-score GEMM `Q*K^T`, scale + mask +
//! softmax + dropout, the batched attention-output GEMM `scores*V`, head
//! merge, and the output projection. The backward pass mirrors it with the
//! gradient GEMMs of Table 2b.

use crate::ctx::{run_group, GroupTask, KernelCtx};
use crate::dropout::{dropout_bwd, dropout_fwd, DropoutMask};
use crate::elementwise::{mask_add, scale};
use crate::linear::{linear_bwd, linear_fwd};
use crate::norm::{softmax_bwd, softmax_fwd};
use crate::Result;
use bertscope_tensor::{
    batched_gemm, batched_gemm_ep, AccessSet, BufId, Buffer, Category, DType, Epilogue,
    GemmEpilogue, GemmSpec, OpKind, Phase, Tensor, TensorError, Tracer, Transpose,
};

/// Learned parameters of one attention block.
///
/// Weights are `[d_model, d_model]`, biases `[d_model]`.
#[derive(Debug, Clone)]
pub struct AttentionParams {
    /// Query projection weight.
    pub wq: Tensor,
    /// Query projection bias.
    pub bq: Tensor,
    /// Key projection weight.
    pub wk: Tensor,
    /// Key projection bias.
    pub bk: Tensor,
    /// Value projection weight.
    pub wv: Tensor,
    /// Value projection bias.
    pub bv: Tensor,
    /// Output projection weight.
    pub wo: Tensor,
    /// Output projection bias.
    pub bo: Tensor,
}

/// Gradients matching [`AttentionParams`] field-for-field.
#[derive(Debug, Clone)]
pub struct AttentionGrads {
    /// d(loss)/d(wq).
    pub wq: Tensor,
    /// d(loss)/d(bq).
    pub bq: Tensor,
    /// d(loss)/d(wk).
    pub wk: Tensor,
    /// d(loss)/d(bk).
    pub bk: Tensor,
    /// d(loss)/d(wv).
    pub wv: Tensor,
    /// d(loss)/d(bv).
    pub bv: Tensor,
    /// d(loss)/d(wo).
    pub wo: Tensor,
    /// d(loss)/d(bo).
    pub bo: Tensor,
}

/// Static configuration of an attention invocation.
#[derive(Debug, Clone, Copy)]
pub struct AttentionConfig {
    /// Mini-batch size `B`.
    pub batch: usize,
    /// Sequence length `n`.
    pub seq: usize,
    /// Attention head count `h`.
    pub heads: usize,
    /// Hidden size `d_model` (must be divisible by `heads`).
    pub d_model: usize,
    /// Attention dropout probability.
    pub dropout_p: f32,
    /// Execute the Q/K/V projections as a single fused GEMM (paper §6.1.2)
    /// instead of three serial GEMMs.
    pub fused_qkv: bool,
    /// Fuse the score scale (and additive mask, when present) into the
    /// attention-score GEMM's writeback epilogue instead of launching
    /// separate memory-bound elementwise kernels (paper §6.1.3 fusion).
    pub fused_epilogue: bool,
    /// Record the independent Q/K/V projections (forward and backward) as
    /// an operator graph and let the scheduler retire them concurrently,
    /// instead of executing them serially at their call sites. Ignored when
    /// [`fused_qkv`](Self::fused_qkv) already collapses them into one GEMM.
    /// Results and traces are bit-identical to eager execution.
    pub deferred: bool,
    /// Execution precision.
    pub dtype: DType,
    /// Transformer layer index for trace attribution.
    pub layer: usize,
}

impl AttentionConfig {
    fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }
    fn tokens(&self) -> usize {
        self.batch * self.seq
    }
    fn validate(&self) -> Result<()> {
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(TensorError::InvalidArgument(format!(
                "d_model {} not divisible by heads {}",
                self.d_model, self.heads
            )));
        }
        Ok(())
    }
}

/// Saved activations for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionState {
    x: Tensor,
    q_h: Tensor,
    k_h: Tensor,
    v_h: Tensor,
    /// Softmax output before dropout (needed by softmax backward).
    probs_pre_drop: Tensor,
    /// Softmax output after dropout (operand of the context GEMM).
    probs: Tensor,
    drop_mask: DropoutMask,
    ctx_merged: Tensor,
}

/// Result of one deferred projection-backward task: `(d_input, d_weight,
/// d_bias)` from [`linear_bwd`].
type ProjGrads = Result<(Tensor, Tensor, Option<Tensor>)>;

/// Reshape `[T, d_model]` into per-head `[B*h, n, d_h]`, tracing the data
/// movement as a `Copy` kernel.
fn split_heads(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    cfg: &AttentionConfig,
) -> Result<Tensor> {
    let (b, n, h, dh) = (cfg.batch, cfg.seq, cfg.heads, cfg.head_dim());
    let xs = x.as_slice();
    let mut out = Buffer::zeroed(x.numel());
    for bi in 0..b {
        for ni in 0..n {
            for hi in 0..h {
                let src = (bi * n + ni) * cfg.d_model + hi * dh;
                let dst = ((bi * h + hi) * n + ni) * dh;
                out[dst..dst + dh].copy_from_slice(&xs[src..src + dh]);
            }
        }
    }
    let y = Tensor::from_buffer(out, &[b * h, n, dh])?;
    let bytes = x.numel() as u64 * ctx.dtype_of().size_bytes();
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "split_heads", OpKind::Copy, 0, bytes, bytes, access);
    Ok(y)
}

/// Inverse of [`split_heads`]: `[B*h, n, d_h]` back to `[T, d_model]`.
fn merge_heads(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    cfg: &AttentionConfig,
) -> Result<Tensor> {
    let (b, n, h, dh) = (cfg.batch, cfg.seq, cfg.heads, cfg.head_dim());
    let xs = x.as_slice();
    let mut out = Buffer::zeroed(x.numel());
    for bi in 0..b {
        for ni in 0..n {
            for hi in 0..h {
                let src = ((bi * h + hi) * n + ni) * dh;
                let dst = (bi * n + ni) * cfg.d_model + hi * dh;
                out[dst..dst + dh].copy_from_slice(&xs[src..src + dh]);
            }
        }
    }
    let y = Tensor::from_buffer(out, &[b * n, cfg.d_model])?;
    let bytes = x.numel() as u64 * ctx.dtype_of().size_bytes();
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "merge_heads", OpKind::Copy, 0, bytes, bytes, access);
    Ok(y)
}

/// Concatenate the three projection weights column-wise into `[d, 3d]` for
/// the fused-QKV GEMM of paper §6.1.2 / Fig. 13.
fn concat_qkv_weights(p: &AttentionParams) -> Result<(Tensor, Tensor)> {
    let d = p.wq.dims()[0];
    let mut w = Buffer::zeroed(d * 3 * d);
    for r in 0..d {
        w[r * 3 * d..r * 3 * d + d].copy_from_slice(&p.wq.as_slice()[r * d..(r + 1) * d]);
        w[r * 3 * d + d..r * 3 * d + 2 * d].copy_from_slice(&p.wk.as_slice()[r * d..(r + 1) * d]);
        w[r * 3 * d + 2 * d..(r + 1) * 3 * d].copy_from_slice(&p.wv.as_slice()[r * d..(r + 1) * d]);
    }
    let mut b = Buffer::zeroed(3 * d);
    b[..d].copy_from_slice(p.bq.as_slice());
    b[d..2 * d].copy_from_slice(p.bk.as_slice());
    b[2 * d..].copy_from_slice(p.bv.as_slice());
    Ok((Tensor::from_buffer(w, &[d, 3 * d])?, Tensor::from_buffer(b, &[3 * d])?))
}

/// Split a `[T, 3d]` fused projection output into three `[T, d]` tensors.
fn split_columns3(x: &Tensor) -> Result<(Tensor, Tensor, Tensor)> {
    let (t, d3) = (x.dims()[0], x.dims()[1]);
    let d = d3 / 3;
    let mut a = Buffer::zeroed(t * d);
    let mut b = Buffer::zeroed(t * d);
    let mut c = Buffer::zeroed(t * d);
    for r in 0..t {
        let row = &x.as_slice()[r * d3..(r + 1) * d3];
        a[r * d..(r + 1) * d].copy_from_slice(&row[..d]);
        b[r * d..(r + 1) * d].copy_from_slice(&row[d..2 * d]);
        c[r * d..(r + 1) * d].copy_from_slice(&row[2 * d..]);
    }
    Ok((
        Tensor::from_buffer(a, &[t, d])?,
        Tensor::from_buffer(b, &[t, d])?,
        Tensor::from_buffer(c, &[t, d])?,
    ))
}

/// Concatenate three `[T, d]` tensors column-wise into `[T, 3d]`.
fn concat_columns3(a: &Tensor, b: &Tensor, c: &Tensor) -> Result<Tensor> {
    let (t, d) = (a.dims()[0], a.dims()[1]);
    let mut out = Buffer::zeroed(t * 3 * d);
    for r in 0..t {
        out[r * 3 * d..r * 3 * d + d].copy_from_slice(&a.as_slice()[r * d..(r + 1) * d]);
        out[r * 3 * d + d..r * 3 * d + 2 * d].copy_from_slice(&b.as_slice()[r * d..(r + 1) * d]);
        out[r * 3 * d + 2 * d..(r + 1) * 3 * d].copy_from_slice(&c.as_slice()[r * d..(r + 1) * d]);
    }
    Tensor::from_buffer(out, &[t, 3 * d])
}

/// Multi-head attention forward.
///
/// `x` is `[B*n, d_model]`; `attn_mask`, when present, is an additive mask
/// pre-broadcast to `[B*h, n, n]`. Returns the block output `[B*n, d_model]`
/// and the saved state for [`attention_bwd`].
///
/// # Errors
///
/// Returns shape/configuration errors for inconsistent inputs.
#[allow(clippy::too_many_lines)]
pub fn attention_fwd(
    tracer: &mut Tracer,
    cfg: &AttentionConfig,
    p: &AttentionParams,
    x: &Tensor,
    attn_mask: Option<&Tensor>,
    dropout_seed: u64,
) -> Result<(Tensor, AttentionState)> {
    cfg.validate()?;
    let t = cfg.tokens();
    if x.dims() != [t, cfg.d_model] {
        return Err(TensorError::shape("attention_fwd x", &[t, cfg.d_model], x.dims()));
    }
    let lin_ctx = KernelCtx::new("attn", Category::AttnLinear, Phase::Forward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let bgemm_ctx = KernelCtx::new("attn", Category::AttnBgemm, Phase::Forward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let sm_ctx = KernelCtx::new("attn", Category::ScaleMaskSoftmaxDropout, Phase::Forward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);

    // 1. Q/K/V projections: three serial GEMMs or one fused GEMM.
    let (q, k, v) = if cfg.fused_qkv {
        let (w, b) = concat_qkv_weights(p)?;
        let qkv = linear_fwd(tracer, &lin_ctx, x, &w, Some(&b))?;
        split_columns3(&qkv)?
    } else if cfg.deferred {
        // Deferred mode: the three projections only share reads (x and
        // their own weights), so the scheduler retires them concurrently.
        // Each declares a fresh symbolic output buffer; the real output
        // ids land in the per-task trace records as usual.
        let tasks: Vec<GroupTask<'_, Result<Tensor>>> =
            [("attn.q", &p.wq, &p.bq), ("attn.k", &p.wk, &p.bk), ("attn.v", &p.wv, &p.bv)]
                .map(|(label, w, b)| {
                    let lin_ctx = &lin_ctx;
                    GroupTask::new(
                        label,
                        AccessSet::new(&[x.buf_id(), w.buf_id(), b.buf_id()], &[BufId::fresh()]),
                        move |tr: &mut Tracer| linear_fwd(tr, lin_ctx, x, w, Some(b)),
                    )
                })
                .into_iter()
                .collect();
        let (mut outs, _) = run_group(tracer, tasks);
        let v = outs.pop().expect("qkv group returns three results")?;
        let k = outs.pop().expect("qkv group returns three results")?;
        let q = outs.pop().expect("qkv group returns three results")?;
        (q, k, v)
    } else {
        let q = linear_fwd(tracer, &lin_ctx, x, &p.wq, Some(&p.bq))?;
        let k = linear_fwd(tracer, &lin_ctx, x, &p.wk, Some(&p.bk))?;
        let v = linear_fwd(tracer, &lin_ctx, x, &p.wv, Some(&p.bv))?;
        (q, k, v)
    };

    // 2. Head split.
    let q_h = split_heads(tracer, &lin_ctx, &q, cfg)?;
    let k_h = split_heads(tracer, &lin_ctx, &k, cfg)?;
    let v_h = split_heads(tracer, &lin_ctx, &v, cfg)?;

    // 3. Attention scores: batched Q*K^T — paper Table 2b "Attn. Score FWD":
    //    n x n x (d/h), batch B*h. When epilogue fusion is on, the score
    //    scale (and mask) are applied at GEMM writeback and their separate
    //    elementwise kernels disappear from the stream.
    let alpha = 1.0 / (cfg.head_dim() as f32).sqrt();
    let score_spec = GemmSpec::batched(
        Transpose::No,
        Transpose::Yes,
        cfg.seq,
        cfg.seq,
        cfg.head_dim(),
        cfg.batch * cfg.heads,
    );
    let masked = if cfg.fused_epilogue {
        let (ep, tag) = match attn_mask {
            Some(m) => {
                (GemmEpilogue::ScaleMask { scale: alpha, mask: m.as_slice() }, Epilogue::ScaleMask)
            }
            None => (GemmEpilogue::Scale(alpha), Epilogue::Scale),
        };
        let scores = batched_gemm_ep(Transpose::No, Transpose::Yes, 1.0, &q_h, &k_h, ep)?;
        let mut access = AccessSet::new(&[q_h.buf_id(), k_h.buf_id()], &[scores.buf_id()]);
        if let Some(m) = attn_mask {
            access.reads.push(m.buf_id());
        }
        bgemm_ctx.trace_gemm_acc(tracer, "score", score_spec.with_epilogue(tag), access);
        scores
    } else {
        let scores = batched_gemm(Transpose::No, Transpose::Yes, 1.0, &q_h, &k_h)?;
        bgemm_ctx.trace_gemm_acc(
            tracer,
            "score",
            score_spec,
            AccessSet::new(&[q_h.buf_id(), k_h.buf_id()], &[scores.buf_id()]),
        );
        // 4-5. Scale, mask as separate elementwise kernels.
        let scaled = scale(tracer, &sm_ctx, &scores, alpha)?;
        match attn_mask {
            Some(m) => mask_add(tracer, &sm_ctx, &scaled, m)?,
            None => scaled,
        }
    };

    // 6-7. Softmax, dropout.
    let probs_pre_drop = softmax_fwd(tracer, &sm_ctx, &masked)?;
    let (probs, drop_mask) =
        dropout_fwd(tracer, &sm_ctx, &probs_pre_drop, cfg.dropout_p, dropout_seed)?;

    // 8. Attention output: batched scores*V — paper "Attn. O/p FWD":
    //    (d/h) x n x n, batch B*h.
    let ctx_h = batched_gemm(Transpose::No, Transpose::No, 1.0, &probs, &v_h)?;
    bgemm_ctx.trace_gemm_acc(
        tracer,
        "context",
        GemmSpec::batched(
            Transpose::No,
            Transpose::No,
            cfg.head_dim(),
            cfg.seq,
            cfg.seq,
            cfg.batch * cfg.heads,
        ),
        AccessSet::new(&[probs.buf_id(), v_h.buf_id()], &[ctx_h.buf_id()]),
    );

    // 9-10. Merge heads and project out.
    let ctx_merged = merge_heads(tracer, &lin_ctx, &ctx_h, cfg)?;
    let out_ctx = KernelCtx::new("attn_out", Category::AttnLinear, Phase::Forward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let out = linear_fwd(tracer, &out_ctx, &ctx_merged, &p.wo, Some(&p.bo))?;

    Ok((
        out,
        AttentionState {
            x: x.clone(),
            q_h,
            k_h,
            v_h,
            probs_pre_drop,
            probs,
            drop_mask,
            ctx_merged,
        },
    ))
}

/// Multi-head attention backward. Returns `(dx, grads)`.
///
/// # Errors
///
/// Returns shape errors when `dy` does not match the forward output.
#[allow(clippy::too_many_lines, clippy::similar_names)]
pub fn attention_bwd(
    tracer: &mut Tracer,
    cfg: &AttentionConfig,
    p: &AttentionParams,
    state: &AttentionState,
    dy: &Tensor,
) -> Result<(Tensor, AttentionGrads)> {
    cfg.validate()?;
    let t = cfg.tokens();
    if dy.dims() != [t, cfg.d_model] {
        return Err(TensorError::shape("attention_bwd dy", &[t, cfg.d_model], dy.dims()));
    }
    let lin_ctx = KernelCtx::new("attn", Category::AttnLinear, Phase::Backward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let bgemm_ctx = KernelCtx::new("attn", Category::AttnBgemm, Phase::Backward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let sm_ctx = KernelCtx::new("attn", Category::ScaleMaskSoftmaxDropout, Phase::Backward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let (bh, n, dh) = (cfg.batch * cfg.heads, cfg.seq, cfg.head_dim());

    // 10'. Output projection backward.
    let out_ctx = KernelCtx::new("attn_out", Category::AttnLinear, Phase::Backward)
        .layer(cfg.layer)
        .dtype(cfg.dtype);
    let (dctx_merged, dwo, dbo) = linear_bwd(tracer, &out_ctx, &state.ctx_merged, &p.wo, dy, true)?;
    // 9'. Head split of the context gradient.
    let dctx_h = split_heads(tracer, &lin_ctx, &dctx_merged, cfg)?;

    // 8'. Context GEMM backward: dprobs = dctx * V^T; dV = probs^T * dctx.
    let dprobs = batched_gemm(Transpose::No, Transpose::Yes, 1.0, &dctx_h, &state.v_h)?;
    bgemm_ctx.trace_gemm_acc(
        tracer,
        "context.grad_act",
        GemmSpec::batched(Transpose::No, Transpose::Yes, dh, n, n, bh),
        AccessSet::new(&[dctx_h.buf_id(), state.v_h.buf_id()], &[dprobs.buf_id()]),
    );
    let dv_h = batched_gemm(Transpose::Yes, Transpose::No, 1.0, &state.probs, &dctx_h)?;
    bgemm_ctx.trace_gemm_acc(
        tracer,
        "context.grad_v",
        GemmSpec::batched(Transpose::Yes, Transpose::No, n, n, dh, bh),
        AccessSet::new(&[state.probs.buf_id(), dctx_h.buf_id()], &[dv_h.buf_id()]),
    );

    // 7'-4'. Dropout, softmax, mask (identity), scale backward.
    let dpre_drop = dropout_bwd(tracer, &sm_ctx, &state.drop_mask, &dprobs)?;
    let dmasked = softmax_bwd(tracer, &sm_ctx, &state.probs_pre_drop, &dpre_drop)?;
    let alpha = 1.0 / (dh as f32).sqrt();
    let dscores = scale(tracer, &sm_ctx, &dmasked, alpha)?;

    // 3'. Score GEMM backward — paper "Attn. Score BWD": dQ is
    //     n x (d/h) x n, dK is (d/h) x n x n, both batched B*h.
    let dq_h = batched_gemm(Transpose::No, Transpose::No, 1.0, &dscores, &state.k_h)?;
    bgemm_ctx.trace_gemm_acc(
        tracer,
        "score.grad_q",
        GemmSpec::batched(Transpose::No, Transpose::No, n, dh, n, bh),
        AccessSet::new(&[dscores.buf_id(), state.k_h.buf_id()], &[dq_h.buf_id()]),
    );
    let dk_h = batched_gemm(Transpose::Yes, Transpose::No, 1.0, &dscores, &state.q_h)?;
    bgemm_ctx.trace_gemm_acc(
        tracer,
        "score.grad_k",
        GemmSpec::batched(Transpose::Yes, Transpose::No, dh, n, n, bh),
        AccessSet::new(&[dscores.buf_id(), state.q_h.buf_id()], &[dk_h.buf_id()]),
    );

    // 2'. Merge head gradients back to [T, d].
    let dq = merge_heads(tracer, &lin_ctx, &dq_h, cfg)?;
    let dk = merge_heads(tracer, &lin_ctx, &dk_h, cfg)?;
    let dv = merge_heads(tracer, &lin_ctx, &dv_h, cfg)?;

    // 1'. Q/K/V projection backward (fused or serial).
    let (dx_qkv, dwq, dbq, dwk, dbk, dwv, dbv) = if cfg.fused_qkv {
        let (w, _) = concat_qkv_weights(p)?;
        let dqkv = concat_columns3(&dq, &dk, &dv)?;
        let (dx, dw, db) = linear_bwd(tracer, &lin_ctx, &state.x, &w, &dqkv, true)?;
        let d = cfg.d_model;
        // Split the fused weight/bias gradients back into three parts.
        let mut dwq_v = Buffer::zeroed(d * d);
        let mut dwk_v = Buffer::zeroed(d * d);
        let mut dwv_v = Buffer::zeroed(d * d);
        for r in 0..d {
            let row = &dw.as_slice()[r * 3 * d..(r + 1) * 3 * d];
            dwq_v[r * d..(r + 1) * d].copy_from_slice(&row[..d]);
            dwk_v[r * d..(r + 1) * d].copy_from_slice(&row[d..2 * d]);
            dwv_v[r * d..(r + 1) * d].copy_from_slice(&row[2 * d..]);
        }
        let db = db.expect("bias requested");
        (
            dx,
            Tensor::from_buffer(dwq_v, &[d, d])?,
            Tensor::from_buffer(Buffer::copied_from(&db.as_slice()[..d]), &[d])?,
            Tensor::from_buffer(dwk_v, &[d, d])?,
            Tensor::from_buffer(Buffer::copied_from(&db.as_slice()[d..2 * d]), &[d])?,
            Tensor::from_buffer(dwv_v, &[d, d])?,
            Tensor::from_buffer(Buffer::copied_from(&db.as_slice()[2 * d..]), &[d])?,
        )
    } else if cfg.deferred {
        // Deferred mode: the three projection backward passes are mutually
        // independent (each reads x, its own weight and its own upstream
        // gradient), so they run as a concurrent group.
        let tasks: Vec<GroupTask<'_, ProjGrads>> =
            [("attn.grad_q", &p.wq, &dq), ("attn.grad_k", &p.wk, &dk), ("attn.grad_v", &p.wv, &dv)]
                .map(|(label, w, d)| {
                    let lin_ctx = &lin_ctx;
                    let x = &state.x;
                    GroupTask::new(
                        label,
                        AccessSet::new(
                            &[x.buf_id(), w.buf_id(), d.buf_id()],
                            &[BufId::fresh(), BufId::fresh(), BufId::fresh()],
                        ),
                        move |tr: &mut Tracer| linear_bwd(tr, lin_ctx, x, w, d, true),
                    )
                })
                .into_iter()
                .collect();
        let (mut outs, _) = run_group(tracer, tasks);
        let (dx_v, dwv, dbv) = outs.pop().expect("qkv group returns three results")?;
        let (dx_k, dwk, dbk) = outs.pop().expect("qkv group returns three results")?;
        let (dx_q, dwq, dbq) = outs.pop().expect("qkv group returns three results")?;
        let dx = dx_q.add(&dx_k)?.add(&dx_v)?;
        (
            dx,
            dwq,
            dbq.expect("bias requested"),
            dwk,
            dbk.expect("bias requested"),
            dwv,
            dbv.expect("bias requested"),
        )
    } else {
        let (dx_q, dwq, dbq) = linear_bwd(tracer, &lin_ctx, &state.x, &p.wq, &dq, true)?;
        let (dx_k, dwk, dbk) = linear_bwd(tracer, &lin_ctx, &state.x, &p.wk, &dk, true)?;
        let (dx_v, dwv, dbv) = linear_bwd(tracer, &lin_ctx, &state.x, &p.wv, &dv, true)?;
        let dx = dx_q.add(&dx_k)?.add(&dx_v)?;
        (
            dx,
            dwq,
            dbq.expect("bias requested"),
            dwk,
            dbk.expect("bias requested"),
            dwv,
            dbv.expect("bias requested"),
        )
    };

    Ok((
        dx_qkv,
        AttentionGrads {
            wq: dwq,
            bq: dbq,
            wk: dwk,
            bk: dbk,
            wv: dwv,
            bv: dbv,
            wo: dwo,
            bo: dbo.expect("bias requested"),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_grad, rand_tensor};
    use bertscope_tensor::OpKind;

    fn tiny_cfg(fused: bool) -> AttentionConfig {
        AttentionConfig {
            batch: 2,
            seq: 3,
            heads: 2,
            d_model: 4,
            dropout_p: 0.0,
            fused_qkv: fused,
            fused_epilogue: false,
            deferred: false,
            dtype: DType::F32,
            layer: 0,
        }
    }

    fn tiny_params(seed: u64, d: usize) -> AttentionParams {
        AttentionParams {
            wq: rand_tensor(seed, &[d, d]).scale(0.5),
            bq: rand_tensor(seed + 1, &[d]).scale(0.1),
            wk: rand_tensor(seed + 2, &[d, d]).scale(0.5),
            bk: rand_tensor(seed + 3, &[d]).scale(0.1),
            wv: rand_tensor(seed + 4, &[d, d]).scale(0.5),
            bv: rand_tensor(seed + 5, &[d]).scale(0.1),
            wo: rand_tensor(seed + 6, &[d, d]).scale(0.5),
            bo: rand_tensor(seed + 7, &[d]).scale(0.1),
        }
    }

    #[test]
    fn forward_output_shape_and_finiteness() {
        let mut tr = Tracer::new();
        let cfg = tiny_cfg(false);
        let p = tiny_params(1, 4);
        let x = rand_tensor(9, &[6, 4]);
        let (y, _) = attention_fwd(&mut tr, &cfg, &p, &x, None, 0).unwrap();
        assert_eq!(y.dims(), &[6, 4]);
        assert!(y.all_finite());
    }

    #[test]
    fn trace_contains_table2b_bgemm_shapes() {
        let mut tr = Tracer::new();
        let cfg = tiny_cfg(false);
        let p = tiny_params(2, 4);
        let x = rand_tensor(10, &[6, 4]);
        attention_fwd(&mut tr, &cfg, &p, &x, None, 0).unwrap();
        let bgemms: Vec<_> = tr
            .records()
            .iter()
            .filter(|r| r.kind == OpKind::BatchedGemm)
            .map(|r| r.gemm.unwrap())
            .collect();
        assert_eq!(bgemms.len(), 2);
        // Attn. Score FWD: n x n x d/h, batch B*h.
        assert_eq!((bgemms[0].m, bgemms[0].n, bgemms[0].k, bgemms[0].batch), (3, 3, 2, 4));
        // Attn. O/p FWD: d/h x n x n, batch B*h.
        assert_eq!((bgemms[1].m, bgemms[1].n, bgemms[1].k, bgemms[1].batch), (2, 3, 3, 4));
    }

    #[test]
    fn fused_qkv_matches_serial_execution() {
        let p = tiny_params(3, 4);
        let x = rand_tensor(11, &[6, 4]);
        let mut tr_s = Tracer::new();
        let (y_serial, _) = attention_fwd(&mut tr_s, &tiny_cfg(false), &p, &x, None, 0).unwrap();
        let mut tr_f = Tracer::new();
        let (y_fused, _) = attention_fwd(&mut tr_f, &tiny_cfg(true), &p, &x, None, 0).unwrap();
        assert!(y_serial.max_abs_diff(&y_fused).unwrap() < 1e-4);
        // Fused execution launches two fewer projection GEMMs.
        let gemms = |tr: &Tracer| tr.records().iter().filter(|r| r.kind == OpKind::Gemm).count();
        assert_eq!(gemms(&tr_s) - gemms(&tr_f), 2);
        // And the fused GEMM's N dimension is 3x wider.
        let fused_spec =
            tr_f.records().iter().find(|r| r.kind == OpKind::Gemm).and_then(|r| r.gemm).unwrap();
        assert_eq!(fused_spec.m, 12, "fused projection output is 3*d_model wide");
    }

    #[test]
    fn deferred_qkv_is_bit_identical_to_eager() {
        use bertscope_tensor::pool::with_threads;
        let p = tiny_params(7, 4);
        let x = rand_tensor(17, &[6, 4]);
        let dy = rand_tensor(18, &[6, 4]);
        let mut tr_e = Tracer::new();
        let eager = tiny_cfg(false);
        let (y_e, st_e) = attention_fwd(&mut tr_e, &eager, &p, &x, None, 0).unwrap();
        let (dx_e, g_e) = attention_bwd(&mut tr_e, &eager, &p, &st_e, &dy).unwrap();
        for threads in [1, 2, 8] {
            with_threads(threads, || {
                let mut tr_d = Tracer::new();
                let deferred = AttentionConfig { deferred: true, ..eager };
                let (y_d, st_d) = attention_fwd(&mut tr_d, &deferred, &p, &x, None, 0).unwrap();
                let (dx_d, g_d) = attention_bwd(&mut tr_d, &deferred, &p, &st_d, &dy).unwrap();
                // Bit-identical values at every thread count...
                assert_eq!(y_e.as_slice(), y_d.as_slice(), "threads={threads}");
                assert_eq!(dx_e.as_slice(), dx_d.as_slice(), "threads={threads}");
                assert_eq!(g_e.wq.as_slice(), g_d.wq.as_slice());
                assert_eq!(g_e.bk.as_slice(), g_d.bk.as_slice());
                assert_eq!(g_e.wv.as_slice(), g_d.wv.as_slice());
                // ...and an identical merged kernel stream (names in
                // eager program order).
                let names =
                    |tr: &Tracer| tr.records().iter().map(|r| r.name.clone()).collect::<Vec<_>>();
                assert_eq!(names(&tr_e), names(&tr_d), "threads={threads}");
            });
        }
    }

    #[test]
    fn additive_mask_suppresses_positions() {
        let mut tr = Tracer::disabled();
        let cfg = AttentionConfig { batch: 1, seq: 2, heads: 1, d_model: 2, ..tiny_cfg(false) };
        let p = tiny_params(4, 2);
        let x = rand_tensor(12, &[2, 2]);
        // Mask out attention *to* position 1 for every query.
        let mask = Tensor::from_vec(vec![0.0, -1e9, 0.0, -1e9], &[1, 2, 2]).unwrap();
        let (_, state) = attention_fwd(&mut tr, &cfg, &p, &x, Some(&mask), 0).unwrap();
        // After softmax, column 1 must carry ~zero probability.
        assert!(state.probs_pre_drop.as_slice()[1] < 1e-6);
        assert!(state.probs_pre_drop.as_slice()[3] < 1e-6);
        assert!((state.probs_pre_drop.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences_serial_and_fused() {
        for fused in [false, true] {
            let cfg = tiny_cfg(fused);
            let p = tiny_params(5, 4);
            let x = rand_tensor(13, &[6, 4]);
            let w_obj = rand_tensor(14, &[6, 4]);
            let mut tr = Tracer::disabled();
            let (_, state) = attention_fwd(&mut tr, &cfg, &p, &x, None, 0).unwrap();
            let (dx, grads) = attention_bwd(&mut tr, &cfg, &p, &state, &w_obj).unwrap();

            let objective = |xp: &Tensor, pp: &AttentionParams| {
                let mut t = Tracer::disabled();
                let (y, _) = attention_fwd(&mut t, &cfg, pp, xp, None, 0).unwrap();
                y.mul(&w_obj).unwrap().sum()
            };
            check_grad(&x, &dx, 1e-3, 3e-2, |xp| objective(xp, &p));
            check_grad(&p.wq, &grads.wq, 1e-3, 3e-2, |wp| {
                objective(&x, &AttentionParams { wq: wp.clone(), ..p.clone() })
            });
            check_grad(&p.wo, &grads.wo, 1e-3, 3e-2, |wp| {
                objective(&x, &AttentionParams { wo: wp.clone(), ..p.clone() })
            });
            check_grad(&p.bv, &grads.bv, 1e-3, 3e-2, |bp| {
                objective(&x, &AttentionParams { bv: bp.clone(), ..p.clone() })
            });
            check_grad(&p.bk, &grads.bk, 1e-3, 3e-2, |bp| {
                objective(&x, &AttentionParams { bk: bp.clone(), ..p.clone() })
            });
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut tr = Tracer::new();
        let cfg = AttentionConfig { heads: 3, ..tiny_cfg(false) }; // 4 % 3 != 0
        let p = tiny_params(6, 4);
        let x = rand_tensor(15, &[6, 4]);
        assert!(attention_fwd(&mut tr, &cfg, &p, &x, None, 0).is_err());
        let cfg_ok = tiny_cfg(false);
        let x_bad = rand_tensor(16, &[5, 4]);
        assert!(attention_fwd(&mut tr, &cfg_ok, &p, &x_bad, None, 0).is_err());
    }
}
