//! Softmax cross-entropy for BERT's masked-LM and next-sentence-prediction
//! heads.
//!
//! MLM loss is computed only over masked positions; unmasked positions carry
//! the sentinel [`IGNORE_INDEX`] and contribute neither loss nor gradient.

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{AccessSet, Buffer, OpKind, Tensor, TensorError, Tracer};

/// Target value marking a position excluded from the loss.
pub const IGNORE_INDEX: usize = usize::MAX;

/// Saved forward state for [`cross_entropy_bwd`].
#[derive(Debug, Clone)]
pub struct CrossEntropyState {
    probs: Tensor,
    targets: Vec<usize>,
    active: usize,
}

impl CrossEntropyState {
    /// Number of positions that contributed to the loss.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// The softmax probabilities computed during the forward pass.
    #[must_use]
    pub fn probs(&self) -> &Tensor {
        &self.probs
    }
}

/// Mean negative log-likelihood of `targets` under softmax of `logits`
/// (`[rows, classes]`). Rows whose target is [`IGNORE_INDEX`] are skipped.
///
/// Returns the scalar loss and the state for the backward pass. When every
/// row is ignored the loss is `0.0`.
///
/// # Errors
///
/// Returns shape errors when `targets` and `logits` rows disagree, or when a
/// target class is out of range.
pub fn cross_entropy_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    logits: &Tensor,
    targets: &[usize],
) -> Result<(f32, CrossEntropyState)> {
    let (rows, classes) = (logits.dims()[0], logits.dims()[1]);
    if targets.len() != rows {
        return Err(TensorError::shape("cross_entropy targets", &[rows], &[targets.len()]));
    }
    let xs = logits.as_slice();
    let mut probs = Buffer::zeroed(logits.numel());
    let mut loss = 0.0f64;
    let mut active = 0usize;
    for r in 0..rows {
        let row = &xs[r * classes..(r + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f64;
        for (p, &v) in probs[r * classes..(r + 1) * classes].iter_mut().zip(row) {
            let e = f64::from(v - max).exp();
            *p = e as f32;
            sum += e;
        }
        let inv = 1.0 / sum;
        for p in &mut probs[r * classes..(r + 1) * classes] {
            *p = (f64::from(*p) * inv) as f32;
        }
        let t = targets[r];
        if t == IGNORE_INDEX {
            continue;
        }
        if t >= classes {
            return Err(TensorError::InvalidArgument(format!(
                "target class {t} out of range for {classes} classes"
            )));
        }
        let p = f64::from(probs[r * classes + t]).max(1e-30);
        loss -= p.ln();
        active += 1;
    }
    let mean_loss = if active == 0 { 0.0 } else { (loss / active as f64) as f32 };
    let es = ctx.dtype_of().size_bytes();
    let n = logits.numel() as u64;
    let access = AccessSet::new(&[logits.buf_id()], &[probs.id()]);
    ctx.trace_acc(
        tracer,
        "xent",
        OpKind::Reduction,
        6 * n,
        n * es + rows as u64 * 4,
        n * 4,
        access,
    );
    let probs = Tensor::from_buffer(probs, logits.dims())?;
    Ok((mean_loss, CrossEntropyState { probs, targets: targets.to_vec(), active }))
}

/// Gradient of the mean cross-entropy with respect to the logits:
/// `(softmax(logits) - onehot(target)) / active_count` on active rows,
/// zero elsewhere.
///
/// # Errors
///
/// Never fails for a state produced by [`cross_entropy_fwd`].
pub fn cross_entropy_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    state: &CrossEntropyState,
) -> Result<Tensor> {
    let (rows, classes) = (state.probs.dims()[0], state.probs.dims()[1]);
    let mut grad = Buffer::zeroed(state.probs.numel());
    if state.active > 0 {
        let scale = 1.0 / state.active as f32;
        for r in 0..rows {
            let t = state.targets[r];
            if t == IGNORE_INDEX {
                continue;
            }
            let src = &state.probs.as_slice()[r * classes..(r + 1) * classes];
            let dst = &mut grad[r * classes..(r + 1) * classes];
            for (g, &p) in dst.iter_mut().zip(src) {
                *g = p * scale;
            }
            dst[t] -= scale;
        }
    }
    let es = ctx.dtype_of().size_bytes();
    let n = state.probs.numel() as u64;
    let access = AccessSet::new(&[state.probs.buf_id()], &[grad.id()]);
    ctx.trace_acc(
        tracer,
        "xent",
        OpKind::ElementWise,
        2 * n,
        n * 4 + rows as u64 * 4,
        n * es,
        access,
    );
    Tensor::from_buffer(grad, state.probs.dims())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_grad, rand_tensor};
    use bertscope_tensor::{Category, Phase};

    fn ctx() -> KernelCtx {
        KernelCtx::new("loss", Category::Output, Phase::Forward)
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let mut tr = Tracer::new();
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let (loss, state) = cross_entropy_fwd(&mut tr, &ctx(), &logits, &[0, 1]).unwrap();
        assert!(loss < 1e-6, "loss {loss}");
        assert_eq!(state.active_count(), 2);
    }

    #[test]
    fn uniform_logits_give_log_classes() {
        let mut tr = Tracer::new();
        let logits = Tensor::zeros(&[4, 8]);
        let (loss, _) = cross_entropy_fwd(&mut tr, &ctx(), &logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ignored_rows_contribute_nothing() {
        let mut tr = Tracer::new();
        let logits = rand_tensor(1, &[3, 5]);
        let (loss_all, _) = cross_entropy_fwd(&mut tr, &ctx(), &logits, &[1, 2, 3]).unwrap();
        let (loss_one, state) =
            cross_entropy_fwd(&mut tr, &ctx(), &logits, &[1, IGNORE_INDEX, IGNORE_INDEX]).unwrap();
        assert_eq!(state.active_count(), 1);
        assert_ne!(loss_all, loss_one);
        let grad = cross_entropy_bwd(&mut tr, &ctx(), &state).unwrap();
        // Ignored rows have zero gradient.
        assert!(grad.as_slice()[5..15].iter().all(|&g| g == 0.0));
        assert!(grad.as_slice()[..5].iter().any(|&g| g != 0.0));
    }

    #[test]
    fn all_ignored_yields_zero_loss_and_grad() {
        let mut tr = Tracer::new();
        let logits = rand_tensor(2, &[2, 3]);
        let (loss, state) =
            cross_entropy_fwd(&mut tr, &ctx(), &logits, &[IGNORE_INDEX, IGNORE_INDEX]).unwrap();
        assert_eq!(loss, 0.0);
        let grad = cross_entropy_bwd(&mut tr, &ctx(), &state).unwrap();
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut tr = Tracer::disabled();
        let logits = rand_tensor(3, &[4, 6]);
        let targets = [2usize, IGNORE_INDEX, 0, 5];
        let (_, state) = cross_entropy_fwd(&mut tr, &ctx(), &logits, &targets).unwrap();
        let grad = cross_entropy_bwd(&mut tr, &ctx(), &state).unwrap();
        check_grad(&logits, &grad, 1e-3, 2e-2, |lp| {
            let mut t = Tracer::disabled();
            cross_entropy_fwd(&mut t, &ctx(), lp, &targets).unwrap().0
        });
    }

    #[test]
    fn validation_errors() {
        let mut tr = Tracer::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy_fwd(&mut tr, &ctx(), &logits, &[0]).is_err());
        assert!(cross_entropy_fwd(&mut tr, &ctx(), &logits, &[0, 7]).is_err());
    }
}
