//! Embedding lookup (gather) and its scatter-add backward.
//!
//! BERT's input layer sums token, position and segment embeddings. The
//! lookup moves `tokens * d_model` elements with no arithmetic — a pure
//! memory operation — which is why the paper finds the embedding layer's
//! runtime contribution negligible (Obs. 1).

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{pool, AccessSet, Buffer, OpKind, Tensor, TensorError, Tracer};
use std::collections::BTreeMap;

/// Elements per pool task for the gather/scatter loops (shape-only grain,
/// so chunking and results never depend on the thread count).
const EMB_GRAIN_ELEMS: usize = 1 << 13;

/// Embedding rows of width `d` per pool task (at least one).
fn emb_rows_grain(d: usize) -> usize {
    (EMB_GRAIN_ELEMS / d.max(1)).max(1)
}

/// Gather rows of `table` (`[vocab, d]`) at `ids`, producing `[ids.len(), d]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when any id is out of range.
pub fn embedding_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    table: &Tensor,
    ids: &[usize],
) -> Result<Tensor> {
    let (vocab, d) = (table.dims()[0], table.dims()[1]);
    if let Some(&bad) = ids.iter().find(|&&id| id >= vocab) {
        return Err(TensorError::InvalidArgument(format!(
            "embedding id {bad} out of range for vocab {vocab}"
        )));
    }
    let mut out = Buffer::zeroed(ids.len() * d);
    let src = table.as_slice();
    pool::parallel_for_mut(&mut out, emb_rows_grain(d) * d, |off, chunk| {
        for (rr, orow) in chunk.chunks_mut(d).enumerate() {
            let id = ids[off / d + rr];
            orow.copy_from_slice(&src[id * d..(id + 1) * d]);
        }
    });
    let y = Tensor::from_buffer(out, &[ids.len(), d])?;
    let es = ctx.dtype_of().size_bytes();
    let moved = (ids.len() * d) as u64 * es;
    // Gather: reads the selected rows + 4-byte indices, writes the output.
    let access = AccessSet::new(&[table.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(
        tracer,
        "gather",
        OpKind::ElementWise,
        0,
        moved + ids.len() as u64 * 4,
        moved,
        access,
    );
    Ok(y)
}

/// Scatter-add `dy` rows into a gradient table of `table_dims`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when ids and `dy` rows disagree
/// or an id is out of range.
pub fn embedding_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    table_dims: &[usize],
    ids: &[usize],
    dy: &Tensor,
) -> Result<Tensor> {
    let (vocab, d) = (table_dims[0], table_dims[1]);
    if dy.dims() != [ids.len(), d] {
        return Err(TensorError::shape("embedding_bwd", &[ids.len(), d], dy.dims()));
    }
    if let Some(&bad) = ids.iter().find(|&&id| id >= vocab) {
        return Err(TensorError::InvalidArgument(format!(
            "embedding id {bad} out of range for vocab {vocab}"
        )));
    }
    let mut grad = Tensor::zeros(&[vocab, d]);
    // Group source rows by destination id. Rows for the same id accumulate
    // in ascending source order (the same order the serial loop used), and
    // distinct ids write disjoint table rows — so the scatter parallelizes
    // with bit-identical results at any thread count.
    let mut by_id: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (row, &id) in ids.iter().enumerate() {
        by_id.entry(id).or_default().push(row);
    }
    // Carve the touched table rows out of `grad` as disjoint mutable
    // slices, in ascending id order.
    let mut dst_rows: Vec<(&mut [f32], &Vec<usize>)> = Vec::with_capacity(by_id.len());
    let mut rest = grad.as_mut_slice();
    let mut consumed = 0usize;
    for (&id, rows) in &by_id {
        let (_, tail) = rest.split_at_mut(id * d - consumed);
        let (dst, tail) = tail.split_at_mut(d);
        dst_rows.push((dst, rows));
        rest = tail;
        consumed = (id + 1) * d;
    }
    let dys = dy.as_slice();
    let grain = emb_rows_grain(d);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = dst_rows
        .chunks_mut(grain)
        .map(|group| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for (dst, rows) in group.iter_mut() {
                    for &row in rows.iter() {
                        let src = &dys[row * d..(row + 1) * d];
                        for (g, &v) in dst.iter_mut().zip(src) {
                            *g += v;
                        }
                    }
                }
            });
            task
        })
        .collect();
    pool::run_tasks(tasks);
    let es = ctx.dtype_of().size_bytes();
    let moved = (ids.len() * d) as u64 * es;
    ctx.trace_acc(
        tracer,
        "scatter_add",
        OpKind::ElementWise,
        (ids.len() * d) as u64,
        moved + ids.len() as u64 * 4,
        moved,
        AccessSet::new(&[dy.buf_id()], &[grad.buf_id()]),
    );
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, Phase};

    fn ctx() -> KernelCtx {
        KernelCtx::new("emb", Category::Embedding, Phase::Forward)
    }

    #[test]
    fn gather_selects_rows() {
        let mut tr = Tracer::new();
        let table = Tensor::from_vec(vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1], &[3, 2]).unwrap();
        let y = embedding_fwd(&mut tr, &ctx(), &table, &[2, 0, 2]).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.as_slice(), &[2.0, 2.1, 0.0, 0.1, 2.0, 2.1]);
        assert_eq!(tr.records()[0].flops, 0, "gather performs no arithmetic");
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let mut tr = Tracer::new();
        let table = Tensor::zeros(&[3, 2]);
        assert!(embedding_fwd(&mut tr, &ctx(), &table, &[3]).is_err());
        let dy = Tensor::zeros(&[1, 2]);
        assert!(embedding_bwd(&mut tr, &ctx(), &[3, 2], &[5], &dy).is_err());
    }

    #[test]
    fn scatter_add_accumulates_repeated_ids() {
        let mut tr = Tracer::new();
        let dy = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0], &[3, 2]).unwrap();
        let grad = embedding_bwd(&mut tr, &ctx(), &[4, 2], &[1, 3, 1], &dy).unwrap();
        assert_eq!(grad.at(&[1, 0]).unwrap(), 101.0);
        assert_eq!(grad.at(&[1, 1]).unwrap(), 202.0);
        assert_eq!(grad.at(&[3, 0]).unwrap(), 10.0);
        assert_eq!(grad.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn bwd_shape_validation() {
        let mut tr = Tracer::new();
        let dy = Tensor::zeros(&[2, 3]);
        assert!(embedding_bwd(&mut tr, &ctx(), &[4, 2], &[0, 1], &dy).is_err());
    }
}
