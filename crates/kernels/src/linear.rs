//! Linear (dense) layers: the GEMMs that dominate BERT's runtime.
//!
//! Conventions: activations are `[tokens, d_in]` row-major, weights are
//! `[d_in, d_out]`, biases `[d_out]`. The traced [`GemmSpec`]s use the
//! paper's Table 2b convention (`M` = weight-side output dimension, `N` =
//! token count `n*B`, `K` = reduction dimension), so traces from execution
//! line up exactly with the analytic graph and Fig. 6's labels.

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{
    gemm, gemm_bias_gelu, gemm_ep, AccessSet, Buffer, Epilogue, GemmEpilogue, GemmSpec, OpKind,
    Tensor, TensorError, Tracer, Transpose,
};

/// Linear forward: `y = x * W + b`.
///
/// The bias add is executed as a GEMM epilogue — applied to each output
/// tile at microkernel writeback while it is cache-hot, as BLAS epilogue
/// fusion does — so only one GEMM record is traced and the record's
/// [`Epilogue`] marks the fusion for FLOP/byte accounting.
///
/// # Errors
///
/// Returns shape errors when `x`/`w`/`b` disagree.
pub fn linear_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
) -> Result<Tensor> {
    let (t, d_in) = (x.dims()[0], x.dims()[1]);
    let (wd_in, d_out) = (w.dims()[0], w.dims()[1]);
    if d_in != wd_in {
        return Err(TensorError::shape("linear_fwd", x.dims(), w.dims()));
    }
    let ep = match b {
        Some(b) if b.numel() != d_out => {
            return Err(TensorError::shape("linear_fwd bias", &[d_out], b.dims()));
        }
        Some(b) => GemmEpilogue::Bias(b.as_slice()),
        None => GemmEpilogue::None,
    };
    let y = gemm_ep(Transpose::No, Transpose::No, 1.0, x, w, 0.0, None, ep)?;
    let mut access = AccessSet::new(&[x.buf_id(), w.buf_id()], &[y.buf_id()]);
    let mut spec = GemmSpec::new(Transpose::No, Transpose::No, d_out, t, d_in);
    if let Some(b) = b {
        access.reads.push(b.buf_id());
        spec = spec.with_epilogue(Epilogue::Bias);
    }
    ctx.trace_gemm_acc(tracer, "gemm", spec, access);
    Ok(y)
}

/// Fused linear + GeLU forward: `pre = x * W + b`, `act = GeLU(pre)`, as a
/// single kernel whose epilogue evaluates the activation on each output
/// tile while it is register-resident. Returns `(pre, act)` — the backward
/// pass consumes the pre-activation.
///
/// One GEMM record is traced with the [`Epilogue::BiasGelu`] tag (the
/// separate GeLU elementwise record disappears; its FLOPs fold into the
/// GEMM record, and `bytes_written` doubles for the second output).
///
/// # Errors
///
/// Returns shape errors when `x`/`w`/`b` disagree.
pub fn linear_gelu_fwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
) -> Result<(Tensor, Tensor)> {
    let (t, d_in) = (x.dims()[0], x.dims()[1]);
    let (wd_in, d_out) = (w.dims()[0], w.dims()[1]);
    if d_in != wd_in {
        return Err(TensorError::shape("linear_gelu_fwd", x.dims(), w.dims()));
    }
    if b.numel() != d_out {
        return Err(TensorError::shape("linear_gelu_fwd bias", &[d_out], b.dims()));
    }
    let (pre, act) = gemm_bias_gelu(Transpose::No, Transpose::No, 1.0, x, w, b)?;
    let mut access = AccessSet::new(&[x.buf_id(), w.buf_id()], &[pre.buf_id(), act.buf_id()]);
    access.reads.push(b.buf_id());
    ctx.trace_gemm_acc(
        tracer,
        "gemm",
        GemmSpec::new(Transpose::No, Transpose::No, d_out, t, d_in)
            .with_epilogue(Epilogue::BiasGelu),
        access,
    );
    Ok((pre, act))
}

/// Linear backward. Returns `(dx, dw, db)` where `db` is `None` when the
/// layer has no bias.
///
/// Manifestation (paper Table 2b): the activation gradient is a
/// `d_in x (n*B) x d_out` GEMM and the weight gradient a
/// `d_in x d_out x (n*B)` GEMM; the bias gradient is a column reduction.
///
/// # Errors
///
/// Returns shape errors when operands disagree.
pub fn linear_bwd(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    has_bias: bool,
) -> Result<(Tensor, Tensor, Option<Tensor>)> {
    let (t, d_in) = (x.dims()[0], x.dims()[1]);
    let d_out = w.dims()[1];
    if dy.dims() != [t, d_out] {
        return Err(TensorError::shape("linear_bwd dy", &[t, d_out], dy.dims()));
    }
    // dx = dy * W^T
    let dx = gemm(Transpose::No, Transpose::Yes, 1.0, dy, w, 0.0, None)?;
    ctx.trace_gemm_acc(
        tracer,
        "grad_act",
        GemmSpec::new(Transpose::No, Transpose::Yes, d_in, t, d_out),
        AccessSet::new(&[dy.buf_id(), w.buf_id()], &[dx.buf_id()]),
    );
    // dW = x^T * dy
    let dw = gemm(Transpose::Yes, Transpose::No, 1.0, x, dy, 0.0, None)?;
    ctx.trace_gemm_acc(
        tracer,
        "grad_wt",
        GemmSpec::new(Transpose::Yes, Transpose::No, d_in, d_out, t),
        AccessSet::new(&[x.buf_id(), dy.buf_id()], &[dw.buf_id()]),
    );
    // db = column-sum(dy): a reduction kernel.
    let db = if has_bias {
        let mut acc = Buffer::zeroed(d_out);
        for row in dy.as_slice().chunks(d_out) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        let es = ctx.dtype_of().size_bytes();
        ctx.trace_acc(
            tracer,
            "grad_bias",
            OpKind::Reduction,
            (t * d_out) as u64,
            (t * d_out) as u64 * es,
            d_out as u64 * 4,
            AccessSet::new(&[dy.buf_id()], &[acc.id()]),
        );
        Some(Tensor::from_buffer(acc, &[d_out])?)
    } else {
        None
    };
    Ok((dx, dw, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_grad, rand_tensor};
    use bertscope_tensor::{Category, Phase};

    fn fwd_ctx() -> KernelCtx {
        KernelCtx::new("fc", Category::FcGemm, Phase::Forward)
    }
    fn bwd_ctx() -> KernelCtx {
        KernelCtx::new("fc", Category::FcGemm, Phase::Backward)
    }

    #[test]
    fn forward_matches_manual_matmul_plus_bias() {
        let mut tr = Tracer::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let w = Tensor::eye(2);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let y = linear_fwd(&mut tr, &fwd_ctx(), &x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn trace_uses_paper_table2b_convention() {
        let mut tr = Tracer::new();
        let (t, d_in, d_out) = (12, 8, 6);
        let x = rand_tensor(1, &[t, d_in]);
        let w = rand_tensor(2, &[d_in, d_out]);
        linear_fwd(&mut tr, &fwd_ctx(), &x, &w, None).unwrap();
        let spec = tr.records()[0].gemm.unwrap();
        assert_eq!((spec.m, spec.n, spec.k), (d_out, t, d_in));

        let dy = rand_tensor(3, &[t, d_out]);
        linear_bwd(&mut tr, &bwd_ctx(), &x, &w, &dy, true).unwrap();
        let ga = tr.records()[1].gemm.unwrap();
        assert_eq!((ga.m, ga.n, ga.k), (d_in, t, d_out), "grad-activation GEMM");
        let gw = tr.records()[2].gemm.unwrap();
        assert_eq!((gw.m, gw.n, gw.k), (d_in, d_out, t), "grad-weight GEMM");
        assert_eq!(tr.records()[3].kind, OpKind::Reduction, "bias grad");
    }

    #[test]
    fn fused_linear_gelu_matches_unfused_sequence() {
        use crate::activation::gelu_fwd;
        let mut tr = Tracer::new();
        let (t, d_in, d_out) = (6, 5, 7);
        let x = rand_tensor(11, &[t, d_in]);
        let w = rand_tensor(12, &[d_in, d_out]);
        let b = rand_tensor(13, &[d_out]);
        let (pre, act) = linear_gelu_fwd(&mut tr, &fwd_ctx(), &x, &w, &b).unwrap();
        let mut tr2 = Tracer::new();
        let want_pre = linear_fwd(&mut tr2, &fwd_ctx(), &x, &w, Some(&b)).unwrap();
        let gelu_ctx = KernelCtx::new("gelu", Category::Gelu, Phase::Forward);
        let want_act = gelu_fwd(&mut tr2, &gelu_ctx, &want_pre).unwrap();
        // Fused path is bit-identical to the unfused chain...
        assert_eq!(pre.as_slice(), want_pre.as_slice());
        assert_eq!(act.as_slice(), want_act.as_slice());
        // ...but traces one record instead of two, with merged accounting.
        assert_eq!(tr.kernel_count(), 1);
        assert_eq!(tr2.kernel_count(), 2);
        let r = &tr.records()[0];
        let spec = r.gemm.unwrap();
        assert_eq!(spec.epilogue, bertscope_tensor::Epilogue::BiasGelu);
        assert_eq!(r.flops, 2 * (t * d_in * d_out) as u64 + 13 * (t * d_out) as u64);
        assert_eq!(r.bytes_written, 2 * (t * d_out) as u64 * 4);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut tr = Tracer::disabled();
        let x = rand_tensor(5, &[4, 3]);
        let w = rand_tensor(6, &[3, 2]);
        let b = rand_tensor(7, &[2]);
        let obj_w = rand_tensor(8, &[4, 2]);
        let dy = obj_w.clone();
        let (dx, dw, db) = linear_bwd(&mut tr, &bwd_ctx(), &x, &w, &dy, true).unwrap();
        let objective = |xp: &Tensor, wp: &Tensor, bp: &Tensor| {
            let mut t = Tracer::disabled();
            linear_fwd(&mut t, &fwd_ctx(), xp, wp, Some(bp)).unwrap().mul(&obj_w).unwrap().sum()
        };
        check_grad(&x, &dx, 1e-3, 2e-2, |xp| objective(xp, &w, &b));
        check_grad(&w, &dw, 1e-3, 2e-2, |wp| objective(&x, wp, &b));
        check_grad(&b, db.as_ref().unwrap(), 1e-3, 2e-2, |bp| objective(&x, &w, bp));
    }

    #[test]
    fn shape_validation() {
        let mut tr = Tracer::new();
        let x = Tensor::zeros(&[4, 3]);
        let w_bad = Tensor::zeros(&[5, 2]);
        assert!(linear_fwd(&mut tr, &fwd_ctx(), &x, &w_bad, None).is_err());
        let w = Tensor::zeros(&[3, 2]);
        let b_bad = Tensor::zeros(&[3]);
        assert!(linear_fwd(&mut tr, &fwd_ctx(), &x, &w, Some(&b_bad)).is_err());
        let dy_bad = Tensor::zeros(&[4, 5]);
        assert!(linear_bwd(&mut tr, &bwd_ctx(), &x, &w, &dy_bad, false).is_err());
    }

    #[test]
    fn no_bias_backward_returns_none() {
        let mut tr = Tracer::new();
        let x = rand_tensor(1, &[2, 3]);
        let w = rand_tensor(2, &[3, 4]);
        let dy = rand_tensor(3, &[2, 4]);
        let (_, _, db) = linear_bwd(&mut tr, &bwd_ctx(), &x, &w, &dy, false).unwrap();
        assert!(db.is_none());
        // Only the two GEMM records, no bias reduction.
        assert_eq!(tr.kernel_count(), 2);
    }
}
