//! Elementwise scale, additive-mask and residual-connection kernels.
//!
//! Each performs exactly one arithmetic operation per element read — the
//! paper's poster children for arithmetic intensity below one (Fig. 7,
//! Takeaway 8).

use crate::ctx::KernelCtx;
use crate::Result;
use bertscope_tensor::{AccessSet, OpKind, Tensor, Tracer};

/// Multiply every element of `x` by the constant `alpha` (the attention
/// score normalization `1/sqrt(d_model/h)`).
///
/// # Errors
///
/// Never fails for valid tensors.
pub fn scale(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor, alpha: f32) -> Result<Tensor> {
    let y = x.scale(alpha);
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let access = AccessSet::new(&[x.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "scale", OpKind::ElementWise, n, n * es, n * es, access);
    Ok(y)
}

/// Add a mask tensor to `x` (BERT's additive attention mask: `0` for valid
/// positions, a large negative value for padded ones).
///
/// The mask has shape `[batch, 1, seq]` conceptually; here it is provided
/// pre-broadcast with the same shape as `x` for simplicity.
///
/// # Errors
///
/// Returns a shape error when `x` and `mask` disagree.
pub fn mask_add(tracer: &mut Tracer, ctx: &KernelCtx, x: &Tensor, mask: &Tensor) -> Result<Tensor> {
    let y = x.add(mask)?;
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let access = AccessSet::new(&[x.buf_id(), mask.buf_id()], &[y.buf_id()]);
    ctx.trace_acc(tracer, "mask", OpKind::ElementWise, n, 2 * n * es, n * es, access);
    Ok(y)
}

/// Residual connection: elementwise sum of a sub-layer's input and output.
///
/// # Errors
///
/// Returns a shape error when the operands disagree.
pub fn residual_add(
    tracer: &mut Tracer,
    ctx: &KernelCtx,
    x: &Tensor,
    y: &Tensor,
) -> Result<Tensor> {
    let out = x.add(y)?;
    let es = ctx.dtype_of().size_bytes();
    let n = x.numel() as u64;
    let access = AccessSet::new(&[x.buf_id(), y.buf_id()], &[out.buf_id()]);
    ctx.trace_acc(tracer, "residual", OpKind::ElementWise, n, 2 * n * es, n * es, access);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, Phase};

    fn ctx() -> KernelCtx {
        KernelCtx::new("ew", Category::DropResidualNorm, Phase::Forward)
    }

    #[test]
    fn scale_multiplies() {
        let mut tr = Tracer::new();
        let x = Tensor::from_vec(vec![2.0, -4.0], &[2]).unwrap();
        let y = scale(&mut tr, &ctx(), &x, 0.5).unwrap();
        assert_eq!(y.as_slice(), &[1.0, -2.0]);
        assert_eq!(tr.records()[0].flops, 2);
    }

    #[test]
    fn mask_add_applies_additive_mask() {
        let mut tr = Tracer::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let m = Tensor::from_vec(vec![0.0, -1.0e9], &[2]).unwrap();
        let y = mask_add(&mut tr, &ctx(), &x, &m).unwrap();
        assert_eq!(y.as_slice()[0], 1.0);
        assert!(y.as_slice()[1] < -1.0e8);
    }

    #[test]
    fn residual_adds_and_reports_intensity_below_one() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[16]);
        let y = Tensor::full(&[16], 2.0);
        let out = residual_add(&mut tr, &ctx(), &x, &y).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 3.0));
        // One add per element, three tensors of traffic: intensity < 1.
        assert!(tr.records()[0].arithmetic_intensity() < 1.0);
    }

    #[test]
    fn shape_mismatches_error() {
        let mut tr = Tracer::new();
        let x = Tensor::ones(&[4]);
        let y = Tensor::ones(&[5]);
        assert!(mask_add(&mut tr, &ctx(), &x, &y).is_err());
        assert!(residual_add(&mut tr, &ctx(), &x, &y).is_err());
    }
}
