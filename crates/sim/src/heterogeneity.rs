//! Input-heterogeneity and update-frequency studies.
//!
//! Two knobs the paper text raises but does not plot:
//!
//! * **Gradient accumulation** (§2.4: LAMB "updates model weights once every
//!   (few) iteration(s)") — amortizing one update over `k` forward/backward
//!   micro-steps scales LAMB's share down by ~`1/k`, the mirror image of
//!   Takeaway 1's token-count dependence;
//! * **Sequence-length bucketing** (§3.1.4 cites SeqPoint on heterogeneous
//!   NLP iterations) — real corpora have variable lengths; padding everything
//!   to the maximum wastes quadratic attention work, and bucketing recovers
//!   it.

use crate::profile::IterationProfile;
use crate::simulate::simulate_iteration;
use bertscope_device::GpuModel;
use bertscope_model::{BertConfig, BertConfig as Cfg, GraphOptions};
use bertscope_tensor::Group;

/// One point of the gradient-accumulation sweep.
#[derive(Debug, Clone, Copy)]
pub struct AccumulationPoint {
    /// Micro-steps per optimizer update.
    pub steps: usize,
    /// LAMB's share of the amortized iteration.
    pub lamb_fraction: f64,
    /// Time per processed sequence, microseconds.
    pub time_per_sequence_us: f64,
}

/// Sweep gradient-accumulation depth: `k` forward+backward micro-steps per
/// LAMB update.
#[must_use]
pub fn accumulation_sweep(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    steps: &[usize],
) -> Vec<AccumulationPoint> {
    let profile = simulate_iteration(cfg, opts, gpu);
    let lamb = profile.time_by_group().get(&Group::Lamb).copied().unwrap_or(0.0);
    let fwd_bwd = profile.total_us() - lamb;
    steps
        .iter()
        .map(|&k| {
            let k = k.max(1);
            let total = fwd_bwd * k as f64 + lamb;
            AccumulationPoint {
                steps: k,
                lamb_fraction: lamb / total,
                time_per_sequence_us: total / (cfg.batch * k) as f64,
            }
        })
        .collect()
}

/// Result of the bucketing study: cost of a heterogeneous corpus processed
/// with pad-to-max batches vs length-bucketed batches.
#[derive(Debug, Clone, Copy)]
pub struct BucketingStudy {
    /// Iteration-time-weighted cost of padding everything to `n_max`, in
    /// microseconds per sequence.
    pub padded_us_per_seq: f64,
    /// Cost with per-bucket batches, microseconds per sequence.
    pub bucketed_us_per_seq: f64,
}

impl BucketingStudy {
    /// Speedup of bucketing over pad-to-max.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.padded_us_per_seq / self.bucketed_us_per_seq
    }
}

/// Compare pad-to-max against length bucketing for a corpus whose sequence
/// lengths are distributed over `length_weights` (pairs of `(length,
/// relative frequency)`); every bucket keeps the configured batch size.
///
/// # Panics
///
/// Panics when `length_weights` is empty or contains a zero weight/length.
#[must_use]
pub fn bucketing_study(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    length_weights: &[(usize, f64)],
) -> BucketingStudy {
    assert!(!length_weights.is_empty(), "a length distribution is required");
    assert!(
        length_weights.iter().all(|&(l, w)| l > 0 && w > 0.0),
        "lengths and weights must be positive"
    );
    let n_max = length_weights.iter().map(|&(l, _)| l).max().expect("non-empty");
    let total_w: f64 = length_weights.iter().map(|&(_, w)| w).sum();

    let per_seq = |n: usize| -> f64 {
        let c = Cfg { seq_len: n, max_position: cfg.max_position.max(n), ..*cfg };
        let p: IterationProfile = simulate_iteration(&c, opts, gpu);
        p.total_us() / c.batch as f64
    };

    // Pad-to-max: every sequence costs the n_max rate.
    let padded = per_seq(n_max);
    // Bucketed: each length class pays its own rate.
    let bucketed = length_weights.iter().map(|&(l, w)| w / total_w * per_seq(l)).sum::<f64>();
    BucketingStudy { padded_us_per_seq: padded, bucketed_us_per_seq: bucketed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_scales_lamb_share_inversely() {
        // §2.4's "once every few iterations": k=4 cuts LAMB's share ~4x.
        let gpu = GpuModel::mi100();
        let pts = accumulation_sweep(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &gpu,
            &[1, 2, 4, 8],
        );
        assert_eq!(pts[0].steps, 1);
        let base = pts[0].lamb_fraction;
        assert!((0.05..0.12).contains(&base));
        for w in pts.windows(2) {
            assert!(w[1].lamb_fraction < w[0].lamb_fraction);
            // Per-sequence time improves as the update amortizes.
            assert!(w[1].time_per_sequence_us < w[0].time_per_sequence_us);
        }
        let k8 = pts[3].lamb_fraction;
        assert!((base / k8 - 8.0).abs() / 8.0 < 0.15, "k=8 scales LAMB ~8x: {}", base / k8);
    }

    #[test]
    fn bucketing_beats_pad_to_max_on_a_skewed_corpus() {
        // A Wikipedia-like skew: most sequences are short.
        let gpu = GpuModel::mi100();
        let study = bucketing_study(
            &BertConfig::bert_large().phase2(4),
            &GraphOptions::default(),
            &gpu,
            &[(64, 0.4), (128, 0.35), (256, 0.2), (512, 0.05)],
        );
        let s = study.speedup();
        assert!(s > 1.5, "bucketing speedup {s}");
        assert!(s < 8.0, "sanity: bounded by the length ratio");
    }

    #[test]
    fn uniform_max_length_corpus_gains_nothing() {
        let gpu = GpuModel::mi100();
        let study = bucketing_study(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &gpu,
            &[(128, 1.0)],
        );
        assert!((study.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length distribution")]
    fn empty_distribution_rejected() {
        let gpu = GpuModel::mi100();
        let _ = bucketing_study(&BertConfig::bert_large(), &GraphOptions::default(), &gpu, &[]);
    }
}
