//! Configuration sweeps: the paper's Fig. 3 (phase/batch/precision matrix),
//! Fig. 8 (input-size sweep) and Fig. 9 (layer-size sweep).

use crate::profile::IterationProfile;
use crate::simulate::{simulate_iteration, NamedConfig};
use bertscope_device::GpuModel;
use bertscope_model::{BertConfig, GraphOptions, LayerSizeConfig};

/// A labelled simulated profile.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Configuration label (paper x-axis tick).
    pub label: String,
    /// The simulated profile.
    pub profile: IterationProfile,
}

/// The Fig. 3 configuration matrix: `Ph1-B32-FP32`, `Ph1-B4-FP32`,
/// `Ph2-B4-FP32`, `Ph1-B32-FP16`, `Ph2-B4-FP16`.
#[must_use]
pub fn figure3_sweep(gpu: &GpuModel) -> Vec<SweepPoint> {
    [(1u8, 32usize, false), (1, 4, false), (2, 4, false), (1, 32, true), (2, 4, true)]
        .into_iter()
        .map(|(ph, b, mp)| {
            let nc = NamedConfig::phase_batch(ph, b, mp);
            SweepPoint { label: nc.label.clone(), profile: nc.simulate(gpu) }
        })
        .collect()
}

/// The Fig. 8 input-size sweep: `B in {4, 16, 32}` at `n = 128`, plus the
/// token-count-matched `n = 512, B = 4` point.
#[must_use]
pub fn figure8_sweep(gpu: &GpuModel) -> Vec<SweepPoint> {
    let mut out: Vec<SweepPoint> = [4usize, 16, 32]
        .into_iter()
        .map(|b| {
            let nc = NamedConfig::phase_batch(1, b, false);
            SweepPoint { label: format!("n128-B{b}"), profile: nc.simulate(gpu) }
        })
        .collect();
    let nc = NamedConfig::phase_batch(2, 4, false);
    out.push(SweepPoint { label: "n512-B4".into(), profile: nc.simulate(gpu) });
    out
}

/// The Fig. 9 layer-size sweep: C1 (half), C2 (BERT-Large), C3 (double,
/// Megatron-like), all at Phase-1 inputs.
#[must_use]
pub fn figure9_sweep(gpu: &GpuModel) -> Vec<SweepPoint> {
    [(LayerSizeConfig::C1, "C1"), (LayerSizeConfig::C2, "C2"), (LayerSizeConfig::C3, "C3")]
        .into_iter()
        .map(|(which, label)| SweepPoint {
            label: label.into(),
            profile: simulate_iteration(&BertConfig::figure9(which), &GraphOptions::default(), gpu),
        })
        .collect()
}

/// Simulate every model in the §2.3 zoo, demonstrating that the paper's
/// takeaways transfer to BERT-structured models at other sizes.
#[must_use]
pub fn model_zoo_sweep(gpu: &GpuModel) -> Vec<SweepPoint> {
    bertscope_model::model_zoo()
        .into_iter()
        .map(|e| SweepPoint {
            label: e.name.to_owned(),
            profile: simulate_iteration(&e.config, &GraphOptions::default(), gpu),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, Group};

    #[test]
    fn fig3_lamb_share_grows_as_tokens_shrink() {
        // Paper Takeaway 1: LAMB grows from ~7-10% (B32) to ~25% (B4).
        let gpu = GpuModel::mi100();
        let pts = figure3_sweep(&gpu);
        let lamb = |label: &str| {
            pts.iter().find(|p| p.label == label).unwrap().profile.group_fraction(Group::Lamb)
        };
        let b32 = lamb("Ph1-B32-FP32");
        let b4 = lamb("Ph1-B4-FP32");
        assert!((0.04..0.12).contains(&b32), "Ph1-B32 LAMB {b32}");
        assert!((0.15..0.30).contains(&b4), "Ph1-B4 LAMB {b4}");
        assert!(b4 > 2.0 * b32);
        // Takeaway 2: MP increases LAMB's share.
        assert!(lamb("Ph1-B32-FP16") > 1.5 * b32);
    }

    #[test]
    fn fig3_transformer_dominates_everywhere() {
        // Paper Obs. 1: 68-85% across configurations (we allow a slightly
        // wider modelled band).
        let gpu = GpuModel::mi100();
        for p in figure3_sweep(&gpu) {
            let f = p.profile.group_fraction(Group::Transformer);
            assert!((0.6..0.93).contains(&f), "{}: transformer {f}", p.label);
            assert!(p.profile.group_fraction(Group::Embedding) < 0.02, "{}", p.label);
            let out = p.profile.group_fraction(Group::Output);
            assert!((0.01..0.10).contains(&out), "{}: output {out}", p.label);
        }
    }

    #[test]
    fn fig8_attention_share_jumps_with_sequence_length() {
        // Paper Takeaway 10: n=512 (vs n=128 at the same token count)
        // raises attention ops from ~7% to ~17%, B-GEMMs from ~3% to ~8%.
        let gpu = GpuModel::mi100();
        let pts = figure8_sweep(&gpu);
        let attn_ops = |label: &str| {
            let p = &pts.iter().find(|p| p.label == label).unwrap().profile;
            p.category_fraction(Category::AttnBgemm)
                + p.category_fraction(Category::ScaleMaskSoftmaxDropout)
        };
        let short = attn_ops("n128-B16");
        let long = attn_ops("n512-B4");
        assert!(long > 1.8 * short, "attention share: n128 {short} vs n512 {long}");
        let bgemm_long = pts
            .iter()
            .find(|p| p.label == "n512-B4")
            .unwrap()
            .profile
            .category_fraction(Category::AttnBgemm);
        assert!((0.05..0.14).contains(&bgemm_long), "B-GEMM share at n512 {bgemm_long}");
    }

    #[test]
    fn fig8_breakdown_is_stable_across_batch_at_fixed_n() {
        // Paper Obs. 3: varying B at fixed n leaves the Transformer-layer
        // breakdown largely unchanged (all layers scale linearly with B).
        let gpu = GpuModel::mi100();
        let pts = figure8_sweep(&gpu);
        let frac = |label: &str, cat: Category| {
            let p = &pts.iter().find(|p| p.label == label).unwrap().profile;
            // Normalize within the transformer group so the LAMB shift does
            // not mask the comparison.
            let t = p.group_fraction(Group::Transformer);
            p.category_fraction(cat) / t
        };
        for cat in [Category::FcGemm, Category::AttnLinear] {
            let b16 = frac("n128-B16", cat);
            let b32 = frac("n128-B32", cat);
            assert!((b16 - b32).abs() / b32 < 0.2, "{cat}: B16 {b16} vs B32 {b32}");
        }
    }

    #[test]
    fn fig8_iteration_time_superlinear_in_n_linear_in_b() {
        // Paper §3.3.1: iteration time increases super-linearly with n but
        // roughly linearly with B.
        let gpu = GpuModel::mi100();
        let t = |ph: u8, b: usize| NamedConfig::phase_batch(ph, b, false).simulate(&gpu).total_us();
        let b16 = t(1, 16);
        let b32 = t(1, 32);
        assert!(b32 / b16 < 2.1, "B scaling is ~linear");
        // n512-B4 has the same token count as n128-B16 but costs more.
        let n512 = t(2, 4);
        assert!(n512 > 1.15 * b16, "n scaling is super-linear: {n512} vs {b16}");
    }

    #[test]
    fn fig9_gemm_and_lamb_shares_grow_with_layer_width() {
        // Paper Takeaway 11 + Fig. 9: C3's GEMM and LAMB proportions exceed
        // C2's; LAMB reaches ~1/3 for C3... (quadratic parameter scaling).
        let gpu = GpuModel::mi100();
        let pts = figure9_sweep(&gpu);
        let lamb = |l: &str| {
            pts.iter().find(|p| p.label == l).unwrap().profile.group_fraction(Group::Lamb)
        };
        let gemm = |l: &str| pts.iter().find(|p| p.label == l).unwrap().profile.gemm_fraction();
        assert!(lamb("C3") > lamb("C2"), "LAMB share grows with width");
        assert!(lamb("C2") > lamb("C1"));
        assert!(gemm("C3") > gemm("C2"), "GEMM share grows with width");
        assert!(gemm("C2") > gemm("C1"));
    }

    #[test]
    fn zoo_models_obey_the_papers_scaling_takeaways() {
        let gpu = GpuModel::mi100();
        let pts = model_zoo_sweep(&gpu);
        let get = |l: &str| &pts.iter().find(|p| p.label == l).unwrap().profile;
        // Transformer layers dominate every zoo model (Obs. 1 transfers).
        for p in &pts {
            assert!(
                p.profile.group_fraction(Group::Transformer) > 0.6,
                "{}: {}",
                p.label,
                p.profile.group_fraction(Group::Transformer)
            );
        }
        // LAMB share grows with layer width (Takeaway 11): Megatron-3.9B
        // (d=2560) vs BERT-Base (d=768), at comparable token counts.
        assert!(
            get("Megatron-BERT-3.9B").group_fraction(Group::Lamb)
                > get("BERT-Base").group_fraction(Group::Lamb)
        );
        // GPT-2-XL's 1024-token context makes attention ops prominent
        // (Takeaway 10 transfers to decoder-style models).
        let attn = |l: &str| {
            get(l).category_fraction(Category::AttnBgemm)
                + get(l).category_fraction(Category::ScaleMaskSoftmaxDropout)
        };
        assert!(attn("GPT-2-XL") > 2.0 * attn("BERT-Large"));
        // RoBERTa-Large is architecturally BERT-Large: identical profile.
        assert!((get("RoBERTa-Large").total_us() - get("BERT-Large").total_us()).abs() < 1e-6);
    }

    #[test]
    fn fig9_fc_grows_relative_to_attention_with_width() {
        // Paper §3.3.2: FC runtime share increases vs attention as layers
        // widen.
        let gpu = GpuModel::mi100();
        let pts = figure9_sweep(&gpu);
        let ratio = |l: &str| {
            let p = &pts.iter().find(|p| p.label == l).unwrap().profile;
            p.category_fraction(Category::FcGemm)
                / (p.category_fraction(Category::AttnBgemm)
                    + p.category_fraction(Category::ScaleMaskSoftmaxDropout))
        };
        assert!(ratio("C3") > ratio("C2"));
        assert!(ratio("C2") > ratio("C1"));
    }
}
