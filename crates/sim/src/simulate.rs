//! Top-level single-device simulation entry points.

use crate::profile::IterationProfile;
use bertscope_device::GpuModel;
use bertscope_model::{build_iteration, BertConfig, GraphOptions};

/// Simulate one training iteration of `cfg` with `opts` on `gpu`.
///
/// This is the suite's equivalent of the paper's "profile a single training
/// iteration after warm-up" (§3.1.4): BERT iterations are homogeneous
/// within a phase, so one iteration characterizes the phase.
#[must_use]
pub fn simulate_iteration(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
) -> IterationProfile {
    IterationProfile::from_ops(gpu, build_iteration(cfg, opts))
}

/// Simulate one fine-tuning iteration (paper §7): same Transformer stack
/// and optimizer, SQuAD-style span head instead of the pre-training heads.
#[must_use]
pub fn simulate_finetune(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
) -> IterationProfile {
    IterationProfile::from_ops(gpu, bertscope_model::build_finetune(cfg, opts))
}

/// A labelled experiment configuration in the paper's naming scheme,
/// e.g. `Ph1-B32-FP32`.
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// The paper-style label.
    pub label: String,
    /// Model + input configuration.
    pub config: BertConfig,
    /// Graph options (precision, optimizer, ...).
    pub options: GraphOptions,
}

impl NamedConfig {
    /// Construct a `Ph{1,2}-B{b}-FP{32,16}` configuration of BERT-Large,
    /// matching Fig. 3's x-axis labels.
    #[must_use]
    pub fn phase_batch(phase: u8, batch: usize, mixed: bool) -> Self {
        use bertscope_model::Precision;
        let base = BertConfig::bert_large();
        let config = if phase == 2 { base.phase2(batch) } else { base.phase1(batch) };
        let precision = if mixed { Precision::Mixed } else { Precision::Fp32 };
        let bits = if mixed { 16 } else { 32 };
        NamedConfig {
            label: format!("Ph{}-B{batch}-FP{bits}", if phase == 2 { 2 } else { 1 }),
            config,
            options: GraphOptions { precision, ..GraphOptions::default() },
        }
    }

    /// Simulate this configuration on `gpu`.
    #[must_use]
    pub fn simulate(&self, gpu: &GpuModel) -> IterationProfile {
        simulate_iteration(&self.config, &self.options, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_model::Precision;
    use bertscope_tensor::{Category, Group};

    #[test]
    fn bert_large_iteration_is_hundreds_of_milliseconds() {
        // The paper's testbed runs Ph1-B32-FP32 iterations in the
        // hundreds-of-ms range on an MI100; the model should land in the
        // same regime (order of magnitude, not exact).
        let p = simulate_iteration(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        let ms = p.total_us() / 1000.0;
        assert!((100.0..2000.0).contains(&ms), "iteration time {ms} ms");
    }

    #[test]
    fn transformer_layers_dominate_runtime() {
        // Paper Obs. 1: 68-85% in Transformer layers.
        let p = simulate_iteration(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        let f = p.group_fraction(Group::Transformer);
        assert!((0.6..0.9).contains(&f), "transformer fraction {f}");
        // Embedding is negligible; output small.
        assert!(p.group_fraction(Group::Embedding) < 0.02);
        assert!(p.group_fraction(Group::Output) < 0.12);
    }

    #[test]
    fn named_configs_have_paper_labels() {
        let c = NamedConfig::phase_batch(1, 32, false);
        assert_eq!(c.label, "Ph1-B32-FP32");
        assert_eq!(c.config.seq_len, 128);
        let c = NamedConfig::phase_batch(2, 4, true);
        assert_eq!(c.label, "Ph2-B4-FP16");
        assert_eq!(c.config.seq_len, 512);
        assert_eq!(c.options.precision, Precision::Mixed);
    }

    #[test]
    fn finetuning_profile_keeps_transformer_dominance_with_tiny_output() {
        // Paper §7: fine-tuning's output layer is negligible; Transformer
        // layers still dominate and LAMB keeps its share.
        let gpu = GpuModel::mi100();
        let ft = simulate_finetune(&BertConfig::bert_large(), &GraphOptions::default(), &gpu);
        assert!(ft.group_fraction(Group::Transformer) > 0.85);
        assert!(
            ft.group_fraction(Group::Output) < 0.01,
            "output {}",
            ft.group_fraction(Group::Output)
        );
        assert!(ft.group_fraction(Group::Lamb) > 0.05);
        // The most expensive kernels are Transformer GEMMs and the big
        // LAMB/grad-norm sweeps — never the task head.
        for t in ft.top_kernels(5) {
            let acceptable = t.op.is_gemm() || t.op.phase == bertscope_tensor::Phase::Update;
            assert!(acceptable, "{}", t.op.name);
            assert_ne!(t.op.category, Category::Output, "{}", t.op.name);
        }
    }

    #[test]
    fn mixed_precision_iteration_is_faster() {
        let gpu = GpuModel::mi100();
        let fp32 = NamedConfig::phase_batch(1, 32, false).simulate(&gpu);
        let fp16 = NamedConfig::phase_batch(1, 32, true).simulate(&gpu);
        let speedup = fp32.total_us() / fp16.total_us();
        assert!(speedup > 1.4, "MP speedup {speedup}");
    }
}
