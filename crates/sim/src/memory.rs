//! Device-memory footprint model — the capacity pressure that motivates
//! activation checkpointing (paper §4: it "reduces a model's memory
//! capacity requirements and enables training a large model or a model with
//! larger B on a single device").
//!
//! The activation inventory mirrors what the executable substrate actually
//! saves for the backward pass (see `bertscope_train::layer`): per layer the
//! residual inputs, LayerNorm outputs, per-head Q/K/V, pre- and post-dropout
//! attention probabilities, the FC intermediate pair, and the dropout masks
//! (one byte per element).

use bertscope_model::{parameter_count, BertConfig, GraphOptions, Precision};

/// A device-memory budget breakdown, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Model weights at the training precision.
    pub weights: u64,
    /// Gradients at the training precision.
    pub gradients: u64,
    /// Optimizer state: LAMB momentum + velocity in f32, plus f32 master
    /// weights under mixed precision.
    pub optimizer_state: u64,
    /// Activations (and dropout masks) saved for the backward pass.
    pub activations: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.weights + self.gradients + self.optimizer_state + self.activations
    }

    /// Total in GiB.
    #[must_use]
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

/// Saved-activation bytes of one Transformer layer.
fn layer_activation_bytes(cfg: &BertConfig, es: u64) -> u64 {
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let scores = (cfg.batch * cfg.heads * cfg.seq_len * cfg.seq_len) as u64;
    let inter = t * cfg.d_ff as u64;
    // Attention: x (kept by the attention state), q/k/v per-head, two score
    // tensors, the merged context.
    let attention = (t * d) * 5 + scores * 2 + t * d;
    // Layer: res1, ln1_out, fc1_out, gelu_out, res2 (+ LN statistics,
    // negligible).
    let layer = (t * d) * 3 + inter * 2;
    // Dropout masks: scores + two hidden-state masks, one byte per element.
    let masks = scores + 2 * t * d;
    (attention + layer) * es + masks
}

/// Estimate the training-time memory footprint of one device.
#[must_use]
pub fn footprint(cfg: &BertConfig, opts: &GraphOptions) -> MemoryFootprint {
    let params = parameter_count(cfg);
    let es = opts.precision.activation_dtype().size_bytes();
    let weights = params * es;
    let gradients = params * es;
    // LAMB m + v are always f32; mixed precision adds f32 master weights.
    let mut optimizer_state = params * 8;
    if opts.precision != Precision::Fp32 {
        optimizer_state += params * 4;
    }
    let per_layer = layer_activation_bytes(cfg, es);
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let activations = if opts.checkpoint {
        // Only segment-boundary inputs survive the forward pass; during the
        // backward pass one segment's activations are live at a time.
        let segs = bertscope_model::checkpoint_segments(cfg.layers) as u64;
        let per_seg = (cfg.layers as u64).div_ceil(segs);
        segs * t * d * es + per_seg * per_layer
    } else {
        cfg.layers as u64 * per_layer
    };
    // Embedding sums + output-head logits are additionally live.
    let logits = t * cfg.vocab as u64 * es;
    MemoryFootprint {
        weights,
        gradients,
        optimizer_state,
        activations: activations + t * d * es + logits,
    }
}

/// Ratio of a measured byte count to the model's prediction
/// (`measured / modeled`). A ratio near 1.0 means the analytical footprint
/// matches the allocator's live-byte accounting; the memory-profile
/// cross-validation tests assert it stays inside a documented band.
///
/// # Panics
///
/// Panics when `modeled` is zero (the model never predicts a zero footprint
/// for a valid configuration).
#[must_use]
pub fn measured_to_model_ratio(measured: u64, modeled: u64) -> f64 {
    assert!(modeled > 0, "modeled footprint must be non-zero");
    measured as f64 / modeled as f64
}

/// The largest mini-batch that fits in `capacity_bytes` for this
/// configuration, holding `n` fixed (0 when even B=1 does not fit).
#[must_use]
pub fn max_batch(cfg: &BertConfig, opts: &GraphOptions, capacity_bytes: u64) -> usize {
    let mut best = 0;
    let mut b = 1usize;
    while b <= 4096 {
        let candidate = BertConfig { batch: b, ..*cfg };
        if footprint(&candidate, opts).total() <= capacity_bytes {
            best = b;
            b *= 2;
        } else {
            break;
        }
    }
    // Refine linearly between best and 2*best.
    let mut b = best + 1;
    while best > 0 && b < best * 2 {
        let candidate = BertConfig { batch: b, ..*cfg };
        if footprint(&candidate, opts).total() <= capacity_bytes {
            best = b;
            b += 1;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB32: u64 = 32 * (1 << 30); // the paper's MI100 has 32 GB HBM2

    #[test]
    fn bert_large_b32_fits_in_32_gib() {
        // The paper trains Ph1-B32 on a single 32 GB MI100.
        let f = footprint(&BertConfig::bert_large(), &GraphOptions::default());
        assert!(f.total() < GIB32, "footprint {:.1} GiB", f.total_gib());
        assert!(f.total_gib() > 4.0, "sanity: multi-GiB model state");
    }

    #[test]
    fn optimizer_state_is_8_bytes_per_param_fp32() {
        let cfg = BertConfig::bert_large();
        let f = footprint(&cfg, &GraphOptions::default());
        assert_eq!(f.optimizer_state, parameter_count(&cfg) * 8);
        // Mixed precision adds master weights.
        let fmp = footprint(
            &cfg,
            &GraphOptions { precision: Precision::Mixed, ..GraphOptions::default() },
        );
        assert_eq!(fmp.optimizer_state, parameter_count(&cfg) * 12);
        // But halves weights, gradients and activations.
        assert_eq!(fmp.weights * 2, f.weights);
        assert!(fmp.activations < f.activations);
    }

    #[test]
    fn checkpointing_cuts_activation_memory_severalfold() {
        // Paper §4's purpose.
        let cfg = BertConfig::bert_large();
        let plain = footprint(&cfg, &GraphOptions::default());
        let ck = footprint(&cfg, &GraphOptions { checkpoint: true, ..GraphOptions::default() });
        let ratio = plain.activations as f64 / ck.activations as f64;
        assert!(ratio > 3.0, "activation memory ratio {ratio}");
        assert!(ck.total() < plain.total());
        // Non-activation state is untouched.
        assert_eq!(plain.weights, ck.weights);
        assert_eq!(plain.optimizer_state, ck.optimizer_state);
    }

    #[test]
    fn checkpointing_enables_a_larger_batch() {
        // Paper §4: "enables training ... a model with larger B on a single
        // device".
        let cfg = BertConfig::bert_large();
        let plain = max_batch(&cfg, &GraphOptions::default(), GIB32);
        let ck =
            max_batch(&cfg, &GraphOptions { checkpoint: true, ..GraphOptions::default() }, GIB32);
        assert!(plain >= 32, "B=32 must fit without checkpointing, got {plain}");
        assert!(ck > plain, "checkpointing raises max batch: {ck} vs {plain}");
    }

    #[test]
    fn activations_scale_linearly_with_batch() {
        let a = |b: usize| {
            footprint(&BertConfig::bert_large().phase1(b), &GraphOptions::default()).activations
        };
        let a8 = a(8);
        let a32 = a(32);
        let ratio = a32 as f64 / a8 as f64;
        assert!((ratio - 4.0).abs() < 0.05, "activation scaling {ratio}");
    }

    #[test]
    fn phase2_sequences_are_much_hungrier() {
        // n=512 quadruples token-linear activations and 16x the score
        // tensors: a much smaller max batch (why the paper's Ph2 uses B=4).
        let cfg = BertConfig::bert_large();
        let b1 = max_batch(&cfg.phase1(1), &GraphOptions::default(), GIB32);
        let b2 = max_batch(&cfg.phase2(1), &GraphOptions::default(), GIB32);
        assert!(b2 < b1 / 3, "phase-2 max batch {b2} vs phase-1 {b1}");
        assert!(b2 >= 4, "the paper's Ph2-B4 configuration must fit, got {b2}");
    }

    #[test]
    fn tiny_capacity_fits_nothing() {
        let cfg = BertConfig::bert_large();
        assert_eq!(max_batch(&cfg, &GraphOptions::default(), 1 << 20), 0);
    }

    #[test]
    fn measured_to_model_ratio_is_measured_over_modeled() {
        assert!((measured_to_model_ratio(100, 100) - 1.0).abs() < 1e-12);
        assert!((measured_to_model_ratio(150, 100) - 1.5).abs() < 1e-12);
        assert!((measured_to_model_ratio(50, 100) - 0.5).abs() < 1e-12);
    }
}
