//! Execution simulator for the bertscope characterization suite.
//!
//! Times the analytic operator graphs of `bertscope-model` on the device
//! models of `bertscope-device` and reproduces the evaluation artifacts of
//! *"Demystifying BERT"* (IISWC 2022):
//!
//! * [`simulate_iteration`] / [`IterationProfile`] — the per-kernel timed
//!   profile, with the category/group breakdowns of Figs. 3-4;
//! * [`hierarchy`] — the hierarchical breakdown of Fig. 4;
//! * [`intensity`] — the arithmetic-intensity and bandwidth-demand datasets
//!   of Figs. 6-7;
//! * [`sweep`] — the phase/batch/precision matrix (Fig. 3), input-size
//!   sweep (Fig. 8) and layer-size sweep (Fig. 9);
//! * [`studies`] — activation checkpointing (§4), kernel fusion (Fig. 12)
//!   and near-memory compute (§6.2.1).
//!
//! # Examples
//!
//! ```
//! use bertscope_sim::simulate_iteration;
//! use bertscope_model::{BertConfig, GraphOptions};
//! use bertscope_device::GpuModel;
//! use bertscope_tensor::Group;
//!
//! let profile = simulate_iteration(
//!     &BertConfig::bert_large(),
//!     &GraphOptions::default(),
//!     &GpuModel::mi100(),
//! );
//! // Paper Obs. 1: Transformer layers dominate.
//! assert!(profile.group_fraction(Group::Transformer) > 0.6);
//! ```

pub mod ablation;
pub mod heterogeneity;
pub mod hierarchy;
pub mod inference;
pub mod intensity;
pub mod memory;
pub mod profile;
pub mod roofline;
pub mod simulate;
pub mod studies;
pub mod sweep;

pub use ablation::{ablation_study, stream_is_well_formed, AblationRow};
pub use heterogeneity::{accumulation_sweep, bucketing_study, AccumulationPoint, BucketingStudy};
pub use hierarchy::{hierarchical_breakdown, HierarchicalBreakdown, Segment};
pub use inference::{serving_sweep, simulate_inference, ServingPoint};
pub use intensity::{bandwidth_rows, gemm_intensities, BandwidthRow, GemmIntensityRow};
pub use memory::{footprint, max_batch, measured_to_model_ratio, MemoryFootprint};
pub use profile::{IterationProfile, TimedOp};
pub use roofline::{classify, classify_categories, extrapolate, ridge_point, Boundedness};
pub use simulate::{simulate_finetune, simulate_iteration, NamedConfig};
pub use studies::{
    checkpoint_study, figure12a_study, figure12b_study, nmc_study, precision_sweep,
    CheckpointStudy, FusionStudyRow, NmcStudy, PrecisionPoint, QkvFusionPoint,
};
pub use sweep::{figure3_sweep, figure8_sweep, figure9_sweep, model_zoo_sweep, SweepPoint};
