//! Inference-mode analysis (paper §7): forward-only iterations, the
//! latency/throughput trade across batch sizes, and the B=1 claim — unlike
//! RNNs, a Transformer at batch one still executes matrix-matrix work.

use crate::profile::IterationProfile;
use bertscope_device::GpuModel;
use bertscope_model::{build_inference, BertConfig, GraphOptions};

/// Simulate one forward-only inference pass.
#[must_use]
pub fn simulate_inference(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
) -> IterationProfile {
    IterationProfile::from_ops(gpu, build_inference(cfg, opts))
}

/// One point of the batch-size latency/throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServingPoint {
    /// Batch size.
    pub batch: usize,
    /// Latency of one inference pass, microseconds.
    pub latency_us: f64,
    /// Throughput in sequences per second.
    pub sequences_per_s: f64,
}

/// Sweep inference batch sizes, reporting the classic latency/throughput
/// trade (batching amortizes weight reads and fills the device).
#[must_use]
pub fn serving_sweep(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    batches: &[usize],
) -> Vec<ServingPoint> {
    batches
        .iter()
        .map(|&b| {
            let c = BertConfig { batch: b, ..*cfg };
            let p = simulate_inference(&c, opts, gpu);
            ServingPoint {
                batch: b,
                latency_us: p.total_us(),
                sequences_per_s: b as f64 / (p.total_us() * 1e-6),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_model::Precision;
    use bertscope_tensor::{Group, OpKind, Phase};

    #[test]
    fn inference_profile_has_no_backward_or_update_time() {
        let p = simulate_inference(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        assert_eq!(p.group_fraction(Group::Lamb), 0.0);
        assert!(p.ops().iter().all(|t| t.op.phase == Phase::Forward));
        // Roughly one third of the training iteration (fwd ~ bwd/2, no LAMB).
        let train = crate::simulate::simulate_iteration(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        let ratio = train.total_us() / p.total_us();
        assert!((2.5..4.5).contains(&ratio), "train/inference ratio {ratio}");
    }

    #[test]
    fn batch_one_inference_is_still_matrix_matrix() {
        // Paper §8: "Transformer layers process all the tokens of the input
        // sequence in parallel. This leads to matrix, rather than vector,
        // operations even if mini-batch is one."
        let cfg = BertConfig::bert_large().phase1(1);
        let ops = build_inference(&cfg, &GraphOptions::default());
        // Transformer-layer GEMMs (the NSP classifier head operates per
        // sequence and is legitimately a matrix-vector at B=1).
        for o in ops.iter().filter(|o| o.kind == OpKind::Gemm && o.layer.is_some()) {
            let g = o.gemm.expect("gemm spec");
            assert!(g.m > 1 && g.n > 1 && g.k > 1, "{}: {g}", o.name);
            assert!(g.n >= cfg.seq_len, "N carries the full token count: {}", o.name);
        }
    }

    #[test]
    fn batching_trades_latency_for_throughput() {
        let gpu = GpuModel::mi100();
        let pts = serving_sweep(
            &BertConfig::bert_large(),
            &GraphOptions { precision: Precision::Mixed, ..GraphOptions::default() },
            &gpu,
            &[1, 4, 16, 64],
        );
        // Latency grows with batch; throughput grows (sub-linearly at the
        // top as the device saturates).
        for w in pts.windows(2) {
            assert!(w[1].latency_us > w[0].latency_us);
            assert!(w[1].sequences_per_s > w[0].sequences_per_s);
        }
        // Small batches under-utilize: B=4 throughput is far more than 4x...
        // i.e. per-sequence cost drops sharply from B=1 to B=16.
        let per_seq_1 = pts[0].latency_us;
        let per_seq_16 = pts[2].latency_us / 16.0;
        assert!(per_seq_1 > 3.0 * per_seq_16, "B=1 per-seq {per_seq_1} vs B=16 {per_seq_16}");
    }

    #[test]
    fn transformer_dominates_inference_too() {
        // Paper §7: Obs. 1 applies to inference (measured on CPUs in [23]).
        let p = simulate_inference(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        assert!(p.group_fraction(Group::Transformer) > 0.75);
    }
}
