//! What-if studies: activation checkpointing (paper §4), kernel fusion
//! (§6.1, Fig. 12) and near-memory compute (§6.2.1).

use crate::profile::IterationProfile;
use crate::simulate::simulate_iteration;
use bertscope_device::{GpuModel, NmcModel};
use bertscope_model::{
    adam_fusion_case, build_iteration, layernorm_fusion_case, optimizer_ops, BertConfig,
    FusionCase, GraphOptions,
};
use bertscope_tensor::{DType, Group};

/// Result of the activation-checkpointing study (paper §4).
#[derive(Debug, Clone)]
pub struct CheckpointStudy {
    /// Kernel-count increase factor minus one (paper: ~0.33).
    pub kernel_increase: f64,
    /// Runtime increase factor minus one (paper: ~0.27).
    pub runtime_increase: f64,
    /// LAMB share without checkpointing.
    pub lamb_share_base: f64,
    /// LAMB share with checkpointing (drops, since LAMB is unaffected).
    pub lamb_share_checkpointed: f64,
}

/// Run the checkpointing study for a configuration.
#[must_use]
pub fn checkpoint_study(cfg: &BertConfig, opts: &GraphOptions, gpu: &GpuModel) -> CheckpointStudy {
    let base = simulate_iteration(cfg, opts, gpu);
    let ck = simulate_iteration(cfg, &GraphOptions { checkpoint: true, ..*opts }, gpu);
    CheckpointStudy {
        kernel_increase: ck.kernel_count() as f64 / base.kernel_count() as f64 - 1.0,
        runtime_increase: ck.total_us() / base.total_us() - 1.0,
        lamb_share_base: base.group_fraction(Group::Lamb),
        lamb_share_checkpointed: ck.group_fraction(Group::Lamb),
    }
}

/// Timed outcome of one fusion case (one bar triple of paper Fig. 12a).
#[derive(Debug, Clone)]
pub struct FusionStudyRow {
    /// Case name (`"layernorm"`, `"adam"`).
    pub name: String,
    /// Unfused/fused kernel-count ratio.
    pub kernel_ratio: f64,
    /// Unfused/fused memory-traffic ratio.
    pub bytes_ratio: f64,
    /// Unfused/fused modelled-runtime ratio.
    pub runtime_ratio: f64,
}

fn time_case(gpu: &GpuModel, case: &FusionCase) -> FusionStudyRow {
    let unfused: f64 = case.unfused.iter().map(|o| gpu.op_time_us(o)).sum();
    let fused: f64 = case.fused.iter().map(|o| gpu.op_time_us(o)).sum();
    FusionStudyRow {
        name: case.name.clone(),
        kernel_ratio: case.kernel_ratio(),
        bytes_ratio: case.bytes_ratio(),
        runtime_ratio: unfused / fused,
    }
}

/// The Fig. 12a study: LayerNorm and Adam fusion on BERT-Large shapes.
#[must_use]
pub fn figure12a_study(cfg: &BertConfig, gpu: &GpuModel) -> Vec<FusionStudyRow> {
    let ln = layernorm_fusion_case(cfg.tokens(), cfg.d_model, DType::F32);
    let adam = adam_fusion_case(cfg);
    vec![time_case(gpu, &ln), time_case(gpu, &adam)]
}

/// One point of the Fig. 12b study: fused vs serial Q/K/V projection GEMMs
/// at a given token count.
#[derive(Debug, Clone)]
pub struct QkvFusionPoint {
    /// Tokens per iteration (`n * B`).
    pub tokens: usize,
    /// Speedup of the fused forward GEMM over three serial GEMMs.
    pub fwd_speedup: f64,
    /// Speedup of the fused backward (activation + weight gradient) GEMMs.
    pub bwd_speedup: f64,
}

/// The Fig. 12b study: fused-QKV speedup across a token-count sweep
/// (paper: up to ~62% improvement, larger for smaller inputs).
#[must_use]
pub fn figure12b_study(gpu: &GpuModel, batches: &[usize]) -> Vec<QkvFusionPoint> {
    use bertscope_model::{fused_qkv_spec, gemm_spec, GemmPass, GemmSite};
    use bertscope_tensor::{Category, OpKind, OpRecord, Phase};
    let to_op = |spec: bertscope_tensor::GemmSpec, phase: Phase| OpRecord {
        access: bertscope_tensor::AccessSet::default(),
        name: "qkv".into(),
        kind: OpKind::Gemm,
        category: Category::AttnLinear,
        phase,
        layer: None,
        gemm: Some(spec),
        flops: spec.flops(),
        bytes_read: spec.bytes_read(DType::F32),
        bytes_written: spec.bytes_written(DType::F32),
        dtype: DType::F32,
    };
    batches
        .iter()
        .map(|&b| {
            let cfg = BertConfig::bert_large().phase1(b);
            let serial_fwd = 3.0
                * gpu.op_time_us(&to_op(
                    gemm_spec(&cfg, GemmSite::Linear, GemmPass::Forward),
                    Phase::Forward,
                ));
            let fused_fwd =
                gpu.op_time_us(&to_op(fused_qkv_spec(&cfg, GemmPass::Forward), Phase::Forward));
            let serial_bwd: f64 = [GemmPass::BwdGradActivation, GemmPass::BwdGradWeight]
                .iter()
                .map(|&p| {
                    3.0 * gpu
                        .op_time_us(&to_op(gemm_spec(&cfg, GemmSite::Linear, p), Phase::Backward))
                })
                .sum();
            let fused_bwd: f64 = [GemmPass::BwdGradActivation, GemmPass::BwdGradWeight]
                .iter()
                .map(|&p| gpu.op_time_us(&to_op(fused_qkv_spec(&cfg, p), Phase::Backward)))
                .sum();
            QkvFusionPoint {
                tokens: cfg.tokens(),
                fwd_speedup: serial_fwd / fused_fwd,
                bwd_speedup: serial_bwd / fused_bwd,
            }
        })
        .collect()
}

/// One row of the precision sweep: a precision mode with the shares that
/// shift as arithmetic gets cheaper.
#[derive(Debug, Clone)]
pub struct PrecisionPoint {
    /// Mode label (`"FP32"`, `"FP16"`, `"BF16"`).
    pub label: String,
    /// Iteration time in microseconds.
    pub total_us: f64,
    /// GEMM share of runtime.
    pub gemm_fraction: f64,
    /// LAMB share of runtime.
    pub lamb_fraction: f64,
}

/// Sweep the precision modes for one configuration — the paper's §3.2.1
/// projection that reduced precision keeps shrinking GEMM time while the
/// FP32 optimizer becomes ever more dominant.
#[must_use]
pub fn precision_sweep(cfg: &BertConfig, gpu: &GpuModel) -> Vec<PrecisionPoint> {
    use bertscope_model::Precision;
    [("FP32", Precision::Fp32), ("FP16", Precision::Mixed), ("BF16", Precision::MixedBf16)]
        .into_iter()
        .map(|(label, precision)| {
            let p = simulate_iteration(
                cfg,
                &GraphOptions { precision, ..GraphOptions::default() },
                gpu,
            );
            PrecisionPoint {
                label: label.into(),
                total_us: p.total_us(),
                gemm_fraction: p.gemm_fraction(),
                lamb_fraction: p.group_fraction(Group::Lamb),
            }
        })
        .collect()
}

/// Result of the near-memory-compute study (paper §6.2.1).
#[derive(Debug, Clone)]
pub struct NmcStudy {
    /// LAMB speedup of NMC execution over the paper's optimistic GPU model
    /// (paper: ~3.8x).
    pub lamb_speedup_vs_optimistic_gpu: f64,
    /// End-to-end iteration speedup from offloading LAMB to NMC
    /// (paper: 5-22% across configurations).
    pub end_to_end_improvement: f64,
}

/// Run the NMC study: offload every LAMB op to the in-memory ALUs, leave
/// everything else on the GPU.
#[must_use]
pub fn nmc_study(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    nmc: &NmcModel,
) -> NmcStudy {
    let all_ops = build_iteration(cfg, opts);
    let lamb_ops = optimizer_ops(cfg, opts);
    debug_assert!(lamb_ops.iter().all(NmcModel::can_offload));

    let base = IterationProfile::from_ops(gpu, all_ops.clone());
    let base_total = base.total_us();
    let gpu_lamb: f64 = lamb_ops.iter().map(|o| gpu.op_time_us(o)).sum();
    let nmc_lamb = nmc.total_time_us(&lamb_ops);
    let optimistic_gpu = NmcModel::optimistic_gpu_time_us(gpu, &lamb_ops);

    let new_total = base_total - gpu_lamb + nmc_lamb;
    NmcStudy {
        lamb_speedup_vs_optimistic_gpu: optimistic_gpu / nmc_lamb,
        end_to_end_improvement: base_total / new_total - 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_model::Precision;

    #[test]
    fn checkpointing_matches_paper_section4() {
        // Paper: ~33% more kernels, ~27% more runtime, LAMB share drops.
        let s = checkpoint_study(
            &BertConfig::bert_large(),
            &GraphOptions::default(),
            &GpuModel::mi100(),
        );
        assert!((0.25..0.45).contains(&s.kernel_increase), "kernels +{}", s.kernel_increase);
        assert!((0.18..0.40).contains(&s.runtime_increase), "runtime +{}", s.runtime_increase);
        assert!(s.runtime_increase < s.kernel_increase, "recompute is cheaper than average work");
        assert!(s.lamb_share_checkpointed < s.lamb_share_base);
    }

    #[test]
    fn fig12a_layernorm_fusion_ratios_track_each_other() {
        // Paper: for LayerNorm, runtime and traffic scale with kernel count
        // (all ~6-8x).
        let rows = figure12a_study(&BertConfig::bert_large(), &GpuModel::mi100());
        let ln = rows.iter().find(|r| r.name == "layernorm").unwrap();
        assert!((5.0..9.0).contains(&ln.kernel_ratio), "ln kernels {}", ln.kernel_ratio);
        assert!((5.0..9.0).contains(&ln.bytes_ratio), "ln bytes {}", ln.bytes_ratio);
        assert!((4.0..10.0).contains(&ln.runtime_ratio), "ln runtime {}", ln.runtime_ratio);
    }

    #[test]
    fn fig12a_adam_kernel_ratio_disproportionate_to_runtime() {
        // Paper: Adam kernel count drops ~250x but runtime/traffic only
        // ~6-8x (little cross-layer reuse).
        let rows = figure12a_study(&BertConfig::bert_large(), &GpuModel::mi100());
        let adam = rows.iter().find(|r| r.name == "adam").unwrap();
        assert!(adam.kernel_ratio > 150.0, "adam kernels {}", adam.kernel_ratio);
        assert!(adam.bytes_ratio < 6.0, "adam bytes {}", adam.bytes_ratio);
        assert!(
            adam.kernel_ratio > 10.0 * adam.runtime_ratio,
            "kernel ratio {} vs runtime ratio {}",
            adam.kernel_ratio,
            adam.runtime_ratio
        );
        // Runtime still improves meaningfully (launch overhead + traffic).
        assert!(adam.runtime_ratio > 2.0);
    }

    #[test]
    fn fig12b_fusion_helps_more_for_small_inputs() {
        // Paper: up to ~62% speedup, larger when token count is small.
        let gpu = GpuModel::mi100();
        let pts = figure12b_study(&gpu, &[2, 8, 32]);
        assert!(pts[0].fwd_speedup > pts[2].fwd_speedup, "small inputs benefit more");
        assert!(pts[0].fwd_speedup > 1.3, "small-input speedup {}", pts[0].fwd_speedup);
        for p in &pts {
            assert!(p.fwd_speedup > 1.0 && p.bwd_speedup > 1.0, "fusion never hurts");
        }
    }

    #[test]
    fn precision_sweep_shifts_shares_as_the_paper_projects() {
        // Reduced precision shrinks total time and GEMM share while raising
        // the (FP32, constant-cost) LAMB share; bf16 behaves like f16 in the
        // cost model (same bytes).
        let pts = precision_sweep(&BertConfig::bert_large(), &GpuModel::mi100());
        let get = |l: &str| pts.iter().find(|p| p.label == l).unwrap();
        let (f32p, f16p, bf16p) = (get("FP32"), get("FP16"), get("BF16"));
        assert!(f16p.total_us < f32p.total_us);
        assert!(f16p.gemm_fraction < f32p.gemm_fraction);
        assert!(f16p.lamb_fraction > 1.5 * f32p.lamb_fraction);
        assert!((bf16p.total_us - f16p.total_us).abs() / f16p.total_us < 1e-9);
        assert!((bf16p.lamb_fraction - f16p.lamb_fraction).abs() < 1e-9);
    }

    #[test]
    fn nmc_lamb_speedup_and_end_to_end_match_paper() {
        // Paper §6.2.1: 3.8x LAMB speedup; 5-22% end-to-end across configs.
        let gpu = GpuModel::mi100();
        let nmc = NmcModel::hbm2_per_bank();
        let s = nmc_study(&BertConfig::bert_large(), &GraphOptions::default(), &gpu, &nmc);
        assert!(
            (3.0..4.5).contains(&s.lamb_speedup_vs_optimistic_gpu),
            "LAMB speedup {}",
            s.lamb_speedup_vs_optimistic_gpu
        );
        assert!(s.end_to_end_improvement > 0.02, "e2e {}", s.end_to_end_improvement);

        // Small-batch mixed precision (Ph2-B4-FP16, the paper's most
        // LAMB-heavy figure configuration) is the high end of the range.
        let mp_small = nmc_study(
            &BertConfig::bert_large().phase2(4),
            &GraphOptions { precision: Precision::Mixed, ..GraphOptions::default() },
            &gpu,
            &nmc,
        );
        assert!(
            mp_small.end_to_end_improvement > 2.0 * s.end_to_end_improvement,
            "Ph2-B4-MP improvement {} should exceed B32-FP32 {}",
            mp_small.end_to_end_improvement,
            s.end_to_end_improvement
        );
        assert!(
            (0.04..0.40).contains(&mp_small.end_to_end_improvement),
            "e2e range {}",
            mp_small.end_to_end_improvement
        );
    }
}
