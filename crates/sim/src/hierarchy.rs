//! Hierarchical runtime breakdown (paper Fig. 4).
//!
//! Four stacked bars, each refining one segment of the bar above:
//! Overall → Transformer → Attention → FC. Labels report each segment's
//! contribution to *overall* training time, as in the paper.

use crate::profile::IterationProfile;
use bertscope_tensor::{Category, Group};

/// One labelled segment: name and fraction of overall iteration time.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment label as in the paper's Fig. 4 legend.
    pub label: String,
    /// Fraction of overall iteration time (0..=1).
    pub fraction: f64,
}

/// The four bars of Fig. 4.
#[derive(Debug, Clone)]
pub struct HierarchicalBreakdown {
    /// Overall: Transformer / Output / Embedding / LAMB.
    pub overall: Vec<Segment>,
    /// Within Transformer: Attention / FC / DR+RC+LN.
    pub transformer: Vec<Segment>,
    /// Within Attention: Linear / Attn B-GEMM / Scale+Mask+DR+SM.
    pub attention: Vec<Segment>,
    /// Within FC: FC GEMMs+Grad / GeLU.
    pub fc: Vec<Segment>,
}

fn seg(label: &str, fraction: f64) -> Segment {
    Segment { label: label.to_owned(), fraction }
}

/// Compute the hierarchical breakdown of a profile.
#[must_use]
pub fn hierarchical_breakdown(profile: &IterationProfile) -> HierarchicalBreakdown {
    let cat = |c: Category| profile.category_fraction(c);
    let grp = |g: Group| profile.group_fraction(g);
    let attention = vec![
        seg("Linear", cat(Category::AttnLinear)),
        seg("Attn B-GEMM", cat(Category::AttnBgemm)),
        seg("Scale+Mask+DR+SM", cat(Category::ScaleMaskSoftmaxDropout)),
    ];
    let fc = vec![seg("FC GEMMs+Grad", cat(Category::FcGemm)), seg("GeLU", cat(Category::Gelu))];
    let attention_total: f64 = attention.iter().map(|s| s.fraction).sum();
    let fc_total: f64 = fc.iter().map(|s| s.fraction).sum();
    let transformer = vec![
        seg("Attention", attention_total),
        seg("FC", fc_total),
        seg("DR+RC+LN", cat(Category::DropResidualNorm)),
    ];
    let overall = vec![
        seg("Transformer", grp(Group::Transformer)),
        seg("Output", grp(Group::Output)),
        seg("Embedding", grp(Group::Embedding)),
        seg("LAMB", grp(Group::Lamb)),
    ];
    HierarchicalBreakdown { overall, transformer, attention, fc }
}

impl HierarchicalBreakdown {
    /// Look up a segment fraction by bar and label.
    ///
    /// # Panics
    ///
    /// Panics when the label is not present in the bar.
    #[must_use]
    pub fn fraction(&self, bar: &str, label: &str) -> f64 {
        let segs = match bar {
            "overall" => &self.overall,
            "transformer" => &self.transformer,
            "attention" => &self.attention,
            "fc" => &self.fc,
            other => panic!("unknown bar {other}"),
        };
        segs.iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("no segment {label} in {bar}"))
            .fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::NamedConfig;
    use bertscope_device::GpuModel;

    fn breakdown(mixed: bool) -> HierarchicalBreakdown {
        let gpu = GpuModel::mi100();
        hierarchical_breakdown(&NamedConfig::phase_batch(1, 32, mixed).simulate(&gpu))
    }

    #[test]
    fn bars_decompose_consistently() {
        let b = breakdown(false);
        // Transformer bar sums to the overall Transformer segment.
        let t_sum: f64 = b.transformer.iter().map(|s| s.fraction).sum();
        assert!((t_sum - b.fraction("overall", "Transformer")).abs() < 1e-9);
        // Attention and FC bars sum to their transformer segments.
        let a_sum: f64 = b.attention.iter().map(|s| s.fraction).sum();
        assert!((a_sum - b.fraction("transformer", "Attention")).abs() < 1e-9);
        let f_sum: f64 = b.fc.iter().map(|s| s.fraction).sum();
        assert!((f_sum - b.fraction("transformer", "FC")).abs() < 1e-9);
    }

    #[test]
    fn fc_exceeds_attention_due_to_4x_intermediate() {
        // Paper: FC has higher contribution than attention because of the
        // 4x intermediate dimension.
        let b = breakdown(false);
        assert!(b.fraction("transformer", "FC") > b.fraction("transformer", "Attention"));
    }

    #[test]
    fn linear_dominates_the_attention_layer() {
        // Paper: a significant portion (~22% overall in FP32) is the linear
        // projections; actual attention ops are much smaller (~7%).
        let b = breakdown(false);
        let linear = b.fraction("attention", "Linear");
        let attn_ops =
            b.fraction("attention", "Attn B-GEMM") + b.fraction("attention", "Scale+Mask+DR+SM");
        assert!((0.15..0.30).contains(&linear), "linear fraction {linear}");
        assert!((0.04..0.12).contains(&attn_ops), "attention ops fraction {attn_ops}");
        assert!(linear > 2.0 * attn_ops);
    }

    #[test]
    fn mixed_precision_shrinks_gemm_segments_grows_others() {
        // Paper Takeaway 3: linear + FC drop from ~57% to ~42% under MP.
        let f32b = breakdown(false);
        let f16b = breakdown(true);
        let gemmish = |b: &HierarchicalBreakdown| {
            b.fraction("attention", "Linear") + b.fraction("fc", "FC GEMMs+Grad")
        };
        assert!(gemmish(&f32b) > gemmish(&f16b) + 0.08, "GEMM share must drop under MP");
        // While the attention-ops share grows slightly.
        assert!(
            f16b.fraction("attention", "Scale+Mask+DR+SM")
                > f32b.fraction("attention", "Scale+Mask+DR+SM")
        );
    }

    #[test]
    #[should_panic(expected = "unknown bar")]
    fn unknown_bar_panics() {
        let b = breakdown(false);
        let _ = b.fraction("nope", "Linear");
    }
}
