//! Roofline classification and cross-device extrapolation (paper §2.6, §7).
//!
//! The paper's argument for platform independence is that every takeaway
//! reduces to an operator's arithmetic intensity relative to a device's
//! *ridge point* (peak FLOPS / peak bandwidth): memory-bound operators stay
//! memory-bound on any device with a similar or higher ratio, and runtime
//! proportions "can be approximately extrapolated to another device by
//! comparing the device's compute and memory bandwidth ratios". This module
//! makes both operations first-class.

use crate::profile::IterationProfile;
use bertscope_device::GpuModel;
use bertscope_tensor::{Category, OpRecord};
use std::collections::BTreeMap;

/// Whether an operation is limited by arithmetic or by memory on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Boundedness {
    /// Arithmetic-limited: intensity above the device's ridge point.
    ComputeBound,
    /// Bandwidth-limited: intensity below the ridge point.
    MemoryBound,
}

/// The ridge point of `gpu` for an op of the given kind/precision:
/// achievable FLOPS divided by achievable bandwidth, in ops/byte.
#[must_use]
pub fn ridge_point(gpu: &GpuModel, op: &OpRecord) -> f64 {
    let peak_flops = gpu.peak_flops(op.kind, op.dtype) * gpu.max_gemm_efficiency;
    let peak_bw = gpu.mem_bw_gbps * 1.0e9 * gpu.max_mem_efficiency;
    peak_flops / peak_bw
}

/// Classify one op on a device.
#[must_use]
pub fn classify(gpu: &GpuModel, op: &OpRecord) -> Boundedness {
    if op.arithmetic_intensity() >= ridge_point(gpu, op) {
        Boundedness::ComputeBound
    } else {
        Boundedness::MemoryBound
    }
}

/// Classify every category of an op stream: a category is memory-bound when
/// the majority of its time-weighted ops are.
#[must_use]
pub fn classify_categories(gpu: &GpuModel, ops: &[OpRecord]) -> BTreeMap<Category, Boundedness> {
    let mut votes: BTreeMap<Category, (f64, f64)> = BTreeMap::new();
    for op in ops {
        let t = gpu.op_time_us(op);
        let e = votes.entry(op.category).or_insert((0.0, 0.0));
        match classify(gpu, op) {
            Boundedness::ComputeBound => e.0 += t,
            Boundedness::MemoryBound => e.1 += t,
        }
    }
    votes
        .into_iter()
        .map(|(c, (cb, mb))| {
            (c, if cb >= mb { Boundedness::ComputeBound } else { Boundedness::MemoryBound })
        })
        .collect()
}

/// Extrapolate a profile measured on `from` to a hypothetical device `to`
/// using only the compute and bandwidth ratios — the paper's §7 recipe.
///
/// Each op's time is scaled by the compute ratio if it is compute-bound on
/// `from`, else by the bandwidth ratio. This deliberately ignores
/// shape-dependent efficiency (that is the point: it is the *approximate*
/// method the paper says practitioners can use), so comparing it against a
/// full re-simulation quantifies the recipe's accuracy.
#[must_use]
pub fn extrapolate(profile: &IterationProfile, from: &GpuModel, to: &GpuModel) -> f64 {
    let bw_ratio = from.mem_bw_gbps / to.mem_bw_gbps;
    profile
        .ops()
        .iter()
        .map(|t| {
            let compute_ratio =
                from.peak_flops(t.op.kind, t.op.dtype) / to.peak_flops(t.op.kind, t.op.dtype);
            match classify(from, &t.op) {
                Boundedness::ComputeBound => t.time_us * compute_ratio,
                Boundedness::MemoryBound => t.time_us * bw_ratio,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_iteration;
    use bertscope_model::{BertConfig, GraphOptions};

    fn profile_and_ops() -> (GpuModel, IterationProfile, Vec<OpRecord>) {
        let gpu = GpuModel::mi100();
        let cfg = BertConfig::bert_large();
        let ops = bertscope_model::build_iteration(&cfg, &GraphOptions::default());
        let p = simulate_iteration(&cfg, &GraphOptions::default(), &gpu);
        (gpu, p, ops)
    }

    #[test]
    fn fc_gemms_compute_bound_nongemms_memory_bound() {
        // The classification that underlies every paper takeaway.
        let (gpu, _, ops) = profile_and_ops();
        let classes = classify_categories(&gpu, &ops);
        assert_eq!(classes[&Category::FcGemm], Boundedness::ComputeBound);
        assert_eq!(classes[&Category::AttnLinear], Boundedness::ComputeBound);
        for cat in [
            Category::Gelu,
            Category::DropResidualNorm,
            Category::ScaleMaskSoftmaxDropout,
            Category::LambStage1,
            Category::LambStage2,
            Category::Embedding,
        ] {
            assert_eq!(classes[&cat], Boundedness::MemoryBound, "{cat}");
        }
    }

    #[test]
    fn attention_bgemms_are_memory_bound_gemms() {
        // Takeaway 6 in roofline terms: GEMMs that sit below the ridge.
        let (gpu, _, ops) = profile_and_ops();
        let classes = classify_categories(&gpu, &ops);
        assert_eq!(classes[&Category::AttnBgemm], Boundedness::MemoryBound);
    }

    #[test]
    fn ridge_point_is_higher_for_matrix_cores() {
        let gpu = GpuModel::mi100();
        let mk = |kind, dtype| OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "x".into(),
            kind,
            category: Category::FcGemm,
            phase: bertscope_tensor::Phase::Forward,
            layer: None,
            gemm: None,
            flops: 1,
            bytes_read: 1,
            bytes_written: 0,
            dtype,
        };
        use bertscope_tensor::{DType, OpKind};
        let gemm_ridge = ridge_point(&gpu, &mk(OpKind::Gemm, DType::F32));
        let ew_ridge = ridge_point(&gpu, &mk(OpKind::ElementWise, DType::F32));
        assert!(gemm_ridge > ew_ridge, "{gemm_ridge} vs {ew_ridge}");
        let f16_ridge = ridge_point(&gpu, &mk(OpKind::Gemm, DType::F16));
        assert!(f16_ridge > 2.0 * gemm_ridge, "f16 matrix cores raise the ridge");
    }

    #[test]
    fn extrapolation_to_the_same_device_is_identity() {
        let (gpu, p, _) = profile_and_ops();
        let t = extrapolate(&p, &gpu, &gpu);
        assert!((t - p.total_us()).abs() / p.total_us() < 1e-9);
    }

    #[test]
    fn extrapolation_tracks_full_resimulation_within_20_pct() {
        // The paper's claim: proportions/runtimes extrapolate approximately
        // via compute/bandwidth ratios. Check against a 2x-compute device.
        let (gpu, p, _) = profile_and_ops();
        let faster = gpu.scaled_compute(2.0);
        let extrapolated = extrapolate(&p, &gpu, &faster);
        let resimulated =
            simulate_iteration(&BertConfig::bert_large(), &GraphOptions::default(), &faster)
                .total_us();
        let err = (extrapolated - resimulated).abs() / resimulated;
        assert!(err < 0.2, "extrapolation error {err}");
    }

    #[test]
    fn memory_bound_ops_ignore_compute_scaling_in_extrapolation() {
        let (gpu, p, _) = profile_and_ops();
        let faster = gpu.scaled_compute(100.0);
        let t = extrapolate(&p, &gpu, &faster);
        // The floor is the memory-bound time, which never shrinks.
        let mem_floor: f64 = p
            .ops()
            .iter()
            .filter(|o| classify(&gpu, &o.op) == Boundedness::MemoryBound)
            .map(|o| o.time_us)
            .sum();
        assert!(t >= mem_floor);
        assert!(t < p.total_us());
    }
}
