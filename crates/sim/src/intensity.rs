//! Arithmetic-intensity and bandwidth-requirement analyses (paper Figs. 6-7).

use bertscope_device::GpuModel;
use bertscope_model::{training_gemms, BertConfig, GemmPass, GemmSite};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

/// One row of the Fig. 6 data: a Transformer-layer training GEMM with its
/// paper-style label and arithmetic intensity.
#[derive(Debug, Clone)]
pub struct GemmIntensityRow {
    /// Which sub-layer the GEMM implements.
    pub site: GemmSite,
    /// Which pass it belongs to.
    pub pass: GemmPass,
    /// The paper's `transposeA, transposeB, M, N, K, [batch]` label.
    pub label: String,
    /// Arithmetic intensity in ops/byte.
    pub ops_per_byte: f64,
}

/// The Fig. 6 dataset: arithmetic intensity of every training GEMM in one
/// Transformer layer, at the given precision.
#[must_use]
pub fn gemm_intensities(cfg: &BertConfig, dtype: DType) -> Vec<GemmIntensityRow> {
    training_gemms(cfg)
        .into_iter()
        .map(|(site, pass, spec)| GemmIntensityRow {
            site,
            pass,
            label: spec.label(),
            ops_per_byte: spec.arithmetic_intensity(dtype),
        })
        .collect()
}

/// One row of the Fig. 7 data: an operation phase with its ops/byte ratio
/// and its bandwidth demand normalized to the best-streaming op.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Phase label as in the paper's Fig. 7 x-axis.
    pub label: String,
    /// Aggregate arithmetic intensity (ops per byte moved).
    pub ops_per_byte: f64,
    /// Achieved bandwidth normalized to the maximum achieved by any BERT
    /// operation (the paper normalizes to elementwise multiply).
    pub normalized_bandwidth: f64,
}

/// Build the Fig. 7 dataset from an iteration op stream and a device model.
///
/// Phases follow the paper: the three GEMM classes, `Scale+Mask+DR+SM`,
/// `GeLU`, `DR+RC+LN`, `LAMBStage1`, `LAMBStage2`, and the reference
/// elementwise op (the normalizer).
#[must_use]
pub fn bandwidth_rows(gpu: &GpuModel, ops: &[OpRecord]) -> Vec<BandwidthRow> {
    type Pred = Box<dyn Fn(&OpRecord) -> bool>;
    let classes: [(&str, Pred); 8] = [
        ("FC GEMM", Box::new(|o| o.category == Category::FcGemm && o.is_gemm())),
        ("Linear GEMM", Box::new(|o| o.category == Category::AttnLinear && o.is_gemm())),
        ("Attn B-GEMM", Box::new(|o| o.category == Category::AttnBgemm)),
        ("Scale+Mask+DR+SM", Box::new(|o| o.category == Category::ScaleMaskSoftmaxDropout)),
        ("GeLU", Box::new(|o| o.category == Category::Gelu)),
        ("DR+RC+LN", Box::new(|o| o.category == Category::DropResidualNorm)),
        ("LAMBStage1", Box::new(|o| o.category == Category::LambStage1)),
        ("LAMBStage2", Box::new(|o| o.category == Category::LambStage2)),
    ];
    // The normalizer: the best achieved bandwidth of any single op.
    let max_bw =
        ops.iter().map(|o| gpu.achieved_bandwidth_gbps(o)).fold(0.0f64, f64::max).max(1e-9);
    classes
        .iter()
        .filter_map(|(label, pred)| {
            let sel: Vec<&OpRecord> = ops.iter().filter(|o| pred(o)).collect();
            if sel.is_empty() {
                return None;
            }
            let flops: u64 = sel.iter().map(|o| o.flops).sum();
            let bytes: u64 = sel.iter().map(|o| o.bytes_total()).sum();
            // Weighted-average achieved bandwidth across the class.
            let time: f64 = sel.iter().map(|o| gpu.op_time_us(o)).sum();
            let bw = bytes as f64 / 1.0e9 / (time * 1.0e-6);
            Some(BandwidthRow {
                label: (*label).to_owned(),
                ops_per_byte: flops as f64 / bytes.max(1) as f64,
                normalized_bandwidth: bw / max_bw,
            })
        })
        .collect()
}

/// A reference streaming elementwise-multiply op over `numel` f32 elements —
/// the paper's bandwidth normalizer.
#[must_use]
pub fn reference_elementwise_op(numel: u64) -> OpRecord {
    OpRecord {
        access: bertscope_tensor::AccessSet::default(),
        name: "ew.multiply".into(),
        kind: OpKind::ElementWise,
        category: Category::DropResidualNorm,
        phase: Phase::Forward,
        layer: None,
        gemm: None,
        flops: numel,
        bytes_read: 2 * numel * 4,
        bytes_written: numel * 4,
        dtype: DType::F32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_model::{build_iteration, GraphOptions};

    #[test]
    fn fig6_has_15_gemms_with_fc_most_intense() {
        let rows = gemm_intensities(&BertConfig::bert_large(), DType::F32);
        assert_eq!(rows.len(), 15);
        let max_row = rows.iter().max_by(|a, b| a.ops_per_byte.total_cmp(&b.ops_per_byte)).unwrap();
        assert!(matches!(max_row.site, GemmSite::Fc1 | GemmSite::Fc2));
        let min_row = rows.iter().min_by(|a, b| a.ops_per_byte.total_cmp(&b.ops_per_byte)).unwrap();
        assert!(
            matches!(min_row.site, GemmSite::AttnScore | GemmSite::AttnOutput),
            "least intense is an attention B-GEMM, got {:?}",
            min_row.site
        );
        // Labels carry the paper's format.
        assert!(rows.iter().any(|r| r.label.contains("b512")));
    }

    #[test]
    fn fig7_attention_gemms_demand_more_bandwidth_than_fc() {
        // Paper: Attn GEMMs need ~70% of peak vs ~20% for other GEMMs.
        let gpu = GpuModel::mi100();
        let ops = build_iteration(&BertConfig::bert_large(), &GraphOptions::default());
        let rows = bandwidth_rows(&gpu, &ops);
        let get = |label: &str| {
            rows.iter().find(|r| r.label == label).unwrap_or_else(|| panic!("{label} missing"))
        };
        let attn = get("Attn B-GEMM").normalized_bandwidth;
        let fc = get("FC GEMM").normalized_bandwidth;
        assert!(attn > 2.0 * fc, "attn {attn} vs fc {fc}");
        assert!(fc < 0.4, "FC GEMMs are compute-bound: low bandwidth demand");
    }

    #[test]
    fn fig7_memory_bound_phases_have_low_intensity_high_bandwidth() {
        let gpu = GpuModel::mi100();
        let ops = build_iteration(&BertConfig::bert_large(), &GraphOptions::default());
        let rows = bandwidth_rows(&gpu, &ops);
        for label in ["GeLU", "DR+RC+LN", "LAMBStage1", "LAMBStage2", "Scale+Mask+DR+SM"] {
            let r = rows.iter().find(|r| r.label == label).unwrap();
            assert!(r.ops_per_byte < 5.0, "{label} intensity {}", r.ops_per_byte);
            assert!(r.normalized_bandwidth > 0.5, "{label} bw {}", r.normalized_bandwidth);
        }
        // FC GEMMs are orders of magnitude more intense.
        let fc = rows.iter().find(|r| r.label == "FC GEMM").unwrap();
        assert!(fc.ops_per_byte > 100.0);
    }

    #[test]
    fn lamb_stage1_intensity_is_low() {
        // Takeaway 7: few EW operations per byte.
        let gpu = GpuModel::mi100();
        let ops = build_iteration(&BertConfig::bert_large(), &GraphOptions::default());
        let rows = bandwidth_rows(&gpu, &ops);
        let s1 = rows.iter().find(|r| r.label == "LAMBStage1").unwrap();
        assert!(s1.ops_per_byte < 1.0, "LAMBStage1 ops/byte {}", s1.ops_per_byte);
    }

    #[test]
    fn mixed_precision_doubles_gemm_intensity() {
        let f32_rows = gemm_intensities(&BertConfig::bert_large(), DType::F32);
        let f16_rows = gemm_intensities(&BertConfig::bert_large(), DType::F16);
        for (a, b) in f32_rows.iter().zip(&f16_rows) {
            assert!((b.ops_per_byte / a.ops_per_byte - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reference_op_achieves_the_best_bandwidth() {
        let gpu = GpuModel::mi100();
        let r = reference_elementwise_op(16 << 20);
        let bw = gpu.achieved_bandwidth_gbps(&r);
        // Close to max_mem_efficiency x peak.
        assert!(bw > 0.9 * gpu.max_mem_efficiency * gpu.mem_bw_gbps);
    }
}
