//! Ablations of the device model's design choices.
//!
//! DESIGN.md commits to three modelling decisions; each ablation removes one
//! and shows which paper behaviour breaks, demonstrating that the reproduced
//! results *depend on* the modelled mechanisms rather than falling out of
//! arithmetic alone:
//!
//! 1. **Shape-dependent GEMM efficiency** (tile/wave/K model) — without it,
//!    attention B-GEMMs look as efficient as FC GEMMs and Takeaway 6's
//!    under-utilization vanishes;
//! 2. **Per-kernel fixed costs** (launch overhead + the bandwidth ramp that
//!    penalizes tiny transfers) — without them, unfused-vs-fused optimizer
//!    execution (Fig. 12a's Adam case) collapses to the bare traffic ratio;
//! 3. **Reduction/optimizer bandwidth derates** — without them, LAMB falls
//!    out of the paper's 7-10% band.

use crate::profile::IterationProfile;
use crate::simulate::simulate_iteration;
use bertscope_device::GpuModel;
use bertscope_model::{BertConfig, GraphOptions};
use bertscope_tensor::{Group, OpRecord};

/// A flat-efficiency variant of a GPU: every GEMM achieves the same
/// fraction of peak regardless of shape (ablation 1).
#[must_use]
pub fn without_shape_efficiency(gpu: &GpuModel) -> GpuModel {
    // A huge tile = every GEMM is "one full tile"; zero ramps remove the
    // wave-quantization and K-depth penalties.
    GpuModel {
        name: format!("{}-flat-gemm", gpu.name),
        gemm_tile: 1,
        gemm_k_ramp: 0.0,
        compute_units: 1,
        ..gpu.clone()
    }
}

/// A variant with no per-kernel fixed costs: zero launch overhead and no
/// bandwidth ramp, so a thousand tiny kernels cost the same as one big one
/// (ablation 2).
#[must_use]
pub fn without_small_kernel_penalties(gpu: &GpuModel) -> GpuModel {
    GpuModel {
        name: format!("{}-free-launch", gpu.name),
        launch_overhead_us: 0.0,
        mem_ramp_bytes: 0.0,
        ..gpu.clone()
    }
}

/// A variant without the reduction/optimizer bandwidth derates (ablation 3).
#[must_use]
pub fn without_derates(gpu: &GpuModel) -> GpuModel {
    GpuModel {
        name: format!("{}-no-derates", gpu.name),
        reduction_mem_derate: 1.0,
        optimizer_mem_derate: 1.0,
        ..gpu.clone()
    }
}

/// Outcome of one ablation: the observable that the full model reproduces
/// and its value under the ablated model.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which design choice was removed.
    pub ablation: String,
    /// The paper behaviour it supports.
    pub observable: String,
    /// Value with the full model.
    pub full: f64,
    /// Value with the ablated model.
    pub ablated: f64,
}

/// Run all three ablations on a configuration.
#[must_use]
pub fn ablation_study(cfg: &BertConfig, gpu: &GpuModel) -> Vec<AblationRow> {
    let opts = GraphOptions::default();
    let mut out = Vec::new();

    // 1. Shape efficiency -> attention-vs-FC efficiency gap (Takeaway 6).
    {
        let flat = without_shape_efficiency(gpu);
        let gap = |g: &GpuModel| {
            let attn = bertscope_model::gemm_spec(
                cfg,
                bertscope_model::GemmSite::AttnScore,
                bertscope_model::GemmPass::Forward,
            );
            let fc = bertscope_model::gemm_spec(
                cfg,
                bertscope_model::GemmSite::Fc1,
                bertscope_model::GemmPass::Forward,
            );
            g.gemm_efficiency(&fc) / g.gemm_efficiency(&attn)
        };
        out.push(AblationRow {
            ablation: "shape-dependent GEMM efficiency".into(),
            observable: "FC/attention GEMM efficiency ratio (Takeaway 6 needs >1)".into(),
            full: gap(gpu),
            ablated: gap(&flat),
        });
    }
    // 2. Per-kernel fixed costs -> unfused/fused Adam runtime ratio
    //    (Fig. 12a).
    {
        let free = without_small_kernel_penalties(gpu);
        let ratio = |g: &GpuModel| {
            let case = bertscope_model::adam_fusion_case(cfg);
            let unfused: f64 = case.unfused.iter().map(|o| g.op_time_us(o)).sum();
            let fused: f64 = case.fused.iter().map(|o| g.op_time_us(o)).sum();
            unfused / fused
        };
        out.push(AblationRow {
            ablation: "per-kernel fixed costs (launch + bandwidth ramp)".into(),
            observable: "unfused/fused Adam runtime ratio (Fig. 12a)".into(),
            full: ratio(gpu),
            ablated: ratio(&free),
        });
    }
    // 3. Bandwidth derates -> LAMB share of the iteration (Takeaway 1).
    {
        let no_derate = without_derates(gpu);
        let lamb =
            |g: &GpuModel| -> f64 { simulate_iteration(cfg, &opts, g).group_fraction(Group::Lamb) };
        out.push(AblationRow {
            ablation: "reduction/optimizer bandwidth derates".into(),
            observable: "LAMB share of the iteration (paper band 7-10%)".into(),
            full: lamb(gpu),
            ablated: lamb(&no_derate),
        });
    }
    out
}

/// Convenience: the iteration profile under every ablated device, for
/// side-by-side reporting.
#[must_use]
pub fn ablated_profiles(cfg: &BertConfig, gpu: &GpuModel) -> Vec<(String, IterationProfile)> {
    let opts = GraphOptions::default();
    [
        gpu.clone(),
        without_shape_efficiency(gpu),
        without_small_kernel_penalties(gpu),
        without_derates(gpu),
    ]
    .into_iter()
    .map(|g| {
        let p = simulate_iteration(cfg, &opts, &g);
        (g.name, p)
    })
    .collect()
}

/// Check a record stream for structural invariants (phases present and
/// internally ordered, no zero-byte arithmetic ops). Used by tests and by
/// the harness before timing an unfamiliar graph.
#[must_use]
pub fn stream_is_well_formed(ops: &[OpRecord]) -> bool {
    use bertscope_tensor::Phase;
    if ops.is_empty() {
        return false;
    }
    // Update ops, if any, come after the last backward op.
    let last_bwd = ops.iter().rposition(|o| o.phase == Phase::Backward);
    let first_upd = ops.iter().position(|o| o.phase == Phase::Update);
    if let (Some(b), Some(u)) = (last_bwd, first_upd) {
        if u < b {
            return false;
        }
    }
    // Arithmetic ops move data.
    ops.iter().all(|o| o.flops == 0 || o.bytes_total() > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_ablation_breaks_its_paper_behaviour() {
        let gpu = GpuModel::mi100();
        let rows = ablation_study(&BertConfig::bert_large(), &gpu);
        assert_eq!(rows.len(), 3);

        // 1. The efficiency gap collapses to ~1 without the shape model.
        let shape = &rows[0];
        assert!(shape.full > 1.5, "full model shows the gap: {}", shape.full);
        assert!((shape.ablated - 1.0).abs() < 0.05, "ablated gap {}", shape.ablated);

        // 2. The Adam fusion runtime ratio collapses to the bare memory
        //    traffic ratio without the per-kernel fixed costs.
        let launch = &rows[1];
        assert!(
            launch.full > 1.4 * launch.ablated,
            "fixed costs drive the Adam fusion gap: {} vs {}",
            launch.full,
            launch.ablated
        );
        let traffic = bertscope_model::adam_fusion_case(&BertConfig::bert_large()).bytes_ratio();
        assert!(
            (launch.ablated - traffic).abs() / traffic < 0.1,
            "ablated ratio {} reduces to the traffic ratio {traffic}",
            launch.ablated
        );

        // 3. LAMB leaves the paper band without the derates.
        let derate = &rows[2];
        assert!((0.05..0.12).contains(&derate.full), "full LAMB {}", derate.full);
        assert!(derate.ablated < derate.full, "ablated LAMB {}", derate.ablated);
    }

    #[test]
    fn ablated_profiles_are_faster_but_distorted() {
        let gpu = GpuModel::mi100();
        let profiles = ablated_profiles(&BertConfig::bert_large(), &gpu);
        assert_eq!(profiles.len(), 4);
        let full = profiles[0].1.total_us();
        for (name, p) in &profiles[1..] {
            assert!(p.total_us() < full, "{name} removes modelled cost");
        }
    }

    #[test]
    fn stream_validation() {
        let ops = bertscope_model::build_iteration(&BertConfig::tiny(), &GraphOptions::default());
        assert!(stream_is_well_formed(&ops));
        assert!(!stream_is_well_formed(&[]));
        // Scramble: put an update op before a backward op.
        let mut bad = ops.clone();
        let upd = bad.iter().position(|o| o.phase == bertscope_tensor::Phase::Update).unwrap();
        let moved = bad.remove(upd);
        bad.insert(0, moved);
        assert!(!stream_is_well_formed(&bad));
    }
}
