//! Timed iteration profiles: the simulator's primary output.

use bertscope_device::GpuModel;
use bertscope_tensor::{Category, Group, OpRecord, Phase};
use std::collections::BTreeMap;

/// One operation with its modelled execution time.
#[derive(Debug, Clone)]
pub struct TimedOp {
    /// The operation record.
    pub op: OpRecord,
    /// Modelled execution time in microseconds.
    pub time_us: f64,
}

/// A fully-timed training-iteration profile — the in-memory equivalent of
/// the paper's rocProf dumps.
#[derive(Debug, Clone, Default)]
pub struct IterationProfile {
    ops: Vec<TimedOp>,
}

impl IterationProfile {
    /// Time an op stream on a GPU model.
    #[must_use]
    pub fn from_ops(gpu: &GpuModel, ops: Vec<OpRecord>) -> Self {
        let ops = ops
            .into_iter()
            .map(|op| {
                let time_us = gpu.op_time_us(&op);
                TimedOp { op, time_us }
            })
            .collect();
        IterationProfile { ops }
    }

    /// Build a profile from pre-timed ops (used by the distributed models,
    /// which time communication themselves).
    #[must_use]
    pub fn from_timed(ops: Vec<TimedOp>) -> Self {
        IterationProfile { ops }
    }

    /// The timed operations.
    #[must_use]
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// Number of kernel launches.
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.ops.len()
    }

    /// Total iteration time in microseconds.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.ops.iter().map(|t| t.time_us).sum()
    }

    /// Total bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|t| t.op.bytes_total()).sum()
    }

    /// Total FLOPs.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|t| t.op.flops).sum()
    }

    /// Time grouped by an arbitrary key.
    pub fn time_by<K: Ord, F: Fn(&OpRecord) -> K>(&self, key: F) -> BTreeMap<K, f64> {
        let mut out = BTreeMap::new();
        for t in &self.ops {
            *out.entry(key(&t.op)).or_insert(0.0) += t.time_us;
        }
        out
    }

    /// Time per fine-grained [`Category`].
    #[must_use]
    pub fn time_by_category(&self) -> BTreeMap<Category, f64> {
        self.time_by(|o| o.category)
    }

    /// Time per coarse [`Group`] — the paper's Fig. 3 stacking.
    #[must_use]
    pub fn time_by_group(&self) -> BTreeMap<Group, f64> {
        self.time_by(|o| o.category.group())
    }

    /// Time per training [`Phase`].
    #[must_use]
    pub fn time_by_phase(&self) -> BTreeMap<Phase, f64> {
        self.time_by(|o| o.phase)
    }

    /// Fraction of total time spent in a group (0 when the profile is empty).
    #[must_use]
    pub fn group_fraction(&self, group: Group) -> f64 {
        let total = self.total_us();
        if total == 0.0 {
            return 0.0;
        }
        self.time_by_group().get(&group).copied().unwrap_or(0.0) / total
    }

    /// Fraction of total time spent in a category.
    #[must_use]
    pub fn category_fraction(&self, category: Category) -> f64 {
        let total = self.total_us();
        if total == 0.0 {
            return 0.0;
        }
        self.time_by_category().get(&category).copied().unwrap_or(0.0) / total
    }

    /// The `n` most expensive kernels, sorted by descending time — the view
    /// a profiler user reaches for first.
    #[must_use]
    pub fn top_kernels(&self, n: usize) -> Vec<&TimedOp> {
        let mut refs: Vec<&TimedOp> = self.ops.iter().collect();
        refs.sort_by(|a, b| b.time_us.total_cmp(&a.time_us));
        refs.truncate(n);
        refs
    }

    /// Fraction of time spent in ops that manifest as (batched) GEMMs.
    #[must_use]
    pub fn gemm_fraction(&self) -> f64 {
        let total = self.total_us();
        if total == 0.0 {
            return 0.0;
        }
        self.ops.iter().filter(|t| t.op.is_gemm()).map(|t| t.time_us).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{DType, OpKind};

    fn op(cat: Category, flops: u64, bytes: u64) -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: format!("{cat}"),
            kind: OpKind::ElementWise,
            category: cat,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops,
            bytes_read: bytes,
            bytes_written: 0,
            dtype: DType::F32,
        }
    }

    #[test]
    fn aggregations_are_consistent() {
        let gpu = GpuModel::mi100();
        let ops = vec![
            op(Category::Gelu, 1000, 1 << 20),
            op(Category::LambStage1, 10, 1 << 22),
            op(Category::Gelu, 1000, 1 << 20),
        ];
        let p = IterationProfile::from_ops(&gpu, ops);
        assert_eq!(p.kernel_count(), 3);
        let by_cat = p.time_by_category();
        let sum: f64 = by_cat.values().sum();
        assert!((sum - p.total_us()).abs() < 1e-9);
        let gelu_frac = p.category_fraction(Category::Gelu);
        let lamb_frac = p.group_fraction(Group::Lamb);
        assert!((gelu_frac + lamb_frac - 1.0).abs() < 1e-9);
        assert_eq!(p.gemm_fraction(), 0.0);
    }

    #[test]
    fn empty_profile_has_zero_fractions() {
        let p = IterationProfile::default();
        assert_eq!(p.total_us(), 0.0);
        assert_eq!(p.group_fraction(Group::Lamb), 0.0);
        assert_eq!(p.gemm_fraction(), 0.0);
    }

    #[test]
    fn top_kernels_are_sorted_and_bounded() {
        let gpu = GpuModel::mi100();
        let p = IterationProfile::from_ops(
            &gpu,
            vec![
                op(Category::Gelu, 0, 1 << 24),
                op(Category::Gelu, 0, 1 << 12),
                op(Category::Gelu, 0, 1 << 28),
            ],
        );
        let top = p.top_kernels(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].time_us >= top[1].time_us);
        assert_eq!(top[0].op.bytes_read, 1 << 28);
        // Asking for more than exist returns all.
        assert_eq!(p.top_kernels(10).len(), 3);
    }

    #[test]
    fn bigger_ops_take_longer() {
        let gpu = GpuModel::mi100();
        let p = IterationProfile::from_ops(
            &gpu,
            vec![op(Category::Gelu, 0, 1 << 16), op(Category::Gelu, 0, 1 << 28)],
        );
        assert!(p.ops()[1].time_us > 10.0 * p.ops()[0].time_us);
    }
}
