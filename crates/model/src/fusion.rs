//! Kernel-fusion studies (paper §6.1, Fig. 12).
//!
//! Two cases from Fig. 12a are modelled as op-stream pairs (unfused vs
//! fused):
//!
//! * **LayerNorm** — a chain of mean/subtract/square/mean/rsqrt/normalize/
//!   scale/shift primitives with a producer-consumer relationship and high
//!   data reuse: fusing collapses both kernel count *and* memory traffic by
//!   6-8x.
//! * **Adam** — the optimizer touches hundreds of independent parameter
//!   tensors; unfused execution launches ~10 kernels per tensor, while a
//!   multi-tensor fused implementation launches a handful in total. Kernel
//!   count collapses by ~250x, but because the tensors share no data, the
//!   memory traffic (and hence runtime) improves far less — the paper's
//!   central fusion lesson.
//!
//! The fused-QKV GEMM case of Fig. 12b is expressed through
//! [`crate::gemms::fused_qkv_spec`] and the `fused_qkv` graph option.

use crate::config::BertConfig;
use crate::params::{parameter_tensors, ParamTensor};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

/// An unfused/fused pair of op streams implementing the same computation.
#[derive(Debug, Clone)]
pub struct FusionCase {
    /// Human-readable case name (`"layernorm"`, `"adam"`).
    pub name: String,
    /// The computation as separate primitive kernels.
    pub unfused: Vec<OpRecord>,
    /// The computation as fused kernel(s).
    pub fused: Vec<OpRecord>,
}

impl FusionCase {
    /// Kernel-count reduction factor from fusing.
    #[must_use]
    pub fn kernel_ratio(&self) -> f64 {
        self.unfused.len() as f64 / self.fused.len().max(1) as f64
    }

    /// Memory-traffic reduction factor from fusing.
    #[must_use]
    pub fn bytes_ratio(&self) -> f64 {
        let u: u64 = self.unfused.iter().map(OpRecord::bytes_total).sum();
        let f: u64 = self.fused.iter().map(OpRecord::bytes_total).sum();
        u as f64 / f.max(1) as f64
    }
}

fn ew(name: &str, cat: Category, flops: u64, br: u64, bw: u64, dtype: DType) -> OpRecord {
    OpRecord {
        access: bertscope_tensor::AccessSet::default(),
        name: name.to_owned(),
        kind: OpKind::ElementWise,
        category: cat,
        phase: Phase::Forward,
        layer: None,
        gemm: None,
        flops,
        bytes_read: br,
        bytes_written: bw,
        dtype,
    }
}

fn red(name: &str, cat: Category, flops: u64, br: u64, bw: u64, dtype: DType) -> OpRecord {
    OpRecord { kind: OpKind::Reduction, ..ew(name, cat, flops, br, bw, dtype) }
}

/// The LayerNorm fusion case over a `[rows, width]` activation.
#[must_use]
pub fn layernorm_fusion_case(rows: usize, width: usize, dtype: DType) -> FusionCase {
    let cat = Category::DropResidualNorm;
    let es = dtype.size_bytes();
    let n = (rows * width) as u64;
    let r = rows as u64;
    let unfused = vec![
        // mean over rows
        red("ln.mean", cat, n, n * es, r * es, dtype),
        // x - mean (broadcast)
        ew("ln.sub", cat, n, n * es + r * es, n * es, dtype),
        // (x - mean)^2
        ew("ln.square", cat, n, n * es, n * es, dtype),
        // variance = mean of squares
        red("ln.var", cat, n, n * es, r * es, dtype),
        // rstd = rsqrt(var + eps)
        ew("ln.rsqrt", cat, 2 * r, r * es, r * es, dtype),
        // xhat = centered * rstd (broadcast)
        ew("ln.normalize", cat, n, n * es + r * es, n * es, dtype),
        // * gamma (broadcast over rows)
        ew("ln.scale", cat, n, n * es + width as u64 * es, n * es, dtype),
        // + beta
        ew("ln.shift", cat, n, n * es + width as u64 * es, n * es, dtype),
    ];
    // Fused: the single-kernel formula used by the kernels crate.
    let fused = vec![red("ln.fused", cat, 8 * n, n * es + 2 * width as u64 * es, n * es, dtype)];
    FusionCase { name: "layernorm".into(), unfused, fused }
}

/// Number of primitive kernels an unfused Adam step launches per tensor.
pub const ADAM_UNFUSED_KERNELS_PER_TENSOR: usize = 10;
/// Number of tensors one fused multi-tensor-apply kernel covers.
pub const ADAM_MULTI_TENSOR_CHUNK: usize = 24;

/// The Adam fusion case over a model's full parameter inventory.
///
/// Unfused: ~10 primitive kernels per parameter tensor (the PyTorch eager
/// path). Fused: multi-tensor-apply kernels each covering
/// [`ADAM_MULTI_TENSOR_CHUNK`] tensors (the Apex path). The kernel-count
/// ratio is enormous (~250x for BERT-Large) while the traffic ratio is a
/// small constant — different layers' optimizer data is independent, so
/// fusion cannot eliminate their memory accesses (paper §6.1.1).
#[must_use]
pub fn adam_fusion_case(cfg: &BertConfig) -> FusionCase {
    let tensors = parameter_tensors(cfg);
    let cat = Category::LambStage1;
    let mut unfused = Vec::new();
    for t in &tensors {
        let n = t.numel();
        let b = n * 4;
        let r = |name: &str, reads: u64, writes: u64| {
            ew(&format!("adam.{}.{name}", t.name), cat, n, reads * b, writes * b, DType::F32)
        };
        unfused.extend([
            r("m_decay", 1, 1),  // m *= beta1
            r("m_update", 2, 1), // m += (1-beta1) * g
            r("v_decay", 1, 1),  // v *= beta2
            r("g_square", 1, 1), // g2 = g * g
            r("v_update", 2, 1), // v += (1-beta2) * g2
            r("m_hat", 1, 1),    // bias-corrected momentum
            r("v_hat", 1, 1),    // bias-corrected velocity
            r("denom", 1, 1),    // sqrt(v_hat) + eps
            r("step", 2, 1),     // m_hat / denom
            r("apply", 2, 1),    // w -= lr * step
        ]);
        debug_assert_eq!(unfused.len() % ADAM_UNFUSED_KERNELS_PER_TENSOR, 0);
    }
    // Fused multi-tensor apply: each kernel reads g+m+v+w and writes m+v+w
    // for its chunk of tensors.
    let mut fused = Vec::new();
    for (i, chunk) in tensors.chunks(ADAM_MULTI_TENSOR_CHUNK).enumerate() {
        let n: u64 = chunk.iter().map(ParamTensor::numel).sum();
        fused.push(ew(
            &format!("adam.fused.{i}"),
            cat,
            crate::graph::ADAM_FLOPS_PER_PARAM * n,
            4 * n * 4,
            3 * n * 4,
            DType::F32,
        ));
    }
    FusionCase { name: "adam".into(), unfused, fused }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_fusion_cuts_kernels_and_traffic_6_to_8x() {
        // Paper Fig. 12a: runtime and memory traffic scale with kernel count
        // (6-8x) for LayerNorm.
        let case = layernorm_fusion_case(4096, 1024, DType::F32);
        assert_eq!(case.unfused.len(), 8);
        assert_eq!(case.fused.len(), 1);
        let br = case.bytes_ratio();
        assert!((6.0..9.0).contains(&br), "layernorm bytes ratio {br}");
    }

    #[test]
    fn adam_fusion_kernel_ratio_dwarfs_traffic_ratio() {
        // Paper Fig. 12a: ~250x kernel reduction but only ~6-8x runtime and
        // memory reduction for Adam.
        let case = adam_fusion_case(&BertConfig::bert_large());
        let kr = case.kernel_ratio();
        let br = case.bytes_ratio();
        assert!(kr > 150.0, "adam kernel ratio {kr}");
        assert!(br < 5.0, "adam bytes ratio {br}");
        assert!(kr / br > 40.0, "fusion benefit is launch-bound, not traffic-bound");
    }

    #[test]
    fn adam_unfused_kernel_count_matches_tensor_inventory() {
        let cfg = BertConfig::bert_large();
        let case = adam_fusion_case(&cfg);
        let tensors = parameter_tensors(&cfg).len();
        assert_eq!(case.unfused.len(), tensors * ADAM_UNFUSED_KERNELS_PER_TENSOR);
        assert_eq!(case.fused.len(), tensors.div_ceil(ADAM_MULTI_TENSOR_CHUNK));
    }

    #[test]
    fn fused_and_unfused_flops_are_comparable() {
        // Fusion removes traffic and launches, not arithmetic (to first
        // order); total FLOPs of both streams stay within ~2x.
        let case = layernorm_fusion_case(512, 256, DType::F32);
        let uf: u64 = case.unfused.iter().map(|o| o.flops).sum();
        let f: u64 = case.fused.iter().map(|o| o.flops).sum();
        let ratio = uf as f64 / f as f64;
        assert!((0.5..2.0).contains(&ratio), "flops ratio {ratio}");
    }

    #[test]
    fn half_precision_halves_layernorm_traffic() {
        let f32_case = layernorm_fusion_case(1024, 1024, DType::F32);
        let f16_case = layernorm_fusion_case(1024, 1024, DType::F16);
        let total = |c: &FusionCase| -> u64 { c.unfused.iter().map(OpRecord::bytes_total).sum() };
        assert_eq!(total(&f32_case), 2 * total(&f16_case));
    }
}
