//! BERT architecture description and analytic operator graphs for the
//! bertscope characterization suite.
//!
//! This crate is a *description* layer: it knows BERT's hyperparameters
//! ([`BertConfig`]), its learnable-parameter inventory ([`params`]), the
//! GEMM dimensions of every sub-layer in every pass (the paper's Table 2b,
//! [`gemms`]), and how a full training iteration unrolls into a stream of
//! operator records ([`graph`]), including mixed precision, activation
//! checkpointing and kernel fusion ([`fusion`]) variants.
//!
//! It performs no arithmetic — execution lives in `bertscope-train`, timing
//! in `bertscope-sim` — which is what lets it describe BERT-Large-scale
//! configurations instantly.
//!
//! # Examples
//!
//! ```
//! use bertscope_model::{BertConfig, GraphOptions, build_iteration};
//!
//! let cfg = BertConfig::bert_large();
//! let ops = build_iteration(&cfg, &GraphOptions::default());
//! let gemm_flops: u64 = ops.iter().filter(|o| o.is_gemm()).map(|o| o.flops).sum();
//! assert!(gemm_flops > 1_000_000_000_000, "BERT-Large runs >1 TFLOP of GEMMs per iteration");
//! ```

pub mod config;
pub mod fusion;
pub mod gemms;
pub mod graph;
pub mod params;

pub use config::{model_zoo, BertConfig, LayerSizeConfig, ZooEntry};
pub use fusion::{adam_fusion_case, layernorm_fusion_case, FusionCase};
pub use gemms::{fused_qkv_spec, gemm_spec, training_gemms, GemmPass, GemmSite};
pub use graph::{
    build_finetune, build_inference, build_iteration, checkpoint_segments, embedding_backward_ops,
    embedding_backward_ops_in, embedding_forward_ops, embedding_forward_ops_in, layer_backward_ops,
    layer_backward_ops_in, layer_forward_ops, layer_forward_ops_in, optimizer_ops,
    optimizer_ops_in, output_backward_ops, output_backward_ops_in, output_forward_ops,
    output_forward_ops_in, update_groups, BufEnv, GraphOptions, OptimizerChoice, Precision,
    UpdateGroup,
};
pub use params::{parameter_count, parameter_tensors, ParamTensor};
