//! Inventory of BERT's learnable parameter tensors.
//!
//! The optimizer update is executed once per parameter tensor per stage
//! (paper §3.2.3), so this inventory drives both the LAMB kernel counts in
//! the analytic graph and the parameter sharding of tensor-sliced
//! distributed training.

use crate::config::BertConfig;
use bertscope_tensor::Category;

/// One learnable parameter tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamTensor {
    /// Fully-qualified name, e.g. `"l3.fc1.weight"`.
    pub name: String,
    /// Dimension extents.
    pub dims: Vec<usize>,
    /// Transformer layer index, when the tensor belongs to one.
    pub layer: Option<usize>,
    /// Which network component owns the tensor.
    pub category: Category,
}

impl ParamTensor {
    fn new(name: String, dims: &[usize], layer: Option<usize>, category: Category) -> Self {
        ParamTensor { name, dims: dims.to_vec(), layer, category }
    }

    /// Element count.
    #[must_use]
    pub fn numel(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }
}

/// Enumerate every learnable tensor of the model, in network order.
///
/// The inventory matches the original BERT: token/position/segment
/// embeddings with a LayerNorm; per layer Q/K/V/O projections (+biases), two
/// LayerNorms and the two FC matrices (+biases); the MLM head (dense +
/// LayerNorm + tied-decoder bias) and the NSP head (pooler + classifier).
#[must_use]
pub fn parameter_tensors(cfg: &BertConfig) -> Vec<ParamTensor> {
    let d = cfg.d_model;
    let mut out = Vec::new();
    let emb = Category::Embedding;
    out.push(ParamTensor::new("embeddings.word".into(), &[cfg.vocab, d], None, emb));
    out.push(ParamTensor::new("embeddings.position".into(), &[cfg.max_position, d], None, emb));
    out.push(ParamTensor::new("embeddings.segment".into(), &[2, d], None, emb));
    out.push(ParamTensor::new("embeddings.ln.gamma".into(), &[d], None, emb));
    out.push(ParamTensor::new("embeddings.ln.beta".into(), &[d], None, emb));

    for l in 0..cfg.layers {
        let al = Category::AttnLinear;
        let ln = Category::DropResidualNorm;
        let fc = Category::FcGemm;
        for proj in ["q", "k", "v", "o"] {
            out.push(ParamTensor::new(format!("l{l}.attn.w{proj}"), &[d, d], Some(l), al));
            out.push(ParamTensor::new(format!("l{l}.attn.b{proj}"), &[d], Some(l), al));
        }
        out.push(ParamTensor::new(format!("l{l}.ln1.gamma"), &[d], Some(l), ln));
        out.push(ParamTensor::new(format!("l{l}.ln1.beta"), &[d], Some(l), ln));
        out.push(ParamTensor::new(format!("l{l}.fc1.weight"), &[d, cfg.d_ff], Some(l), fc));
        out.push(ParamTensor::new(format!("l{l}.fc1.bias"), &[cfg.d_ff], Some(l), fc));
        out.push(ParamTensor::new(format!("l{l}.fc2.weight"), &[cfg.d_ff, d], Some(l), fc));
        out.push(ParamTensor::new(format!("l{l}.fc2.bias"), &[d], Some(l), fc));
        out.push(ParamTensor::new(format!("l{l}.ln2.gamma"), &[d], Some(l), ln));
        out.push(ParamTensor::new(format!("l{l}.ln2.beta"), &[d], Some(l), ln));
    }

    let outp = Category::Output;
    out.push(ParamTensor::new("mlm.dense.weight".into(), &[d, d], None, outp));
    out.push(ParamTensor::new("mlm.dense.bias".into(), &[d], None, outp));
    out.push(ParamTensor::new("mlm.ln.gamma".into(), &[d], None, outp));
    out.push(ParamTensor::new("mlm.ln.beta".into(), &[d], None, outp));
    // The MLM decoder weight is tied to the word embeddings; only its bias
    // is a distinct parameter.
    out.push(ParamTensor::new("mlm.decoder.bias".into(), &[cfg.vocab], None, outp));
    out.push(ParamTensor::new("nsp.pooler.weight".into(), &[d, d], None, outp));
    out.push(ParamTensor::new("nsp.pooler.bias".into(), &[d], None, outp));
    out.push(ParamTensor::new("nsp.classifier.weight".into(), &[d, 2], None, outp));
    out.push(ParamTensor::new("nsp.classifier.bias".into(), &[2], None, outp));
    out
}

/// Total learnable parameter count of a configuration.
#[must_use]
pub fn parameter_count(cfg: &BertConfig) -> u64 {
    parameter_tensors(cfg).iter().map(ParamTensor::numel).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_has_roughly_340m_parameters() {
        // The paper describes BERT-Large as a ~340M-parameter model.
        let count = parameter_count(&BertConfig::bert_large());
        assert!((330_000_000..345_000_000).contains(&count), "BERT-Large parameter count {count}");
    }

    #[test]
    fn bert_base_has_roughly_110m_parameters() {
        let count = parameter_count(&BertConfig::bert_base());
        assert!((105_000_000..115_000_000).contains(&count), "BERT-Base parameter count {count}");
    }

    #[test]
    fn per_layer_tensor_inventory_is_16() {
        let cfg = BertConfig::bert_large();
        let tensors = parameter_tensors(&cfg);
        let layer0: Vec<_> = tensors.iter().filter(|t| t.layer == Some(0)).collect();
        assert_eq!(layer0.len(), 16, "8 attn + 2 ln1 + 4 fc + 2 ln2");
        // Every layer has the same inventory.
        for l in 1..cfg.layers {
            assert_eq!(tensors.iter().filter(|t| t.layer == Some(l)).count(), 16);
        }
    }

    #[test]
    fn layer_parameters_scale_quadratically_with_width() {
        // Paper Takeaway 11: parameter count is quadratic in d_model/d_ff.
        let narrow = BertConfig { d_model: 512, d_ff: 2048, heads: 8, ..BertConfig::bert_large() };
        let wide = BertConfig::bert_large();
        let layer_params = |cfg: &BertConfig| -> u64 {
            parameter_tensors(cfg)
                .iter()
                .filter(|t| t.layer == Some(0))
                .map(ParamTensor::numel)
                .sum()
        };
        let ratio = layer_params(&wide) as f64 / layer_params(&narrow) as f64;
        assert!((ratio - 4.0).abs() < 0.05, "2x width -> ~4x params, got {ratio}");
    }

    #[test]
    fn names_are_unique() {
        let tensors = parameter_tensors(&BertConfig::bert_large());
        let mut names: Vec<_> = tensors.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), tensors.len());
    }

    #[test]
    fn decoder_weight_is_tied_not_duplicated() {
        let tensors = parameter_tensors(&BertConfig::bert_large());
        assert!(!tensors.iter().any(|t| t.name == "mlm.decoder.weight"));
        assert!(tensors.iter().any(|t| t.name == "mlm.decoder.bias"));
    }
}
