//! The Table 2b GEMM inventory: architecture-agnostic GEMM sizes of every
//! BERT sub-layer, for the forward pass and both backward gradient passes.

use crate::config::BertConfig;
use bertscope_tensor::{Category, GemmSpec, Transpose};

/// The sub-layers of Table 2b that manifest as (batched) GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GemmSite {
    /// Q/K/V/output linear projections (`Linear` row).
    Linear,
    /// Attention-score batched GEMM (`Attn. Score` row).
    AttnScore,
    /// Attention-output batched GEMM (`Attn. O/p` row).
    AttnOutput,
    /// First feed-forward GEMM (`FC-1` row).
    Fc1,
    /// Second feed-forward GEMM (`FC-2` row).
    Fc2,
}

impl GemmSite {
    /// All Table 2b rows, in table order.
    #[must_use]
    pub fn all() -> &'static [GemmSite] {
        &[GemmSite::Linear, GemmSite::AttnScore, GemmSite::AttnOutput, GemmSite::Fc1, GemmSite::Fc2]
    }

    /// The trace [`Category`] this site's kernels belong to.
    #[must_use]
    pub fn category(self) -> Category {
        match self {
            GemmSite::Linear => Category::AttnLinear,
            GemmSite::AttnScore | GemmSite::AttnOutput => Category::AttnBgemm,
            GemmSite::Fc1 | GemmSite::Fc2 => Category::FcGemm,
        }
    }

    /// Row label as printed in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GemmSite::Linear => "Linear",
            GemmSite::AttnScore => "Attn. Score",
            GemmSite::AttnOutput => "Attn. O/p",
            GemmSite::Fc1 => "FC-1",
            GemmSite::Fc2 => "FC-2",
        }
    }
}

/// The three columns of Table 2b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GemmPass {
    /// Forward.
    Forward,
    /// Backward, activation gradient.
    BwdGradActivation,
    /// Backward, weight gradient (for the batched attention GEMMs: the
    /// gradient of the second operand).
    BwdGradWeight,
}

impl GemmPass {
    /// All columns, in table order.
    #[must_use]
    pub fn all() -> &'static [GemmPass] {
        &[GemmPass::Forward, GemmPass::BwdGradActivation, GemmPass::BwdGradWeight]
    }
}

/// The GEMM dimensions of `site`/`pass` for configuration `cfg` — the cell
/// of Table 2b, with `M`/`N`/`K` in the paper's weight-side-first
/// convention.
#[must_use]
pub fn gemm_spec(cfg: &BertConfig, site: GemmSite, pass: GemmPass) -> GemmSpec {
    use GemmPass::{BwdGradActivation, BwdGradWeight, Forward};
    use Transpose::{No, Yes};
    let d = cfg.d_model;
    let dff = cfg.d_ff;
    let t = cfg.tokens(); // n * B
    let n = cfg.seq_len;
    let dh = cfg.head_dim();
    let bh = cfg.batch * cfg.heads;
    match (site, pass) {
        // Linear: d_model x (n*B) x d_model in all three passes.
        (GemmSite::Linear, Forward) => GemmSpec::new(No, No, d, t, d),
        (GemmSite::Linear, BwdGradActivation) => GemmSpec::new(No, Yes, d, t, d),
        (GemmSite::Linear, BwdGradWeight) => GemmSpec::new(Yes, No, d, d, t),
        // Attn. Score: n x n x d/h fwd; n x d/h x n grad-act; d/h x n x n grad-wt.
        (GemmSite::AttnScore, Forward) => GemmSpec::batched(No, Yes, n, n, dh, bh),
        (GemmSite::AttnScore, BwdGradActivation) => GemmSpec::batched(No, No, n, dh, n, bh),
        (GemmSite::AttnScore, BwdGradWeight) => GemmSpec::batched(Yes, No, dh, n, n, bh),
        // Attn. O/p: d/h x n x n fwd and grad-act; n x n x d/h grad-wt.
        (GemmSite::AttnOutput, Forward) => GemmSpec::batched(No, No, dh, n, n, bh),
        (GemmSite::AttnOutput, BwdGradActivation) => GemmSpec::batched(No, Yes, dh, n, n, bh),
        (GemmSite::AttnOutput, BwdGradWeight) => GemmSpec::batched(Yes, No, n, n, dh, bh),
        // FC-1: d_ff x (n*B) x d_model fwd; transposed shapes backward.
        (GemmSite::Fc1, Forward) => GemmSpec::new(No, No, dff, t, d),
        (GemmSite::Fc1, BwdGradActivation) => GemmSpec::new(No, Yes, d, t, dff),
        (GemmSite::Fc1, BwdGradWeight) => GemmSpec::new(Yes, No, d, dff, t),
        // FC-2: d_model x (n*B) x d_ff fwd; transposed shapes backward.
        (GemmSite::Fc2, Forward) => GemmSpec::new(No, No, d, t, dff),
        (GemmSite::Fc2, BwdGradActivation) => GemmSpec::new(No, Yes, dff, t, d),
        (GemmSite::Fc2, BwdGradWeight) => GemmSpec::new(Yes, No, dff, d, t),
    }
}

/// All distinct GEMMs of one Transformer layer's training iteration —
/// the data behind paper Fig. 6. Returns `(site, pass, spec)` tuples in
/// table order; `Linear` appears once (the four projections share a shape).
#[must_use]
pub fn training_gemms(cfg: &BertConfig) -> Vec<(GemmSite, GemmPass, GemmSpec)> {
    let mut out = Vec::new();
    for &site in GemmSite::all() {
        for &pass in GemmPass::all() {
            out.push((site, pass, gemm_spec(cfg, site, pass)));
        }
    }
    out
}

/// The fused Q/K/V projection GEMM of paper §6.1.2 (Fig. 13): three
/// `d x (n*B) x d` GEMMs merged into one `3d x (n*B) x d` GEMM.
#[must_use]
pub fn fused_qkv_spec(cfg: &BertConfig, pass: GemmPass) -> GemmSpec {
    use Transpose::{No, Yes};
    let d = cfg.d_model;
    let t = cfg.tokens();
    match pass {
        GemmPass::Forward => GemmSpec::new(No, No, 3 * d, t, d),
        GemmPass::BwdGradActivation => GemmSpec::new(No, Yes, d, t, 3 * d),
        GemmPass::BwdGradWeight => GemmSpec::new(Yes, No, d, 3 * d, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::DType;

    #[test]
    fn table2b_cells_for_bert_large_phase1_b32() {
        let cfg = BertConfig::bert_large();
        // Linear FWD: d_model x n*B x d_model = 1024 x 4096 x 1024.
        let s = gemm_spec(&cfg, GemmSite::Linear, GemmPass::Forward);
        assert_eq!((s.m, s.n, s.k, s.batch), (1024, 4096, 1024, 1));
        // Attn Score FWD: n x n x d/h with batch B*h = 512.
        let s = gemm_spec(&cfg, GemmSite::AttnScore, GemmPass::Forward);
        assert_eq!((s.m, s.n, s.k, s.batch), (128, 128, 64, 512));
        // Attn Score BWD grad-act: n x d/h x n.
        let s = gemm_spec(&cfg, GemmSite::AttnScore, GemmPass::BwdGradActivation);
        assert_eq!((s.m, s.n, s.k), (128, 64, 128));
        // Attn O/p FWD: d/h x n x n.
        let s = gemm_spec(&cfg, GemmSite::AttnOutput, GemmPass::Forward);
        assert_eq!((s.m, s.n, s.k, s.batch), (64, 128, 128, 512));
        // FC-1 FWD: d_ff x n*B x d_model.
        let s = gemm_spec(&cfg, GemmSite::Fc1, GemmPass::Forward);
        assert_eq!((s.m, s.n, s.k), (4096, 4096, 1024));
        // FC-2 BWD grad-wt: d_ff x d_model x n*B.
        let s = gemm_spec(&cfg, GemmSite::Fc2, GemmPass::BwdGradWeight);
        assert_eq!((s.m, s.n, s.k), (4096, 1024, 4096));
    }

    #[test]
    fn every_pass_of_a_site_has_equal_flops() {
        // M/N/K permute across passes but the MAC count is invariant
        // per-site in Table 2b (each pass multiplies the same three dims).
        let cfg = BertConfig::bert_large();
        for &site in GemmSite::all() {
            let flops: Vec<u64> =
                GemmPass::all().iter().map(|&p| gemm_spec(&cfg, site, p).flops()).collect();
            assert_eq!(flops[0], flops[1], "{site:?}");
            assert_eq!(flops[0], flops[2], "{site:?}");
        }
    }

    #[test]
    fn fig6_ordering_fc_gt_linear_gt_attention_intensity() {
        // Paper Fig. 6: FC GEMMs most intense, linear GEMMs less, attention
        // batched GEMMs least.
        let cfg = BertConfig::bert_large();
        let ai = |site| gemm_spec(&cfg, site, GemmPass::Forward).arithmetic_intensity(DType::F32);
        assert!(ai(GemmSite::Fc1) > ai(GemmSite::Linear));
        assert!(ai(GemmSite::Linear) > ai(GemmSite::AttnScore));
        assert!(ai(GemmSite::Linear) > 4.0 * ai(GemmSite::AttnOutput));
    }

    #[test]
    fn attention_gemms_scale_quadratically_with_seq_len() {
        // Paper Takeaway 10 / §3.3.1: attention ops are quadratic in n.
        let short = BertConfig::bert_large().phase1(16);
        let long = BertConfig::bert_large().phase2(16);
        let f = |cfg: &BertConfig| gemm_spec(cfg, GemmSite::AttnScore, GemmPass::Forward).flops();
        assert_eq!(f(&long), 16 * f(&short), "4x n -> 16x flops at fixed B");
        // While FC GEMMs scale only linearly in n.
        let g = |cfg: &BertConfig| gemm_spec(cfg, GemmSite::Fc1, GemmPass::Forward).flops();
        assert_eq!(g(&long), 4 * g(&short));
    }

    #[test]
    fn batch_of_one_is_still_a_matrix_matrix_op() {
        // Paper Takeaway 5: unlike RNNs, B=1 does not degenerate to
        // matrix-vector.
        let cfg = BertConfig::bert_large().phase1(1);
        let s = gemm_spec(&cfg, GemmSite::Linear, GemmPass::Forward);
        assert!(s.m > 1 && s.n > 1 && s.k > 1);
        assert_eq!(s.n, 128, "N is the token count n*B = 128");
    }

    #[test]
    fn training_gemms_covers_all_cells() {
        let all = training_gemms(&BertConfig::bert_large());
        assert_eq!(all.len(), 15, "5 sites x 3 passes");
    }

    #[test]
    fn fused_qkv_preserves_flops_of_three_linears() {
        let cfg = BertConfig::bert_large();
        let one = gemm_spec(&cfg, GemmSite::Linear, GemmPass::Forward).flops();
        for &pass in GemmPass::all() {
            assert_eq!(fused_qkv_spec(&cfg, pass).flops(), 3 * one, "{pass:?}");
        }
    }
}
