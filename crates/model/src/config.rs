//! BERT model and training-input configurations (paper Table 2a).

use bertscope_tensor::TensorError;

/// Hyperparameters of a BERT-style encoder stack plus the input sizes of one
/// training iteration.
///
/// Symbols follow the paper's Table 2a: `N` layer count, `d_model` hidden
/// size, `h` attention heads, `d_ff` intermediate size, `n` sequence length,
/// `B` mini-batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BertConfig {
    /// Transformer encoder layer count `N`.
    pub layers: usize,
    /// Hidden dimension `d_model`.
    pub d_model: usize,
    /// Attention head count `h`.
    pub heads: usize,
    /// Feed-forward intermediate dimension `d_ff` (usually `4 * d_model`).
    pub d_ff: usize,
    /// WordPiece vocabulary size.
    pub vocab: usize,
    /// Maximum position embeddings (BERT uses 512).
    pub max_position: usize,
    /// Sequence length `n` of this iteration's inputs.
    pub seq_len: usize,
    /// Mini-batch size `B`.
    pub batch: usize,
}

impl BertConfig {
    /// BERT Base: 12 layers, `d_model` 768, 12 heads.
    #[must_use]
    pub fn bert_base() -> Self {
        BertConfig {
            layers: 12,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            vocab: 30_522,
            max_position: 512,
            seq_len: 128,
            batch: 32,
        }
    }

    /// BERT Large — the paper's primary subject (§3.1.3): 24 layers,
    /// `d_model` 1024, 16 heads, `d_ff` 4096, pre-training Phase-1 inputs
    /// (`n = 128`, `B = 32`).
    #[must_use]
    pub fn bert_large() -> Self {
        BertConfig {
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            vocab: 30_522,
            max_position: 512,
            seq_len: 128,
            batch: 32,
        }
    }

    /// A tiny configuration for executable tests (gradient checks, loss
    /// curves) — not a paper configuration.
    #[must_use]
    pub fn tiny() -> Self {
        BertConfig {
            layers: 2,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            vocab: 97,
            max_position: 32,
            seq_len: 12,
            batch: 2,
        }
    }

    /// The layer-size sweep configurations of paper Fig. 9.
    ///
    /// `C2` is BERT-Large; `C1` halves `d_model`/`d_ff`; `C3` doubles them
    /// (Megatron-LM-BERT-like, §3.3.2).
    #[must_use]
    pub fn figure9(which: LayerSizeConfig) -> Self {
        let base = BertConfig::bert_large();
        match which {
            LayerSizeConfig::C1 => BertConfig { d_model: 512, d_ff: 2048, heads: 8, ..base },
            LayerSizeConfig::C2 => base,
            LayerSizeConfig::C3 => BertConfig { d_model: 2048, d_ff: 8192, heads: 32, ..base },
        }
    }

    /// Switch to pre-training Phase-1 inputs (`n = 128`) with batch `b`.
    #[must_use]
    pub fn phase1(self, b: usize) -> Self {
        BertConfig { seq_len: 128, batch: b, ..self }
    }

    /// Switch to pre-training Phase-2 inputs (`n = 512`) with batch `b`.
    #[must_use]
    pub fn phase2(self, b: usize) -> Self {
        BertConfig { seq_len: 512, batch: b, ..self }
    }

    /// Head dimension `d_model / h`.
    ///
    /// # Panics
    ///
    /// Panics when `heads` is zero; use [`BertConfig::validate`] first.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Tokens processed per iteration: `n * B` (the quantity the paper's
    /// Takeaway 1 is parameterized by).
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.seq_len * self.batch
    }

    /// Number of masked-LM prediction positions per sequence: 15% of the
    /// sequence, matching BERT's masking rate.
    #[must_use]
    pub fn mlm_predictions_per_seq(&self) -> usize {
        ((self.seq_len as f64) * 0.15).round() as usize
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when a dimension is zero,
    /// `d_model` is not divisible by `heads`, or `seq_len` exceeds
    /// `max_position`.
    pub fn validate(&self) -> Result<(), TensorError> {
        let fields = [
            ("layers", self.layers),
            ("d_model", self.d_model),
            ("heads", self.heads),
            ("d_ff", self.d_ff),
            ("vocab", self.vocab),
            ("seq_len", self.seq_len),
            ("batch", self.batch),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(TensorError::InvalidArgument(format!("{name} must be non-zero")));
            }
        }
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(TensorError::InvalidArgument(format!(
                "d_model {} not divisible by heads {}",
                self.d_model, self.heads
            )));
        }
        if self.seq_len > self.max_position {
            return Err(TensorError::InvalidArgument(format!(
                "seq_len {} exceeds max_position {}",
                self.seq_len, self.max_position
            )));
        }
        Ok(())
    }
}

impl Default for BertConfig {
    fn default() -> Self {
        BertConfig::bert_large()
    }
}

/// A named configuration in the Transformer "zoo" of paper §2.3: models
/// that share BERT's structure at different sizes.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Model name.
    pub name: &'static str,
    /// Its configuration (decoder-only models use the same encoder-shaped
    /// iteration; paper §2.3: masking "does not affect training").
    pub config: BertConfig,
}

/// The Transformer model zoo the paper motivates (§1, §2.3): BERT variants
/// plus BERT-structured stand-ins for the larger models it cites, at
/// pre-training Phase-1-style inputs scaled to each model's context.
#[must_use]
pub fn model_zoo() -> Vec<ZooEntry> {
    let entry = |name, layers, d_model, heads, seq_len, batch| ZooEntry {
        name,
        config: BertConfig {
            layers,
            d_model,
            heads,
            d_ff: 4 * d_model,
            vocab: 30_522,
            max_position: 2048,
            seq_len,
            batch,
        },
    };
    vec![
        entry("BERT-Base", 12, 768, 12, 128, 32),
        entry("BERT-Large", 24, 1024, 16, 128, 32),
        // RoBERTa-Large shares BERT-Large's architecture.
        entry("RoBERTa-Large", 24, 1024, 16, 128, 32),
        // GPT-2 XL: 48 x 1600, 25 heads, 1024-token context.
        entry("GPT-2-XL", 48, 1600, 25, 1024, 4),
        // Megatron-BERT 3.9B-class: 48 x 2560.
        entry("Megatron-BERT-3.9B", 48, 2560, 40, 128, 16),
    ]
}

/// The three layer-size configurations of paper Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSizeConfig {
    /// Half of BERT-Large's hidden sizes.
    C1,
    /// BERT-Large itself.
    C2,
    /// Twice BERT-Large's hidden sizes (Megatron-LM-BERT-like).
    C3,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_matches_paper_section_313() {
        let c = BertConfig::bert_large();
        assert_eq!(c.layers, 24);
        assert_eq!(c.d_model, 1024);
        assert_eq!(c.heads, 16);
        assert_eq!(c.d_ff, 4 * c.d_model);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.tokens(), 4096);
        c.validate().unwrap();
    }

    #[test]
    fn phase_switches_set_sequence_length() {
        let p1 = BertConfig::bert_large().phase1(4);
        assert_eq!((p1.seq_len, p1.batch), (128, 4));
        let p2 = BertConfig::bert_large().phase2(4);
        assert_eq!((p2.seq_len, p2.batch), (512, 4));
        // Ph1-B16 and Ph2-B4 have the same token count (paper §3.3.1).
        assert_eq!(BertConfig::bert_large().phase1(16).tokens(), p2.tokens());
    }

    #[test]
    fn figure9_configs_scale_hidden_sizes() {
        let c1 = BertConfig::figure9(LayerSizeConfig::C1);
        let c2 = BertConfig::figure9(LayerSizeConfig::C2);
        let c3 = BertConfig::figure9(LayerSizeConfig::C3);
        assert_eq!(c1.d_model * 2, c2.d_model);
        assert_eq!(c2.d_model * 2, c3.d_model);
        assert_eq!(c3.d_ff, 4 * c3.d_model);
        for c in [c1, c2, c3] {
            c.validate().unwrap();
            assert_eq!(c.head_dim(), 64, "sweep keeps head size fixed");
        }
    }

    #[test]
    fn mlm_prediction_counts() {
        assert_eq!(BertConfig::bert_large().phase1(32).mlm_predictions_per_seq(), 19);
        assert_eq!(BertConfig::bert_large().phase2(4).mlm_predictions_per_seq(), 77);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = BertConfig::bert_large();
        c.heads = 3;
        assert!(c.validate().is_err());
        let mut c = BertConfig::bert_large();
        c.seq_len = 1024;
        assert!(c.validate().is_err());
        let mut c = BertConfig::bert_large();
        c.batch = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn model_zoo_entries_are_valid_and_ordered_by_size() {
        let zoo = model_zoo();
        assert!(zoo.len() >= 5);
        for e in &zoo {
            e.config.validate().unwrap_or_else(|err| panic!("{}: {err}", e.name));
        }
        let params: Vec<u64> =
            zoo.iter().map(|e| crate::params::parameter_count(&e.config)).collect();
        // BERT-Base ~110M < BERT-Large ~340M < GPT-2-XL ~1.5B < Megatron ~3.9B.
        assert!((100_000_000..120_000_000).contains(&params[0]), "base {}", params[0]);
        assert!((330_000_000..345_000_000).contains(&params[1]), "large {}", params[1]);
        let gpt = params[3];
        assert!((1_400_000_000..1_700_000_000).contains(&gpt), "gpt2-xl {gpt}");
        let megatron = params[4];
        assert!((3_600_000_000..4_200_000_000).contains(&megatron), "megatron {megatron}");
    }

    #[test]
    fn tiny_config_is_valid_and_small() {
        let c = BertConfig::tiny();
        c.validate().unwrap();
        assert!(c.tokens() < 64);
    }
}
