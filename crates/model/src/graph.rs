//! Analytic operator graph of one BERT training iteration.
//!
//! [`build_iteration`] produces the same [`OpRecord`] stream that executing
//! the `bertscope-train` substrate produces (minus pure-copy data movements),
//! without running any arithmetic. This is what lets the suite characterize
//! BERT-Large-scale configurations — the integration tests cross-validate
//! the two streams on executable configurations, and every figure is driven
//! by this graph.
//!
//! The byte/FLOP formulas here are intentionally identical to those in the
//! kernels crate: any edit to one side must be mirrored on the other. The
//! `trace_matches_graph` integration test catches a divergence between the
//! two sides, and the independent recomputation in `bertscope-check` (run
//! over both streams in tests and over every paper configuration by the
//! `opcheck` CI gate) catches an error mirrored *on both sides at once*.

use crate::config::BertConfig;
use crate::gemms::{fused_qkv_spec, gemm_spec, GemmPass, GemmSite};
use crate::params::{parameter_tensors, ParamTensor};
use bertscope_tensor::{
    AccessSet, BufId, Category, DType, Epilogue, GemmSpec, OpKind, OpRecord, Phase,
};
use std::collections::BTreeMap;

/// Symbolic buffer environment: stable [`BufId`]s for the *named* logical
/// buffers of the analytic graph (weights `w.*`, activations `act.*`,
/// gradients `g.*`, optimizer state `opt.*`, external inputs `in.*`).
///
/// One environment is shared across every phase of an iteration so the
/// backward and optimizer records reference the very same buffers the
/// forward records produced — which is what lets `bertscope-check`'s
/// dependence/hazard analyses treat a graph-built stream exactly like a
/// traced one. Ids are minted from the same process-global counter real
/// [`bertscope_tensor::Buffer`]s use, so symbolic and concrete ids never
/// collide.
#[derive(Debug, Default)]
pub struct BufEnv {
    ids: BTreeMap<String, BufId>,
}

impl BufEnv {
    /// An empty environment.
    #[must_use]
    pub fn new() -> Self {
        BufEnv::default()
    }

    /// Get-or-mint the id of a named logical buffer.
    pub fn named(&mut self, name: &str) -> BufId {
        *self.ids.entry(name.to_owned()).or_insert_with(BufId::fresh)
    }

    /// Ids of every buffer whose name starts with `prefix`, in name order.
    #[must_use]
    pub fn with_prefix(&self, prefix: &str) -> Vec<BufId> {
        self.ids.iter().filter(|(n, _)| n.starts_with(prefix)).map(|(_, id)| *id).collect()
    }

    /// Number of distinct named buffers minted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no buffer has been named yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Numeric precision mode of the iteration (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Single precision everywhere.
    #[default]
    Fp32,
    /// Mixed precision: forward/backward in f16, loss and optimizer in f32
    /// (the paper's "FP16" configurations).
    Mixed,
    /// Mixed precision with bfloat16 activations/weights: same byte counts
    /// as [`Precision::Mixed`], wider dynamic range (no loss scaling
    /// needed). Included for the paper's "more aggressive quantization"
    /// projection (§3.2.1).
    MixedBf16,
}

impl Precision {
    /// The dtype of forward/backward activations and weights.
    #[must_use]
    pub fn activation_dtype(self) -> DType {
        match self {
            Precision::Fp32 => DType::F32,
            Precision::Mixed => DType::F16,
            Precision::MixedBf16 => DType::BF16,
        }
    }

    /// Whether the forward/backward data is a 16-bit type.
    #[must_use]
    pub fn is_reduced(self) -> bool {
        !matches!(self, Precision::Fp32)
    }
}

/// Which optimizer's update ops to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerChoice {
    /// LAMB (paper §2.4): two fused stages per parameter tensor plus a
    /// global gradient norm.
    #[default]
    Lamb,
    /// Adam: one fused kernel per parameter tensor (used by the paper's
    /// fusion study, Fig. 12a).
    Adam,
    /// No update phase (inference-like iteration).
    None,
}

/// Options controlling graph construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphOptions {
    /// Precision mode.
    pub precision: Precision,
    /// Optimizer.
    pub optimizer: OptimizerChoice,
    /// Apply activation checkpointing at `sqrt(N)` segment boundaries
    /// (paper §4).
    pub checkpoint: bool,
    /// Execute the Q/K/V projections as one fused GEMM (paper §6.1.2).
    pub fused_qkv: bool,
    /// Execute GeLU as a single fused kernel instead of the unfused chain
    /// of elementwise kernels the paper's PyTorch baseline launches
    /// (§3.2.3: "when invoked as separate kernels, these operations have
    /// very low ops/byte ratios"). The executable substrate runs the fused
    /// form, so trace cross-validation sets this to `true`; the paper's
    /// figures use the unfused default.
    pub fused_gelu: bool,
    /// Fold elementwise epilogues into the producing GEMM's writeback
    /// (paper §6.1.3): FC-1 emits one `bias+GeLU` GEMM record instead of a
    /// GEMM plus a GeLU kernel, and the attention-score B-GEMM absorbs the
    /// scale and mask kernels. Bias epilogues on plain linears are always
    /// folded (the substrate applies them cache-hot unconditionally); this
    /// flag controls only the deeper fusions that change kernel counts.
    pub fused_epilogue: bool,
}

/// Internal record builder bound to a category/phase/layer/dtype.
///
/// Call [`Emit::rw`] immediately before `gemm`/`op` to attach the named
/// read/write buffer sets of the next record; the pending access set is
/// consumed by the push, so an un-annotated record is opaque (empty set).
struct Emit<'a> {
    out: &'a mut Vec<OpRecord>,
    env: &'a mut BufEnv,
    acc: AccessSet,
    phase: Phase,
    layer: Option<usize>,
    dtype: DType,
}

impl Emit<'_> {
    fn name(&self, prefix: &str, op: &str) -> String {
        match self.layer {
            Some(l) => format!("l{l}.{prefix}.{op}.{}", self.phase),
            None => format!("{prefix}.{op}.{}", self.phase),
        }
    }

    /// Stage the read/write buffer names of the next emitted record.
    fn rw(&mut self, reads: &[&str], writes: &[&str]) {
        self.acc = AccessSet {
            reads: reads.iter().map(|n| self.env.named(n)).collect(),
            writes: writes.iter().map(|n| self.env.named(n)).collect(),
            ..AccessSet::default()
        };
    }

    fn gemm(&mut self, prefix: &str, op: &str, cat: Category, spec: GemmSpec) {
        let kind = if spec.batch > 1 { OpKind::BatchedGemm } else { OpKind::Gemm };
        self.out.push(OpRecord {
            access: std::mem::take(&mut self.acc),
            name: self.name(prefix, op),
            kind,
            category: cat,
            phase: self.phase,
            layer: self.layer,
            gemm: Some(spec),
            flops: spec.flops(),
            bytes_read: spec.bytes_read(self.dtype),
            bytes_written: spec.bytes_written(self.dtype),
            dtype: self.dtype,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn op(
        &mut self,
        prefix: &str,
        op: &str,
        cat: Category,
        kind: OpKind,
        flops: u64,
        bytes_read: u64,
        bytes_written: u64,
    ) {
        self.out.push(OpRecord {
            access: std::mem::take(&mut self.acc),
            name: self.name(prefix, op),
            kind,
            category: cat,
            phase: self.phase,
            layer: self.layer,
            gemm: None,
            flops,
            bytes_read,
            bytes_written,
            dtype: self.dtype,
        });
    }
}

/// Byte/FLOP helpers mirroring the kernels crate exactly.
struct K {
    es: u64,
}

impl K {
    fn new(dt: DType) -> Self {
        K { es: dt.size_bytes() }
    }
    fn scale(&self, n: u64) -> (u64, u64, u64) {
        (n, n * self.es, n * self.es)
    }
    fn mask(&self, n: u64) -> (u64, u64, u64) {
        (n, 2 * n * self.es, n * self.es)
    }
    fn residual(&self, n: u64) -> (u64, u64, u64) {
        (n, 2 * n * self.es, n * self.es)
    }
    fn softmax_fwd(&self, n: u64) -> (u64, u64, u64) {
        (5 * n, n * self.es, n * self.es)
    }
    fn softmax_bwd(&self, n: u64) -> (u64, u64, u64) {
        (4 * n, 2 * n * self.es, n * self.es)
    }
    fn dropout(&self, n: u64) -> (u64, u64, u64) {
        (n, n * self.es + n, n * self.es)
    }
    fn gelu_fwd(&self, n: u64) -> (u64, u64, u64) {
        (12 * n, n * self.es, n * self.es)
    }
    fn gelu_bwd(&self, n: u64) -> (u64, u64, u64) {
        (14 * n, 2 * n * self.es, n * self.es)
    }
    fn layernorm_fwd(&self, n: u64, len: u64) -> (u64, u64, u64) {
        (8 * n, n * self.es + 2 * len * self.es, n * self.es)
    }
    fn layernorm_bwd(&self, n: u64, len: u64) -> (u64, u64, u64) {
        (11 * n, 2 * n * self.es + len * self.es, n * self.es + 2 * len * 4)
    }
    fn grad_bias(&self, rows: u64, cols: u64) -> (u64, u64, u64) {
        (rows * cols, rows * cols * self.es, cols * 4)
    }
    fn gather(&self, n: u64, ids: u64) -> (u64, u64, u64) {
        (0, n * self.es + ids * 4, n * self.es)
    }
    fn scatter_add(&self, n: u64, ids: u64) -> (u64, u64, u64) {
        (n, n * self.es + ids * 4, n * self.es)
    }
    fn xent_fwd(&self, n: u64, rows: u64) -> (u64, u64, u64) {
        (6 * n, n * self.es + rows * 4, n * 4)
    }
    fn xent_bwd(&self, n: u64, rows: u64) -> (u64, u64, u64) {
        (2 * n, n * 4 + rows * 4, n * self.es)
    }
    fn tanh_fwd(&self, n: u64) -> (u64, u64, u64) {
        (5 * n, n * self.es, n * self.es)
    }
    fn tanh_bwd(&self, n: u64) -> (u64, u64, u64) {
        (3 * n, 2 * n * self.es, n * self.es)
    }
}

macro_rules! emit_op {
    ($e:expr, $prefix:expr, $op:expr, $cat:expr, $kind:expr, $triple:expr) => {{
        let (f, br, bw) = $triple;
        $e.op($prefix, $op, $cat, $kind, f, br, bw);
    }};
}

/// Emit GeLU forward: one fused kernel, or the unfused five-kernel chain
/// (`x/sqrt(2)`, `erf`, `1 + t`, `x * t`, `* 0.5`) the paper's baseline
/// launches. `x`/`y` name the input and output buffers; the unfused chain
/// threads intermediates `{y}.t{i}`.
#[allow(clippy::too_many_arguments)]
fn emit_gelu_fwd(
    e: &mut Emit<'_>,
    k: &K,
    prefix: &str,
    cat: Category,
    n: u64,
    fused: bool,
    x: &str,
    y: &str,
) {
    if fused {
        e.rw(&[x], &[y]);
        emit_op!(e, prefix, "gelu", cat, OpKind::ElementWise, k.gelu_fwd(n));
    } else {
        let es = k.es;
        // (name, flops, reads, extra input besides the previous temp)
        let steps: [(&str, u64, u64, bool); 5] = [
            ("gelu.scale_in", n, 1, false), // x / sqrt(2)
            ("gelu.erf", 8 * n, 1, false),  // erf(t)
            ("gelu.add_one", n, 1, false),  // 1 + t
            ("gelu.mul_x", n, 2, true),     // x * t
            ("gelu.half", n, 1, false),     // * 0.5
        ];
        let last = steps.len() - 1;
        let mut prev = x.to_owned();
        for (i, (name, flops, reads, takes_x)) in steps.into_iter().enumerate() {
            let out = if i == last { y.to_owned() } else { format!("{y}.t{i}") };
            if takes_x {
                e.rw(&[&prev, x], &[&out]);
            } else {
                e.rw(&[&prev], &[&out]);
            }
            e.op(prefix, name, cat, OpKind::ElementWise, flops, reads * n * es, n * es);
            prev = out;
        }
    }
}

/// Emit GeLU backward: one fused kernel, or the unfused seven-kernel
/// autograd chain (recompute the normal PDF and CDF terms, combine, apply
/// the incoming gradient). `x` names the saved forward input, `dy` the
/// incoming gradient and `dx` the produced gradient.
#[allow(clippy::too_many_arguments)]
fn emit_gelu_bwd(
    e: &mut Emit<'_>,
    k: &K,
    prefix: &str,
    cat: Category,
    n: u64,
    fused: bool,
    x: &str,
    dy: &str,
    dx: &str,
) {
    if fused {
        e.rw(&[x, dy], &[dx]);
        emit_op!(e, prefix, "gelu", cat, OpKind::ElementWise, k.gelu_bwd(n));
    } else {
        let es = k.es;
        // (name, flops, reads, extra input: 0 = none, 1 = x, 2 = dy)
        let steps: [(&str, u64, u64, u8); 7] = [
            ("gelu.square", n, 1, 0),  // -x^2/2 (prev is already x)
            ("gelu.exp", 2 * n, 1, 0), // exp
            ("gelu.pdf_mul", n, 2, 1), // x * pdf
            ("gelu.erf", 8 * n, 1, 1), // erf(x/sqrt(2)) again
            ("gelu.cdf", 2 * n, 1, 0), // 0.5 * (1 + erf)
            ("gelu.sum", n, 2, 0),     // cdf + x*pdf
            ("gelu.dy_mul", n, 2, 2),  // * dy
        ];
        let last = steps.len() - 1;
        let mut prev = x.to_owned();
        for (i, (name, flops, reads, extra)) in steps.into_iter().enumerate() {
            let out = if i == last { dx.to_owned() } else { format!("{dx}.t{i}") };
            match extra {
                1 => e.rw(&[&prev, x], &[&out]),
                2 => e.rw(&[&prev, dy], &[&out]),
                _ => e.rw(&[&prev], &[&out]),
            }
            e.op(prefix, name, cat, OpKind::ElementWise, flops, reads * n * es, n * es);
            prev = out;
        }
    }
}

/// The buffer name of a Transformer layer's input activation.
fn layer_input_name(layer: usize) -> String {
    if layer == 0 {
        "act.emb".to_owned()
    } else {
        format!("act.l{}.out", layer - 1)
    }
}

/// Forward ops of one Transformer layer (also used for checkpoint
/// recomputation with `phase = Phase::Recompute`).
#[must_use]
pub fn layer_forward_ops(
    cfg: &BertConfig,
    opts: &GraphOptions,
    layer: usize,
    phase: Phase,
) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    layer_forward_ops_in(cfg, opts, layer, phase, &mut env)
}

/// [`layer_forward_ops`] against a caller-provided buffer environment, so
/// ids stay consistent across the phases of one iteration.
#[must_use]
pub fn layer_forward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    layer: usize,
    phase: Phase,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase,
        layer: Some(layer),
        dtype: dt,
    };
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let act = t * d; // [T, d] activation numel
    let scores = (cfg.batch * cfg.heads * cfg.seq_len * cfg.seq_len) as u64;
    let inter = t * cfg.d_ff as u64;

    use Category as C;
    use OpKind as O;

    let l = layer;
    let x_in = layer_input_name(l);
    let a = |s: &str| format!("act.l{l}.{s}");
    let w = |s: &str| format!("w.l{l}.{s}");

    // Attention: Q/K/V projections. The bias is applied in the GEMM
    // epilogue, mirroring the substrate's unconditional bias fusion.
    if opts.fused_qkv {
        e.rw(&[&x_in, &w("attn.qkv"), &w("attn.qkv.bias")], &[&a("qkv")]);
        e.gemm(
            "attn",
            "gemm",
            C::AttnLinear,
            fused_qkv_spec(cfg, GemmPass::Forward).with_epilogue(Epilogue::Bias),
        );
    } else {
        for i in 0..3 {
            e.rw(
                &[&x_in, &w(&format!("attn.qkv{i}")), &w(&format!("attn.qkv{i}.bias"))],
                &[&a(&format!("qkv{i}"))],
            );
            e.gemm(
                "attn",
                "gemm",
                C::AttnLinear,
                gemm_spec(cfg, GemmSite::Linear, GemmPass::Forward).with_epilogue(Epilogue::Bias),
            );
        }
    }
    let (q, key, v) = if opts.fused_qkv {
        (a("qkv"), a("qkv"), a("qkv"))
    } else {
        (a("qkv0"), a("qkv1"), a("qkv2"))
    };
    // Score B-GEMM, scale, mask, softmax, dropout. With epilogue fusion the
    // scale and mask fold into the score GEMM's writeback (paper §6.1.3).
    if opts.fused_epilogue {
        e.rw(&[&q, &key, "in.attn_mask"], &[&a("scores_masked")]);
        e.gemm(
            "attn",
            "score",
            C::AttnBgemm,
            gemm_spec(cfg, GemmSite::AttnScore, GemmPass::Forward)
                .with_epilogue(Epilogue::ScaleMask),
        );
    } else {
        e.rw(&[&q, &key], &[&a("scores")]);
        e.gemm(
            "attn",
            "score",
            C::AttnBgemm,
            gemm_spec(cfg, GemmSite::AttnScore, GemmPass::Forward),
        );
        e.rw(&[&a("scores")], &[&a("scores_scaled")]);
        emit_op!(e, "attn", "scale", C::ScaleMaskSoftmaxDropout, O::ElementWise, k.scale(scores));
        e.rw(&[&a("scores_scaled"), "in.attn_mask"], &[&a("scores_masked")]);
        emit_op!(e, "attn", "mask", C::ScaleMaskSoftmaxDropout, O::ElementWise, k.mask(scores));
    }
    e.rw(&[&a("scores_masked")], &[&a("probs")]);
    emit_op!(e, "attn", "softmax", C::ScaleMaskSoftmaxDropout, O::Reduction, k.softmax_fwd(scores));
    e.rw(&[&a("probs"), &a("dropmask.attn")], &[&a("probs_d")]);
    emit_op!(e, "attn", "dropout", C::ScaleMaskSoftmaxDropout, O::ElementWise, k.dropout(scores));
    // Context B-GEMM and output projection.
    e.rw(&[&a("probs_d"), &v], &[&a("ctx")]);
    e.gemm(
        "attn",
        "context",
        C::AttnBgemm,
        gemm_spec(cfg, GemmSite::AttnOutput, GemmPass::Forward),
    );
    e.rw(&[&a("ctx"), &w("attn.out"), &w("attn.out.bias")], &[&a("attn_out")]);
    e.gemm(
        "attn_out",
        "gemm",
        C::AttnLinear,
        gemm_spec(cfg, GemmSite::Linear, GemmPass::Forward).with_epilogue(Epilogue::Bias),
    );
    // Post-attention dropout + residual + LayerNorm.
    e.rw(&[&a("attn_out"), &a("dropmask.post_attn")], &[&a("attn_drop")]);
    emit_op!(e, "post_attn", "dropout", C::DropResidualNorm, O::ElementWise, k.dropout(act));
    e.rw(&[&a("attn_drop"), &x_in], &[&a("res1")]);
    emit_op!(e, "post_attn", "residual", C::DropResidualNorm, O::ElementWise, k.residual(act));
    e.rw(&[&a("res1"), &w("ln1")], &[&a("ln1")]);
    emit_op!(e, "ln1", "layernorm", C::DropResidualNorm, O::Reduction, k.layernorm_fwd(act, d));
    // Feed-forward: FC-1, GeLU, FC-2. With epilogue fusion FC-1 computes
    // bias+GeLU at writeback, emitting both the pre-activation (kept for
    // backward) and the activated output in one record.
    if opts.fused_epilogue {
        e.rw(&[&a("ln1"), &w("fc1"), &w("fc1.bias")], &[&a("fc1"), &a("gelu")]);
        e.gemm(
            "fc1",
            "gemm",
            C::FcGemm,
            gemm_spec(cfg, GemmSite::Fc1, GemmPass::Forward).with_epilogue(Epilogue::BiasGelu),
        );
    } else {
        e.rw(&[&a("ln1"), &w("fc1"), &w("fc1.bias")], &[&a("fc1")]);
        e.gemm(
            "fc1",
            "gemm",
            C::FcGemm,
            gemm_spec(cfg, GemmSite::Fc1, GemmPass::Forward).with_epilogue(Epilogue::Bias),
        );
        emit_gelu_fwd(&mut e, &k, "ffn", C::Gelu, inter, opts.fused_gelu, &a("fc1"), &a("gelu"));
    }
    e.rw(&[&a("gelu"), &w("fc2"), &w("fc2.bias")], &[&a("fc2")]);
    e.gemm(
        "fc2",
        "gemm",
        C::FcGemm,
        gemm_spec(cfg, GemmSite::Fc2, GemmPass::Forward).with_epilogue(Epilogue::Bias),
    );
    // Post-FC dropout + residual + LayerNorm.
    e.rw(&[&a("fc2"), &a("dropmask.post_ffn")], &[&a("ffn_drop")]);
    emit_op!(e, "post_ffn", "dropout", C::DropResidualNorm, O::ElementWise, k.dropout(act));
    e.rw(&[&a("ffn_drop"), &a("ln1")], &[&a("res2")]);
    emit_op!(e, "post_ffn", "residual", C::DropResidualNorm, O::ElementWise, k.residual(act));
    e.rw(&[&a("res2"), &w("ln2")], &[&a("out")]);
    emit_op!(e, "ln2", "layernorm", C::DropResidualNorm, O::Reduction, k.layernorm_fwd(act, d));
    out
}

/// Backward ops of one Transformer layer.
#[must_use]
pub fn layer_backward_ops(cfg: &BertConfig, opts: &GraphOptions, layer: usize) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    layer_backward_ops_in(cfg, opts, layer, &mut env)
}

/// [`layer_backward_ops`] against a caller-provided buffer environment.
#[must_use]
pub fn layer_backward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    layer: usize,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Backward,
        layer: Some(layer),
        dtype: dt,
    };
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let act = t * d;
    let scores = (cfg.batch * cfg.heads * cfg.seq_len * cfg.seq_len) as u64;
    let inter = t * cfg.d_ff as u64;

    use Category as C;
    use OpKind as O;

    let l = layer;
    let x_in = layer_input_name(l);
    let g_in = format!("g.{x_in}");
    let a = |s: &str| format!("act.l{l}.{s}");
    let g = |s: &str| format!("g.act.l{l}.{s}");
    let w = |s: &str| format!("w.l{l}.{s}");
    let gw = |s: &str| format!("g.w.l{l}.{s}");

    // Post-FC LN + dropout backward.
    e.rw(&[&a("res2"), &w("ln2"), &g("out")], &[&g("res2"), &gw("ln2")]);
    emit_op!(e, "ln2", "layernorm", C::DropResidualNorm, O::Reduction, k.layernorm_bwd(act, d));
    e.rw(&[&g("res2"), &a("dropmask.post_ffn")], &[&g("fc2")]);
    emit_op!(e, "post_ffn", "dropout", C::DropResidualNorm, O::ElementWise, k.dropout(act));
    // FC-2 backward: grad-activation GEMM, grad-weight GEMM, bias reduction.
    e.rw(&[&g("fc2"), &w("fc2")], &[&g("gelu")]);
    e.gemm(
        "fc2",
        "grad_act",
        C::FcGemm,
        gemm_spec(cfg, GemmSite::Fc2, GemmPass::BwdGradActivation),
    );
    e.rw(&[&a("gelu"), &g("fc2")], &[&gw("fc2")]);
    e.gemm("fc2", "grad_wt", C::FcGemm, gemm_spec(cfg, GemmSite::Fc2, GemmPass::BwdGradWeight));
    e.rw(&[&g("fc2")], &[&gw("fc2.bias")]);
    emit_op!(e, "fc2", "grad_bias", C::FcGemm, O::Reduction, k.grad_bias(t, d));
    // GeLU backward.
    emit_gelu_bwd(
        &mut e,
        &k,
        "ffn",
        C::Gelu,
        inter,
        opts.fused_gelu,
        &a("fc1"),
        &g("gelu"),
        &g("fc1"),
    );
    // FC-1 backward.
    e.rw(&[&g("fc1"), &w("fc1")], &[&g("ln1.ffn")]);
    e.gemm(
        "fc1",
        "grad_act",
        C::FcGemm,
        gemm_spec(cfg, GemmSite::Fc1, GemmPass::BwdGradActivation),
    );
    e.rw(&[&a("ln1"), &g("fc1")], &[&gw("fc1")]);
    e.gemm("fc1", "grad_wt", C::FcGemm, gemm_spec(cfg, GemmSite::Fc1, GemmPass::BwdGradWeight));
    e.rw(&[&g("fc1")], &[&gw("fc1.bias")]);
    emit_op!(e, "fc1", "grad_bias", C::FcGemm, O::Reduction, k.grad_bias(t, cfg.d_ff as u64));
    // Residual-path gradient accumulation for the FFN sub-layer.
    e.rw(&[&g("res2"), &g("ln1.ffn")], &[&g("ln1")]);
    emit_op!(e, "post_ffn", "residual", C::DropResidualNorm, O::ElementWise, k.residual(act));
    // Post-attention LN + dropout backward.
    e.rw(&[&a("res1"), &w("ln1"), &g("ln1")], &[&g("res1"), &gw("ln1")]);
    emit_op!(e, "ln1", "layernorm", C::DropResidualNorm, O::Reduction, k.layernorm_bwd(act, d));
    e.rw(&[&g("res1"), &a("dropmask.post_attn")], &[&g("attn_out")]);
    emit_op!(e, "post_attn", "dropout", C::DropResidualNorm, O::ElementWise, k.dropout(act));
    // Attention backward: output projection.
    e.rw(&[&g("attn_out"), &w("attn.out")], &[&g("ctx")]);
    e.gemm(
        "attn_out",
        "grad_act",
        C::AttnLinear,
        gemm_spec(cfg, GemmSite::Linear, GemmPass::BwdGradActivation),
    );
    e.rw(&[&a("ctx"), &g("attn_out")], &[&gw("attn.out")]);
    e.gemm(
        "attn_out",
        "grad_wt",
        C::AttnLinear,
        gemm_spec(cfg, GemmSite::Linear, GemmPass::BwdGradWeight),
    );
    e.rw(&[&g("attn_out")], &[&gw("attn.out.bias")]);
    emit_op!(e, "attn_out", "grad_bias", C::AttnLinear, O::Reduction, k.grad_bias(t, d));
    // Context B-GEMM backward.
    let (q, key, v, gq, gk, gv) = if opts.fused_qkv {
        (a("qkv"), a("qkv"), a("qkv"), g("qkv"), g("qkv"), g("qkv"))
    } else {
        (a("qkv0"), a("qkv1"), a("qkv2"), g("qkv0"), g("qkv1"), g("qkv2"))
    };
    e.rw(&[&g("ctx"), &v], &[&g("probs_d")]);
    e.gemm(
        "attn",
        "context.grad_act",
        C::AttnBgemm,
        gemm_spec(cfg, GemmSite::AttnOutput, GemmPass::BwdGradActivation),
    );
    e.rw(&[&a("probs_d"), &g("ctx")], &[&gv]);
    e.gemm(
        "attn",
        "context.grad_v",
        C::AttnBgemm,
        gemm_spec(cfg, GemmSite::AttnOutput, GemmPass::BwdGradWeight),
    );
    // Dropout, softmax, scale backward.
    e.rw(&[&g("probs_d"), &a("dropmask.attn")], &[&g("probs")]);
    emit_op!(e, "attn", "dropout", C::ScaleMaskSoftmaxDropout, O::ElementWise, k.dropout(scores));
    e.rw(&[&a("probs"), &g("probs")], &[&g("scores_masked")]);
    emit_op!(e, "attn", "softmax", C::ScaleMaskSoftmaxDropout, O::Reduction, k.softmax_bwd(scores));
    e.rw(&[&g("scores_masked")], &[&g("scores")]);
    emit_op!(e, "attn", "scale", C::ScaleMaskSoftmaxDropout, O::ElementWise, k.scale(scores));
    // Score B-GEMM backward.
    e.rw(&[&g("scores"), &key], &[&gq]);
    e.gemm(
        "attn",
        "score.grad_q",
        C::AttnBgemm,
        gemm_spec(cfg, GemmSite::AttnScore, GemmPass::BwdGradActivation),
    );
    e.rw(&[&g("scores"), &q], &[&gk]);
    e.gemm(
        "attn",
        "score.grad_k",
        C::AttnBgemm,
        gemm_spec(cfg, GemmSite::AttnScore, GemmPass::BwdGradWeight),
    );
    // Q/K/V projection backward. Each projection's grad-activation GEMM
    // accumulates into the shared layer-input gradient.
    if opts.fused_qkv {
        e.rw(&[&g("qkv"), &w("attn.qkv")], &[&g("in")]);
        e.gemm("attn", "grad_act", C::AttnLinear, fused_qkv_spec(cfg, GemmPass::BwdGradActivation));
        e.rw(&[&x_in, &g("qkv")], &[&gw("attn.qkv")]);
        e.gemm("attn", "grad_wt", C::AttnLinear, fused_qkv_spec(cfg, GemmPass::BwdGradWeight));
        e.rw(&[&g("qkv")], &[&gw("attn.qkv.bias")]);
        emit_op!(e, "attn", "grad_bias", C::AttnLinear, O::Reduction, k.grad_bias(t, 3 * d));
    } else {
        for i in 0..3 {
            let gi = g(&format!("qkv{i}"));
            e.rw(&[&gi, &w(&format!("attn.qkv{i}"))], &[&g("in")]);
            e.gemm(
                "attn",
                "grad_act",
                C::AttnLinear,
                gemm_spec(cfg, GemmSite::Linear, GemmPass::BwdGradActivation),
            );
            e.rw(&[&x_in, &gi], &[&gw(&format!("attn.qkv{i}"))]);
            e.gemm(
                "attn",
                "grad_wt",
                C::AttnLinear,
                gemm_spec(cfg, GemmSite::Linear, GemmPass::BwdGradWeight),
            );
            e.rw(&[&gi], &[&gw(&format!("attn.qkv{i}.bias"))]);
            emit_op!(e, "attn", "grad_bias", C::AttnLinear, O::Reduction, k.grad_bias(t, d));
        }
    }
    // Residual-path gradient accumulation for the attention sub-layer.
    e.rw(&[&g("res1"), &g("in")], &[&g_in]);
    emit_op!(e, "post_attn", "residual", C::DropResidualNorm, O::ElementWise, k.residual(act));
    out
}

/// Forward ops of the input embedding layer.
#[must_use]
pub fn embedding_forward_ops(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    embedding_forward_ops_in(cfg, opts, &mut env)
}

/// [`embedding_forward_ops`] against a caller-provided buffer environment.
#[must_use]
pub fn embedding_forward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Forward,
        layer: None,
        dtype: dt,
    };
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let act = t * d;
    use Category as C;
    use OpKind as O;
    for name in ["word", "position", "segment"] {
        e.rw(&[&format!("w.emb.{name}"), "in.ids"], &[&format!("act.emb.{name}")]);
        emit_op!(e, "emb", name, C::Embedding, O::ElementWise, k.gather(act, t));
    }
    e.rw(&["act.emb.word", "act.emb.position"], &["act.emb.sum1"]);
    emit_op!(e, "emb", "add_pos", C::Embedding, O::ElementWise, k.residual(act));
    e.rw(&["act.emb.sum1", "act.emb.segment"], &["act.emb.sum2"]);
    emit_op!(e, "emb", "add_seg", C::Embedding, O::ElementWise, k.residual(act));
    e.rw(&["act.emb.sum2", "w.emb.ln"], &["act.emb.ln"]);
    emit_op!(e, "emb", "layernorm", C::Embedding, O::Reduction, k.layernorm_fwd(act, d));
    e.rw(&["act.emb.ln", "act.emb.dropmask"], &["act.emb"]);
    emit_op!(e, "emb", "dropout", C::Embedding, O::ElementWise, k.dropout(act));
    out
}

/// Backward ops of the input embedding layer.
#[must_use]
pub fn embedding_backward_ops(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    embedding_backward_ops_in(cfg, opts, &mut env)
}

/// [`embedding_backward_ops`] against a caller-provided buffer environment.
#[must_use]
pub fn embedding_backward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Backward,
        layer: None,
        dtype: dt,
    };
    let t = cfg.tokens() as u64;
    let d = cfg.d_model as u64;
    let act = t * d;
    use Category as C;
    use OpKind as O;
    e.rw(&["g.act.emb", "act.emb.dropmask"], &["g.act.emb.ln"]);
    emit_op!(e, "emb", "dropout", C::Embedding, O::ElementWise, k.dropout(act));
    e.rw(&["act.emb.sum2", "w.emb.ln", "g.act.emb.ln"], &["g.act.emb.sum2", "g.w.emb.ln"]);
    emit_op!(e, "emb", "layernorm", C::Embedding, O::Reduction, k.layernorm_bwd(act, d));
    for name in ["word", "position", "segment"] {
        e.rw(&["g.act.emb.sum2", "in.ids"], &[&format!("g.w.emb.{name}")]);
        emit_op!(e, "emb", name, C::Embedding, O::ElementWise, k.scatter_add(act, t));
    }
    out
}

/// The buffer name of the last Transformer layer's output (the encoder's
/// final activation, which the output heads consume).
fn final_activation_name(cfg: &BertConfig) -> String {
    if cfg.layers == 0 {
        "act.emb".to_owned()
    } else {
        format!("act.l{}.out", cfg.layers - 1)
    }
}

/// Forward ops of the output heads (masked-LM + next-sentence prediction)
/// including the loss computations.
#[must_use]
pub fn output_forward_ops(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    output_forward_ops_in(cfg, opts, &mut env)
}

/// [`output_forward_ops`] against a caller-provided buffer environment.
#[must_use]
pub fn output_forward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let k32 = K::new(DType::F32);
    let final_act = final_activation_name(cfg);
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Forward,
        layer: None,
        dtype: dt,
    };
    let d = cfg.d_model;
    // The reference PyTorch implementation the paper profiles projects every
    // token position through the MLM head (unmasked positions are ignored by
    // the loss), so the head operates on all n*B tokens.
    let p = cfg.tokens() as u64;
    let b = cfg.batch as u64;
    use bertscope_tensor::Transpose::{No, Yes};
    use Category as C;
    use OpKind as O;
    // MLM head: dense d->d, GeLU, LayerNorm, tied-decoder projection
    // d->vocab, cross-entropy.
    e.rw(&[&final_act, "w.out.mlm.dense", "w.out.mlm.dense.bias"], &["act.out.mlm.dense"]);
    e.gemm(
        "mlm.dense",
        "gemm",
        C::Output,
        GemmSpec::new(No, No, d, p as usize, d).with_epilogue(Epilogue::Bias),
    );
    emit_gelu_fwd(
        &mut e,
        &k,
        "mlm",
        C::Output,
        p * d as u64,
        opts.fused_gelu,
        "act.out.mlm.dense",
        "act.out.mlm.gelu",
    );
    e.rw(&["act.out.mlm.gelu", "w.out.mlm.ln"], &["act.out.mlm.ln"]);
    emit_op!(
        e,
        "mlm",
        "layernorm",
        C::Output,
        O::Reduction,
        k.layernorm_fwd(p * d as u64, d as u64)
    );
    // The decoder projection is tied to the word-embedding table.
    e.rw(&["act.out.mlm.ln", "w.emb.word", "w.out.mlm.dec_bias"], &["act.out.mlm.logits"]);
    e.gemm(
        "mlm.decoder",
        "gemm",
        C::Output,
        GemmSpec::new(No, Yes, cfg.vocab, p as usize, d).with_epilogue(Epilogue::Bias),
    );
    // Losses are computed in f32 in both precision modes.
    e.dtype = DType::F32;
    e.rw(&["act.out.mlm.logits", "in.labels.mlm"], &["act.out.mlm.probs"]);
    emit_op!(e, "mlm", "xent", C::Output, O::Reduction, k32.xent_fwd(p * cfg.vocab as u64, p));
    e.dtype = dt;
    // NSP head: pooler on [CLS] tokens, tanh, classifier, cross-entropy.
    e.rw(&[&final_act, "w.out.nsp.pooler", "w.out.nsp.pooler.bias"], &["act.out.nsp.pool"]);
    e.gemm(
        "nsp.pooler",
        "gemm",
        C::Output,
        GemmSpec::new(No, No, d, cfg.batch, d).with_epilogue(Epilogue::Bias),
    );
    e.rw(&["act.out.nsp.pool"], &["act.out.nsp.tanh"]);
    emit_op!(e, "nsp", "tanh", C::Output, O::ElementWise, k.tanh_fwd(b * d as u64));
    e.rw(&["act.out.nsp.tanh", "w.out.nsp.cls", "w.out.nsp.cls.bias"], &["act.out.nsp.logits"]);
    e.gemm(
        "nsp.classifier",
        "gemm",
        C::Output,
        GemmSpec::new(No, No, 2, cfg.batch, d).with_epilogue(Epilogue::Bias),
    );
    e.dtype = DType::F32;
    e.rw(&["act.out.nsp.logits", "in.labels.nsp"], &["act.out.nsp.probs"]);
    emit_op!(e, "nsp", "xent", C::Output, O::Reduction, k32.xent_fwd(b * 2, b));
    out
}

/// Backward ops of the output heads.
#[must_use]
pub fn output_backward_ops(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    output_backward_ops_in(cfg, opts, &mut env)
}

/// [`output_backward_ops`] against a caller-provided buffer environment.
#[must_use]
pub fn output_backward_ops_in(
    cfg: &BertConfig,
    opts: &GraphOptions,
    env: &mut BufEnv,
) -> Vec<OpRecord> {
    let dt = opts.precision.activation_dtype();
    let k = K::new(dt);
    let k32 = K::new(DType::F32);
    let final_act = final_activation_name(cfg);
    let g_final = format!("g.{final_act}");
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Backward,
        layer: None,
        dtype: DType::F32,
    };
    let d = cfg.d_model;
    let p = cfg.tokens() as u64;
    let b = cfg.batch as u64;
    use bertscope_tensor::Transpose::{No, Yes};
    use Category as C;
    use OpKind as O;
    // NSP backward.
    e.rw(&["act.out.nsp.probs", "in.labels.nsp"], &["g.act.out.nsp.logits"]);
    emit_op!(e, "nsp", "xent", C::Output, O::ElementWise, k32.xent_bwd(b * 2, b));
    e.dtype = dt;
    e.rw(&["g.act.out.nsp.logits", "w.out.nsp.cls"], &["g.act.out.nsp.tanh"]);
    e.gemm("nsp.classifier", "grad_act", C::Output, GemmSpec::new(No, Yes, d, cfg.batch, 2));
    e.rw(&["act.out.nsp.tanh", "g.act.out.nsp.logits"], &["g.w.out.nsp.cls"]);
    e.gemm("nsp.classifier", "grad_wt", C::Output, GemmSpec::new(Yes, No, d, 2, cfg.batch));
    e.rw(&["g.act.out.nsp.logits"], &["g.w.out.nsp.cls.bias"]);
    emit_op!(e, "nsp.classifier", "grad_bias", C::Output, O::Reduction, k.grad_bias(b, 2));
    e.rw(&["act.out.nsp.tanh", "g.act.out.nsp.tanh"], &["g.act.out.nsp.pool"]);
    emit_op!(e, "nsp", "tanh", C::Output, O::ElementWise, k.tanh_bwd(b * d as u64));
    e.rw(&["g.act.out.nsp.pool", "w.out.nsp.pooler"], &[&g_final]);
    e.gemm("nsp.pooler", "grad_act", C::Output, GemmSpec::new(No, Yes, d, cfg.batch, d));
    e.rw(&[&final_act, "g.act.out.nsp.pool"], &["g.w.out.nsp.pooler"]);
    e.gemm("nsp.pooler", "grad_wt", C::Output, GemmSpec::new(Yes, No, d, d, cfg.batch));
    e.rw(&["g.act.out.nsp.pool"], &["g.w.out.nsp.pooler.bias"]);
    emit_op!(e, "nsp.pooler", "grad_bias", C::Output, O::Reduction, k.grad_bias(b, d as u64));
    // MLM backward.
    e.dtype = DType::F32;
    e.rw(&["act.out.mlm.probs", "in.labels.mlm"], &["g.act.out.mlm.logits"]);
    emit_op!(e, "mlm", "xent", C::Output, O::ElementWise, k32.xent_bwd(p * cfg.vocab as u64, p));
    e.dtype = dt;
    e.rw(&["g.act.out.mlm.logits", "w.emb.word"], &["g.act.out.mlm.ln"]);
    e.gemm("mlm.decoder", "grad_act", C::Output, GemmSpec::new(No, No, d, p as usize, cfg.vocab));
    // Tied decoder: the weight gradient accumulates into the word-embedding
    // table's gradient, alongside the embedding-backward scatter.
    e.rw(&["act.out.mlm.ln", "g.act.out.mlm.logits"], &["g.w.emb.word"]);
    e.gemm("mlm.decoder", "grad_wt", C::Output, GemmSpec::new(Yes, No, cfg.vocab, d, p as usize));
    e.rw(&["g.act.out.mlm.logits"], &["g.w.out.mlm.dec_bias"]);
    emit_op!(
        e,
        "mlm.decoder",
        "grad_bias",
        C::Output,
        O::Reduction,
        k.grad_bias(p, cfg.vocab as u64)
    );
    e.rw(
        &["act.out.mlm.gelu", "w.out.mlm.ln", "g.act.out.mlm.ln"],
        &["g.act.out.mlm.gelu", "g.w.out.mlm.ln"],
    );
    emit_op!(
        e,
        "mlm",
        "layernorm",
        C::Output,
        O::Reduction,
        k.layernorm_bwd(p * d as u64, d as u64)
    );
    emit_gelu_bwd(
        &mut e,
        &k,
        "mlm",
        C::Output,
        p * d as u64,
        opts.fused_gelu,
        "act.out.mlm.dense",
        "g.act.out.mlm.gelu",
        "g.act.out.mlm.dense",
    );
    // Accumulates onto the NSP-path gradient of the encoder output.
    e.rw(&["g.act.out.mlm.dense", "w.out.mlm.dense", &g_final], &[&g_final]);
    e.gemm("mlm.dense", "grad_act", C::Output, GemmSpec::new(No, Yes, d, p as usize, d));
    e.rw(&[&final_act, "g.act.out.mlm.dense"], &["g.w.out.mlm.dense"]);
    e.gemm("mlm.dense", "grad_wt", C::Output, GemmSpec::new(Yes, No, d, d, p as usize));
    e.rw(&["g.act.out.mlm.dense"], &["g.w.out.mlm.dense.bias"]);
    emit_op!(e, "mlm.dense", "grad_bias", C::Output, O::Reduction, k.grad_bias(p, d as u64));
    out
}

/// Approximate elementwise FLOPs per parameter in LAMB stage 1 (momentum and
/// velocity updates, bias correction, update direction, weight decay).
pub const LAMB_STAGE1_FLOPS_PER_PARAM: u64 = 14;
/// Approximate elementwise FLOPs per parameter in LAMB stage 2 (trust-ratio
/// scaling and the weight update).
pub const LAMB_STAGE2_FLOPS_PER_PARAM: u64 = 4;
/// Approximate elementwise FLOPs per parameter of a fused Adam kernel.
pub const ADAM_FLOPS_PER_PARAM: u64 = 12;

/// One optimizer update group: the parameter tensors a single fused
/// optimizer kernel covers. The paper (§3.2.3) reports that LAMB "stages are
/// executed for each layer, and access the corresponding layer's data", so
/// the grouping is per Transformer layer plus one group for the embedding
/// tensors and one for the output-head tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateGroup {
    /// Group label (`"l3"`, `"embeddings"`, `"output"`).
    pub name: String,
    /// Transformer layer index, when the group is one.
    pub layer: Option<usize>,
    /// Total parameter count of the group.
    pub numel: u64,
}

/// Partition the parameter inventory into per-layer update groups.
#[must_use]
pub fn update_groups(cfg: &BertConfig) -> Vec<UpdateGroup> {
    let tensors = parameter_tensors(cfg);
    let group_of = |t: &ParamTensor| -> (String, Option<usize>) {
        match t.layer {
            Some(l) => (format!("l{l}"), Some(l)),
            None if t.name.starts_with("embeddings") => ("embeddings".into(), None),
            None => ("output".into(), None),
        }
    };
    let mut out: Vec<UpdateGroup> = Vec::new();
    for t in &tensors {
        let (name, layer) = group_of(t);
        match out.iter_mut().find(|g| g.name == name) {
            Some(g) => g.numel += t.numel(),
            None => out.push(UpdateGroup { name, layer, numel: t.numel() }),
        }
    }
    out
}

/// Optimizer update ops.
///
/// LAMB (per paper §3.2.3) first reduces the global gradient norm, then runs
/// two fused stages per update group: stage 1 reads gradient + momentum +
/// velocity + weights (4x the model size, Takeaway 7) and writes the new
/// optimizer state and update direction; stage 2 reads weights + update and
/// writes the updated weights. All optimizer traffic is f32 in both
/// precision modes.
#[must_use]
pub fn optimizer_ops(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    optimizer_ops_in(cfg, opts, &mut env)
}

/// The weight-buffer name prefix of an update group (`"l3"` -> `"w.l3."`).
fn group_weight_prefix(group: &str) -> String {
    match group {
        "embeddings" => "w.emb.".to_owned(),
        "output" => "w.out.".to_owned(),
        layer => format!("w.{layer}."),
    }
}

/// [`optimizer_ops`] against a caller-provided buffer environment. When the
/// environment already holds the iteration's weight (`w.*`) and gradient
/// (`g.w.*`) buffers, each fused update stage's access set references them,
/// so the update is properly ordered after the backward pass that produced
/// the gradients (and before any later read of the weights).
#[must_use]
pub fn optimizer_ops_in(cfg: &BertConfig, opts: &GraphOptions, env: &mut BufEnv) -> Vec<OpRecord> {
    let mut out = Vec::new();
    let mut e = Emit {
        out: &mut out,
        env,
        acc: AccessSet::default(),
        phase: Phase::Update,
        layer: None,
        dtype: DType::F32,
    };
    let groups = update_groups(cfg);
    let total: u64 = groups.iter().map(|g| g.numel).sum();
    use Category as C;
    use OpKind as O;
    match opts.optimizer {
        OptimizerChoice::None => {}
        OptimizerChoice::Lamb => {
            // Global gradient L2 norm: reads every gradient once. This
            // serializes the update against the whole backprop (Takeaway 7).
            let norm = e.env.named("opt.grad_norm");
            e.acc = AccessSet::new(&e.env.with_prefix("g.w."), &[norm]);
            e.op("lamb", "grad_norm", C::GradNorm, O::Reduction, 2 * total, total * 4, 8);
            for g in &groups {
                let n = g.numel;
                e.layer = g.layer;
                let wp = group_weight_prefix(&g.name);
                let wids = e.env.with_prefix(&wp);
                let gids = e.env.with_prefix(&format!("g.{wp}"));
                let m = e.env.named(&format!("opt.m.{}", g.name));
                let v = e.env.named(&format!("opt.v.{}", g.name));
                let upd = e.env.named(&format!("opt.update.{}", g.name));
                let mut a1 = AccessSet::new(&gids, &[m, v, upd]);
                a1.reads.extend(wids.iter().copied());
                a1.reads.extend([m, v, norm]);
                e.acc = a1;
                e.op(
                    &format!("lamb.{}", g.name),
                    "stage1",
                    C::LambStage1,
                    O::ElementWise,
                    LAMB_STAGE1_FLOPS_PER_PARAM * n,
                    4 * n * 4,
                    3 * n * 4,
                );
                let mut a2 = AccessSet::new(&[upd], &wids);
                a2.reads.extend(wids.iter().copied());
                e.acc = a2;
                e.op(
                    &format!("lamb.{}", g.name),
                    "stage2",
                    C::LambStage2,
                    O::ElementWise,
                    LAMB_STAGE2_FLOPS_PER_PARAM * n,
                    2 * n * 4,
                    n * 4,
                );
            }
        }
        OptimizerChoice::Adam => {
            for g in &groups {
                let n = g.numel;
                e.layer = g.layer;
                let wp = group_weight_prefix(&g.name);
                let wids = e.env.with_prefix(&wp);
                let gids = e.env.with_prefix(&format!("g.{wp}"));
                let m = e.env.named(&format!("opt.m.{}", g.name));
                let v = e.env.named(&format!("opt.v.{}", g.name));
                let mut a = AccessSet::new(&gids, &wids);
                a.reads.extend(wids.iter().copied());
                a.reads.extend([m, v]);
                a.writes.extend([m, v]);
                e.acc = a;
                e.op(
                    &format!("adam.{}", g.name),
                    "fused",
                    C::LambStage1,
                    O::ElementWise,
                    ADAM_FLOPS_PER_PARAM * n,
                    4 * n * 4,
                    3 * n * 4,
                );
            }
        }
    }
    out
}

/// Build the operator stream of one *fine-tuning* iteration (paper §7):
/// the same Transformer stack and training techniques, but the pre-training
/// heads are replaced by a task head — here a SQuAD-style span classifier
/// (one `d_model -> 2` projection over every token), the example the paper
/// uses for "the output layer ... is simpler ... making it a negligible
/// component".
#[must_use]
pub fn build_finetune(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    use bertscope_tensor::Transpose::{No, Yes};
    let dt = opts.precision.activation_dtype();
    let k32 = K::new(DType::F32);
    let t = cfg.tokens();
    let d = cfg.d_model;
    let mut env = BufEnv::new();
    let final_act = final_activation_name(cfg);
    let g_final = format!("g.{final_act}");

    let mut out = Vec::new();
    out.extend(embedding_forward_ops_in(cfg, opts, &mut env));
    for l in 0..cfg.layers {
        out.extend(layer_forward_ops_in(cfg, opts, l, Phase::Forward, &mut env));
    }
    // Task head forward: span projection + per-position 2-way losses.
    {
        let mut e = Emit {
            out: &mut out,
            env: &mut env,
            acc: AccessSet::default(),
            phase: Phase::Forward,
            layer: None,
            dtype: dt,
        };
        e.rw(&[&final_act, "w.out.squad", "w.out.squad.bias"], &["act.out.squad.logits"]);
        e.gemm(
            "squad.span",
            "gemm",
            Category::Output,
            GemmSpec::new(No, No, 2, t, d).with_epilogue(Epilogue::Bias),
        );
        e.dtype = DType::F32;
        e.rw(&["act.out.squad.logits", "in.labels.squad"], &["act.out.squad.probs"]);
        emit_op!(
            e,
            "squad",
            "xent",
            Category::Output,
            OpKind::Reduction,
            k32.xent_fwd(2 * t as u64, t as u64)
        );
    }
    // Task head backward.
    {
        let mut e = Emit {
            out: &mut out,
            env: &mut env,
            acc: AccessSet::default(),
            phase: Phase::Backward,
            layer: None,
            dtype: DType::F32,
        };
        e.rw(&["act.out.squad.probs", "in.labels.squad"], &["g.act.out.squad.logits"]);
        emit_op!(
            e,
            "squad",
            "xent",
            Category::Output,
            OpKind::ElementWise,
            k32.xent_bwd(2 * t as u64, t as u64)
        );
        e.dtype = dt;
        e.rw(&["g.act.out.squad.logits", "w.out.squad"], &[&g_final]);
        e.gemm("squad.span", "grad_act", Category::Output, GemmSpec::new(No, Yes, d, t, 2));
        e.rw(&[&final_act, "g.act.out.squad.logits"], &["g.w.out.squad"]);
        e.gemm("squad.span", "grad_wt", Category::Output, GemmSpec::new(Yes, No, d, 2, t));
        let k = K::new(dt);
        e.rw(&["g.act.out.squad.logits"], &["g.w.out.squad.bias"]);
        emit_op!(
            e,
            "squad.span",
            "grad_bias",
            Category::Output,
            OpKind::Reduction,
            k.grad_bias(t as u64, 2)
        );
    }
    for l in (0..cfg.layers).rev() {
        out.extend(layer_backward_ops_in(cfg, opts, l, &mut env));
    }
    out.extend(embedding_backward_ops_in(cfg, opts, &mut env));
    out.extend(optimizer_ops_in(cfg, opts, &mut env));
    out
}

/// Build the operator stream of one *inference* pass (paper §7): embedding
/// and Transformer forwards plus the output heads, with no backward phase
/// and no optimizer update.
#[must_use]
pub fn build_inference(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let fwd_opts = GraphOptions { optimizer: OptimizerChoice::None, checkpoint: false, ..*opts };
    let mut env = BufEnv::new();
    let mut out = Vec::new();
    out.extend(embedding_forward_ops_in(cfg, &fwd_opts, &mut env));
    for l in 0..cfg.layers {
        out.extend(layer_forward_ops_in(cfg, &fwd_opts, l, Phase::Forward, &mut env));
    }
    out.extend(output_forward_ops_in(cfg, &fwd_opts, &mut env));
    out
}

/// Number of checkpoint segments: `round(sqrt(N))` (paper §4 uses four for
/// BERT-Large's 24 layers).
#[must_use]
pub fn checkpoint_segments(layers: usize) -> usize {
    (layers as f64).sqrt().round() as usize
}

/// Build the complete operator stream of one training iteration.
///
/// Order: embedding forward, per-layer forwards, output forward+backward,
/// per-layer backwards (with checkpoint recomputation interleaved when
/// enabled), embedding backward, optimizer update.
#[must_use]
pub fn build_iteration(cfg: &BertConfig, opts: &GraphOptions) -> Vec<OpRecord> {
    let mut env = BufEnv::new();
    let mut out = Vec::new();
    out.extend(embedding_forward_ops_in(cfg, opts, &mut env));
    for l in 0..cfg.layers {
        out.extend(layer_forward_ops_in(cfg, opts, l, Phase::Forward, &mut env));
    }
    out.extend(output_forward_ops_in(cfg, opts, &mut env));
    out.extend(output_backward_ops_in(cfg, opts, &mut env));
    if opts.checkpoint {
        // sqrt(N) segments; backward walks segments last-to-first, re-running
        // each segment's forward before its backward (paper §4).
        let segs = checkpoint_segments(cfg.layers);
        let per = cfg.layers.div_ceil(segs);
        let mut boundaries: Vec<(usize, usize)> = (0..segs)
            .map(|s| (s * per, ((s + 1) * per).min(cfg.layers)))
            .filter(|(a, b)| a < b)
            .collect();
        boundaries.reverse();
        for (start, end) in boundaries {
            for l in start..end {
                out.extend(layer_forward_ops_in(cfg, opts, l, Phase::Recompute, &mut env));
            }
            for l in (start..end).rev() {
                out.extend(layer_backward_ops_in(cfg, opts, l, &mut env));
            }
        }
    } else {
        for l in (0..cfg.layers).rev() {
            out.extend(layer_backward_ops_in(cfg, opts, l, &mut env));
        }
    }
    out.extend(embedding_backward_ops_in(cfg, opts, &mut env));
    out.extend(optimizer_ops_in(cfg, opts, &mut env));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{summarize, Group};

    fn opts() -> GraphOptions {
        GraphOptions::default()
    }

    #[test]
    fn iteration_has_expected_structure() {
        let cfg = BertConfig::bert_large();
        let ops = build_iteration(&cfg, &opts());
        assert!(ops.len() > 1000, "got {} ops", ops.len());
        // Phases appear in order: first Forward, last Update.
        assert_eq!(ops.first().unwrap().phase, Phase::Forward);
        assert_eq!(ops.last().unwrap().phase, Phase::Update);
        // Every transformer layer contributes both passes.
        for l in 0..cfg.layers {
            assert!(ops.iter().any(|o| o.layer == Some(l) && o.phase == Phase::Forward));
            assert!(ops.iter().any(|o| o.layer == Some(l) && o.phase == Phase::Backward));
        }
    }

    #[test]
    fn lamb_reads_four_times_model_size_in_stage1() {
        // Paper Takeaway 7.
        let cfg = BertConfig::bert_large();
        let ops = optimizer_ops(&cfg, &opts());
        let model_bytes = crate::params::parameter_count(&cfg) * 4;
        let stage1_reads: u64 =
            ops.iter().filter(|o| o.category == Category::LambStage1).map(|o| o.bytes_read).sum();
        assert_eq!(stage1_reads, 4 * model_bytes);
    }

    #[test]
    fn lamb_kernel_count_is_two_per_layer_group_plus_norm() {
        // Paper §3.2.3: LAMB runs as two fused stages per layer.
        let cfg = BertConfig::bert_large();
        let ops = optimizer_ops(&cfg, &opts());
        // 24 layer groups + embeddings + output = 26 groups, 2 stages each,
        // plus the global gradient norm.
        assert_eq!(ops.len(), 2 * (cfg.layers + 2) + 1);
        let groups = update_groups(&cfg);
        assert_eq!(groups.len(), cfg.layers + 2);
        // Group sizes cover the whole model exactly once.
        let total: u64 = groups.iter().map(|g| g.numel).sum();
        assert_eq!(total, crate::params::parameter_count(&cfg));
    }

    #[test]
    fn backward_has_roughly_twice_forward_gemm_flops() {
        // Paper §7: backprop has ~2x the operations of a forward pass.
        let cfg = BertConfig::bert_large();
        let ops = build_iteration(&cfg, &opts());
        let flops = |ph: Phase| -> u64 {
            ops.iter().filter(|o| o.phase == ph && o.is_gemm()).map(|o| o.flops).sum()
        };
        let ratio = flops(Phase::Backward) as f64 / flops(Phase::Forward) as f64;
        assert!((1.8..2.2).contains(&ratio), "bwd/fwd flops ratio {ratio}");
    }

    #[test]
    fn mixed_precision_halves_activation_bytes_but_not_lamb() {
        let cfg = BertConfig::bert_large();
        let fp32 = build_iteration(&cfg, &opts());
        let mixed = build_iteration(&cfg, &GraphOptions { precision: Precision::Mixed, ..opts() });
        let bytes = |ops: &[OpRecord], cat: Category| -> u64 {
            ops.iter().filter(|o| o.category == cat).map(OpRecord::bytes_total).sum()
        };
        // GeLU traffic halves.
        let ratio = bytes(&fp32, Category::Gelu) as f64 / bytes(&mixed, Category::Gelu) as f64;
        assert!((ratio - 2.0).abs() < 0.1, "gelu bytes ratio {ratio}");
        // LAMB traffic is unchanged (paper: updates stay FP32).
        assert_eq!(bytes(&fp32, Category::LambStage1), bytes(&mixed, Category::LambStage1));
        assert_eq!(bytes(&fp32, Category::LambStage2), bytes(&mixed, Category::LambStage2));
    }

    #[test]
    fn checkpointing_increases_kernel_count_by_about_a_third() {
        // Paper §4: ~33% more kernels.
        let cfg = BertConfig::bert_large();
        let base = build_iteration(&cfg, &opts()).len() as f64;
        let ckpt = build_iteration(&cfg, &GraphOptions { checkpoint: true, ..opts() }).len() as f64;
        let increase = ckpt / base - 1.0;
        assert!((0.25..0.42).contains(&increase), "kernel count increase {increase}");
        assert_eq!(checkpoint_segments(24), 5);
        assert_eq!(checkpoint_segments(16), 4);
    }

    #[test]
    fn checkpointing_leaves_lamb_unchanged() {
        let cfg = BertConfig::bert_large();
        let base = build_iteration(&cfg, &opts());
        let ckpt = build_iteration(&cfg, &GraphOptions { checkpoint: true, ..opts() });
        let lamb = |ops: &[OpRecord]| {
            summarize(ops, |o| o.category.group()).get(&Group::Lamb).copied().unwrap_or_default()
        };
        assert_eq!(lamb(&base), lamb(&ckpt));
    }

    #[test]
    fn fused_qkv_reduces_projection_kernels_preserving_flops() {
        let cfg = BertConfig::bert_large();
        let serial = layer_forward_ops(&cfg, &opts(), 0, Phase::Forward);
        let fused =
            layer_forward_ops(&cfg, &GraphOptions { fused_qkv: true, ..opts() }, 0, Phase::Forward);
        assert_eq!(serial.len() - fused.len(), 2);
        let lin_flops = |ops: &[OpRecord]| -> u64 {
            ops.iter().filter(|o| o.category == Category::AttnLinear).map(|o| o.flops).sum()
        };
        assert_eq!(lin_flops(&serial), lin_flops(&fused));
    }

    #[test]
    fn gemm_flops_dominate_iteration_flops() {
        // GEMMs are >95% of arithmetic even though non-GEMMs take ~45% of
        // runtime — the whole point of the characterization.
        let cfg = BertConfig::bert_large();
        let ops = build_iteration(&cfg, &opts());
        let gemm: u64 = ops.iter().filter(|o| o.is_gemm()).map(|o| o.flops).sum();
        let total: u64 = ops.iter().map(|o| o.flops).sum();
        assert!(gemm as f64 / total as f64 > 0.95);
    }

    #[test]
    fn update_traffic_is_independent_of_batch_size() {
        // Paper §3.3.1: weight-update cost depends only on model size.
        let small = build_iteration(&BertConfig::bert_large().phase1(4), &opts());
        let large = build_iteration(&BertConfig::bert_large().phase1(32), &opts());
        let upd = |ops: &[OpRecord]| -> u64 {
            ops.iter().filter(|o| o.phase == Phase::Update).map(OpRecord::bytes_total).sum()
        };
        assert_eq!(upd(&small), upd(&large));
    }

    #[test]
    fn finetuning_output_layer_is_negligible() {
        // Paper §7: "the output layer of SQuAD ... is simpler than tasks
        // BERT is pre-trained for, requiring fewer GEMMs and thus making it
        // a negligible component"; the Transformer layers still dominate.
        let cfg = BertConfig::bert_large();
        let ft = build_finetune(&cfg, &opts());
        let pt = build_iteration(&cfg, &opts());
        let out_flops = |ops: &[OpRecord]| -> u64 {
            ops.iter().filter(|o| o.category == Category::Output).map(|o| o.flops).sum()
        };
        assert!(
            out_flops(&pt) > 50 * out_flops(&ft),
            "SQuAD head is tiny vs the MLM decoder: {} vs {}",
            out_flops(&pt),
            out_flops(&ft)
        );
        // Transformer and LAMB work are byte-identical between the two.
        let layer_flops = |ops: &[OpRecord]| -> u64 {
            ops.iter().filter(|o| o.layer.is_some()).map(|o| o.flops).sum()
        };
        assert_eq!(layer_flops(&pt), layer_flops(&ft));
        let upd = |ops: &[OpRecord]| -> u64 {
            ops.iter().filter(|o| o.phase == Phase::Update).map(OpRecord::bytes_total).sum()
        };
        assert_eq!(upd(&pt), upd(&ft));
    }

    #[test]
    fn inference_graph_is_forward_only_with_similar_layer_breakdown() {
        // Paper §7: inference drops backprop and LAMB; the Transformer
        // layer's internal breakdown stays similar (backprop has ~2x the
        // same-shaped ops).
        let cfg = BertConfig::bert_large();
        let inf = build_inference(&cfg, &opts());
        assert!(inf.iter().all(|o| o.phase == Phase::Forward));
        assert!(inf.iter().all(|o| o.category.group() != bertscope_tensor::Group::Lamb));
        let train = build_iteration(&cfg, &opts());
        let share = |ops: &[OpRecord], cat: Category| -> f64 {
            let c: u64 = ops
                .iter()
                .filter(|o| o.category == cat && o.layer.is_some())
                .map(|o| o.flops)
                .sum();
            let t: u64 = ops
                .iter()
                .filter(|o| o.layer.is_some() && o.phase != Phase::Update)
                .map(|o| o.flops)
                .sum();
            c as f64 / t as f64
        };
        for cat in [Category::FcGemm, Category::AttnLinear, Category::AttnBgemm] {
            let a = share(&inf, cat);
            let b = share(&train, cat);
            assert!((a - b).abs() / b < 0.1, "{cat}: inference {a} vs training {b}");
        }
    }

    #[test]
    fn output_layer_flops_are_small_fraction() {
        // Paper Obs. 1: output layer is a small proportion (3-7% runtime).
        let cfg = BertConfig::bert_large();
        let ops = build_iteration(&cfg, &opts());
        let out_flops: u64 =
            ops.iter().filter(|o| o.category == Category::Output).map(|o| o.flops).sum();
        let total: u64 = ops.iter().map(|o| o.flops).sum();
        let frac = out_flops as f64 / total as f64;
        assert!(frac < 0.12, "output flops fraction {frac}");
    }
}
