//! Roofline GPU model with shape-dependent GEMM efficiency.
//!
//! The paper measured an AMD Instinct MI100; we model one. An operation's
//! time is `launch_overhead + max(compute_time, memory_time)` where both
//! terms are derated by shape-dependent efficiency factors:
//!
//! * **GEMM compute efficiency** comes from a macro-tile model: the output
//!   is tiled into `tile x tile` blocks spread over the compute units; small
//!   or skinny GEMMs leave CUs idle (wave quantization) and short `K`
//!   dimensions cannot fill the MAC pipelines. This is how the paper's
//!   Takeaway 6 ("small attention GEMMs under-utilize accelerators")
//!   *emerges* from the model rather than being hard-coded.
//! * **Memory efficiency** ramps with transfer size: tiny kernels never
//!   reach streaming bandwidth.
//!
//! All constants are public and adjustable; [`GpuModel::mi100`] carries the
//! MI100 datasheet numbers used throughout the reproduction.

use bertscope_tensor::{DType, GemmSpec, OpKind, OpRecord, Phase};

/// An analytically-modelled GPU-like accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Human-readable device name.
    pub name: String,
    /// Peak vector (SIMD) throughput for f32, in TFLOP/s.
    pub fp32_vector_tflops: f64,
    /// Peak matrix-core throughput for f32 GEMMs, in TFLOP/s.
    pub fp32_matrix_tflops: f64,
    /// Peak matrix-core throughput for f16 GEMMs, in TFLOP/s.
    pub fp16_matrix_tflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Fixed cost of launching one kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Number of compute units (MI100: 120).
    pub compute_units: usize,
    /// GEMM macro-tile edge in output elements.
    pub gemm_tile: usize,
    /// Fraction of peak FLOPS a well-shaped GEMM actually achieves.
    pub max_gemm_efficiency: f64,
    /// Fraction of peak bandwidth a large streaming kernel achieves.
    pub max_mem_efficiency: f64,
    /// Transfer size (bytes) at which memory efficiency reaches half of its
    /// maximum (ramp constant).
    pub mem_ramp_bytes: f64,
    /// `K` extent at which GEMM pipelines reach half utilization.
    pub gemm_k_ramp: f64,
    /// Extra bandwidth derate for reduction kernels (row-wise softmax /
    /// LayerNorm / norms achieve less than pure streaming kernels).
    pub reduction_mem_derate: f64,
    /// Extra bandwidth derate for optimizer-update kernels, which gather
    /// four separate parameter/state streams per element.
    pub optimizer_mem_derate: f64,
}

impl GpuModel {
    /// The AMD Instinct MI100 configuration used by the paper's testbed:
    /// 23.1 TFLOP/s vector f32, 46.1 TFLOP/s matrix f32, 184.6 TFLOP/s
    /// matrix f16, 1.23 TB/s HBM2.
    #[must_use]
    pub fn mi100() -> Self {
        GpuModel {
            name: "MI100".into(),
            fp32_vector_tflops: 23.1,
            fp32_matrix_tflops: 46.1,
            fp16_matrix_tflops: 184.6,
            mem_bw_gbps: 1228.8,
            launch_overhead_us: 4.0,
            compute_units: 120,
            gemm_tile: 128,
            max_gemm_efficiency: 0.65,
            max_mem_efficiency: 0.40,
            mem_ramp_bytes: 2.0e6,
            gemm_k_ramp: 48.0,
            reduction_mem_derate: 0.80,
            optimizer_mem_derate: 0.62,
        }
    }

    /// An NVIDIA A100-class device (§7's cross-vendor extrapolation): 19.5
    /// TFLOP/s vector f32, 19.5 TF32-path matrix f32, 312 TFLOP/s f16
    /// tensor cores, 1.56 TB/s HBM2e, 108 SMs. Efficiency constants reuse
    /// the MI100 calibration — the point of the preset is the
    /// compute/bandwidth *ratios*.
    #[must_use]
    pub fn a100_like() -> Self {
        GpuModel {
            name: "A100-like".into(),
            fp32_vector_tflops: 19.5,
            fp32_matrix_tflops: 19.5,
            fp16_matrix_tflops: 312.0,
            mem_bw_gbps: 1555.0,
            compute_units: 108,
            ..GpuModel::mi100()
        }
    }

    /// An NVIDIA V100-class device: 15.7 TFLOP/s f32, 125 TFLOP/s f16
    /// tensor cores, 0.9 TB/s HBM2, 80 SMs.
    #[must_use]
    pub fn v100_like() -> Self {
        GpuModel {
            name: "V100-like".into(),
            fp32_vector_tflops: 15.7,
            fp32_matrix_tflops: 15.7,
            fp16_matrix_tflops: 125.0,
            mem_bw_gbps: 900.0,
            compute_units: 80,
            ..GpuModel::mi100()
        }
    }

    /// A hypothetical device with `factor`-times the compute of this one at
    /// the same bandwidth — for "compute scales faster than memory"
    /// projections (paper §7).
    #[must_use]
    pub fn scaled_compute(&self, factor: f64) -> Self {
        GpuModel {
            name: format!("{}-{factor}x-compute", self.name),
            fp32_vector_tflops: self.fp32_vector_tflops * factor,
            fp32_matrix_tflops: self.fp32_matrix_tflops * factor,
            fp16_matrix_tflops: self.fp16_matrix_tflops * factor,
            ..self.clone()
        }
    }

    /// Peak arithmetic throughput in FLOP/s for an op of the given kind and
    /// precision.
    #[must_use]
    pub fn peak_flops(&self, kind: OpKind, dtype: DType) -> f64 {
        let tflops = match kind {
            OpKind::Gemm | OpKind::BatchedGemm => {
                if dtype.is_half() {
                    self.fp16_matrix_tflops
                } else {
                    self.fp32_matrix_tflops
                }
            }
            // Non-GEMM ops run on the vector units; half precision doubles
            // vector rate (packed math).
            _ => {
                if dtype.is_half() {
                    2.0 * self.fp32_vector_tflops
                } else {
                    self.fp32_vector_tflops
                }
            }
        };
        tflops * 1.0e12
    }

    /// Compute-side efficiency of a GEMM with the given spec: wave
    /// quantization over the CUs times the K-depth pipeline factor.
    #[must_use]
    pub fn gemm_efficiency(&self, spec: &GemmSpec) -> f64 {
        let tile = self.gemm_tile as f64;
        // Effective tile coverage: tiles are padded, so partial tiles waste
        // lanes proportionally.
        let tiles_m = (spec.m as f64 / tile).ceil();
        let tiles_n = (spec.n as f64 / tile).ceil();
        let tiles = tiles_m * tiles_n * spec.batch as f64;
        let fill = (spec.m as f64 * spec.n as f64 * spec.batch as f64)
            / (tiles_m * tile * tiles_n * tile * spec.batch as f64);
        // Wave quantization: the last wave may not fill all CUs.
        let cus = self.compute_units as f64;
        let waves = (tiles / cus).ceil();
        let wave_util = tiles / (waves * cus);
        // Short-K pipelines cannot hide latency.
        let k_util = spec.k as f64 / (spec.k as f64 + self.gemm_k_ramp);
        self.max_gemm_efficiency * fill * wave_util * k_util
    }

    /// Achieved fraction of peak bandwidth for a kernel moving `bytes`.
    #[must_use]
    pub fn mem_efficiency(&self, bytes: u64) -> f64 {
        let b = bytes as f64;
        self.max_mem_efficiency * b / (b + self.mem_ramp_bytes)
    }

    /// Achieved memory bandwidth (GB/s) for a kernel moving `bytes` —
    /// the y-axis of the paper's Fig. 7 when normalized to the best op.
    #[must_use]
    pub fn achieved_bandwidth_gbps(&self, op: &OpRecord) -> f64 {
        let t = self.op_time_us(op);
        let data_t = (t - self.launch_overhead_us).max(1e-9);
        op.bytes_total() as f64 / 1.0e9 / (data_t * 1.0e-6)
    }

    /// Modelled execution time of one op, in microseconds.
    #[must_use]
    pub fn op_time_us(&self, op: &OpRecord) -> f64 {
        let compute_eff = match (&op.gemm, op.kind) {
            (Some(spec), OpKind::Gemm | OpKind::BatchedGemm) => self.gemm_efficiency(spec),
            // Vector kernels sustain a large fraction of vector peak.
            _ => 0.7,
        };
        let peak = self.peak_flops(op.kind, op.dtype);
        let compute_s =
            if op.flops == 0 { 0.0 } else { op.flops as f64 / (peak * compute_eff.max(1e-6)) };
        let bytes = op.bytes_total();
        let mem_derate = match (op.kind, op.phase) {
            (OpKind::Reduction, _) => self.reduction_mem_derate,
            (_, Phase::Update) => self.optimizer_mem_derate,
            _ => 1.0,
        };
        let mem_s = if bytes == 0 {
            0.0
        } else {
            bytes as f64 / (self.mem_bw_gbps * 1.0e9 * self.mem_efficiency(bytes) * mem_derate)
        };
        self.launch_overhead_us + compute_s.max(mem_s) * 1.0e6
    }

    /// Total modelled time of an op stream, in microseconds.
    #[must_use]
    pub fn total_time_us(&self, ops: &[OpRecord]) -> f64 {
        ops.iter().map(|o| self.op_time_us(o)).sum()
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::mi100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, Transpose};

    fn gemm_op(spec: GemmSpec, dtype: DType) -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "g".into(),
            kind: if spec.batch > 1 { OpKind::BatchedGemm } else { OpKind::Gemm },
            category: Category::FcGemm,
            phase: Phase::Forward,
            layer: None,
            gemm: Some(spec),
            flops: spec.flops(),
            bytes_read: spec.bytes_read(dtype),
            bytes_written: spec.bytes_written(dtype),
            dtype,
        }
    }

    fn ew_op(numel: u64, dtype: DType) -> OpRecord {
        let es = dtype.size_bytes();
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "ew".into(),
            kind: OpKind::ElementWise,
            category: Category::Gelu,
            phase: Phase::Forward,
            layer: None,
            gemm: None,
            flops: numel,
            bytes_read: numel * es,
            bytes_written: numel * es,
            dtype,
        }
    }

    #[test]
    fn large_fc_gemm_is_compute_bound_and_efficient() {
        let gpu = GpuModel::mi100();
        // FC-1 of BERT-Large Ph1-B32.
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        let eff = gpu.gemm_efficiency(&spec);
        assert!(eff > 0.5, "large square GEMM efficiency {eff}");
        // Compute time dominates memory time for this op.
        let op = gemm_op(spec, DType::F32);
        let t = gpu.op_time_us(&op);
        let mem_only = op.bytes_total() as f64 / (gpu.mem_bw_gbps * 1e9) * 1e6;
        assert!(t > 3.0 * mem_only, "t={t}us mem-only={mem_only}us");
    }

    #[test]
    fn attention_bgemm_is_memory_bound_and_inefficient() {
        // Paper Takeaway 6: small batched attention GEMMs under-utilize.
        let gpu = GpuModel::mi100();
        let attn = GemmSpec::batched(Transpose::No, Transpose::Yes, 128, 128, 64, 512);
        let fc = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        assert!(gpu.gemm_efficiency(&attn) < 0.6 * gpu.gemm_efficiency(&fc));
        assert!(gpu.gemm_efficiency(&attn) < 0.45, "attention GEMMs run far below peak");
        // And its achieved bandwidth is far higher than the FC GEMM's,
        // mirroring Fig. 7's 70% vs 20% contrast.
        let bw_attn = gpu.achieved_bandwidth_gbps(&gemm_op(attn, DType::F32));
        let bw_fc = gpu.achieved_bandwidth_gbps(&gemm_op(fc, DType::F32));
        assert!(bw_attn > 2.0 * bw_fc, "attn {bw_attn} GB/s vs fc {bw_fc} GB/s");
    }

    #[test]
    fn half_precision_speeds_gemms_more_than_elementwise() {
        // Paper Takeaway 3: GEMMs gain from matrix cores + traffic; EW ops
        // only from traffic.
        let gpu = GpuModel::mi100();
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        let g32 = gpu.op_time_us(&gemm_op(spec, DType::F32));
        let g16 = gpu.op_time_us(&gemm_op(spec, DType::F16));
        let gemm_speedup = g32 / g16;
        let e32 = gpu.op_time_us(&ew_op(16_777_216, DType::F32));
        let e16 = gpu.op_time_us(&ew_op(16_777_216, DType::F16));
        let ew_speedup = e32 / e16;
        assert!(gemm_speedup > 2.0, "gemm mixed-precision speedup {gemm_speedup}");
        assert!((1.2..2.2).contains(&ew_speedup), "elementwise speedup {ew_speedup}");
        assert!(gemm_speedup > ew_speedup);
    }

    #[test]
    fn elementwise_speedup_from_mixed_precision_is_1_5_to_1_9x() {
        // Paper §3.2.3: memory-bound kernels speed up 1.5-1.9x in MP.
        let gpu = GpuModel::mi100();
        // BERT-Large [T,d] activation: 4096*1024 elements.
        let e32 = gpu.op_time_us(&ew_op(4_194_304, DType::F32));
        let e16 = gpu.op_time_us(&ew_op(4_194_304, DType::F16));
        let s = e32 / e16;
        assert!((1.5..1.95).contains(&s), "elementwise MP speedup {s}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        // A 64-element kernel costs launch overhead plus DRAM-latency-floor
        // time; useful data movement is a rounding error.
        let gpu = GpuModel::mi100();
        let tiny = ew_op(64, DType::F32);
        let t = gpu.op_time_us(&tiny);
        assert!(t < gpu.launch_overhead_us + 6.0, "tiny kernel time {t}us");
        // A kernel 1000x larger takes nowhere near 1000x the time.
        let bigger = ew_op(64_000, DType::F32);
        assert!(gpu.op_time_us(&bigger) < 3.0 * t);
    }

    #[test]
    fn memory_efficiency_ramps_with_size() {
        let gpu = GpuModel::mi100();
        assert!(gpu.mem_efficiency(1 << 10) < 0.01);
        assert!(gpu.mem_efficiency(1 << 24) > 0.35);
        assert!(gpu.mem_efficiency(1 << 30) > 0.39);
        // Monotone.
        let mut last = 0.0;
        for shift in 8..32 {
            let e = gpu.mem_efficiency(1u64 << shift);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn gemm_efficiency_degrades_with_skinny_shapes() {
        let gpu = GpuModel::mi100();
        let square = GemmSpec::new(Transpose::No, Transpose::No, 2048, 2048, 2048);
        let skinny = GemmSpec::new(Transpose::No, Transpose::No, 2048, 32, 2048);
        let short_k = GemmSpec::new(Transpose::No, Transpose::No, 2048, 2048, 16);
        assert!(gpu.gemm_efficiency(&square) > gpu.gemm_efficiency(&skinny));
        assert!(gpu.gemm_efficiency(&square) > 2.0 * gpu.gemm_efficiency(&short_k));
    }

    #[test]
    fn scaled_compute_shrinks_gemm_time_but_not_memory_bound_time() {
        let gpu = GpuModel::mi100();
        let fast = gpu.scaled_compute(4.0);
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        let g = gemm_op(spec, DType::F32);
        assert!(gpu.op_time_us(&g) / fast.op_time_us(&g) > 2.5);
        let e = ew_op(16_777_216, DType::F32);
        let ratio = gpu.op_time_us(&e) / fast.op_time_us(&e);
        assert!(ratio < 1.05, "memory-bound op unchanged, ratio {ratio}");
    }

    #[test]
    fn preset_family_orders_by_capability() {
        let v100 = GpuModel::v100_like();
        let a100 = GpuModel::a100_like();
        let mi100 = GpuModel::mi100();
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        let g16 = gemm_op(spec, DType::F16);
        assert!(a100.op_time_us(&g16) < v100.op_time_us(&g16), "A100 f16 GEMMs beat V100");
        let e = ew_op(16_777_216, DType::F32);
        assert!(a100.op_time_us(&e) < mi100.op_time_us(&e), "A100 has more bandwidth");
        assert!(mi100.op_time_us(&e) < v100.op_time_us(&e));
    }

    #[test]
    fn total_time_is_sum_of_op_times() {
        let gpu = GpuModel::mi100();
        let ops = vec![ew_op(1024, DType::F32), ew_op(2048, DType::F32)];
        let total = gpu.total_time_us(&ops);
        let sum: f64 = ops.iter().map(|o| gpu.op_time_us(o)).sum();
        assert!((total - sum).abs() < 1e-9);
    }
}
