//! Inter-device interconnect and collective-communication cost models
//! (paper §5.1).
//!
//! Follows the paper's methodology: gradient/activation AllReduce cost is
//! estimated from data volume over link bandwidth assuming Ring AllReduce
//! (Baidu's ring algorithm, paper ref. 28) on a homogeneous topology.

/// A point-to-point link between devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Sustained unidirectional bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl Link {
    /// PCIe 4.0 x16: ~32 GB/s per direction — the paper's assumption.
    #[must_use]
    pub fn pcie4() -> Self {
        Link { bw_gbps: 32.0, latency_us: 5.0 }
    }

    /// A faster intra-node fabric (xGMI/NVLink-class) for what-if studies.
    #[must_use]
    pub fn xgmi() -> Self {
        Link { bw_gbps: 92.0, latency_us: 2.0 }
    }

    /// Time to move `bytes` point-to-point, in microseconds.
    #[must_use]
    pub fn transfer_time_us(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / (self.bw_gbps * 1.0e9) * 1.0e6
    }

    /// Ring AllReduce of `bytes` across `devices`, in microseconds.
    ///
    /// Each device sends `2 * (D-1) / D` of the buffer over its link
    /// (reduce-scatter + all-gather), paying per-step latency `2 * (D-1)`
    /// times. One device (or fewer than two) costs nothing.
    #[must_use]
    pub fn ring_allreduce_us(&self, bytes: u64, devices: usize) -> f64 {
        if devices < 2 {
            return 0.0;
        }
        let d = devices as f64;
        let steps = 2.0 * (d - 1.0);
        let volume = steps / d * bytes as f64;
        steps * self.latency_us + volume / (self.bw_gbps * 1.0e9) * 1.0e6
    }

    /// All-gather of `bytes` total output across `devices` (each
    /// contributes `bytes / devices`), in microseconds.
    #[must_use]
    pub fn all_gather_us(&self, bytes: u64, devices: usize) -> f64 {
        if devices < 2 {
            return 0.0;
        }
        let d = devices as f64;
        let steps = d - 1.0;
        let volume = steps / d * bytes as f64;
        steps * self.latency_us + volume / (self.bw_gbps * 1.0e9) * 1.0e6
    }
}

/// An in-network-processing switch (paper §6.2.3): reduction ALUs in the
/// switch let every device send its buffer once and receive the reduced
/// buffer once, instead of circulating `2(D-1)/D` of it around a ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InNetworkSwitch {
    /// Per-port link into the switch.
    pub port: Link,
    /// Switch traversal + reduction latency per message, in microseconds.
    pub switch_latency_us: f64,
    /// Per-port reduction throughput of the switch ALUs, GB/s (line-rate
    /// reduction needs this to be at least the port bandwidth).
    pub reduce_gbps: f64,
}

impl InNetworkSwitch {
    /// A PCIe-4.0-ported switch with ample reduction throughput.
    #[must_use]
    pub fn pcie4_switch() -> Self {
        InNetworkSwitch { port: Link::pcie4(), switch_latency_us: 3.0, reduce_gbps: 400.0 }
    }

    /// AllReduce of `bytes` across `devices` through the switch: each
    /// device streams the buffer up once while the reduced result streams
    /// down (full-duplex ports overlap the two directions), bounded by the
    /// switch's aggregate reduction rate. This single-traversal pattern is
    /// why in-network reduction approaches 2x a ring, which moves
    /// `2(D-1)/D` of the buffer through every port.
    #[must_use]
    pub fn allreduce_us(&self, bytes: u64, devices: usize) -> f64 {
        if devices < 2 {
            return 0.0;
        }
        let port_s = bytes as f64 / (self.port.bw_gbps * 1.0e9);
        let reduce_s = bytes as f64 / (self.reduce_gbps * 1.0e9);
        2.0 * self.port.latency_us + self.switch_latency_us + port_s.max(reduce_s) * 1.0e6
    }

    /// Speedup of the in-network AllReduce over a Ring AllReduce on the
    /// same ports — the benefit §6.2.3 points at.
    #[must_use]
    pub fn speedup_vs_ring(&self, bytes: u64, devices: usize) -> f64 {
        let ring = self.port.ring_allreduce_us(bytes, devices);
        let inp = self.allreduce_us(bytes, devices);
        if inp == 0.0 {
            1.0
        } else {
            ring / inp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_communicates_nothing() {
        let l = Link::pcie4();
        assert_eq!(l.ring_allreduce_us(1 << 30, 1), 0.0);
        assert_eq!(l.ring_allreduce_us(1 << 30, 0), 0.0);
        assert_eq!(l.all_gather_us(1 << 30, 1), 0.0);
    }

    #[test]
    fn ring_allreduce_volume_approaches_2x_buffer() {
        // For large D the per-device traffic tends to 2x the buffer size.
        let l = Link { bw_gbps: 1.0, latency_us: 0.0 };
        let bytes = 1_000_000_000u64; // 1 GB over 1 GB/s = 1 s per buffer
        let t2 = l.ring_allreduce_us(bytes, 2);
        let t128 = l.ring_allreduce_us(bytes, 128);
        assert!((t2 - 1.0e6).abs() / 1.0e6 < 1e-9, "D=2 moves exactly 1x the buffer");
        assert!((t128 - 2.0e6 * 127.0 / 128.0).abs() / 2.0e6 < 1e-6);
        // Cost grows with device count (paper Takeaway 13's driver).
        assert!(t128 > t2);
    }

    #[test]
    fn latency_term_scales_with_steps() {
        let l = Link { bw_gbps: 1000.0, latency_us: 10.0 };
        let t = l.ring_allreduce_us(8, 4); // negligible volume
        assert!((t - 60.0).abs() < 0.1, "2*(4-1) steps x 10us = 60us, got {t}");
    }

    #[test]
    fn bert_large_gradient_allreduce_is_milliseconds_on_pcie() {
        // 340M f32 gradients = 1.36 GB: ring allreduce on PCIe4 takes tens
        // of ms — comparable to backprop, which is why overlap matters
        // (paper §5.2, D1 vs D2).
        let l = Link::pcie4();
        let t_ms = l.ring_allreduce_us(340_000_000 * 4, 128) / 1000.0;
        assert!((50.0..120.0).contains(&t_ms), "allreduce {t_ms} ms");
    }

    #[test]
    fn faster_fabric_reduces_cost_proportionally() {
        let bytes = 1 << 30;
        let slow = Link::pcie4().ring_allreduce_us(bytes, 8);
        let fast = Link::xgmi().ring_allreduce_us(bytes, 8);
        let ratio = slow / fast;
        assert!((2.0..3.5).contains(&ratio), "bandwidth ratio ~2.9, got {ratio}");
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = Link { bw_gbps: 1.0, latency_us: 7.0 };
        assert!((l.transfer_time_us(1_000_000) - 1007.0).abs() < 1e-6);
    }

    #[test]
    fn in_network_allreduce_approaches_2x_ring_for_large_device_counts() {
        // Ring moves 2(D-1)/D of the buffer through every port; the switch
        // streams it through once (full duplex), so the speedup approaches
        // 2x as D grows, plus the eliminated per-step latencies.
        let sw = InNetworkSwitch::pcie4_switch();
        let bytes = 1_360_000_000; // BERT-Large f32 gradients
        let s8 = sw.speedup_vs_ring(bytes, 8);
        assert!((1.5..2.2).contains(&s8), "8 devices: {s8}");
        let s128 = sw.speedup_vs_ring(bytes, 128);
        assert!(s128 > s8, "speedup grows with D: {s128} vs {s8}");
        // Latency-bound regime (small buffers, many devices): big wins.
        let s_small = sw.speedup_vs_ring(64 * 1024, 128);
        assert!(s_small > 5.0, "small-buffer speedup {s_small}");
    }

    #[test]
    fn in_network_single_device_is_free() {
        let sw = InNetworkSwitch::pcie4_switch();
        assert_eq!(sw.allreduce_us(1 << 30, 1), 0.0);
        assert_eq!(sw.speedup_vs_ring(1 << 30, 1), 1.0);
    }

    #[test]
    fn switch_reduction_rate_can_bottleneck() {
        let slow_alu =
            InNetworkSwitch { port: Link::pcie4(), switch_latency_us: 3.0, reduce_gbps: 10.0 };
        let fast_alu = InNetworkSwitch::pcie4_switch();
        let bytes = 1 << 28;
        assert!(slow_alu.allreduce_us(bytes, 64) > 3.0 * fast_alu.allreduce_us(bytes, 64));
    }
}
