//! Energy model: per-operation arithmetic and data-movement energy.
//!
//! The paper's NMC argument (§6.2.1) is performance *and energy*: "NMC
//! avoids data movement between the main memory and GPU ... and improves
//! performance and energy efficiency". This module quantifies that claim
//! with standard technology constants: arithmetic costs picojoules per
//! FLOP (less on matrix cores, less at half precision), and every byte that
//! crosses the HBM interface costs an order of magnitude more than a
//! bank-local access.

use crate::nmc::NmcModel;
use bertscope_tensor::{DType, OpKind, OpRecord};

/// Technology energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per f32 FLOP on the vector units.
    pub pj_per_vector_flop: f64,
    /// Energy per f32 FLOP on the matrix cores (amortized control).
    pub pj_per_matrix_flop_f32: f64,
    /// Energy per f16 FLOP on the matrix cores.
    pub pj_per_matrix_flop_f16: f64,
    /// Energy per byte moved across the HBM interface (cell + IO + PHY).
    pub pj_per_dram_byte: f64,
    /// Energy per byte for a bank-local NMC access (no interface crossing).
    pub pj_per_nmc_byte: f64,
    /// Energy per FLOP on an in-memory ALU.
    pub pj_per_nmc_flop: f64,
}

impl EnergyModel {
    /// Constants for an HBM2-class accelerator (7nm-era estimates).
    #[must_use]
    pub fn hbm2() -> Self {
        EnergyModel {
            pj_per_vector_flop: 2.5,
            pj_per_matrix_flop_f32: 1.2,
            pj_per_matrix_flop_f16: 0.45,
            pj_per_dram_byte: 30.0,
            pj_per_nmc_byte: 9.0,
            pj_per_nmc_flop: 3.0,
        }
    }

    /// Energy of one op executed on the GPU, in microjoules.
    #[must_use]
    pub fn op_energy_uj(&self, op: &OpRecord) -> f64 {
        let pj_flop = match (op.kind, op.dtype) {
            (OpKind::Gemm | OpKind::BatchedGemm, DType::F32) => self.pj_per_matrix_flop_f32,
            (OpKind::Gemm | OpKind::BatchedGemm, _) => self.pj_per_matrix_flop_f16,
            // Half-precision vector math is roughly half the energy.
            (_, dt) if dt.is_half() => self.pj_per_vector_flop / 2.0,
            _ => self.pj_per_vector_flop,
        };
        (op.flops as f64 * pj_flop + op.bytes_total() as f64 * self.pj_per_dram_byte) / 1.0e6
    }

    /// Energy of one op executed on the in-memory ALUs, in microjoules.
    ///
    /// Valid for ops [`NmcModel::can_offload`] accepts; the savings come
    /// from every byte staying bank-local.
    #[must_use]
    pub fn nmc_op_energy_uj(&self, op: &OpRecord) -> f64 {
        debug_assert!(NmcModel::can_offload(op));
        (op.flops as f64 * self.pj_per_nmc_flop + op.bytes_total() as f64 * self.pj_per_nmc_byte)
            / 1.0e6
    }

    /// Total GPU energy of an op stream, in joules.
    #[must_use]
    pub fn total_energy_j(&self, ops: &[OpRecord]) -> f64 {
        ops.iter().map(|o| self.op_energy_uj(o)).sum::<f64>() / 1.0e6
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::hbm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, GemmSpec, Phase, Transpose};

    fn gemm_op(dtype: DType) -> OpRecord {
        let spec = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "g".into(),
            kind: OpKind::Gemm,
            category: Category::FcGemm,
            phase: Phase::Forward,
            layer: None,
            gemm: Some(spec),
            flops: spec.flops(),
            bytes_read: spec.bytes_read(dtype),
            bytes_written: spec.bytes_written(dtype),
            dtype,
        }
    }

    fn lamb_op() -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "lamb".into(),
            kind: OpKind::ElementWise,
            category: Category::LambStage1,
            phase: Phase::Update,
            layer: None,
            gemm: None,
            flops: 14 * 13_000_000,
            bytes_read: 4 * 13_000_000 * 4,
            bytes_written: 3 * 13_000_000 * 4,
            dtype: DType::F32,
        }
    }

    #[test]
    fn half_precision_gemms_use_less_energy() {
        let e = EnergyModel::hbm2();
        let f32e = e.op_energy_uj(&gemm_op(DType::F32));
        let f16e = e.op_energy_uj(&gemm_op(DType::F16));
        assert!(f16e < 0.5 * f32e, "f16 {f16e} vs f32 {f32e}");
    }

    #[test]
    fn gemm_energy_is_compute_dominated_lamb_is_movement_dominated() {
        let e = EnergyModel::hbm2();
        let g = gemm_op(DType::F32);
        let arith = g.flops as f64 * e.pj_per_matrix_flop_f32;
        let dram = g.bytes_total() as f64 * e.pj_per_dram_byte;
        assert!(arith > 3.0 * dram, "GEMM: arithmetic dominates");
        let l = lamb_op();
        let arith = l.flops as f64 * e.pj_per_vector_flop;
        let dram = l.bytes_total() as f64 * e.pj_per_dram_byte;
        assert!(dram > 10.0 * arith, "LAMB: movement dominates");
    }

    #[test]
    fn nmc_saves_most_of_lambs_energy() {
        // The §6.2.1 energy claim: bank-local execution avoids the HBM
        // interface for every byte.
        let e = EnergyModel::hbm2();
        let l = lamb_op();
        let gpu = e.op_energy_uj(&l);
        let nmc = e.nmc_op_energy_uj(&l);
        let saving = 1.0 - nmc / gpu;
        assert!((0.5..0.9).contains(&saving), "NMC energy saving {saving}");
    }

    #[test]
    fn totals_accumulate() {
        let e = EnergyModel::hbm2();
        let ops = vec![gemm_op(DType::F32), lamb_op()];
        let total = e.total_energy_j(&ops);
        let sum = (e.op_energy_uj(&ops[0]) + e.op_energy_uj(&ops[1])) / 1.0e6;
        assert!((total - sum).abs() < 1e-12);
        assert!(total > 0.0);
    }
}
