//! Analytical device models for the bertscope characterization suite.
//!
//! The paper's takeaways are derived from operator manifestation, size and
//! arithmetic intensity; this crate supplies the device-side half of that
//! analysis:
//!
//! * [`GpuModel`] — a roofline accelerator with shape-dependent GEMM
//!   efficiency and a bandwidth ramp, calibrated to the AMD Instinct MI100
//!   the paper profiled;
//! * [`NmcModel`] — per-bank near-memory compute over HBM2 (paper §6.2.1);
//! * [`Link`] — interconnect and Ring-AllReduce cost models for distributed
//!   training (paper §5.1).
//!
//! # Examples
//!
//! ```
//! use bertscope_device::GpuModel;
//! use bertscope_tensor::{GemmSpec, Transpose};
//!
//! let gpu = GpuModel::mi100();
//! let fc = GemmSpec::new(Transpose::No, Transpose::No, 4096, 4096, 1024);
//! let attn = GemmSpec::batched(Transpose::No, Transpose::Yes, 128, 128, 64, 512);
//! // The paper's Takeaway 6 falls out of the efficiency model:
//! assert!(gpu.gemm_efficiency(&fc) > gpu.gemm_efficiency(&attn));
//! ```

pub mod energy;
pub mod gpu;
pub mod interconnect;
pub mod nmc;

pub use energy::EnergyModel;
pub use gpu::GpuModel;
pub use interconnect::{InNetworkSwitch, Link};
pub use nmc::NmcModel;
