//! Near-memory compute model (paper §6.2.1).
//!
//! Models a "balanced design point with ALUs at each bank" of an HBM2 stack:
//! elementwise-capable ALUs sit beside every DRAM bank and operate on
//! broadcast commands from the host. Aggregate bank-level bandwidth exceeds
//! the external interface by a small integer factor, which is exactly the
//! speedup available to streaming elementwise phases like the LAMB update.

use crate::gpu::GpuModel;
use bertscope_tensor::{OpKind, OpRecord};

/// A per-bank-ALU near-memory compute configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NmcModel {
    /// Human-readable name.
    pub name: String,
    /// Number of independently-accessible DRAM banks with ALUs.
    pub banks: usize,
    /// Sustained per-bank data rate in GB/s (row-activation and tCCD
    /// limited).
    pub per_bank_bw_gbps: f64,
    /// ALU throughput per bank, in GFLOP/s (elementwise ops only).
    pub per_bank_gflops: f64,
    /// Per-command broadcast overhead in microseconds.
    pub command_overhead_us: f64,
}

impl NmcModel {
    /// The HBM2 configuration paired with [`GpuModel::mi100`]: 32 channels x
    /// 16 banks, tuned to the bank-level bandwidth amplification reported by
    /// the DRAM-vendor NMC proposals the paper cites ([3, 46, 54]).
    #[must_use]
    pub fn hbm2_per_bank() -> Self {
        NmcModel {
            name: "HBM2-bank-NMC".into(),
            banks: 512,
            per_bank_bw_gbps: 9.1,
            per_bank_gflops: 4.0,
            command_overhead_us: 2.0,
        }
    }

    /// Aggregate internal bandwidth across all banks, GB/s.
    #[must_use]
    pub fn aggregate_bw_gbps(&self) -> f64 {
        self.banks as f64 * self.per_bank_bw_gbps
    }

    /// Aggregate elementwise ALU throughput, GFLOP/s.
    #[must_use]
    pub fn aggregate_gflops(&self) -> f64 {
        self.banks as f64 * self.per_bank_gflops
    }

    /// Whether an op can be offloaded to the in-memory ALUs: streaming
    /// elementwise arithmetic (and simple reductions) with no data reuse.
    #[must_use]
    pub fn can_offload(op: &OpRecord) -> bool {
        matches!(op.kind, OpKind::ElementWise | OpKind::Reduction)
    }

    /// Modelled NMC execution time of one offloaded op, in microseconds.
    ///
    /// Data is assumed to be placed bank-aligned (as in the paper's cited
    /// NMC works), so the op streams at aggregate bank bandwidth, bounded by
    /// ALU throughput.
    #[must_use]
    pub fn op_time_us(&self, op: &OpRecord) -> f64 {
        let mem_s = op.bytes_total() as f64 / (self.aggregate_bw_gbps() * 1.0e9);
        let compute_s = op.flops as f64 / (self.aggregate_gflops() * 1.0e9);
        self.command_overhead_us + mem_s.max(compute_s) * 1.0e6
    }

    /// Time of an op stream when every offloadable op runs on NMC, in
    /// microseconds. Non-offloadable ops are not accepted — callers filter
    /// with [`NmcModel::can_offload`].
    #[must_use]
    pub fn total_time_us(&self, ops: &[OpRecord]) -> f64 {
        ops.iter().map(|o| self.op_time_us(o)).sum()
    }

    /// The paper's comparison baseline: an *optimistic* GPU execution in
    /// which the op costs only its minimal data reads and writes at full
    /// external bandwidth (no launch overhead, no efficiency derating).
    #[must_use]
    pub fn optimistic_gpu_time_us(gpu: &GpuModel, ops: &[OpRecord]) -> f64 {
        let bytes: u64 = ops.iter().map(OpRecord::bytes_total).sum();
        bytes as f64 / (gpu.mem_bw_gbps * 1.0e9) * 1.0e6
    }
}

impl Default for NmcModel {
    fn default() -> Self {
        NmcModel::hbm2_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::{Category, DType, Phase};

    fn lamb_like_op(numel: u64) -> OpRecord {
        OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: "lamb.stage1".into(),
            kind: OpKind::ElementWise,
            category: Category::LambStage1,
            phase: Phase::Update,
            layer: None,
            gemm: None,
            flops: 14 * numel,
            bytes_read: 4 * numel * 4,
            bytes_written: 3 * numel * 4,
            dtype: DType::F32,
        }
    }

    #[test]
    fn aggregate_bandwidth_is_several_times_external() {
        let nmc = NmcModel::hbm2_per_bank();
        let gpu = GpuModel::mi100();
        let factor = nmc.aggregate_bw_gbps() / gpu.mem_bw_gbps;
        assert!((3.0..5.0).contains(&factor), "internal/external bandwidth factor {factor}");
    }

    #[test]
    fn lamb_speedup_vs_optimistic_gpu_is_close_to_3_8x() {
        // Paper §6.2.1: NMC speeds up LAMB by 3.8x against an optimistic
        // GPU model with only minimal reads/writes.
        let nmc = NmcModel::hbm2_per_bank();
        let gpu = GpuModel::mi100();
        // A BERT-Large-sized LAMB update: 26 update groups of ~13M params.
        let ops: Vec<OpRecord> = (0..26).map(|_| lamb_like_op(13_000_000)).collect();
        let gpu_t = NmcModel::optimistic_gpu_time_us(&gpu, &ops);
        let nmc_t = nmc.total_time_us(&ops);
        let speedup = gpu_t / nmc_t;
        assert!((3.2..4.2).contains(&speedup), "NMC speedup {speedup}");
    }

    #[test]
    fn offload_filter_accepts_elementwise_rejects_gemm() {
        let op = lamb_like_op(100);
        assert!(NmcModel::can_offload(&op));
        let gemm = OpRecord { kind: OpKind::Gemm, ..lamb_like_op(100) };
        assert!(!NmcModel::can_offload(&gemm));
        let copy = OpRecord { kind: OpKind::Copy, ..lamb_like_op(100) };
        assert!(!NmcModel::can_offload(&copy));
    }

    #[test]
    fn command_overhead_dominates_tiny_ops() {
        let nmc = NmcModel::hbm2_per_bank();
        let tiny = lamb_like_op(16);
        assert!(nmc.op_time_us(&tiny) < nmc.command_overhead_us * 1.01);
    }

    #[test]
    fn alu_bound_when_flops_dense() {
        let nmc = NmcModel::hbm2_per_bank();
        let mut op = lamb_like_op(10_000_000);
        // Give the op pathological arithmetic density.
        op.flops = 1_000_000_000_000;
        let t = nmc.op_time_us(&op);
        let alu_bound_us =
            op.flops as f64 / (nmc.aggregate_gflops() * 1e9) * 1e6 + nmc.command_overhead_us;
        assert!((t - alu_bound_us).abs() / alu_bound_us < 1e-9);
    }
}
