//! Multi-device training models for the bertscope suite (paper §5).
//!
//! * [`allreduce`] — a real, multi-threaded Ring AllReduce implementation
//!   that grounds the analytic communication model;
//! * [`dp`] — data parallelism with and without compute/communication
//!   overlap (paper configurations D1/D2);
//! * [`ts`] — Megatron-style tensor slicing: the per-device graph transform
//!   plus four serialized AllReduces per layer (configurations T1/T2);
//! * [`zero`] — ZeRO-style optimizer-state sharding (the ZeRO (paper ref. 69) approach the
//!   paper discusses, including LAMB's surviving grad-norm dependency);
//! * [`hybrid`] — M-way slicing x D-way replication clusters (paper §2.5);
//! * [`figure11_profiles`] — the complete Fig. 11 configuration set;
//! * [`linkmodel`] — α/β interconnect parameters fitted from *measured*
//!   AllReduce timings, bridging the socket runtime back to the analytic
//!   [`Link`](bertscope_device::Link) model;
//! * [`proc`] — a real multi-process elastic data-parallel runtime:
//!   socket ring AllReduce, supervised membership, fault injection and
//!   checkpoint/elastic recovery.

pub mod allreduce;
pub mod dp;
pub mod hybrid;
pub mod linkmodel;
pub mod proc;
pub mod ts;
pub mod zero;

pub use allreduce::{
    ring_allreduce, ring_allreduce_faulty, ring_allreduce_mean, ring_allreduce_with,
    AllReduceError, AllReduceStats, RingConfig,
};
pub use dp::data_parallel_profile;
pub use hybrid::{hybrid_profile, HybridPlan};
pub use linkmodel::{LinkModel, LinkSample};
pub use proc::{
    run_process_cluster, run_thread_cluster, ClusterConfig, ClusterReport, DegradationEvent,
    DistError, RecoveryMode, SocketRing, WorkerConfig, WorkerReport,
};
pub use ts::{tensor_slice_ops, tensor_slice_profile};
pub use zero::zero_dp_profile;

use bertscope_device::{GpuModel, Link};
use bertscope_model::{BertConfig, GraphOptions};
use bertscope_sim::IterationProfile;

/// A labelled per-device profile of one Fig. 11 configuration.
#[derive(Debug, Clone)]
pub struct DistPoint {
    /// Configuration label as in the paper (S1, D1, D2, T1, T2).
    pub label: String,
    /// Description of the configuration.
    pub description: String,
    /// The per-device profile.
    pub profile: IterationProfile,
}

/// Build the five per-device profiles of the paper's Fig. 11:
/// S1 (single GPU, B=16), D1 (128-way DP without overlap), D2 (128-way DP
/// with overlap), T1 (2-way tensor slicing, B=16), T2 (8-way tensor
/// slicing, B=64).
#[must_use]
pub fn figure11_profiles(gpu: &GpuModel, link: &Link) -> Vec<DistPoint> {
    let opts = GraphOptions::default();
    let b16 = BertConfig::bert_large().phase1(16);
    let b64 = BertConfig::bert_large().phase1(64);
    vec![
        DistPoint {
            label: "S1".into(),
            description: "single GPU, B=16".into(),
            profile: bertscope_sim::simulate_iteration(&b16, &opts, gpu),
        },
        DistPoint {
            label: "D1".into(),
            description: "data parallel, 128 GPUs, B=16, no overlap".into(),
            profile: dp::data_parallel_profile(&b16, &opts, gpu, link, 128, false),
        },
        DistPoint {
            label: "D2".into(),
            description: "data parallel, 128 GPUs, B=16, overlapped".into(),
            profile: dp::data_parallel_profile(&b16, &opts, gpu, link, 128, true),
        },
        DistPoint {
            label: "T1".into(),
            description: "tensor slicing, 2-way, B=16".into(),
            profile: ts::tensor_slice_profile(&b16, &opts, gpu, link, 2),
        },
        DistPoint {
            label: "T2".into(),
            description: "tensor slicing, 8-way, B=64".into(),
            profile: ts::tensor_slice_profile(&b64, &opts, gpu, link, 8),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::Group;

    #[test]
    fn figure11_reproduces_paper_orderings() {
        let gpu = GpuModel::mi100();
        let link = Link::pcie4();
        let pts = figure11_profiles(&gpu, &link);
        let get = |l: &str| &pts.iter().find(|p| p.label == l).unwrap().profile;
        let comm = |l: &str| get(l).group_fraction(Group::Comm);
        let lamb = |l: &str| get(l).group_fraction(Group::Lamb);

        // S1 has no communication; D2's profile is close to S1 (Obs. 5).
        assert_eq!(comm("S1"), 0.0);
        assert!(comm("D2") < 0.08, "D2 comm {}", comm("D2"));
        // D1 exposes significant communication (paper: ~19%).
        assert!(comm("D1") > 2.0 * comm("D2").max(0.02), "D1 comm {}", comm("D1"));
        // T1 spends noticeable time communicating (paper: ~9%).
        assert!((0.02..0.25).contains(&comm("T1")), "T1 comm {}", comm("T1"));
        // T2's communication dominates T1's (paper: ~42%), Takeaway 13.
        assert!(comm("T2") > comm("T1"), "T2 {} vs T1 {}", comm("T2"), comm("T1"));
        assert!(comm("T2") > 0.2);
        // LAMB's share shrinks with slicing ways (Takeaway 12).
        assert!(lamb("S1") > lamb("T1"));
        assert!(lamb("T1") > lamb("T2"));
        assert!(lamb("T2") < 0.03);
    }

    #[test]
    fn labels_are_unique_and_complete() {
        let pts = figure11_profiles(&GpuModel::mi100(), &Link::pcie4());
        let labels: Vec<_> = pts.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["S1", "D1", "D2", "T1", "T2"]);
    }
}
