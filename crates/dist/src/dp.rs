//! Data-parallel training model (paper §5.1-5.2, configurations D1/D2).
//!
//! Per-device computation equals single-device training; gradients are
//! averaged with a Ring AllReduce every iteration. With overlap, layer `L`'s
//! gradient communication proceeds while the device computes layer `L-1`'s
//! gradients — modelled, as in the paper, by running compute and the
//! communication engine as two pipelined resources and exposing only the
//! communication that cannot hide.

use bertscope_device::{GpuModel, Link};
use bertscope_model::{build_iteration, update_groups, BertConfig, GraphOptions};
use bertscope_sim::{IterationProfile, TimedOp};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

/// Build the exposed-communication op for a data-parallel iteration.
fn comm_op(label: &str, bytes: u64, time_us: f64) -> TimedOp {
    TimedOp {
        op: OpRecord {
            access: bertscope_tensor::AccessSet::default(),
            name: label.to_owned(),
            kind: OpKind::Comm,
            category: Category::Comm,
            phase: Phase::Communication,
            layer: None,
            gemm: None,
            flops: 0,
            bytes_read: bytes,
            bytes_written: bytes,
            dtype: DType::F32,
        },
        time_us,
    }
}

/// Per-device profile of data-parallel training across `devices` GPUs.
///
/// `overlap` selects between the paper's D1 (gradients communicated after
/// the full backprop) and D2 (communication overlapped with backprop).
#[must_use]
pub fn data_parallel_profile(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    link: &Link,
    devices: usize,
    overlap: bool,
) -> IterationProfile {
    let ops = build_iteration(cfg, opts);
    let grad_dtype = opts.precision.activation_dtype();
    let groups = update_groups(cfg);
    let group_bytes: Vec<(Option<usize>, u64)> =
        groups.iter().map(|g| (g.layer, g.numel * grad_dtype.size_bytes())).collect();
    let total_grad_bytes: u64 = group_bytes.iter().map(|(_, b)| b).sum();

    let mut timed: Vec<TimedOp> =
        ops.iter().map(|op| TimedOp { op: op.clone(), time_us: gpu.op_time_us(op) }).collect();

    if !overlap {
        // D1: one big AllReduce fully exposed after backprop.
        let t = link.ring_allreduce_us(total_grad_bytes, devices);
        // Insert before the optimizer update.
        let pos = timed.iter().position(|t| t.op.phase == Phase::Update).unwrap_or(timed.len());
        timed.insert(pos, comm_op("allreduce.gradients", total_grad_bytes, t));
        return IterationProfile::from_timed(timed);
    }

    // D2: per-group AllReduces issued as each layer's backprop finishes,
    // overlapping with the next layer's compute. Two-resource pipeline:
    // compute runs serially; the comm engine starts each transfer when both
    // the gradients exist and the link is free.
    let bwd_layer_time = |layer: usize| -> f64 {
        timed
            .iter()
            .filter(|t| t.op.phase == Phase::Backward && t.op.layer == Some(layer))
            .map(|t| t.time_us)
            .sum()
    };
    let bwd_cat_time = |cat: Category| -> f64 {
        timed
            .iter()
            .filter(|t| t.op.phase == Phase::Backward && t.op.category == cat)
            .map(|t| t.time_us)
            .sum()
    };
    let es = grad_dtype.size_bytes();
    let bytes_of =
        |name: &str| -> u64 { groups.iter().find(|g| g.name == name).map_or(0, |g| g.numel * es) };
    // Backprop order: output-head grads first, then layers N-1..0, then
    // the embeddings.
    let mut t_compute = 0.0f64;
    let mut t_comm = 0.0f64;
    t_compute += bwd_cat_time(Category::Output);
    t_comm = t_comm.max(t_compute) + link.ring_allreduce_us(bytes_of("output"), devices);
    for l in (0..cfg.layers).rev() {
        t_compute += bwd_layer_time(l);
        t_comm =
            t_comm.max(t_compute) + link.ring_allreduce_us(bytes_of(&format!("l{l}")), devices);
    }
    t_compute += bwd_cat_time(Category::Embedding);
    t_comm = t_comm.max(t_compute) + link.ring_allreduce_us(bytes_of("embeddings"), devices);
    let exposed = (t_comm - t_compute).max(0.0);
    let pos = timed.iter().position(|t| t.op.phase == Phase::Update).unwrap_or(timed.len());
    timed.insert(pos, comm_op("allreduce.gradients.exposed", total_grad_bytes, exposed));
    IterationProfile::from_timed(timed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::Group;

    fn setup() -> (BertConfig, GraphOptions, GpuModel, Link) {
        (
            BertConfig::bert_large().phase1(16),
            GraphOptions::default(),
            GpuModel::mi100(),
            Link::pcie4(),
        )
    }

    #[test]
    fn without_overlap_communication_is_significant() {
        // Paper D1: ~19% of runtime spent communicating gradients.
        let (cfg, opts, gpu, link) = setup();
        let p = data_parallel_profile(&cfg, &opts, &gpu, &link, 128, false);
        let comm = p.group_fraction(Group::Comm);
        assert!((0.08..0.35).contains(&comm), "D1 comm fraction {comm}");
    }

    #[test]
    fn with_overlap_communication_mostly_hides() {
        // Paper D2 / Obs. 5: the overlapped profile looks like single-GPU.
        let (cfg, opts, gpu, link) = setup();
        let d2 = data_parallel_profile(&cfg, &opts, &gpu, &link, 128, true);
        let comm = d2.group_fraction(Group::Comm);
        assert!(comm < 0.08, "D2 exposed comm fraction {comm}");
        let d1 = data_parallel_profile(&cfg, &opts, &gpu, &link, 128, false);
        assert!(d1.total_us() > d2.total_us(), "overlap helps");
        // Compute portions are identical.
        let compute = |p: &IterationProfile| {
            p.total_us() - p.time_by_group().get(&Group::Comm).copied().unwrap_or(0.0)
        };
        assert!((compute(&d1) - compute(&d2)).abs() < 1e-6);
    }

    #[test]
    fn single_device_degenerates_to_local_training() {
        let (cfg, opts, gpu, link) = setup();
        let p = data_parallel_profile(&cfg, &opts, &gpu, &link, 1, true);
        assert_eq!(p.group_fraction(Group::Comm), 0.0);
    }

    #[test]
    fn faster_link_reduces_exposed_communication() {
        let (cfg, opts, gpu, _) = setup();
        let slow = data_parallel_profile(
            &cfg,
            &opts,
            &gpu,
            &Link { bw_gbps: 8.0, latency_us: 5.0 },
            128,
            true,
        );
        let fast = data_parallel_profile(&cfg, &opts, &gpu, &Link::xgmi(), 128, true);
        let comm =
            |p: &IterationProfile| p.time_by_group().get(&Group::Comm).copied().unwrap_or(0.0);
        assert!(comm(&slow) > comm(&fast));
    }
}
