//! Fitted α/β link model: closing the loop between measured and modelled
//! AllReduce time.
//!
//! The paper's §5.1 scaling analysis charges communication with an
//! analytic `steps·α + volume/BW` cost (the [`Link`] model in
//! `bertscope-device`). This module goes the other direction: given
//! *measured* ring-AllReduce timings from the multi-process runtime
//! ([`crate::proc`]) or the threaded ring, it least-squares fits the latency
//! term α (µs per pipeline hop) and the inverse-bandwidth term β (µs per
//! byte on the wire), producing a [`LinkModel`] that predicts step time for
//! unseen payload sizes and world sizes — and that converts back into a
//! [`Link`] so the fitted parameters flow straight into the Fig. 11
//! configuration profiles.

use bertscope_device::Link;

/// One observed collective: payload size, world size, and measured wall
/// time. The fit works on any ring collective whose hop/volume structure
/// matches [`Link::ring_allreduce_us`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Total payload bytes per rank (the full gradient buffer, not the
    /// per-hop chunk).
    pub bytes: u64,
    /// Number of participating ranks.
    pub devices: usize,
    /// Measured wall time of the collective, in microseconds.
    pub measured_us: f64,
}

/// A fitted latency/bandwidth model of one ring link:
/// `t_us = alpha_us · steps + beta_us_per_byte · wire_bytes`, where
/// `steps = 2(D−1)` and `wire_bytes = 2(D−1)/D · bytes` (the ring
/// AllReduce's per-device traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Per-hop latency in microseconds (the α term).
    pub alpha_us: f64,
    /// Per-byte wire time in microseconds (the β term, `1 / bandwidth`).
    pub beta_us_per_byte: f64,
    /// Coefficient of determination of the fit on its training samples
    /// (1.0 = the two-parameter model explains the timings exactly).
    pub r_squared: f64,
    /// Number of samples the fit consumed.
    pub samples: usize,
}

/// Ring pipeline steps for `d` devices: `2(d−1)`, zero for a lone rank.
#[must_use]
pub fn ring_steps(devices: usize) -> f64 {
    if devices < 2 {
        0.0
    } else {
        2.0 * (devices as f64 - 1.0)
    }
}

/// Per-device wire traffic of a ring AllReduce over `bytes` payload:
/// `2(d−1)/d · bytes`.
#[must_use]
pub fn ring_wire_bytes(bytes: u64, devices: usize) -> f64 {
    if devices < 2 {
        0.0
    } else {
        let d = devices as f64;
        2.0 * (d - 1.0) / d * bytes as f64
    }
}

impl LinkModel {
    /// Least-squares fit of α and β from measured collectives.
    ///
    /// Solves the 2×2 normal equations of
    /// `measured ≈ α·steps + β·wire_bytes` over all samples. Samples with
    /// fewer than two devices carry no signal (zero steps, zero traffic)
    /// and are ignored.
    ///
    /// Returns `None` when fewer than two informative samples remain or
    /// the system is singular (e.g. all samples share one
    /// steps:wire-bytes ratio, which cannot separate latency from
    /// bandwidth).
    #[must_use]
    pub fn fit(samples: &[LinkSample]) -> Option<LinkModel> {
        let pts: Vec<(f64, f64, f64)> = samples
            .iter()
            .filter(|s| s.devices >= 2)
            .map(|s| (ring_steps(s.devices), ring_wire_bytes(s.bytes, s.devices), s.measured_us))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        // Normal equations for y = a·x1 + b·x2 (no intercept: a lone rank
        // communicates in zero time by construction).
        let (mut s11, mut s12, mut s22, mut sy1, mut sy2) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for &(x1, x2, y) in &pts {
            s11 += x1 * x1;
            s12 += x1 * x2;
            s22 += x2 * x2;
            sy1 += x1 * y;
            sy2 += x2 * y;
        }
        let det = s11 * s22 - s12 * s12;
        // Singular (or numerically so) when all samples are collinear.
        if det.abs() <= 1e-9 * (s11 * s22).max(1.0) {
            return None;
        }
        let alpha = (sy1 * s22 - sy2 * s12) / det;
        let beta = (s11 * sy2 - s12 * sy1) / det;
        // Clamp to the physical region: noise on tiny payloads can drive a
        // term slightly negative, which would make predictions nonsense.
        let alpha = alpha.max(0.0);
        let beta = beta.max(0.0);

        let mean_y = pts.iter().map(|p| p.2).sum::<f64>() / pts.len() as f64;
        let ss_tot: f64 = pts.iter().map(|p| (p.2 - mean_y).powi(2)).sum();
        let ss_res: f64 = pts.iter().map(|p| (p.2 - (alpha * p.0 + beta * p.1)).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };

        Some(LinkModel { alpha_us: alpha, beta_us_per_byte: beta, r_squared, samples: pts.len() })
    }

    /// Predicted ring-AllReduce wall time (µs) for a payload of `bytes`
    /// across `devices` ranks.
    #[must_use]
    pub fn predict_us(&self, bytes: u64, devices: usize) -> f64 {
        self.alpha_us * ring_steps(devices)
            + self.beta_us_per_byte * ring_wire_bytes(bytes, devices)
    }

    /// Effective link bandwidth implied by the β term, in GB/s (the unit
    /// [`Link::bw_gbps`] speaks).
    #[must_use]
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.beta_us_per_byte <= 0.0 {
            return f64::INFINITY;
        }
        // β is µs/byte → bytes/s = 1e6/β → GB/s = 1e-3/β.
        1.0e-3 / self.beta_us_per_byte
    }

    /// Convert the fit into the analytic [`Link`] the Fig. 11 profiles
    /// consume, feeding measured parameters back into the model.
    #[must_use]
    pub fn to_link(&self) -> Link {
        Link { bw_gbps: self.bandwidth_gbps(), latency_us: self.alpha_us }
    }

    /// The exact model a [`Link`] implies — useful for comparing an
    /// analytic link's predictions against a fitted one's.
    #[must_use]
    pub fn from_link(link: &Link) -> LinkModel {
        LinkModel {
            alpha_us: link.latency_us,
            beta_us_per_byte: 1.0e-3 / link.bw_gbps,
            r_squared: 1.0,
            samples: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(alpha: f64, beta: f64) -> Vec<LinkSample> {
        let mut out = Vec::new();
        for devices in [2usize, 4, 8] {
            for bytes in [1u64 << 10, 1 << 16, 1 << 20] {
                let t = alpha * ring_steps(devices) + beta * ring_wire_bytes(bytes, devices);
                out.push(LinkSample { bytes, devices, measured_us: t });
            }
        }
        out
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        let (alpha, beta) = (42.0, 3.5e-3);
        let model = LinkModel::fit(&synthetic(alpha, beta)).expect("well-posed fit");
        assert!((model.alpha_us - alpha).abs() < 1e-6, "alpha {}", model.alpha_us);
        assert!((model.beta_us_per_byte - beta).abs() < 1e-9, "beta {}", model.beta_us_per_byte);
        assert!(model.r_squared > 0.999_999);
        assert_eq!(model.samples, 9);
    }

    #[test]
    fn fit_is_robust_to_noise() {
        // Deterministic ±5% multiplicative noise.
        let mut samples = synthetic(100.0, 1e-2);
        for (i, s) in samples.iter_mut().enumerate() {
            let wiggle = 1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 };
            s.measured_us *= wiggle;
        }
        let model = LinkModel::fit(&samples).expect("noisy but well-posed");
        assert!((model.alpha_us - 100.0).abs() / 100.0 < 0.5, "alpha {}", model.alpha_us);
        assert!((model.beta_us_per_byte - 1e-2).abs() / 1e-2 < 0.2);
        assert!(model.r_squared > 0.9);
    }

    #[test]
    fn degenerate_fits_are_refused() {
        // Too few points.
        assert!(LinkModel::fit(&[]).is_none());
        assert!(
            LinkModel::fit(&[LinkSample { bytes: 1024, devices: 4, measured_us: 10.0 }]).is_none()
        );
        // Single-device samples carry no signal.
        let lone = vec![
            LinkSample { bytes: 1024, devices: 1, measured_us: 1.0 },
            LinkSample { bytes: 4096, devices: 1, measured_us: 2.0 },
        ];
        assert!(LinkModel::fit(&lone).is_none());
        // Collinear: same device count and byte size repeated — steps and
        // wire bytes are proportional across all samples.
        let collinear = vec![
            LinkSample { bytes: 1024, devices: 4, measured_us: 10.0 },
            LinkSample { bytes: 1024, devices: 4, measured_us: 11.0 },
        ];
        assert!(LinkModel::fit(&collinear).is_none());
    }

    #[test]
    fn prediction_matches_device_link_closed_form() {
        // from_link's model must agree with Link::ring_allreduce_us.
        let link = Link::pcie4();
        let model = LinkModel::from_link(&link);
        for devices in [2usize, 4, 8, 16] {
            for bytes in [1u64 << 12, 1 << 20, 1 << 26] {
                let want = link.ring_allreduce_us(bytes, devices);
                let got = model.predict_us(bytes, devices);
                assert!(
                    (want - got).abs() <= 1e-6 * want.max(1.0),
                    "d={devices} bytes={bytes}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_through_link_preserves_parameters() {
        let fitted = LinkModel::fit(&synthetic(12.0, 2.0e-3)).expect("fit");
        let back = LinkModel::from_link(&fitted.to_link());
        assert!((back.alpha_us - fitted.alpha_us).abs() < 1e-9);
        assert!((back.beta_us_per_byte - fitted.beta_us_per_byte).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_units_are_consistent() {
        // β of 1e-3 µs/byte is exactly 1 GB/s.
        let model =
            LinkModel { alpha_us: 0.0, beta_us_per_byte: 1.0e-3, r_squared: 1.0, samples: 0 };
        assert!((model.bandwidth_gbps() - 1.0).abs() < 1e-9);
    }
}
