//! A real, multi-threaded Ring AllReduce (Baidu's ring algorithm, paper ref. 28) over in-process
//! channels.
//!
//! The paper *models* AllReduce cost analytically (§5.1); this module
//! grounds that model in an actual implementation: `D` worker threads, each
//! holding a buffer shard pipeline, perform the classic `2(D-1)`-step
//! reduce-scatter + all-gather exchange over bounded std channels. Tests
//! verify the result equals the elementwise mean/sum and that the traffic
//! per device matches the `2(D-1)/D * bytes` volume the analytic model
//! charges.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

/// Statistics from one AllReduce execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllReduceStats {
    /// Number of participating devices.
    pub devices: usize,
    /// Bytes sent per device over its ring link.
    pub bytes_sent_per_device: u64,
    /// Number of pipeline steps executed (`2 * (D - 1)`).
    pub steps: usize,
}

/// Sum-AllReduce the given per-device buffers in place using a ring across
/// one thread per device. All buffers must have equal length.
///
/// Returns per-device traffic statistics (the quantity the analytic
/// communication model charges).
///
/// # Panics
///
/// Panics when buffers have mismatched lengths or `buffers` is empty.
pub fn ring_allreduce(buffers: &mut [Vec<f32>]) -> AllReduceStats {
    let d = buffers.len();
    assert!(d > 0, "at least one device required");
    let len = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == len), "buffer lengths must match");
    if d == 1 || len == 0 {
        return AllReduceStats { devices: d, bytes_sent_per_device: 0, steps: 0 };
    }

    // Chunk boundaries: D chunks, as even as possible.
    let chunk_bounds: Vec<(usize, usize)> = (0..d)
        .map(|c| {
            let start = c * len / d;
            let end = (c + 1) * len / d;
            (start, end)
        })
        .collect();

    // Ring channels: device i sends to (i+1) % d.
    let mut senders: Vec<Option<SyncSender<Vec<f32>>>> = Vec::with_capacity(d);
    let mut rx_store: Vec<Option<Receiver<Vec<f32>>>> = (0..d).map(|_| None).collect();
    for i in 0..d {
        let (tx, rx) = sync_channel::<Vec<f32>>(1);
        senders.push(Some(tx));
        rx_store[(i + 1) % d] = Some(rx);
    }

    let mut sent_counts = vec![0u64; d];
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(d);
        for (rank, buf) in buffers.iter_mut().enumerate() {
            let tx = senders[rank].take().expect("sender present");
            let rx = rx_store[rank].take().expect("receiver present");
            let bounds = chunk_bounds.clone();
            handles.push(scope.spawn(move || -> u64 {
                let mut sent = 0u64;
                // Reduce-scatter: D-1 steps. At step s, rank sends chunk
                // (rank - s) and accumulates into chunk (rank - s - 1).
                for s in 0..d - 1 {
                    let send_chunk = (rank + d - s) % d;
                    let (a, b) = bounds[send_chunk];
                    let payload = buf[a..b].to_vec();
                    sent += ((b - a) * 4) as u64;
                    tx.send(payload).expect("ring send");
                    let incoming = rx.recv().expect("ring recv");
                    let recv_chunk = (rank + d - s - 1) % d;
                    let (ra, rb) = bounds[recv_chunk];
                    for (dst, src) in buf[ra..rb].iter_mut().zip(&incoming) {
                        *dst += src;
                    }
                }
                // All-gather: D-1 steps. Rank now owns the fully-reduced
                // chunk (rank + 1); circulate the reduced chunks.
                for s in 0..d - 1 {
                    let send_chunk = (rank + 1 + d - s) % d;
                    let (a, b) = bounds[send_chunk];
                    let payload = buf[a..b].to_vec();
                    sent += ((b - a) * 4) as u64;
                    tx.send(payload).expect("ring send");
                    let incoming = rx.recv().expect("ring recv");
                    let recv_chunk = (rank + d - s) % d;
                    let (ra, rb) = bounds[recv_chunk];
                    buf[ra..rb].copy_from_slice(&incoming);
                }
                sent
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            sent_counts[rank] = h.join().expect("allreduce worker panicked");
        }
    });

    AllReduceStats {
        devices: d,
        bytes_sent_per_device: sent_counts.iter().copied().max().unwrap_or(0),
        steps: 2 * (d - 1),
    }
}

/// Mean-AllReduce: sum then divide by the device count (the gradient
/// averaging of data-parallel training, §2.5).
///
/// # Panics
///
/// Panics under the same conditions as [`ring_allreduce`].
pub fn ring_allreduce_mean(buffers: &mut [Vec<f32>]) -> AllReduceStats {
    let stats = ring_allreduce(buffers);
    let inv = 1.0 / buffers.len() as f32;
    for b in buffers.iter_mut() {
        for v in b.iter_mut() {
            *v *= inv;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_buffers(d: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..d).map(|_| (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn allreduce_computes_elementwise_sum() {
        for d in [2usize, 3, 4, 8] {
            let len = 37; // deliberately not divisible by d
            let bufs = random_buffers(d, len, d as u64);
            let expected: Vec<f32> =
                (0..len).map(|i| bufs.iter().map(|b| b[i]).sum::<f32>()).collect();
            let mut work = bufs.clone();
            let stats = ring_allreduce(&mut work);
            for b in &work {
                for (got, want) in b.iter().zip(&expected) {
                    assert!((got - want).abs() < 1e-4, "d={d}: {got} vs {want}");
                }
            }
            assert_eq!(stats.steps, 2 * (d - 1));
        }
    }

    #[test]
    fn mean_allreduce_averages_gradients() {
        let mut bufs = vec![vec![1.0f32; 8], vec![3.0; 8]];
        ring_allreduce_mean(&mut bufs);
        for b in &bufs {
            assert!(b.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        }
    }

    #[test]
    fn traffic_matches_analytic_volume() {
        // Analytic model: each device sends 2*(D-1)/D of the buffer.
        let d = 4;
        let len = 1024;
        let mut bufs = random_buffers(d, len, 9);
        let stats = ring_allreduce(&mut bufs);
        let expected = (2 * (d - 1) * len / d * 4) as u64;
        assert_eq!(stats.bytes_sent_per_device, expected);
    }

    #[test]
    fn single_device_is_identity() {
        let mut bufs = vec![vec![5.0f32; 4]];
        let stats = ring_allreduce(&mut bufs);
        assert_eq!(bufs[0], vec![5.0; 4]);
        assert_eq!(stats.bytes_sent_per_device, 0);
    }

    #[test]
    fn empty_buffers_are_noop() {
        let mut bufs = vec![Vec::new(), Vec::new()];
        let stats = ring_allreduce(&mut bufs);
        assert_eq!(stats.bytes_sent_per_device, 0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut bufs = vec![vec![1.0f32; 4], vec![1.0; 5]];
        let _ = ring_allreduce(&mut bufs);
    }
}
