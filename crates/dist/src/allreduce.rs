//! A real, multi-threaded Ring AllReduce (Baidu's ring algorithm, paper ref. 28) over in-process
//! channels.
//!
//! The paper *models* AllReduce cost analytically (§5.1); this module
//! grounds that model in an actual implementation: `D` worker threads, each
//! holding a buffer shard pipeline, perform the classic `2(D-1)`-step
//! reduce-scatter + all-gather exchange over std channels. Tests verify the
//! result equals the elementwise mean/sum and that the traffic per device
//! matches the `2(D-1)/D * bytes` volume the analytic model charges.
//!
//! The fault-tolerant entry point [`ring_allreduce_faulty`] additionally
//! accepts a set of injected faults (a killed rank, a delayed rank, a
//! corrupted segment) and a per-hop timeout: instead of deadlocking on a
//! dead neighbour the collective degrades into a structured
//! [`AllReduceError`] within the timeout bound — the behaviour an elastic
//! training runtime needs to trigger recovery.

use bertscope_tensor::FaultKind;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables shared by every ring collective in the suite — the in-process
/// threaded ring below and the multi-process socket ring in
/// [`crate::proc`]. One config type keeps the two rings' timeout/retry
/// semantics aligned, so a fault plan exercised against the cheap threaded
/// ring predicts the socket ring's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Per-hop receive (and, for the socket ring, acknowledgement) timeout.
    pub timeout: Duration,
    /// Bounded resend attempts per hop before the collective fails
    /// (socket ring; the threaded ring has no retransmission).
    pub max_retries: u32,
    /// Base backoff between retries; doubled on each attempt
    /// (exponential backoff, capped by `timeout`).
    pub backoff: Duration,
    /// Bucket granularity of the socket ring, in f32 elements per bucket.
    pub bucket_elems: usize,
    /// Maximum chunks in flight per hop: a sender blocks (bounded, with a
    /// deadline) instead of queueing unboundedly ahead of a slow receiver.
    pub max_inflight: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            timeout: Duration::from_secs(30),
            max_retries: 3,
            backoff: Duration::from_millis(20),
            bucket_elems: 1 << 18, // 1 MiB of f32s per bucket
            max_inflight: 2,
        }
    }
}

impl RingConfig {
    /// A config with the given per-hop timeout and defaults elsewhere.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        RingConfig { timeout, ..RingConfig::default() }
    }

    /// Backoff before retry attempt `attempt` (0-based), doubling per
    /// attempt and capped at the hop timeout.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = self.backoff.saturating_mul(1 << attempt.min(16));
        exp.min(self.timeout)
    }

    /// Deadline for forming (or re-forming) a socket ring. A surviving
    /// peer may only notice the old ring died after exhausting its full
    /// receive/acknowledgement retry budget — `(max_retries + 1)` hop
    /// timeouts plus the backoffs between them — so a rank that failed
    /// fast must out-wait that worst case (plus one hop timeout of
    /// margin for the handshake itself), not a single hop timeout.
    #[must_use]
    pub fn formation_timeout(&self) -> Duration {
        let mut t = self.timeout.saturating_mul(self.max_retries.saturating_add(2));
        for attempt in 0..self.max_retries {
            t = t.saturating_add(self.backoff_for(attempt));
        }
        t
    }
}

/// Statistics from one AllReduce execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllReduceStats {
    /// Number of participating devices.
    pub devices: usize,
    /// Bytes sent per device over its ring link.
    pub bytes_sent_per_device: u64,
    /// Number of pipeline steps executed (`2 * (D - 1)`).
    pub steps: usize,
    /// Hop-level retransmissions performed (socket ring: resends after a
    /// lost or corrupted frame; always zero for the threaded ring, which
    /// has no retransmission).
    pub retries: u64,
    /// Recoverable per-hop timeouts absorbed by retrying (a timeout that
    /// exhausts its retries fails the collective instead and is reported
    /// as an error, not counted here).
    pub timeouts: u64,
    /// Times a sender found its hop at the in-flight bound and had to
    /// wait for the receiver to drain — back-pressure events, the
    /// observable effect of bounding per-hop memory.
    pub send_stalls: u64,
}

/// A structured failure of a fault-injected ring collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceError {
    /// The named rank was killed by the fault plan before participating.
    RankKilled {
        /// The dead rank.
        rank: usize,
    },
    /// A rank waited longer than the per-hop timeout for its neighbour.
    Timeout {
        /// The rank whose receive timed out.
        rank: usize,
        /// The pipeline step (0-based, out of `2(D-1)`) that timed out.
        step: usize,
    },
    /// A rank's ring neighbour hung up mid-collective.
    PeerDisconnected {
        /// The rank that observed the hang-up.
        rank: usize,
        /// The pipeline step at which the link died.
        step: usize,
    },
    /// A worker thread panicked (a bug, not an injected fault).
    RankPanicked {
        /// The panicked rank.
        rank: usize,
    },
}

impl std::fmt::Display for AllReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllReduceError::RankKilled { rank } => {
                write!(f, "rank {rank} was killed before the collective completed")
            }
            AllReduceError::Timeout { rank, step } => {
                write!(f, "rank {rank} timed out waiting for its neighbour at ring step {step}")
            }
            AllReduceError::PeerDisconnected { rank, step } => {
                write!(f, "rank {rank} lost its ring neighbour at step {step}")
            }
            AllReduceError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
        }
    }
}

impl std::error::Error for AllReduceError {}

/// Sum-AllReduce the given per-device buffers in place using a ring across
/// one thread per device. All buffers must have equal length.
///
/// Returns per-device traffic statistics (the quantity the analytic
/// communication model charges).
///
/// # Panics
///
/// Panics when buffers have mismatched lengths or `buffers` is empty.
pub fn ring_allreduce(buffers: &mut [Vec<f32>]) -> AllReduceStats {
    ring_allreduce_with(buffers, &[], &RingConfig::default())
        .expect("fault-free allreduce cannot fail")
}

/// Sum-AllReduce with deterministic fault injection and per-hop timeouts.
///
/// Ring faults from the plan are applied before the exchange starts:
///
/// * [`FaultKind::KillRank`] — the rank drops its ring endpoints and exits
///   without sending; its neighbours observe the dead link and the call
///   returns [`AllReduceError::RankKilled`] instead of hanging.
/// * [`FaultKind::DelayRank`] — the rank sleeps before participating; the
///   collective still completes unless the delay exceeds `timeout`.
/// * [`FaultKind::CorruptSegment`] — the rank's chunk is NaN-poisoned, so
///   the reduction spreads NaN to every device (detectable downstream by
///   the trainer's finiteness check).
///
/// Non-ring faults (gradient faults) are ignored here. On success the
/// buffers hold the elementwise sum; on error their contents are
/// unspecified.
///
/// # Errors
///
/// Returns the root-cause [`AllReduceError`]: an injected kill wins over
/// the secondary timeouts/disconnects it causes on surviving ranks.
///
/// # Panics
///
/// Panics when buffers have mismatched lengths, `buffers` is empty, or a
/// fault names a rank or chunk out of range.
pub fn ring_allreduce_faulty(
    buffers: &mut [Vec<f32>],
    faults: &[FaultKind],
    timeout: Duration,
) -> Result<AllReduceStats, AllReduceError> {
    ring_allreduce_with(buffers, faults, &RingConfig::with_timeout(timeout))
}

/// [`ring_allreduce_faulty`] with the full [`RingConfig`] surface: the
/// per-hop timeout *and* the in-flight bound are caller-controlled. A rank
/// delayed by a [`FaultKind::DelayRank`] fault no longer causes unbounded
/// channel growth: its predecessor may run at most
/// [`RingConfig::max_inflight`] chunks ahead before stalling (bounded by
/// the same timeout), and the stall count is surfaced in
/// [`AllReduceStats::send_stalls`].
///
/// # Errors
///
/// Returns the root-cause [`AllReduceError`], as [`ring_allreduce_faulty`].
///
/// # Panics
///
/// Panics under the same conditions as [`ring_allreduce_faulty`], or when
/// `cfg.max_inflight` is zero.
pub fn ring_allreduce_with(
    buffers: &mut [Vec<f32>],
    faults: &[FaultKind],
    cfg: &RingConfig,
) -> Result<AllReduceStats, AllReduceError> {
    let timeout = cfg.timeout;
    assert!(cfg.max_inflight > 0, "max_inflight must be non-zero");
    let d = buffers.len();
    assert!(d > 0, "at least one device required");
    let len = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == len), "buffer lengths must match");

    // Chunk boundaries: D chunks, as even as possible.
    let chunk_bounds: Vec<(usize, usize)> =
        (0..d).map(|c| (c * len / d, (c + 1) * len / d)).collect();

    // Resolve the fault plan into per-rank effects.
    let mut killed = vec![false; d];
    let mut delay_micros = vec![0u64; d];
    for fault in faults {
        match *fault {
            FaultKind::KillRank { rank } => {
                assert!(rank < d, "fault plan kills rank {rank} of {d}");
                killed[rank] = true;
            }
            FaultKind::DelayRank { rank, micros } => {
                assert!(rank < d, "fault plan delays rank {rank} of {d}");
                delay_micros[rank] += micros;
            }
            FaultKind::CorruptSegment { rank, chunk } => {
                assert!(rank < d, "fault plan corrupts rank {rank} of {d}");
                assert!(chunk < d, "fault plan corrupts chunk {chunk} of {d}");
                let (a, b) = chunk_bounds[chunk];
                for v in &mut buffers[rank][a..b] {
                    *v = f32::NAN;
                }
            }
            // Gradient faults belong to the trainer; process/socket faults
            // belong to the multi-process runtime (`proc`).
            _ => {}
        }
    }

    if d == 1 || len == 0 {
        if killed[0] {
            return Err(AllReduceError::RankKilled { rank: 0 });
        }
        return Ok(AllReduceStats { devices: d, ..AllReduceStats::default() });
    }

    // Ring channels: device i sends to (i+1) % d. Bounded to
    // `max_inflight` chunks so a straggling receiver exerts back-pressure
    // instead of letting its predecessor queue the whole buffer; all
    // waiting (send-side stalls and receives alike) carries a deadline, so
    // a dead rank still degrades into a structured error.
    let mut senders: Vec<Option<SyncSender<Vec<f32>>>> = Vec::with_capacity(d);
    let mut rx_store: Vec<Option<Receiver<Vec<f32>>>> = (0..d).map(|_| None).collect();
    for i in 0..d {
        let (tx, rx) = sync_channel::<Vec<f32>>(cfg.max_inflight);
        senders.push(Some(tx));
        rx_store[(i + 1) % d] = Some(rx);
    }

    struct RankOutcome {
        sent: u64,
        stalls: u64,
    }

    let mut outcomes: Vec<Result<RankOutcome, AllReduceError>> = Vec::with_capacity(d);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(d);
        for (rank, buf) in buffers.iter_mut().enumerate() {
            let tx = senders[rank].take().expect("sender present");
            let rx = rx_store[rank].take().expect("receiver present");
            let bounds = chunk_bounds.clone();
            let is_killed = killed[rank];
            let delay = delay_micros[rank];
            handles.push(scope.spawn(move || -> Result<RankOutcome, AllReduceError> {
                if is_killed {
                    // Drop both endpoints without a single send: the
                    // predecessor's sends land in a closed channel and the
                    // successor's receive reports a dead link.
                    drop(tx);
                    drop(rx);
                    return Err(AllReduceError::RankKilled { rank });
                }
                if delay > 0 {
                    thread::sleep(Duration::from_micros(delay));
                }
                let mut sent = 0u64;
                let mut stalls = 0u64;
                let mut hop = |step: usize,
                               send_chunk: usize,
                               recv_chunk: usize,
                               buf: &mut [f32],
                               reduce: bool|
                 -> Result<u64, AllReduceError> {
                    let (a, b) = bounds[send_chunk];
                    let mut payload = buf[a..b].to_vec();
                    let bytes = ((b - a) * 4) as u64;
                    // Bounded send: spin on try_send until the hop drains,
                    // a deadline expires, or the peer hangs up.
                    let deadline = Instant::now() + timeout;
                    let mut stalled = false;
                    loop {
                        match tx.try_send(payload) {
                            Ok(()) => break,
                            Err(TrySendError::Full(p)) => {
                                if Instant::now() >= deadline {
                                    return Err(AllReduceError::Timeout { rank, step });
                                }
                                stalled = true;
                                payload = p;
                                thread::sleep(Duration::from_micros(200));
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                return Err(AllReduceError::PeerDisconnected { rank, step });
                            }
                        }
                    }
                    stalls += u64::from(stalled);
                    let incoming = rx.recv_timeout(timeout).map_err(|e| match e {
                        RecvTimeoutError::Timeout => AllReduceError::Timeout { rank, step },
                        RecvTimeoutError::Disconnected => {
                            AllReduceError::PeerDisconnected { rank, step }
                        }
                    })?;
                    let (ra, rb) = bounds[recv_chunk];
                    if reduce {
                        for (dst, src) in buf[ra..rb].iter_mut().zip(&incoming) {
                            *dst += src;
                        }
                    } else {
                        buf[ra..rb].copy_from_slice(&incoming);
                    }
                    Ok(bytes)
                };
                // Reduce-scatter: D-1 steps. At step s, rank sends chunk
                // (rank - s) and accumulates into chunk (rank - s - 1).
                for s in 0..d - 1 {
                    sent += hop(s, (rank + d - s) % d, (rank + d - s - 1) % d, buf, true)?;
                }
                // All-gather: D-1 steps. Rank now owns the fully-reduced
                // chunk (rank + 1); circulate the reduced chunks.
                for s in 0..d - 1 {
                    sent += hop(d - 1 + s, (rank + 1 + d - s) % d, (rank + d - s) % d, buf, false)?;
                }
                Ok(RankOutcome { sent, stalls })
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            outcomes.push(h.join().unwrap_or(Err(AllReduceError::RankPanicked { rank })));
        }
    });

    // Prefer the injected root cause over the secondary timeouts and
    // disconnects it triggers on surviving ranks.
    if let Some(root) = outcomes.iter().find_map(|o| match o {
        Err(e @ AllReduceError::RankKilled { .. }) => Some(*e),
        _ => None,
    }) {
        return Err(root);
    }
    let mut sent_max = 0u64;
    let mut send_stalls = 0u64;
    for o in &outcomes {
        match o {
            Ok(out) => {
                sent_max = sent_max.max(out.sent);
                send_stalls += out.stalls;
            }
            Err(e) => return Err(*e),
        }
    }
    Ok(AllReduceStats {
        devices: d,
        bytes_sent_per_device: sent_max,
        steps: 2 * (d - 1),
        retries: 0,
        timeouts: 0,
        send_stalls,
    })
}

/// Mean-AllReduce: sum then divide by the device count (the gradient
/// averaging of data-parallel training, §2.5).
///
/// # Panics
///
/// Panics under the same conditions as [`ring_allreduce`].
pub fn ring_allreduce_mean(buffers: &mut [Vec<f32>]) -> AllReduceStats {
    let stats = ring_allreduce(buffers);
    let inv = 1.0 / buffers.len() as f32;
    for b in buffers.iter_mut() {
        for v in b.iter_mut() {
            *v *= inv;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    fn random_buffers(d: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..d).map(|_| (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn allreduce_computes_elementwise_sum() {
        for d in [2usize, 3, 4, 8] {
            let len = 37; // deliberately not divisible by d
            let bufs = random_buffers(d, len, d as u64);
            let expected: Vec<f32> =
                (0..len).map(|i| bufs.iter().map(|b| b[i]).sum::<f32>()).collect();
            let mut work = bufs.clone();
            let stats = ring_allreduce(&mut work);
            for b in &work {
                for (got, want) in b.iter().zip(&expected) {
                    assert!((got - want).abs() < 1e-4, "d={d}: {got} vs {want}");
                }
            }
            assert_eq!(stats.steps, 2 * (d - 1));
        }
    }

    #[test]
    fn mean_allreduce_averages_gradients() {
        let mut bufs = vec![vec![1.0f32; 8], vec![3.0; 8]];
        ring_allreduce_mean(&mut bufs);
        for b in &bufs {
            assert!(b.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        }
    }

    #[test]
    fn traffic_matches_analytic_volume() {
        // Analytic model: each device sends 2*(D-1)/D of the buffer.
        let d = 4;
        let len = 1024;
        let mut bufs = random_buffers(d, len, 9);
        let stats = ring_allreduce(&mut bufs);
        let expected = (2 * (d - 1) * len / d * 4) as u64;
        assert_eq!(stats.bytes_sent_per_device, expected);
    }

    #[test]
    fn single_device_is_identity() {
        let mut bufs = vec![vec![5.0f32; 4]];
        let stats = ring_allreduce(&mut bufs);
        assert_eq!(bufs[0], vec![5.0; 4]);
        assert_eq!(stats.bytes_sent_per_device, 0);
    }

    #[test]
    fn empty_buffers_are_noop() {
        let mut bufs = vec![Vec::new(), Vec::new()];
        let stats = ring_allreduce(&mut bufs);
        assert_eq!(stats.bytes_sent_per_device, 0);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut bufs = vec![vec![1.0f32; 4], vec![1.0; 5]];
        let _ = ring_allreduce(&mut bufs);
    }

    #[test]
    fn killed_rank_errors_within_the_timeout_bound() {
        let mut bufs = random_buffers(4, 64, 7);
        let timeout = Duration::from_millis(200);
        let start = Instant::now();
        let err = ring_allreduce_faulty(&mut bufs, &[FaultKind::KillRank { rank: 2 }], timeout)
            .expect_err("a dead rank must fail the collective");
        assert_eq!(err, AllReduceError::RankKilled { rank: 2 });
        // 2(D-1) hops, each bounded by the per-hop timeout, plus scheduling
        // slack — the point is: no deadlock.
        assert!(start.elapsed() < Duration::from_secs(5), "took {:?}", start.elapsed());
    }

    #[test]
    fn delayed_rank_still_completes() {
        let d = 3;
        let len = 12;
        let bufs = random_buffers(d, len, 11);
        let expected: Vec<f32> = (0..len).map(|i| bufs.iter().map(|b| b[i]).sum::<f32>()).collect();
        let mut work = bufs.clone();
        let stats = ring_allreduce_faulty(
            &mut work,
            &[FaultKind::DelayRank { rank: 1, micros: 20_000 }],
            Duration::from_secs(5),
        )
        .expect("a short delay must not break the collective");
        assert_eq!(stats.steps, 2 * (d - 1));
        for b in &work {
            for (got, want) in b.iter().zip(&expected) {
                assert!((got - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn delayed_rank_bounds_inflight_chunks() {
        // A straggler's predecessor must stall at the in-flight bound
        // instead of queueing chunks unboundedly — the observable effect is
        // a non-zero stall count, and the collective still sums correctly.
        let d = 4;
        let len = 64;
        let bufs = random_buffers(d, len, 21);
        let expected: Vec<f32> = (0..len).map(|i| bufs.iter().map(|b| b[i]).sum::<f32>()).collect();
        let mut work = bufs.clone();
        let cfg = RingConfig {
            timeout: Duration::from_secs(5),
            max_inflight: 1,
            ..RingConfig::default()
        };
        let stats = ring_allreduce_with(
            &mut work,
            &[FaultKind::DelayRank { rank: 2, micros: 50_000 }],
            &cfg,
        )
        .expect("a bounded stall must not break the collective");
        assert!(stats.send_stalls > 0, "straggler must exert back-pressure");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.timeouts, 0);
        for b in &work {
            for (got, want) in b.iter().zip(&expected) {
                assert!((got - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn inflight_bound_deadline_fails_structured() {
        // With max_inflight = 1 and a dead receiver downstream, the
        // sender's bounded-send deadline converts the stall into a
        // structured error instead of spinning forever.
        let mut bufs = random_buffers(3, 30, 5);
        let cfg = RingConfig {
            timeout: Duration::from_millis(100),
            max_inflight: 1,
            ..RingConfig::default()
        };
        let start = Instant::now();
        let err = ring_allreduce_with(&mut bufs, &[FaultKind::KillRank { rank: 0 }], &cfg)
            .expect_err("dead rank must fail");
        assert_eq!(err, AllReduceError::RankKilled { rank: 0 });
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn exponential_backoff_is_capped() {
        let cfg = RingConfig {
            timeout: Duration::from_millis(500),
            backoff: Duration::from_millis(20),
            ..RingConfig::default()
        };
        assert_eq!(cfg.backoff_for(0), Duration::from_millis(20));
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(40));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(160));
        // Capped at the hop timeout well before overflow territory.
        assert_eq!(cfg.backoff_for(10), Duration::from_millis(500));
        assert_eq!(cfg.backoff_for(60), Duration::from_millis(500));
    }

    #[test]
    fn corrupt_segment_spreads_detectable_nan() {
        let mut bufs = random_buffers(4, 32, 3);
        let stats = ring_allreduce_faulty(
            &mut bufs,
            &[FaultKind::CorruptSegment { rank: 1, chunk: 2 }],
            Duration::from_secs(5),
        )
        .expect("corruption poisons data, not the protocol");
        assert_eq!(stats.steps, 6);
        let (a, b) = (2 * 32 / 4, 3 * 32 / 4);
        for buf in &bufs {
            assert!(buf[a..b].iter().all(|v| v.is_nan()), "reduced chunk must be NaN");
            assert!(buf[..a].iter().all(|v| v.is_finite()), "other chunks stay clean");
        }
    }

    #[test]
    fn gradient_faults_are_ignored_by_the_ring() {
        let mut bufs = vec![vec![1.0f32; 8], vec![2.0; 8]];
        let stats = ring_allreduce_faulty(
            &mut bufs,
            &[FaultKind::InfGradient { param: "l0.fc1.weight".into() }],
            Duration::from_secs(5),
        )
        .expect("gradient faults are the trainer's business");
        assert_eq!(stats.devices, 2);
        assert!(bufs[0].iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }
}
