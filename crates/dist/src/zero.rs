//! ZeRO-style sharded data parallelism (paper §5.2's discussion of its ref. 69).
//!
//! The paper notes that data-parallel communication and redundant updates
//! "could potentially be reduced by making each device gather a reduced copy
//! of a subset of gradients and only update the corresponding subset of
//! parameters" — but that "certain optimizers such as LAMB require
//! normalization of all the layers' gradients at the beginning of the
//! algorithm". This module models exactly that trade:
//!
//! * gradients are **reduce-scattered** (each device ends with `1/D` of the
//!   averaged gradients — half the ring-AllReduce volume);
//! * each device runs the optimizer on its `1/D` parameter shard;
//! * updated parameters are **all-gathered** back;
//! * LAMB's global gradient norm still requires a (scalar) AllReduce of the
//!   per-shard partial norms, which serializes the update exactly as the
//!   paper warns — the norm dependency survives sharding.

use bertscope_device::{GpuModel, Link};
use bertscope_model::{build_iteration, BertConfig, GraphOptions};
use bertscope_sim::{IterationProfile, TimedOp};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

/// Per-device profile of ZeRO-style (optimizer-state-sharded) data-parallel
/// training across `devices` GPUs.
///
/// Compared with plain DP, the update phase shrinks by `1/devices` and the
/// gradient exchange becomes reduce-scatter + parameter all-gather.
#[must_use]
pub fn zero_dp_profile(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    link: &Link,
    devices: usize,
) -> IterationProfile {
    let ops = build_iteration(cfg, opts);
    let d = devices.max(1) as u64;
    let grad_dtype = opts.precision.activation_dtype();
    let param_bytes = bertscope_model::parameter_count(cfg) * grad_dtype.size_bytes();

    let mut timed: Vec<TimedOp> = Vec::with_capacity(ops.len() + 3);
    for op in ops {
        let mut op = op;
        let mut time = None;
        if op.phase == Phase::Update {
            match op.category {
                // Each device updates only its 1/D parameter shard.
                Category::LambStage1 | Category::LambStage2 => {
                    op.flops /= d;
                    op.bytes_read /= d;
                    op.bytes_written /= d;
                }
                // The global norm reduces the local shard, then combines the
                // per-device partial norms with a tiny scalar AllReduce —
                // the dependency the paper highlights survives.
                Category::GradNorm => {
                    op.flops /= d;
                    op.bytes_read /= d;
                    let local = gpu.op_time_us(&op);
                    let scalar_allreduce = link.ring_allreduce_us(8, devices);
                    time = Some(local + scalar_allreduce);
                    op.name = format!("{}+scalar_allreduce", op.name);
                }
                _ => {}
            }
        }
        let time_us = time.unwrap_or_else(|| gpu.op_time_us(&op));
        timed.push(TimedOp { op, time_us });
    }
    if devices > 1 {
        // Reduce-scatter of gradients (half the 2(D-1)/D AllReduce volume)
        // before the update, all-gather of updated parameters after it.
        let pos = timed.iter().position(|t| t.op.phase == Phase::Update).unwrap_or(timed.len());
        let rs_time = link.all_gather_us(param_bytes, devices); // same volume as reduce-scatter
        timed.insert(
            pos,
            TimedOp {
                op: comm_record("zero.reduce_scatter.gradients", param_bytes),
                time_us: rs_time,
            },
        );
        let ag_time = link.all_gather_us(param_bytes, devices);
        timed.push(TimedOp {
            op: comm_record("zero.all_gather.parameters", param_bytes),
            time_us: ag_time,
        });
    }
    IterationProfile::from_timed(timed)
}

fn comm_record(name: &str, bytes: u64) -> OpRecord {
    OpRecord {
        access: bertscope_tensor::AccessSet::default(),
        name: name.to_owned(),
        kind: OpKind::Comm,
        category: Category::Comm,
        phase: Phase::Communication,
        layer: None,
        gemm: None,
        flops: 0,
        bytes_read: bytes,
        bytes_written: bytes,
        dtype: DType::F32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::data_parallel_profile;
    use bertscope_tensor::Group;

    fn setup() -> (BertConfig, GraphOptions, GpuModel, Link) {
        (
            BertConfig::bert_large().phase1(16),
            GraphOptions::default(),
            GpuModel::mi100(),
            Link::pcie4(),
        )
    }

    #[test]
    fn zero_shards_the_update_phase() {
        let (cfg, opts, gpu, link) = setup();
        let plain = data_parallel_profile(&cfg, &opts, &gpu, &link, 8, false);
        let zero = zero_dp_profile(&cfg, &opts, &gpu, &link, 8);
        let lamb = |p: &IterationProfile| p.time_by_group()[&Group::Lamb];
        // LAMB work per device shrinks substantially (norm AllReduce adds a
        // little latency back).
        assert!(lamb(&plain) / lamb(&zero) > 4.0, "{} vs {}", lamb(&plain), lamb(&zero));
    }

    #[test]
    fn zero_halves_gradient_exchange_volume_vs_allreduce() {
        let (cfg, opts, gpu, link) = setup();
        let plain = data_parallel_profile(&cfg, &opts, &gpu, &link, 64, false);
        let zero = zero_dp_profile(&cfg, &opts, &gpu, &link, 64);
        let comm = |p: &IterationProfile| p.time_by_group()[&Group::Comm];
        // Reduce-scatter + all-gather equals AllReduce volume, but the
        // parameter all-gather replaces nothing extra here: total comm is
        // comparable, not worse.
        let ratio = comm(&zero) / comm(&plain);
        assert!((0.8..1.2).contains(&ratio), "comm ratio {ratio}");
    }

    #[test]
    fn grad_norm_dependency_survives_sharding() {
        // The paper's caveat: LAMB still needs the global norm. The sharded
        // profile must retain a GradNorm op that includes communication.
        let (cfg, opts, gpu, link) = setup();
        let zero = zero_dp_profile(&cfg, &opts, &gpu, &link, 8);
        let norm_ops: Vec<_> =
            zero.ops().iter().filter(|t| t.op.category == Category::GradNorm).collect();
        assert_eq!(norm_ops.len(), 1);
        assert!(norm_ops[0].op.name.contains("scalar_allreduce"));
        // Its time exceeds the pure local-shard reduction time.
        let local_only = gpu.op_time_us(&norm_ops[0].op);
        assert!(norm_ops[0].time_us > local_only * 0.99);
    }

    #[test]
    fn single_device_zero_is_plain_training() {
        let (cfg, opts, gpu, link) = setup();
        let zero = zero_dp_profile(&cfg, &opts, &gpu, &link, 1);
        assert_eq!(zero.group_fraction(Group::Comm), 0.0);
        let plain = bertscope_sim::simulate_iteration(&cfg, &opts, &gpu);
        // Same kernel count (no comm inserted), near-identical time (the
        // scalar allreduce is zero for one device).
        assert_eq!(zero.kernel_count(), plain.kernel_count());
        assert!((zero.total_us() - plain.total_us()).abs() / plain.total_us() < 1e-6);
    }

    #[test]
    fn update_shrinks_inversely_with_devices() {
        let (cfg, opts, gpu, link) = setup();
        let lamb =
            |d: usize| zero_dp_profile(&cfg, &opts, &gpu, &link, d).time_by_group()[&Group::Lamb];
        let l2 = lamb(2);
        let l8 = lamb(8);
        // Not exactly 4x because of launch overhead and the norm AllReduce,
        // but strongly decreasing.
        assert!(l2 / l8 > 2.5, "{l2} vs {l8}");
    }
}
