//! Hybrid model/data parallelism (paper §2.5): `M`-way tensor slicing
//! inside each cluster, replicated across `D` data-parallel clusters, for
//! `M * D` devices total.
//!
//! Tensor slicing communicates activations over the fast intra-node fabric;
//! data parallelism exchanges the (already `1/M`-sharded) gradients over the
//! inter-node link, overlapped with backprop.

use crate::ts::tensor_slice_ops;
use bertscope_device::{GpuModel, Link};
use bertscope_model::{BertConfig, GraphOptions};
use bertscope_sim::{IterationProfile, TimedOp};
use bertscope_tensor::{Category, DType, OpKind, OpRecord, Phase};

/// A hybrid cluster layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPlan {
    /// Tensor-slicing ways within a cluster (intra-node).
    pub ts_ways: usize,
    /// Data-parallel replica count across clusters (inter-node).
    pub dp_replicas: usize,
    /// Intra-node fabric used by the tensor-slicing AllReduces.
    pub intra_link: Link,
    /// Inter-node link used by the gradient AllReduce.
    pub inter_link: Link,
}

impl HybridPlan {
    /// Total device count `M * D`.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.ts_ways * self.dp_replicas
    }
}

/// Per-device profile of hybrid training under `plan`.
///
/// Tensor-slicing AllReduces are serialized (data dependencies); the
/// data-parallel gradient exchange of the `1/M` local parameter shard is
/// modelled with full overlap against backprop (the paper's D2-style
/// optimization), exposing only the residual.
#[must_use]
pub fn hybrid_profile(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    plan: &HybridPlan,
) -> IterationProfile {
    let ops = tensor_slice_ops(cfg, opts, plan.ts_ways);
    let mut timed: Vec<TimedOp> = ops
        .into_iter()
        .map(|op| {
            let time_us = if op.kind == OpKind::Comm {
                plan.intra_link.ring_allreduce_us(op.bytes_read, plan.ts_ways)
            } else {
                gpu.op_time_us(&op)
            };
            TimedOp { op, time_us }
        })
        .collect();

    if plan.dp_replicas > 1 {
        // Gradient volume per device: 1/M of the model (the TS shard),
        // exchanged across the D replicas; overlapped with backprop.
        let dt = opts.precision.activation_dtype();
        let shard_bytes =
            bertscope_model::parameter_count(cfg) * dt.size_bytes() / plan.ts_ways as u64;
        let full = plan.inter_link.ring_allreduce_us(shard_bytes, plan.dp_replicas);
        let bwd_compute: f64 =
            timed.iter().filter(|t| t.op.phase == Phase::Backward).map(|t| t.time_us).sum();
        // Exposed communication: whatever backprop cannot hide.
        let exposed = (full - bwd_compute).max(0.0);
        let pos = timed.iter().position(|t| t.op.phase == Phase::Update).unwrap_or(timed.len());
        timed.insert(
            pos,
            TimedOp {
                op: OpRecord {
                    access: bertscope_tensor::AccessSet::default(),
                    name: "hybrid.dp.allreduce.exposed".into(),
                    kind: OpKind::Comm,
                    category: Category::Comm,
                    phase: Phase::Communication,
                    layer: None,
                    gemm: None,
                    flops: 0,
                    bytes_read: shard_bytes,
                    bytes_written: shard_bytes,
                    dtype: DType::F32,
                },
                time_us: exposed,
            },
        );
    }
    IterationProfile::from_timed(timed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::Group;

    fn plan(ts: usize, dp: usize) -> HybridPlan {
        HybridPlan {
            ts_ways: ts,
            dp_replicas: dp,
            intra_link: Link::xgmi(),
            inter_link: Link::pcie4(),
        }
    }

    #[test]
    fn device_count_is_product() {
        assert_eq!(plan(8, 16).devices(), 128);
    }

    #[test]
    fn hybrid_beats_pure_tensor_slicing_at_same_device_count() {
        // 8-way TS alone on slow links vs 2-way TS x 4-way DP: the hybrid
        // keeps communication on the fast fabric and hides the DP exchange.
        let cfg = BertConfig::bert_large().phase1(32);
        let opts = GraphOptions::default();
        let gpu = GpuModel::mi100();
        let pure_ts = crate::ts::tensor_slice_profile(&cfg, &opts, &gpu, &Link::pcie4(), 8);
        let hybrid = hybrid_profile(&cfg, &opts, &gpu, &plan(2, 4));
        // Hybrid processes 4x the global batch of pure TS at the same device
        // count; compare per-sample time.
        let pure_per_sample = pure_ts.total_us() / cfg.batch as f64;
        let hybrid_per_sample = hybrid.total_us() / (cfg.batch * 4) as f64;
        assert!(
            hybrid_per_sample < pure_per_sample,
            "hybrid {hybrid_per_sample} vs pure-TS {pure_per_sample} us/sample"
        );
    }

    #[test]
    fn dp_dimension_overlaps_most_communication() {
        let cfg = BertConfig::bert_large().phase1(16);
        let opts = GraphOptions::default();
        let gpu = GpuModel::mi100();
        let h = hybrid_profile(&cfg, &opts, &gpu, &plan(2, 16));
        // The exposed DP allreduce is small relative to the serialized TS
        // communication.
        let dp_exposed: f64 =
            h.ops().iter().filter(|t| t.op.name.starts_with("hybrid.dp")).map(|t| t.time_us).sum();
        let ts_comm: f64 = h
            .ops()
            .iter()
            .filter(|t| t.op.category == Category::Comm && !t.op.name.starts_with("hybrid.dp"))
            .map(|t| t.time_us)
            .sum();
        assert!(dp_exposed < 0.5 * ts_comm, "dp exposed {dp_exposed} vs ts {ts_comm}");
    }

    #[test]
    fn degenerate_plans_match_their_pure_counterparts() {
        let cfg = BertConfig::bert_large().phase1(16);
        let opts = GraphOptions::default();
        let gpu = GpuModel::mi100();
        // ts=1, dp=1: single device.
        let single = hybrid_profile(&cfg, &opts, &gpu, &plan(1, 1));
        assert_eq!(single.group_fraction(Group::Comm), 0.0);
        // ts=m, dp=1: pure tensor slicing on the intra link.
        let h = hybrid_profile(&cfg, &opts, &gpu, &plan(4, 1));
        let pure = crate::ts::tensor_slice_profile(&cfg, &opts, &gpu, &Link::xgmi(), 4);
        assert!((h.total_us() - pure.total_us()).abs() / pure.total_us() < 1e-9);
    }
}
