//! Megatron-style tensor slicing (paper §5.1-5.2, configurations T1/T2).
//!
//! An `m`-way slice partitions each Transformer layer across `m` devices
//! (paper Fig. 10): the Q/K/V projections and FC-1 are column-split, the
//! attention output projection and FC-2 are row-split (producing partial
//! sums), attention heads are divided `h/m` per device, and dropout /
//! residual / LayerNorm are replicated. Four activation/gradient AllReduces
//! per layer per iteration cannot overlap with compute due to data
//! dependencies; the optimizer updates only the local `1/m` of the
//! parameters.
//!
//! The per-device operator stream is produced by *transforming* the
//! single-device analytic graph: GEMM specs are re-dimensioned and their
//! FLOP/byte counts recomputed, elementwise ops on split activations are
//! scaled, and the serialized communication ops are inserted.

use bertscope_device::{GpuModel, Link};
use bertscope_model::{build_iteration, BertConfig, GraphOptions};
use bertscope_sim::{IterationProfile, TimedOp};
use bertscope_tensor::{Category, Epilogue, GemmSpec, OpKind, OpRecord, Phase};

/// How a sliced op's dimensions change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slice {
    /// Output-feature dimension divided by `m` (column-parallel weight).
    M,
    /// Second weight dimension divided by `m`.
    N,
    /// Reduction dimension divided by `m` (row-parallel weight; produces
    /// partial sums that a subsequent AllReduce combines).
    K,
    /// Batched GEMM batch divided by `m` (heads are split).
    Batch,
    /// Elementwise/reduction op whose tensor shrinks by `m`.
    Elements,
    /// Replicated on every device (unchanged).
    Replicated,
}

/// Classify one op of the single-device graph for `m`-way slicing.
fn classify(op: &OpRecord) -> Slice {
    let name = op.name.as_str();
    match op.category {
        // Q/K/V projections: column-parallel.
        Category::AttnLinear if name.contains("attn_out.") => match () {
            // Output projection: row-parallel.
            () if name.contains(".gemm.") => Slice::K,
            () if name.contains("grad_act") => Slice::M,
            () if name.contains("grad_wt") => Slice::M,
            // Bias grad of the row-parallel linear reduces the replicated
            // output; computed on one device, replicated cost here.
            () => Slice::Replicated,
        },
        Category::AttnLinear => match () {
            () if name.contains(".gemm.") => Slice::M,
            () if name.contains("grad_act") => Slice::K,
            () if name.contains("grad_wt") => Slice::N,
            () => Slice::Elements, // bias grads over d/m columns
        },
        // Attention B-GEMMs and score elementwise ops: heads split.
        Category::AttnBgemm => Slice::Batch,
        Category::ScaleMaskSoftmaxDropout => Slice::Elements,
        // FC-1 column-parallel, FC-2 row-parallel.
        Category::FcGemm if name.contains("fc1") => match () {
            () if name.contains(".gemm.") => Slice::M,
            () if name.contains("grad_act") => Slice::K,
            () if name.contains("grad_wt") => Slice::N,
            () => Slice::Elements,
        },
        Category::FcGemm => match () {
            () if name.contains(".gemm.") => Slice::K,
            () if name.contains("grad_act") => Slice::M,
            () if name.contains("grad_wt") => Slice::M,
            () => Slice::Replicated, // fc2 bias grad on the full output
        },
        // GeLU acts on the split intermediate activation.
        Category::Gelu if op.layer.is_some() => Slice::Elements,
        // Dropout/residual/LayerNorm are replicated (paper: "remaining
        // layers are replicated across devices").
        Category::DropResidualNorm => Slice::Replicated,
        // The optimizer updates 1/m of the parameters.
        Category::LambStage1 | Category::LambStage2 | Category::GradNorm => Slice::Elements,
        // Embedding and output head: replicated in this model (the paper's
        // analysis focuses on the Transformer layers).
        _ => Slice::Replicated,
    }
}

fn rescale_gemm(spec: GemmSpec, slice: Slice, m: usize) -> GemmSpec {
    let mut s = spec;
    match slice {
        Slice::M => s.m = (s.m / m).max(1),
        Slice::N => s.n = (s.n / m).max(1),
        Slice::K => {
            s.k = (s.k / m).max(1);
            // A row-parallel GEMM emits partial sums: no epilogue can be
            // fused before the AllReduce combines them, so the bias is
            // applied downstream of the reduction instead.
            s.epilogue = Epilogue::None;
        }
        Slice::Batch => s.batch = (s.batch / m).max(1),
        Slice::Elements | Slice::Replicated => {}
    }
    s
}

/// Transform the single-device graph into one device's share of an `m`-way
/// tensor-sliced execution, inserting the four serialized AllReduces per
/// layer.
#[must_use]
pub fn tensor_slice_ops(cfg: &BertConfig, opts: &GraphOptions, ways: usize) -> Vec<OpRecord> {
    assert!(ways >= 1, "ways must be at least 1");
    let base = build_iteration(cfg, opts);
    if ways == 1 {
        return base;
    }
    let dt = opts.precision.activation_dtype();
    let act_bytes = (cfg.tokens() * cfg.d_model) as u64 * dt.size_bytes();
    let comm = |layer: usize, which: &str, phase: Phase| OpRecord {
        access: bertscope_tensor::AccessSet::default(),
        name: format!("l{layer}.allreduce.{which}"),
        kind: OpKind::Comm,
        category: Category::Comm,
        phase,
        layer: Some(layer),
        gemm: None,
        flops: 0,
        bytes_read: act_bytes,
        bytes_written: act_bytes,
        dtype: dt,
    };

    let mut out = Vec::with_capacity(base.len() + 4 * cfg.layers);
    for op in base {
        let slice = classify(&op);
        let mut new = op.clone();
        match (slice, op.gemm) {
            (Slice::Replicated, _) => {}
            (s, Some(spec)) if matches!(s, Slice::M | Slice::N | Slice::K | Slice::Batch) => {
                let spec = rescale_gemm(spec, s, ways);
                new.gemm = Some(spec);
                new.flops = spec.flops();
                new.bytes_read = spec.bytes_read(op.dtype);
                new.bytes_written = spec.bytes_written(op.dtype);
            }
            _ => {
                // Elementwise/reduction over a split tensor.
                let w = ways as u64;
                new.flops /= w;
                new.bytes_read /= w;
                new.bytes_written /= w;
            }
        }
        // Insert the forward AllReduces right after the partial-sum GEMMs
        // (attention output projection and FC-2), and the backward ones
        // after the column-parallel grad-activation GEMMs.
        let is_attn_out_fwd = new.name.contains("attn_out.gemm.") && new.phase == Phase::Forward;
        let is_fc2_fwd = new.name.contains("fc2.gemm") && new.phase == Phase::Forward;
        let is_qkv_bwd_last = new.name.contains("attn.grad_bias") && new.phase == Phase::Backward;
        let is_fc1_bwd = new.name.contains("fc1.grad_bias") && new.phase == Phase::Backward;
        let layer = new.layer;
        let phase = new.phase;
        out.push(new);
        if let Some(l) = layer {
            if is_attn_out_fwd {
                out.push(comm(l, "attn_out", phase));
            } else if is_fc2_fwd {
                out.push(comm(l, "fc2_out", phase));
            } else if is_fc1_bwd {
                out.push(comm(l, "grad_ln1", phase));
            } else if is_qkv_bwd_last {
                // Only once (after the last of the three QKV bias grads).
                if !out.iter().rev().take(12).any(|o| {
                    o.category == Category::Comm && o.layer == Some(l) && o.name.ends_with("grad_x")
                }) {
                    out.push(comm(l, "grad_x", phase));
                }
            }
        }
    }
    out
}

/// Per-device profile of `ways`-way tensor-sliced training: compute from the
/// transformed graph, communication from the Ring-AllReduce model over
/// `link` (fully serialized, per the paper).
#[must_use]
pub fn tensor_slice_profile(
    cfg: &BertConfig,
    opts: &GraphOptions,
    gpu: &GpuModel,
    link: &Link,
    ways: usize,
) -> IterationProfile {
    let ops = tensor_slice_ops(cfg, opts, ways);
    let timed = ops
        .into_iter()
        .map(|op| {
            let time_us = if op.kind == OpKind::Comm {
                link.ring_allreduce_us(op.bytes_read, ways)
            } else {
                gpu.op_time_us(&op)
            };
            TimedOp { op, time_us }
        })
        .collect();
    IterationProfile::from_timed(timed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bertscope_tensor::Group;

    fn setup() -> (BertConfig, GraphOptions, GpuModel, Link) {
        (
            BertConfig::bert_large().phase1(16),
            GraphOptions::default(),
            GpuModel::mi100(),
            Link::pcie4(),
        )
    }

    #[test]
    fn four_allreduces_per_layer() {
        let (cfg, opts, _, _) = setup();
        let ops = tensor_slice_ops(&cfg, &opts, 2);
        let comm_count = ops.iter().filter(|o| o.category == Category::Comm).count();
        assert_eq!(comm_count, 4 * cfg.layers, "paper: four AllReduces per layer");
        // Two in forward, two in backward, per layer.
        for l in 0..cfg.layers {
            let layer_comms: Vec<_> =
                ops.iter().filter(|o| o.category == Category::Comm && o.layer == Some(l)).collect();
            assert_eq!(layer_comms.len(), 4, "layer {l}");
            assert_eq!(layer_comms.iter().filter(|o| o.phase == Phase::Forward).count(), 2);
            assert_eq!(layer_comms.iter().filter(|o| o.phase == Phase::Backward).count(), 2);
        }
    }

    #[test]
    fn sliced_gemm_flops_are_one_mth_of_single_device() {
        let (cfg, opts, _, _) = setup();
        let base = build_iteration(&cfg, &opts);
        for ways in [2usize, 4, 8] {
            let sliced = tensor_slice_ops(&cfg, &opts, ways);
            let layer_gemm_flops = |ops: &[OpRecord]| -> u64 {
                ops.iter().filter(|o| o.is_gemm() && o.layer.is_some()).map(|o| o.flops).sum()
            };
            let ratio = layer_gemm_flops(&base) as f64 / layer_gemm_flops(&sliced) as f64;
            assert!((ratio - ways as f64).abs() / (ways as f64) < 0.02, "{ways}-way ratio {ratio}");
        }
    }

    #[test]
    fn lamb_traffic_shrinks_with_ways_but_replicated_ln_does_not() {
        // Paper Takeaway 12 + T2 observation on replicated layers.
        let (cfg, opts, _, _) = setup();
        let base = build_iteration(&cfg, &opts);
        let sliced = tensor_slice_ops(&cfg, &opts, 8);
        let bytes = |ops: &[OpRecord], cat: Category| -> u64 {
            ops.iter().filter(|o| o.category == cat).map(OpRecord::bytes_total).sum()
        };
        assert_eq!(bytes(&base, Category::LambStage1), 8 * bytes(&sliced, Category::LambStage1));
        assert_eq!(
            bytes(&base, Category::DropResidualNorm),
            bytes(&sliced, Category::DropResidualNorm),
            "DR+RC+LN is replicated"
        );
    }

    #[test]
    fn two_way_profile_resembles_single_gpu_with_comm() {
        // Paper T1: the high-level breakdown matches S1, plus ~9% comm and
        // LAMB's share halves.
        let (cfg, opts, gpu, link) = setup();
        let s1 = bertscope_sim::simulate_iteration(&cfg, &opts, &gpu);
        let t1 = tensor_slice_profile(&cfg, &opts, &gpu, &link, 2);
        let comm = t1.group_fraction(Group::Comm);
        assert!((0.03..0.25).contains(&comm), "T1 comm fraction {comm}");
        // LAMB's absolute time halves (each device updates half the
        // parameters), and its share of the iteration drops.
        let lamb_time =
            |p: &IterationProfile| p.time_by_group().get(&Group::Lamb).copied().unwrap_or(0.0);
        let abs_ratio = lamb_time(&s1) / lamb_time(&t1);
        assert!((1.7..2.3).contains(&abs_ratio), "LAMB time ratio {abs_ratio}");
        assert!(s1.group_fraction(Group::Lamb) > t1.group_fraction(Group::Lamb));
    }

    #[test]
    fn communication_share_grows_with_ways() {
        // Paper Takeaway 13 / T2: communication reaches ~40% at 8-way with
        // a larger per-device batch.
        let (cfg, opts, gpu, link) = setup();
        let t1 = tensor_slice_profile(&cfg, &opts, &gpu, &link, 2);
        let t2_cfg = BertConfig::bert_large().phase1(64);
        let t2 = tensor_slice_profile(&t2_cfg, &opts, &gpu, &link, 8);
        let c1 = t1.group_fraction(Group::Comm);
        let c2 = t2.group_fraction(Group::Comm);
        assert!(c2 > 1.5 * c1, "8-way comm {c2} vs 2-way {c1}");
        assert!((0.2..0.7).contains(&c2), "T2 comm fraction {c2}");
        // LAMB becomes negligible at 8-way (Takeaway 12).
        assert!(t2.group_fraction(Group::Lamb) < 0.03);
    }

    #[test]
    fn one_way_slicing_is_identity() {
        let (cfg, opts, _, _) = setup();
        let base = build_iteration(&cfg, &opts);
        let sliced = tensor_slice_ops(&cfg, &opts, 1);
        assert_eq!(base.len(), sliced.len());
        let total = |ops: &[OpRecord]| -> u64 { ops.iter().map(|o| o.flops).sum() };
        assert_eq!(total(&base), total(&sliced));
    }
}
