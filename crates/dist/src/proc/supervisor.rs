//! The cluster supervisor: spawns the rank workers, owns the control
//! plane, detects failures (socket loss or missed heartbeats) and drives
//! one of two recovery policies:
//!
//! * [`RecoveryMode::Restart`] — shut every survivor down and relaunch
//!   the *full* world from the latest checkpoint. Training replays the
//!   identical deterministic batches, so the recovered run is bit-exact
//!   with an unfaulted one.
//! * [`RecoveryMode::Elastic`] — let the survivors re-form the ring at
//!   world `N-1` and keep going. Gradient averaging rescales to the new
//!   world size; the degradation is recorded as a [`DegradationEvent`]
//!   rather than papered over.
//!
//! Two backends share all of this logic: `run_thread_cluster` runs each
//! worker on a thread in-process (fast, used by most tests), and
//! `run_process_cluster` spawns real OS processes through a
//! caller-supplied launcher (used by the process-isolation tests and
//! `bench_dist`). The control protocol is identical either way.

use crate::allreduce::RingConfig;
use crate::proc::control::ControlMsg;
use crate::proc::worker::{worker_main, WorkerConfig, WorkerReport};
use crate::proc::DistError;
use bertscope_tensor::FaultPlan;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// What the supervisor does when a rank dies mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Shut everyone down, relaunch the full world from the latest
    /// checkpoint (bit-exact replay).
    Restart,
    /// Survivors re-form the ring at `N-1` and continue (logged
    /// degradation).
    Elastic,
}

/// Cluster-level configuration shared by both backends.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of rank workers to launch.
    pub world: usize,
    /// Optimizer updates each rank must complete.
    pub total_updates: u64,
    /// Gradient-accumulation window (micro-steps per update).
    pub accumulation: usize,
    /// Overlap backward with communication on every rank (see
    /// [`WorkerConfig::overlap`]).
    pub overlap: bool,
    /// Model-init seed (shared by all ranks) and data-seed base.
    pub seed: u64,
    /// Faults to inject (kills, socket drops/delays/corruption).
    pub faults: FaultPlan,
    /// Failure-recovery policy.
    pub recovery: RecoveryMode,
    /// Ring transport tunables.
    pub ring: RingConfig,
    /// Directory checkpoints are written into.
    pub ckpt_dir: PathBuf,
    /// Worker heartbeat period.
    pub heartbeat: Duration,
    /// Silence longer than this marks a worker dead.
    pub hb_grace: Duration,
    /// Deadline for control-plane phases (hellos, membership).
    pub control_timeout: Duration,
    /// Hard deadline for the whole run.
    pub run_timeout: Duration,
    /// When set, each rank dumps its traced operator stream to
    /// `<dir>/rank<R>.trace`.
    pub trace_dir: Option<PathBuf>,
}

impl ClusterConfig {
    /// A config with test-friendly defaults: elastic recovery, tight
    /// heartbeats, 2-step accumulation windows.
    #[must_use]
    pub fn new(world: usize, total_updates: u64, ckpt_dir: PathBuf) -> ClusterConfig {
        ClusterConfig {
            world,
            total_updates,
            accumulation: 2,
            overlap: false,
            seed: 42,
            faults: FaultPlan::new(),
            recovery: RecoveryMode::Elastic,
            ring: RingConfig { timeout: Duration::from_secs(5), ..RingConfig::default() },
            ckpt_dir,
            heartbeat: Duration::from_millis(25),
            hb_grace: Duration::from_secs(2),
            control_timeout: Duration::from_secs(10),
            run_timeout: Duration::from_secs(120),
            trace_dir: None,
        }
    }
}

/// A logged capacity-degradation (or restart) incident.
#[derive(Debug, Clone)]
pub struct DegradationEvent {
    /// Membership epoch the incident created.
    pub epoch: u32,
    /// Original rank of the dead worker.
    pub dead_rank: usize,
    /// Highest update count observed when the death was detected.
    pub at_update: u64,
    /// Human-readable action taken ("elastic-shrink to world 3", ...).
    pub action: String,
}

/// The supervisor's summary of a completed run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Updates completed (equals the configured target on success).
    pub updates: u64,
    /// World size at the end of the run.
    pub final_world: usize,
    /// Full-cluster restarts performed.
    pub restarts: u32,
    /// Final membership epoch (1 = never reconfigured).
    pub epochs: u32,
    /// Every recovery incident, in order.
    pub events: Vec<DegradationEvent>,
    /// The agreed FNV-1a hash over all parameter bytes (every live rank
    /// reported this same value).
    pub weights_hash: u64,
    /// Latest checkpoint written, if any.
    pub final_checkpoint: Option<PathBuf>,
    /// Thread-backend worker reports (empty for the process backend).
    pub worker_reports: Vec<WorkerReport>,
}

/// Spawns one worker process from its config (the supervisor cannot know
/// how the host binary dispatches the worker role, so the caller builds
/// the `Command`).
pub type ProcessSpawner<'a> = &'a mut dyn FnMut(&WorkerConfig) -> std::io::Result<Child>;

enum Backend<'a> {
    Thread,
    Process(ProcessSpawner<'a>),
}

enum Handle {
    Thread(std::thread::JoinHandle<Result<WorkerReport, DistError>>),
    Process(Child),
}

/// Control-plane events, tagged with the spawn generation so stale
/// sockets from a restarted cluster cannot masquerade as live workers.
enum Ev {
    Hello { gen: u32, rank: usize, data_port: u16, writer: TcpStream },
    Msg { gen: u32, rank: usize, msg: ControlMsg },
    Gone { gen: u32, rank: usize },
}

struct Live {
    port: u16,
    writer: TcpStream,
    last_seen: Instant,
    updates: u64,
    done: Option<u64>,
}

/// Run the cluster with every worker on an in-process thread.
///
/// # Errors
///
/// Structured [`DistError`]s for unrecoverable cluster conditions: no
/// survivors, replica hash divergence, protocol violations, deadline
/// expiry.
pub fn run_thread_cluster(cfg: &ClusterConfig) -> Result<ClusterReport, DistError> {
    supervise(cfg, Backend::Thread)
}

/// Run the cluster with every worker in its own OS process, launched by
/// `spawner` (typically: re-exec the current binary with
/// [`WorkerConfig::to_env`] in the environment).
///
/// # Errors
///
/// As [`run_thread_cluster`].
pub fn run_process_cluster(
    cfg: &ClusterConfig,
    spawner: ProcessSpawner<'_>,
) -> Result<ClusterReport, DistError> {
    supervise(cfg, Backend::Process(spawner))
}

fn worker_config(
    cfg: &ClusterConfig,
    rank: usize,
    supervisor: &str,
    fault_spec: &str,
    resume_from: Option<PathBuf>,
    process_backend: bool,
) -> WorkerConfig {
    WorkerConfig {
        orig_rank: rank,
        world: cfg.world,
        supervisor: supervisor.to_string(),
        seed: cfg.seed,
        total_updates: cfg.total_updates,
        accumulation: cfg.accumulation,
        overlap: cfg.overlap,
        fault_spec: fault_spec.to_string(),
        ring: cfg.ring,
        ckpt_dir: cfg.ckpt_dir.clone(),
        resume_from,
        heartbeat: cfg.heartbeat,
        control_timeout: cfg.control_timeout,
        trace_out: cfg.trace_dir.as_ref().map(|d| d.join(format!("rank{rank}.trace"))),
        process_backend,
    }
}

fn spawn_worker(backend: &mut Backend<'_>, wcfg: WorkerConfig) -> Result<Handle, DistError> {
    match backend {
        Backend::Thread => Ok(Handle::Thread(
            std::thread::Builder::new()
                .name(format!("bertscope-rank{}", wcfg.orig_rank))
                .spawn(move || worker_main(&wcfg))
                .map_err(|e| DistError::Io(e.to_string()))?,
        )),
        Backend::Process(spawner) => {
            Ok(Handle::Process(spawner(&wcfg).map_err(|e| DistError::Io(e.to_string()))?))
        }
    }
}

/// Drop the one `pkill` entry that just fired against `dead_rank` from a
/// fault spec: the kill has fired, and a restarted worker replaying the
/// same micro-steps must not walk into it again. Faults fire in step
/// order, so the fired kill is the earliest-step `pkill` still in the
/// spec for that rank; later kills for the same rank are preserved.
fn scrub_fired_kills(spec: &str, dead_rank: usize) -> String {
    let entries: Vec<&str> = spec.split(';').filter(|e| !e.is_empty()).collect();
    let fired: Option<usize> = entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let parts: Vec<&str> = e.split(':').collect();
            if parts.len() == 3 && parts[0] == "pkill" && parts[2].parse::<usize>() == Ok(dead_rank)
            {
                parts[1].parse::<u64>().ok().map(|step| (step, i))
            } else {
                None
            }
        })
        .min()
        .map(|(_, i)| i);
    entries
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != fired)
        .map(|(_, e)| *e)
        .collect::<Vec<_>>()
        .join(";")
}

fn broadcast(live: &mut BTreeMap<usize, Live>, msg: &ControlMsg) {
    let mut line = msg.to_line();
    line.push('\n');
    for worker in live.values_mut() {
        // A dead socket shows up as a Gone event; ignore write errors.
        let _ = worker.writer.write_all(line.as_bytes());
        let _ = worker.writer.flush();
    }
}

fn members_msg(epoch: u32, live: &BTreeMap<usize, Live>) -> ControlMsg {
    ControlMsg::Members { epoch, members: live.iter().map(|(r, w)| (*r, w.port)).collect() }
}

/// Accept control connections and pump each worker's messages into the
/// event channel from a per-connection reader thread.
fn start_control_plane(
    listener: TcpListener,
    tx: &mpsc::Sender<Ev>,
    gen: &Arc<AtomicU32>,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let tx = tx.clone();
    let gen = gen.clone();
    let stop = stop.clone();
    listener.set_nonblocking(true).expect("nonblocking listener");
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let tx = tx.clone();
                    let conn_gen = gen.load(Ordering::Relaxed);
                    std::thread::spawn(move || reader_loop(stream, &tx, conn_gen));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    })
}

fn reader_loop(stream: TcpStream, tx: &mpsc::Sender<Ev>, gen: u32) {
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // First line must be the hello.
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let Ok(ControlMsg::Hello { rank, data_port }) = ControlMsg::from_line(&line) else {
        return;
    };
    if tx.send(Ev::Hello { gen, rank, data_port, writer }).is_err() {
        return;
    }
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Ev::Gone { gen, rank });
                return;
            }
            Ok(_) => match ControlMsg::from_line(&line) {
                Ok(msg) => {
                    if tx.send(Ev::Msg { gen, rank, msg }).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    let _ = tx.send(Ev::Gone { gen, rank });
                    return;
                }
            },
        }
    }
}

/// Collect `expected` hellos of generation `want_gen` into a fresh
/// membership map.
fn wait_hellos(
    rx: &mpsc::Receiver<Ev>,
    expected: usize,
    want_gen: u32,
    deadline: Instant,
) -> Result<BTreeMap<usize, Live>, DistError> {
    let mut live = BTreeMap::new();
    while live.len() < expected {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(DistError::Timeout {
                what: format!("waiting for {expected} worker hellos (have {})", live.len()),
            });
        }
        match rx.recv_timeout(left.min(Duration::from_millis(50))) {
            Ok(Ev::Hello { gen, rank, data_port, writer }) if gen == want_gen => {
                live.insert(
                    rank,
                    Live {
                        port: data_port,
                        writer,
                        last_seen: Instant::now(),
                        updates: 0,
                        done: None,
                    },
                );
            }
            // Stale-generation chatter and early messages are ignored
            // here; the main loop picks up live-generation traffic.
            Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(DistError::Protocol("control plane collapsed".into()));
            }
        }
    }
    Ok(live)
}

#[allow(clippy::too_many_lines)]
fn supervise(cfg: &ClusterConfig, mut backend: Backend<'_>) -> Result<ClusterReport, DistError> {
    assert!(cfg.world >= 1, "world must be at least 1");
    let process_backend = matches!(backend, Backend::Process(_));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let supervisor_addr = listener.local_addr()?.to_string();
    let (tx, rx) = mpsc::channel::<Ev>();
    let gen = Arc::new(AtomicU32::new(1));
    let stop = Arc::new(AtomicBool::new(false));
    let accept_handle = start_control_plane(listener, &tx, &gen, &stop);

    let mut fault_spec = cfg.faults.to_spec();
    let mut handles: Vec<Handle> = Vec::new();
    let mut events: Vec<DegradationEvent> = Vec::new();
    let mut latest_ckpt: Option<PathBuf> = None;
    let mut restarts: u32 = 0;
    let mut epoch: u32 = 0;
    let mut max_updates: u64 = 0;
    let run_deadline = Instant::now() + cfg.run_timeout;

    let result = (|| -> Result<(u64, usize, u64), DistError> {
        // Launch generation 1 and form the initial ring.
        for rank in 0..cfg.world {
            handles.push(spawn_worker(
                &mut backend,
                worker_config(cfg, rank, &supervisor_addr, &fault_spec, None, process_backend),
            )?);
        }
        let mut live = wait_hellos(&rx, cfg.world, 1, Instant::now() + cfg.control_timeout)?;
        epoch = 1;
        let msg = members_msg(epoch, &live);
        broadcast(&mut live, &msg);

        // Ranks whose window-close sync failed and are blocked awaiting a
        // membership instruction.
        let mut awaiting: Vec<usize> = Vec::new();

        loop {
            if Instant::now() >= run_deadline {
                return Err(DistError::Timeout { what: "cluster run".into() });
            }
            let cur_gen = gen.load(Ordering::Relaxed);
            let mut dead: Option<usize> = None;
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(Ev::Hello { .. }) => {} // late duplicate; ignore
                Ok(Ev::Msg { gen: g, rank, msg }) if g == cur_gen => {
                    if let Some(worker) = live.get_mut(&rank) {
                        worker.last_seen = Instant::now();
                        match msg {
                            ControlMsg::Update { updates } => {
                                worker.updates = updates;
                                max_updates = max_updates.max(updates);
                            }
                            ControlMsg::Checkpoint { path, .. } => {
                                latest_ckpt = Some(PathBuf::from(path));
                            }
                            // Only syncfails at the *current* epoch count
                            // toward the all-awaiting re-form: a stale
                            // epoch means the rank is reacting to an
                            // incident that already triggered a Members
                            // broadcast, and answering it again would
                            // queue a second membership no survivor reads
                            // until the next failure — poisoning that
                            // recovery with outdated members.
                            ControlMsg::SyncFail { epoch: e, .. }
                                if e == epoch && !awaiting.contains(&rank) =>
                            {
                                awaiting.push(rank);
                            }
                            ControlMsg::SyncFail { .. } => {}
                            ControlMsg::Done { updates, weights_hash } => {
                                worker.updates = updates;
                                worker.done = Some(weights_hash);
                                max_updates = max_updates.max(updates);
                            }
                            _ => {}
                        }
                    }
                }
                Ok(Ev::Gone { gen: g, rank }) if g == cur_gen => {
                    // A rank that already reported done may close its
                    // socket after giving up on a laggy Shutdown — that is
                    // a completion, not a death.
                    if live.get(&rank).is_some_and(|w| w.done.is_none()) {
                        dead = Some(rank);
                    }
                }
                Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(DistError::Protocol("control plane collapsed".into()));
                }
            }

            // Missed-heartbeat detection (unless already handling a death).
            if dead.is_none() {
                dead = live
                    .iter()
                    .find(|(_, w)| w.done.is_none() && w.last_seen.elapsed() > cfg.hb_grace)
                    .map(|(r, _)| *r);
            }

            if let Some(dead_rank) = dead {
                live.remove(&dead_rank);
                awaiting.retain(|r| *r != dead_rank);
                match cfg.recovery {
                    RecoveryMode::Elastic => {
                        if live.is_empty() {
                            return Err(DistError::WorkerFailed {
                                rank: dead_rank,
                                reason: "no survivors to shrink to".into(),
                            });
                        }
                        epoch += 1;
                        events.push(DegradationEvent {
                            epoch,
                            dead_rank,
                            at_update: max_updates,
                            action: format!("elastic-shrink to world {}", live.len()),
                        });
                        awaiting.clear();
                        let msg = members_msg(epoch, &live);
                        broadcast(&mut live, &msg);
                    }
                    RecoveryMode::Restart => {
                        restarts += 1;
                        epoch += 1;
                        events.push(DegradationEvent {
                            epoch,
                            dead_rank,
                            at_update: max_updates,
                            action: format!(
                                "restart from {}",
                                latest_ckpt
                                    .as_ref()
                                    .map_or_else(|| "scratch".into(), |p| p.display().to_string())
                            ),
                        });
                        fault_spec = scrub_fired_kills(&fault_spec, dead_rank);
                        broadcast(&mut live, &ControlMsg::Shutdown);
                        live.clear();
                        awaiting.clear();
                        let new_gen = gen.fetch_add(1, Ordering::Relaxed) + 1;
                        for rank in 0..cfg.world {
                            handles.push(spawn_worker(
                                &mut backend,
                                worker_config(
                                    cfg,
                                    rank,
                                    &supervisor_addr,
                                    &fault_spec,
                                    latest_ckpt.clone(),
                                    process_backend,
                                ),
                            )?);
                        }
                        live = wait_hellos(
                            &rx,
                            cfg.world,
                            new_gen,
                            Instant::now() + cfg.control_timeout,
                        )?;
                        let msg = members_msg(epoch, &live);
                        broadcast(&mut live, &msg);
                    }
                }
                continue;
            }

            // Full-ring collapse without a death (e.g. retry exhaustion):
            // when every live rank reports syncfail, re-form at the same
            // membership under a new epoch.
            if !live.is_empty() && awaiting.len() == live.len() {
                epoch += 1;
                awaiting.clear();
                let msg = members_msg(epoch, &live);
                broadcast(&mut live, &msg);
                continue;
            }

            // Completion: every live rank reported done with one agreed
            // weights hash.
            if !live.is_empty() && live.values().all(|w| w.done.is_some()) {
                let hashes: Vec<u64> = live.values().map(|w| w.done.unwrap_or(0)).collect();
                let first = hashes[0];
                if hashes.iter().any(|h| *h != first) {
                    return Err(DistError::Protocol(format!(
                        "replica divergence: weight hashes {hashes:x?}"
                    )));
                }
                let updates = live.values().map(|w| w.updates).max().unwrap_or(0);
                let final_world = live.len();
                broadcast(&mut live, &ControlMsg::Shutdown);
                return Ok((updates, final_world, first));
            }
        }
    })();

    // Tear the control plane down and reap every worker we ever spawned.
    stop.store(true, Ordering::Relaxed);
    let _ = accept_handle.join();
    let mut worker_reports = Vec::new();
    for handle in handles {
        match handle {
            Handle::Thread(h) => {
                // Killed and shut-down workers return structured errors or
                // early-shutdown reports; both are expected mid-recovery.
                if let Ok(Ok(report)) = h.join() {
                    worker_reports.push(report);
                }
            }
            Handle::Process(mut child) => {
                let _ = child.wait();
            }
        }
    }

    let (updates, final_world, weights_hash) = result?;
    Ok(ClusterReport {
        updates,
        final_world,
        restarts,
        epochs: epoch,
        events,
        weights_hash,
        final_checkpoint: latest_ckpt,
        worker_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fired_kills_are_scrubbed_precisely() {
        let spec = "pkill:3:1;pdrop:2:1:1;pkill:5:2";
        assert_eq!(scrub_fired_kills(spec, 1), "pdrop:2:1:1;pkill:5:2");
        assert_eq!(scrub_fired_kills(spec, 2), "pkill:3:1;pdrop:2:1:1");
        assert_eq!(scrub_fired_kills("", 0), "");
    }

    #[test]
    fn only_the_earliest_kill_for_a_rank_is_scrubbed() {
        // Two kills aimed at the same rank at different steps: the first
        // restart scrubs only the step-3 kill (the one that fired); the
        // step-9 kill must survive to fire against the relaunched worker.
        let spec = "pkill:9:1;pdrop:2:1:1;pkill:3:1";
        assert_eq!(scrub_fired_kills(spec, 1), "pkill:9:1;pdrop:2:1:1");
        assert_eq!(scrub_fired_kills("pkill:9:1;pdrop:2:1:1", 1), "pdrop:2:1:1");
    }

    #[test]
    fn cluster_config_defaults_are_sane() {
        let cfg = ClusterConfig::new(4, 3, PathBuf::from("/tmp/ck"));
        assert_eq!(cfg.world, 4);
        assert_eq!(cfg.recovery, RecoveryMode::Elastic);
        assert!(cfg.hb_grace > cfg.heartbeat * 10);
    }
}
