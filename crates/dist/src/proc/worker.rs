//! The per-rank worker: a full training replica wired into the socket
//! ring and the supervisor's control plane.
//!
//! Every rank builds the *same* model (same init seed), trains on
//! rank-disjoint deterministic synthetic batches, and installs a
//! [`GradSync`] bridge that AllReduces the window-averaged gradients over
//! the [`SocketRing`] — so the replicas stay bit-identical, which the
//! supervisor verifies by comparing the weight hashes every rank reports
//! at the end of the run.
//!
//! Fault handling is two-layered: socket faults (drop/delay/corrupt) are
//! armed into the transport and absorbed by its retransmission protocol;
//! a `KillProcess` fault is fatal by design — the worker drops all its
//! sockets without a word (process backend: `std::process::exit`), and
//! *recovery is the supervisor's job*. When a sync fails because the ring
//! died, the worker reports `syncfail` and blocks on the control plane
//! for either a new membership (elastic shrink: re-form the ring, retry
//! the preserved window) or a shutdown (restart recovery: exit, be
//! relaunched from the last checkpoint).

use crate::allreduce::RingConfig;
use crate::proc::control::ControlMsg;
use crate::proc::ring::{form_ring, RingStats, SocketRing};
use crate::proc::transport::SocketFaults;
use crate::proc::DistError;
use bertscope_model::BertConfig;
use bertscope_tensor::bucket::encode_f32s;
use bertscope_tensor::{
    AccessSet, BufId, Category, DType, FaultKind, FaultPlan, OpKind, OpRecord, Phase, Tensor,
    Tracer,
};
use bertscope_train::{
    Bert, BucketSink, BucketedAverager, GradSync, Lamb, PretrainBatch, StepResult, SyncError,
    SyntheticCorpus, TrainCheckpoint, TrainError, TrainOptions, Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a worker needs to run — constructible from explicit values
/// (thread backend) or from environment variables (process backend, where
/// the launcher re-execs the binary).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's original (spawn-time) rank.
    pub orig_rank: usize,
    /// Initial world size.
    pub world: usize,
    /// Supervisor control address, e.g. `127.0.0.1:41234`.
    pub supervisor: String,
    /// Seed for model init (shared) and data (per-rank-derived).
    pub seed: u64,
    /// Optimizer updates to run before reporting done.
    pub total_updates: u64,
    /// Gradient-accumulation window (micro-steps per update).
    pub accumulation: usize,
    /// Overlap backward with communication: record backward through the
    /// deferred operator-graph scheduler and AllReduce each gradient
    /// bucket on a communication thread the moment its last producing op
    /// retires, instead of one aggregate collective after backward.
    /// Bit-identical results either way.
    pub overlap: bool,
    /// Fault plan spec (see `FaultPlan::to_spec`).
    pub fault_spec: String,
    /// Ring tunables (timeouts, retries, bucket size).
    pub ring: RingConfig,
    /// Directory checkpoints are written into.
    pub ckpt_dir: PathBuf,
    /// Checkpoint to restore before training (restart recovery).
    pub resume_from: Option<PathBuf>,
    /// Heartbeat period on the control plane.
    pub heartbeat: Duration,
    /// Deadline for control-plane waits (membership, shutdown).
    pub control_timeout: Duration,
    /// Where to dump this rank's traced operator stream, if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Whether a `KillProcess` fault exits the OS process (process
    /// backend) or returns [`DistError::Killed`] (thread backend).
    pub process_backend: bool,
}

/// Environment variable names of the process backend (all prefixed so a
/// re-exec'd binary can detect the worker role).
pub const ENV_ROLE: &str = "BERTSCOPE_PROC_ROLE";
const ENV_RANK: &str = "BERTSCOPE_PROC_RANK";
const ENV_WORLD: &str = "BERTSCOPE_PROC_WORLD";
const ENV_SUPERVISOR: &str = "BERTSCOPE_PROC_SUPERVISOR";
const ENV_SEED: &str = "BERTSCOPE_PROC_SEED";
const ENV_UPDATES: &str = "BERTSCOPE_PROC_UPDATES";
const ENV_ACCUM: &str = "BERTSCOPE_PROC_ACCUM";
const ENV_OVERLAP: &str = "BERTSCOPE_PROC_OVERLAP";
const ENV_FAULTS: &str = "BERTSCOPE_PROC_FAULTS";
const ENV_CKPT_DIR: &str = "BERTSCOPE_PROC_CKPT_DIR";
const ENV_RESUME: &str = "BERTSCOPE_PROC_RESUME";
const ENV_TIMEOUT_MS: &str = "BERTSCOPE_PROC_TIMEOUT_MS";
const ENV_RETRIES: &str = "BERTSCOPE_PROC_RETRIES";
const ENV_BACKOFF_MS: &str = "BERTSCOPE_PROC_BACKOFF_MS";
const ENV_BUCKET: &str = "BERTSCOPE_PROC_BUCKET";
const ENV_HEARTBEAT_MS: &str = "BERTSCOPE_PROC_HEARTBEAT_MS";
const ENV_CONTROL_TIMEOUT_MS: &str = "BERTSCOPE_PROC_CONTROL_TIMEOUT_MS";
const ENV_TRACE_OUT: &str = "BERTSCOPE_PROC_TRACE_OUT";

impl WorkerConfig {
    /// Render as the environment a process-backend launcher passes to the
    /// re-exec'd worker (paired with [`WorkerConfig::from_env`]).
    #[must_use]
    pub fn to_env(&self) -> Vec<(String, String)> {
        let mut env = vec![
            (ENV_ROLE.into(), "worker".into()),
            (ENV_RANK.into(), self.orig_rank.to_string()),
            (ENV_WORLD.into(), self.world.to_string()),
            (ENV_SUPERVISOR.into(), self.supervisor.clone()),
            (ENV_SEED.into(), self.seed.to_string()),
            (ENV_UPDATES.into(), self.total_updates.to_string()),
            (ENV_ACCUM.into(), self.accumulation.to_string()),
            (ENV_OVERLAP.into(), u32::from(self.overlap).to_string()),
            (ENV_FAULTS.into(), self.fault_spec.clone()),
            (ENV_CKPT_DIR.into(), self.ckpt_dir.display().to_string()),
            (ENV_TIMEOUT_MS.into(), self.ring.timeout.as_millis().to_string()),
            (ENV_RETRIES.into(), self.ring.max_retries.to_string()),
            (ENV_BACKOFF_MS.into(), self.ring.backoff.as_millis().to_string()),
            (ENV_BUCKET.into(), self.ring.bucket_elems.to_string()),
            (ENV_HEARTBEAT_MS.into(), self.heartbeat.as_millis().to_string()),
            (ENV_CONTROL_TIMEOUT_MS.into(), self.control_timeout.as_millis().to_string()),
        ];
        if let Some(p) = &self.resume_from {
            env.push((ENV_RESUME.into(), p.display().to_string()));
        }
        if let Some(p) = &self.trace_out {
            env.push((ENV_TRACE_OUT.into(), p.display().to_string()));
        }
        env
    }

    /// Reconstruct from the environment (process backend).
    ///
    /// # Errors
    ///
    /// Returns a protocol error naming the first missing or malformed
    /// variable.
    pub fn from_env() -> Result<WorkerConfig, DistError> {
        let get = |k: &str| -> Result<String, DistError> {
            std::env::var(k).map_err(|_| DistError::Protocol(format!("missing env {k}")))
        };
        let num = |k: &str| -> Result<u64, DistError> {
            get(k)?.parse::<u64>().map_err(|_| DistError::Protocol(format!("bad env {k}")))
        };
        Ok(WorkerConfig {
            orig_rank: num(ENV_RANK)? as usize,
            world: num(ENV_WORLD)? as usize,
            supervisor: get(ENV_SUPERVISOR)?,
            seed: num(ENV_SEED)?,
            total_updates: num(ENV_UPDATES)?,
            accumulation: num(ENV_ACCUM)? as usize,
            overlap: std::env::var(ENV_OVERLAP).is_ok_and(|v| v == "1"),
            fault_spec: std::env::var(ENV_FAULTS).unwrap_or_default(),
            ring: RingConfig {
                timeout: Duration::from_millis(num(ENV_TIMEOUT_MS)?),
                max_retries: u32::try_from(num(ENV_RETRIES)?)
                    .map_err(|_| DistError::Protocol(format!("bad env {ENV_RETRIES}")))?,
                backoff: Duration::from_millis(num(ENV_BACKOFF_MS)?),
                bucket_elems: num(ENV_BUCKET)? as usize,
                ..RingConfig::default()
            },
            ckpt_dir: PathBuf::from(get(ENV_CKPT_DIR)?),
            resume_from: std::env::var(ENV_RESUME).ok().map(PathBuf::from),
            heartbeat: Duration::from_millis(num(ENV_HEARTBEAT_MS)?),
            control_timeout: Duration::from_millis(num(ENV_CONTROL_TIMEOUT_MS)?),
            trace_out: std::env::var(ENV_TRACE_OUT).ok().map(PathBuf::from),
            process_backend: true,
        })
    }
}

/// What a worker accomplished (thread backend return value; the process
/// backend communicates the same facts over the control plane).
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's original rank.
    pub orig_rank: usize,
    /// Optimizer updates applied.
    pub updates: u64,
    /// FNV-1a hash over all parameter names and bytes.
    pub weights_hash: u64,
    /// Whether the supervisor shut the worker down before it reached its
    /// update target (restart recovery relaunches it).
    pub early_shutdown: bool,
    /// Per-collective ring statistics, in execution order. Overlapped
    /// window closes contribute one entry *per gradient bucket*; the
    /// eager path contributes one aggregate entry per window.
    pub ring_stats: Vec<RingStats>,
    /// For each overlapped window close, the microseconds the close had
    /// to wait on the communication thread after backward retired the
    /// last bucket — the *exposed* (unhidden) communication time.
    pub exposed_comm_us: Vec<u64>,
}

/// Shared ring state: the trainer's `GradSync` box and the worker's
/// control loop both reach it (sync uses it, reconfiguration replaces
/// it).
#[derive(Debug, Default)]
struct RingShared {
    ring: Option<SocketRing>,
    pending_faults: SocketFaults,
    stats_log: Vec<RingStats>,
}

/// The trainer-facing bridge: flattens the averaged gradients, AllReduces
/// them over the socket ring, rescales by the active world size and
/// writes them back — tracing the whole exchange as a `Comm` op over the
/// gradient buffers so the hazard analyzer sees the
/// AllReduce-before-optimizer ordering.
#[derive(Debug)]
struct RingGradSync {
    shared: Arc<Mutex<RingShared>>,
}

impl GradSync for RingGradSync {
    fn world(&self) -> usize {
        self.shared.lock().expect("ring lock").ring.as_ref().map_or(1, |r| r.world)
    }

    fn sync(&mut self, tracer: &mut Tracer, grads: &mut [Tensor]) -> Result<(), SyncError> {
        let mut shared = self.shared.lock().expect("ring lock");
        let faults = std::mem::take(&mut shared.pending_faults);
        let Some(ring) = shared.ring.as_mut() else {
            // World of one (or no ring yet): the local mean is the global
            // mean.
            return Ok(());
        };
        let world = ring.world;
        let mut flat: Vec<f32> = Vec::with_capacity(grads.iter().map(|g| g.as_slice().len()).sum());
        for g in grads.iter() {
            flat.extend_from_slice(g.as_slice());
        }
        ring.arm_faults(faults);
        let stats = match ring.allreduce(&mut flat) {
            Ok(s) => s,
            Err(e) => {
                // The ring is broken; a reconfiguration must replace it
                // before the window close is retried.
                shared.ring = None;
                return Err(SyncError::new(e.to_string()));
            }
        };
        let inv = 1.0 / world as f32;
        for v in &mut flat {
            *v *= inv;
        }
        let mut at = 0;
        let mut ids = Vec::with_capacity(grads.len());
        for g in grads.iter_mut() {
            let dst = g.as_mut_slice();
            dst.copy_from_slice(&flat[at..at + dst.len()]);
            at += dst.len();
            ids.push(g.buf_id());
        }
        tracer.record(OpRecord {
            name: format!("proc.allreduce epoch{} w{world}", ring.epoch),
            kind: OpKind::Comm,
            category: Category::Comm,
            phase: Phase::Communication,
            layer: None,
            gemm: None,
            flops: flat.len() as u64 * (world as u64 - 1),
            bytes_read: stats.bytes_sent,
            bytes_written: stats.bytes_sent,
            dtype: DType::F32,
            access: AccessSet { reads: ids.clone(), writes: ids, allocs: vec![], frees: vec![] },
        });
        shared.stats_log.push(stats);
        Ok(())
    }
}

/// Streams fired gradient buckets from the backward pass to the
/// per-window communication thread. The payload is copied out of the
/// averager's flat buffer so backward never waits on the wire.
struct ChannelSink(mpsc::Sender<(usize, Range<usize>, Vec<f32>)>);

impl BucketSink for ChannelSink {
    fn bucket_ready(&mut self, bucket: usize, range: Range<usize>, data: &[f32]) {
        // The receiver is only gone after a ring failure; the join in
        // `overlapped_close` surfaces that, so a send error is ignorable.
        let _ = self.0.send((bucket, range, data.to_vec()));
    }
}

/// One bucket's synced payload: `(bucket index, flat range, averaged
/// data, collective stats)`.
type BucketResult = (usize, Range<usize>, Vec<f32>, RingStats);

/// Body of the per-window communication thread: AllReduce each gradient
/// bucket as backward fires it, while backward keeps computing the next.
///
/// Each bucket's payload is at most `bucket_elems` long and starts on a
/// plan boundary, so the per-bucket collective performs the bit-identical
/// reduction the aggregate post-backward call would. On a transport error
/// the ring is torn down (as in the eager path) and the error string
/// returned; the caller converts it into the retryable
/// [`TrainError::Sync`] — the trainer's gradient sums are untouched by
/// this thread, so the eager `close_window` retry remains exact.
fn comm_thread(
    shared: &Arc<Mutex<RingShared>>,
    rx: &mpsc::Receiver<(usize, Range<usize>, Vec<f32>)>,
) -> Result<Vec<BucketResult>, String> {
    let mut out: Vec<BucketResult> = Vec::new();
    let mut armed = false;
    while let Ok((bucket, range, mut data)) = rx.recv() {
        let mut sh = shared.lock().expect("ring lock");
        if !armed {
            // This window's socket faults arm once, like the eager path.
            let faults = std::mem::take(&mut sh.pending_faults);
            if let Some(ring) = sh.ring.as_mut() {
                ring.arm_faults(faults);
            }
            armed = true;
        }
        let Some(ring) = sh.ring.as_mut() else {
            return Err("ring lost before bucket collective".into());
        };
        let world = ring.world;
        match ring.allreduce(&mut data) {
            Ok(stats) => {
                let inv = 1.0 / world as f32;
                for v in &mut data {
                    *v *= inv;
                }
                sh.stats_log.push(stats);
                out.push((bucket, range, data, stats));
            }
            Err(e) => {
                sh.ring = None;
                return Err(e.to_string());
            }
        }
    }
    Ok(out)
}

/// Run the window-closing micro-step with backward/AllReduce overlap.
///
/// Backward runs on the caller thread and fires each gradient bucket —
/// already window-averaged by the trainer's observer — into the
/// communication thread the moment its last producing op retires. After
/// backward the caller blocks only for whatever wire time backward could
/// not hide; that wait is recorded in `exposed_log` as the window's
/// exposed communication time. The synced buckets are reassembled into
/// per-slot tensors, traced as per-bucket `Comm` ops (so the hazard rules
/// see each bucket's AllReduce-before-optimizer order), and handed to
/// [`Trainer::close_window_presynced`] for the optimizer step.
fn overlapped_close(
    trainer: &mut Trainer<Lamb>,
    bert: &mut Bert,
    tracer: &mut Tracer,
    batch: &PretrainBatch,
    shared: &Arc<Mutex<RingShared>>,
    bucket_elems: usize,
    exposed_log: &mut Vec<u64>,
) -> Result<StepResult, TrainError> {
    let (dims, lens): (Vec<Vec<usize>>, Vec<usize>) = bert
        .param_values_mut()
        .iter()
        .map(|(_, t)| (t.dims().to_vec(), t.as_slice().len()))
        .unzip();
    let (tx, rx) = mpsc::channel();
    let comm = {
        let shared = shared.clone();
        std::thread::spawn(move || comm_thread(&shared, &rx))
    };
    let mut averager = BucketedAverager::new(&lens, bucket_elems, ChannelSink(tx));
    let step = trainer.micro_step_observed(tracer, bert, batch, &mut averager);
    let (_, window_full) = match step {
        Ok(v) => v,
        Err(e) => {
            // Close the channel without the all-buckets-fired assertion
            // and let the comm thread drain; the error itself is fatal.
            drop(averager);
            let _ = comm.join();
            return Err(e);
        }
    };
    debug_assert!(window_full, "overlap gate only fires on the window-closing micro-step");
    drop(averager.into_sink());
    let wait = Instant::now();
    let results = comm
        .join()
        .expect("comm thread panicked")
        .map_err(|reason| TrainError::Sync { step: trainer.micro_steps(), reason })?;
    exposed_log.push(u64::try_from(wait.elapsed().as_micros()).unwrap_or(u64::MAX));

    // Reassemble the flat synced vector into canonical per-slot tensors.
    let total: usize = lens.iter().sum();
    let mut flat = vec![0.0f32; total];
    for (_, range, data, _) in &results {
        flat[range.clone()].copy_from_slice(data);
    }
    let mut offsets = Vec::with_capacity(lens.len() + 1);
    offsets.push(0usize);
    for &len in &lens {
        offsets.push(offsets.last().expect("non-empty") + len);
    }
    let averaged: Vec<Tensor> = dims
        .iter()
        .zip(offsets.windows(2))
        .map(|(d, w)| Tensor::from_vec(flat[w[0]..w[1]].to_vec(), d).expect("slot shape"))
        .collect();

    // One Comm op per bucket, over exactly the gradient buffers the
    // bucket covers, recorded before the optimizer reads them.
    for (b, range, _, stats) in &results {
        let ids: Vec<BufId> = averaged
            .iter()
            .zip(offsets.windows(2))
            .filter(|(_, w)| w[0] < range.end && range.start < w[1])
            .map(|(t, _)| t.buf_id())
            .collect();
        tracer.record(OpRecord {
            name: format!("proc.allreduce.bucket{b} w{}", stats.world),
            kind: OpKind::Comm,
            category: Category::Comm,
            phase: Phase::Communication,
            layer: None,
            gemm: None,
            flops: range.len() as u64 * (stats.world as u64 - 1),
            bytes_read: stats.bytes_sent,
            bytes_written: stats.bytes_sent,
            dtype: DType::F32,
            access: AccessSet { reads: ids.clone(), writes: ids, allocs: vec![], frees: vec![] },
        });
    }
    trainer.close_window_presynced(tracer, bert, averaged)
}

/// FNV-1a over parameter names and raw f32 bytes — the replica-agreement
/// fingerprint every rank reports in its `done` message.
#[must_use]
pub fn weights_hash(bert: &mut Bert) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let extend = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (name, t) in bert.param_values_mut() {
        extend(&mut h, name.as_bytes());
        extend(&mut h, &encode_f32s(t.as_slice()));
    }
    h
}

/// The deterministic batch for `(seed, rank, attempt)` — every rank draws
/// from a disjoint, reproducible stream, so an interrupted run re-executes
/// the identical data order after restart.
#[must_use]
pub fn batch_for(
    corpus: &SyntheticCorpus,
    cfg: &BertConfig,
    seed: u64,
    rank: usize,
    attempt: u64,
) -> PretrainBatch {
    let mixed = seed
        ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ attempt.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut rng = StdRng::seed_from_u64(mixed);
    corpus.generate_batch(&mut rng, cfg)
}

fn send_ctrl(w: &Arc<Mutex<TcpStream>>, msg: &ControlMsg) -> Result<(), DistError> {
    let mut line = msg.to_line();
    line.push('\n');
    let mut stream = w.lock().expect("control lock");
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Read the next control message, tolerating read-timeout ticks until
/// `deadline`.
fn read_ctrl(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
    what: &str,
) -> Result<ControlMsg, DistError> {
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(DistError::Io("supervisor hung up".into())),
            Ok(_) => return ControlMsg::from_line(&line),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(DistError::Timeout { what: what.into() });
                }
            }
            Err(e) => return Err(DistError::Io(e.to_string())),
        }
    }
}

/// Run one worker to completion (or supervised shutdown). This is the
/// entry point of both backends: the thread backend calls it directly,
/// the process backend calls it from `main` after
/// [`WorkerConfig::from_env`].
///
/// # Errors
///
/// Structured [`DistError`]s: unrecoverable training failures, protocol
/// violations, control-plane timeouts, or [`DistError::Killed`] when the
/// fault plan kills this rank (thread backend).
///
/// # Panics
///
/// Panics when the fault spec is unparseable (a launcher bug, not a
/// runtime condition).
pub fn worker_main(cfg: &WorkerConfig) -> Result<WorkerReport, DistError> {
    let plan = FaultPlan::from_spec(&cfg.fault_spec).expect("fault spec must parse");
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let data_port = listener.local_addr()?.port();

    let control = TcpStream::connect(&cfg.supervisor)?;
    control.set_nodelay(true)?;
    control.set_read_timeout(Some(Duration::from_millis(50)))?;
    let ctrl_w = Arc::new(Mutex::new(control.try_clone()?));
    let mut ctrl_r = BufReader::new(control);
    send_ctrl(&ctrl_w, &ControlMsg::Hello { rank: cfg.orig_rank, data_port })?;

    // Heartbeats ride the same socket; the write mutex keeps lines atomic.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_handle = {
        let stop = stop.clone();
        let w = ctrl_w.clone();
        let period = cfg.heartbeat;
        std::thread::spawn(move || {
            let mut beats: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                beats += 1;
                if send_ctrl(&w, &ControlMsg::Heartbeat { micro_steps: beats }).is_err() {
                    return;
                }
            }
        })
    };
    // Everything after this point must stop the heartbeat before
    // returning; a small guard keeps the paths honest.
    let finish = |stop: &Arc<AtomicBool>, ctrl_w: &Arc<Mutex<TcpStream>>| {
        stop.store(true, Ordering::Relaxed);
        if let Ok(s) = ctrl_w.lock() {
            let _ = s.shutdown(Shutdown::Both);
        }
    };

    let result = run_worker(cfg, &plan, &listener, &ctrl_w, &mut ctrl_r);
    finish(&stop, &ctrl_w);
    let _ = hb_handle.join();
    result
}

/// Await a `members` instruction newer than `last_epoch` and (re)form the
/// data ring from it, advancing `last_epoch` to the formed epoch.
/// Membership lines at or below `last_epoch` are stale broadcasts from an
/// incident this worker already recovered from; acting on one would form
/// a ring against dead or reconfigured peers, so they are drained and
/// dropped.
fn await_and_form_ring(
    cfg: &WorkerConfig,
    listener: &TcpListener,
    ctrl_r: &mut BufReader<TcpStream>,
    shared: &Arc<Mutex<RingShared>>,
    last_epoch: &mut u32,
) -> Result<MembershipOutcome, DistError> {
    let deadline = Instant::now() + cfg.control_timeout;
    loop {
        match read_ctrl(ctrl_r, deadline, "ring membership")? {
            ControlMsg::Members { epoch, members } if epoch > *last_epoch => {
                let Some(position) = members.iter().position(|(r, _)| *r == cfg.orig_rank) else {
                    // Evicted (shouldn't happen to a live rank): exit.
                    return Ok(MembershipOutcome::Shutdown);
                };
                let ports: Vec<u16> = members.iter().map(|(_, p)| *p).collect();
                let ring = if members.len() > 1 {
                    Some(form_ring(listener, &ports, position, epoch, &cfg.ring)?)
                } else {
                    None
                };
                let lowest = members.iter().map(|(r, _)| *r).min().expect("non-empty");
                shared.lock().expect("ring lock").ring = ring;
                *last_epoch = epoch;
                return Ok(MembershipOutcome::Formed { checkpoint_duty: lowest == cfg.orig_rank });
            }
            ControlMsg::Shutdown => return Ok(MembershipOutcome::Shutdown),
            // Ignore anything else (stale broadcasts).
            _ => {}
        }
    }
}

enum MembershipOutcome {
    Formed {
        /// Whether this rank writes the checkpoints (lowest live rank).
        checkpoint_duty: bool,
    },
    Shutdown,
}

#[allow(clippy::too_many_lines)]
fn run_worker(
    cfg: &WorkerConfig,
    plan: &FaultPlan,
    listener: &TcpListener,
    ctrl_w: &Arc<Mutex<TcpStream>>,
    ctrl_r: &mut BufReader<TcpStream>,
) -> Result<WorkerReport, DistError> {
    let shared = Arc::new(Mutex::new(RingShared::default()));
    let mut last_epoch: u32 = 0;
    let mut checkpoint_duty =
        match await_and_form_ring(cfg, listener, ctrl_r, &shared, &mut last_epoch)? {
            MembershipOutcome::Formed { checkpoint_duty } => checkpoint_duty,
            MembershipOutcome::Shutdown => {
                return Ok(WorkerReport {
                    orig_rank: cfg.orig_rank,
                    updates: 0,
                    weights_hash: 0,
                    early_shutdown: true,
                    ring_stats: Vec::new(),
                    exposed_comm_us: Vec::new(),
                });
            }
        };

    // Same config + same seed on every rank: identical initial replicas.
    let bert_cfg = BertConfig::tiny();
    let corpus = SyntheticCorpus::new(bert_cfg.vocab);
    // `overlap` also records the whole micro-step as a task graph
    // (`graph`) so backward/AllReduce overlap composes with inter-op
    // parallelism; both modes are bit-identical to eager execution.
    let opts =
        TrainOptions { deferred: cfg.overlap, graph: cfg.overlap, ..TrainOptions::default() };
    let mut bert = Bert::new(bert_cfg, opts, cfg.seed);
    let mut trainer = Trainer::new(Lamb::new(0.01), cfg.accumulation)
        .with_sync(Box::new(RingGradSync { shared: shared.clone() }));
    let mut tracer = if cfg.trace_out.is_some() { Tracer::new() } else { Tracer::disabled() };
    if let Some(path) = &cfg.resume_from {
        let ckpt = TrainCheckpoint::load(path).map_err(|e| DistError::Train(e.to_string()))?;
        trainer.restore(&ckpt, &mut bert).map_err(|e| DistError::Train(e.to_string()))?;
    }

    let mut early_shutdown = false;
    let mut exposed_log: Vec<u64> = Vec::new();
    'train: while trainer.updates() < cfg.total_updates {
        let attempt = trainer.micro_steps() + 1;
        // Arm this step's process faults.
        {
            let mut sf = SocketFaults::default();
            for fault in plan.process_faults_at(attempt) {
                match *fault {
                    FaultKind::KillProcess { rank } if rank == cfg.orig_rank => {
                        if cfg.process_backend {
                            // An abrupt, word-less death: sockets reset,
                            // no farewell. 113 distinguishes the injected
                            // kill from genuine crashes in CI logs.
                            std::process::exit(113);
                        }
                        return Err(DistError::Killed { rank: cfg.orig_rank });
                    }
                    FaultKind::DropSend { rank, count } if rank == cfg.orig_rank => {
                        sf.drop_sends += count;
                    }
                    FaultKind::DelaySend { rank, micros } if rank == cfg.orig_rank => {
                        sf.delay_send_micros += micros;
                    }
                    FaultKind::CorruptPayload { rank, count } if rank == cfg.orig_rank => {
                        sf.corrupt_sends += count;
                    }
                    _ => {}
                }
            }
            shared.lock().expect("ring lock").pending_faults = sf;
        }

        let batch = batch_for(&corpus, &bert_cfg, cfg.seed, cfg.orig_rank, attempt);
        // Overlap fires on the window-closing micro-step of a live ring;
        // everything else (accumulating steps, world of one, post-failure
        // retries) takes the eager path.
        let overlap_now = cfg.overlap
            && trainer.pending() + 1 == cfg.accumulation
            && shared.lock().expect("ring lock").ring.is_some();
        let mut outcome = if overlap_now {
            overlapped_close(
                &mut trainer,
                &mut bert,
                &mut tracer,
                &batch,
                &shared,
                cfg.ring.bucket_elems,
                &mut exposed_log,
            )
        } else {
            trainer.micro_step(&mut tracer, &mut bert, &batch).map(|(_, r)| r)
        };
        // A failed sync is retryable after the supervisor repairs the
        // membership; everything else is fatal for this worker.
        loop {
            match outcome {
                Ok(StepResult::Updated) => {
                    on_update(cfg, &mut trainer, &mut bert, ctrl_w, checkpoint_duty)?;
                    break;
                }
                Ok(_) => break,
                Err(TrainError::Sync { ref reason, .. }) => {
                    send_ctrl(
                        ctrl_w,
                        &ControlMsg::SyncFail { epoch: last_epoch, reason: reason.clone() },
                    )?;
                    match await_and_form_ring(cfg, listener, ctrl_r, &shared, &mut last_epoch)? {
                        MembershipOutcome::Formed { checkpoint_duty: duty } => {
                            checkpoint_duty = duty;
                            outcome = trainer.close_window(&mut tracer, &mut bert);
                        }
                        MembershipOutcome::Shutdown => {
                            early_shutdown = true;
                            break 'train;
                        }
                    }
                }
                Err(e) => return Err(DistError::Train(e.to_string())),
            }
        }
    }

    if let (Some(path), true) = (&cfg.trace_out, tracer.is_enabled()) {
        std::fs::write(path, bertscope_tensor::tracefile::dump_records(tracer.records()))?;
    }

    let hash = if early_shutdown { 0 } else { weights_hash(&mut bert) };
    if !early_shutdown {
        send_ctrl(ctrl_w, &ControlMsg::Done { updates: trainer.updates(), weights_hash: hash })?;
        // Wait (bounded) for the supervisor's shutdown so the control
        // socket closes in order; a timeout here is not an error.
        let deadline = Instant::now() + cfg.control_timeout;
        loop {
            match read_ctrl(ctrl_r, deadline, "final shutdown") {
                Ok(ControlMsg::Shutdown) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    let ring_stats = std::mem::take(&mut shared.lock().expect("ring lock").stats_log);
    Ok(WorkerReport {
        orig_rank: cfg.orig_rank,
        updates: trainer.updates(),
        weights_hash: hash,
        early_shutdown,
        ring_stats,
        exposed_comm_us: exposed_log,
    })
}

/// Post-update duties: report progress; on the checkpointing rank, write
/// the bit-exact checkpoint atomically (tmp + rename) and announce it.
fn on_update(
    cfg: &WorkerConfig,
    trainer: &mut Trainer<Lamb>,
    bert: &mut Bert,
    ctrl_w: &Arc<Mutex<TcpStream>>,
    checkpoint_duty: bool,
) -> Result<(), DistError> {
    let updates = trainer.updates();
    send_ctrl(ctrl_w, &ControlMsg::Update { updates })?;
    if checkpoint_duty {
        std::fs::create_dir_all(&cfg.ckpt_dir)?;
        let final_path = cfg.ckpt_dir.join(format!("step_{updates}.bsck"));
        // The tmp name must be unique per worker *incarnation*: around a
        // restart, the dying generation's checkpoint rank can still be
        // mid-write while its replacement reaches the same update, and a
        // shared tmp path would let one incarnation rename the other's
        // file away (a release-timing ENOENT). The rename target may be
        // overwritten concurrently, but both incarnations produce the
        // bit-identical checkpoint, so last-writer-wins is safe.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = cfg.ckpt_dir.join(format!(
            ".step_{updates}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let ckpt = trainer.checkpoint(bert).map_err(|e| DistError::Train(e.to_string()))?;
        ckpt.save(&tmp).map_err(|e| DistError::Train(e.to_string()))?;
        std::fs::rename(&tmp, &final_path)?;
        send_ctrl(
            ctrl_w,
            &ControlMsg::Checkpoint { updates, path: final_path.display().to_string() },
        )?;
    }
    Ok(())
}
