//! Supervisor <-> worker control-plane messages.
//!
//! The control plane is a line-oriented text protocol over each worker's
//! TCP connection to the supervisor — deliberately human-readable, so a
//! hung cluster can be debugged with `strace`/`tcpdump` output alone.
//! One message per line:
//!
//! ```text
//! worker -> supervisor:
//!   hello <rank> <data_port>          first message after connecting
//!   hb <micro_steps>                  heartbeat (liveness + progress)
//!   update <updates>                  an optimizer update was applied
//!   ckpt <updates> <path>             a checkpoint was written
//!   syncfail <epoch> <reason...>      window-close sync failed at the
//!                                     given membership epoch; awaiting
//!                                     a members (elastic) or shutdown
//!                                     (restart) instruction
//!   done <updates> <weights_hash>     target reached; hash of all
//!                                     parameter bytes for replica
//!                                     agreement checks
//!
//! supervisor -> worker:
//!   members <epoch> <rank:port,...>   (re)form the data ring with this
//!                                     membership, in list order
//!   shutdown                          exit now (restart-recovery or end
//!                                     of run)
//! ```

use crate::proc::DistError;

/// A parsed control-plane message (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Worker announces itself: original rank and its ring listen port.
    Hello {
        /// The worker's original (spawn-time) rank.
        rank: usize,
        /// Localhost port its ring listener is bound to.
        data_port: u16,
    },
    /// Liveness heartbeat with the worker's micro-step counter.
    Heartbeat {
        /// Micro-steps executed so far.
        micro_steps: u64,
    },
    /// An optimizer update completed.
    Update {
        /// Total updates applied by this worker.
        updates: u64,
    },
    /// A checkpoint was written.
    Checkpoint {
        /// Update count the checkpoint captures.
        updates: u64,
        /// Filesystem path of the checkpoint.
        path: String,
    },
    /// The worker's window-close gradient sync failed.
    SyncFail {
        /// Membership epoch the failed ring was formed at. The supervisor
        /// uses this to discard stale syncfails that are really responses
        /// to an already-handled (and already-rebroadcast) incident.
        epoch: u32,
        /// Human-readable failure.
        reason: String,
    },
    /// The worker reached its update target.
    Done {
        /// Final update count.
        updates: u64,
        /// FNV-1a hash over all parameter bytes (replica agreement).
        weights_hash: u64,
    },
    /// Supervisor instructs: (re)form the ring with this membership.
    Members {
        /// Membership epoch (strictly increasing across reconfigurations).
        epoch: u32,
        /// `(original rank, data port)` pairs in ring order.
        members: Vec<(usize, u16)>,
    },
    /// Supervisor instructs: exit now.
    Shutdown,
}

impl ControlMsg {
    /// Render as one protocol line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            ControlMsg::Hello { rank, data_port } => format!("hello {rank} {data_port}"),
            ControlMsg::Heartbeat { micro_steps } => format!("hb {micro_steps}"),
            ControlMsg::Update { updates } => format!("update {updates}"),
            ControlMsg::Checkpoint { updates, path } => format!("ckpt {updates} {path}"),
            ControlMsg::SyncFail { epoch, reason } => {
                format!("syncfail {epoch} {}", reason.replace('\n', " "))
            }
            ControlMsg::Done { updates, weights_hash } => {
                format!("done {updates} {weights_hash}")
            }
            ControlMsg::Members { epoch, members } => {
                let list =
                    members.iter().map(|(r, p)| format!("{r}:{p}")).collect::<Vec<_>>().join(",");
                format!("members {epoch} {list}")
            }
            ControlMsg::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parse one protocol line.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Protocol`] on a malformed line.
    pub fn from_line(line: &str) -> Result<ControlMsg, DistError> {
        let line = line.trim_end();
        let bad = || DistError::Protocol(format!("malformed control line `{line}`"));
        let mut it = line.splitn(3, ' ');
        let verb = it.next().ok_or_else(bad)?;
        let a = it.next();
        let b = it.next();
        let num = |s: Option<&str>| -> Result<u64, DistError> {
            s.ok_or_else(bad)?.parse::<u64>().map_err(|_| bad())
        };
        Ok(match verb {
            "hello" => ControlMsg::Hello {
                rank: num(a)? as usize,
                data_port: u16::try_from(num(b)?).map_err(|_| bad())?,
            },
            "hb" => ControlMsg::Heartbeat { micro_steps: num(a)? },
            "update" => ControlMsg::Update { updates: num(a)? },
            "ckpt" => {
                ControlMsg::Checkpoint { updates: num(a)?, path: b.ok_or_else(bad)?.to_string() }
            }
            "syncfail" => ControlMsg::SyncFail {
                epoch: u32::try_from(num(a)?).map_err(|_| bad())?,
                reason: b.unwrap_or("").to_string(),
            },
            "done" => ControlMsg::Done { updates: num(a)?, weights_hash: num(b)? },
            "members" => {
                let epoch = u32::try_from(num(a)?).map_err(|_| bad())?;
                let mut members = Vec::new();
                for pair in b.ok_or_else(bad)?.split(',').filter(|p| !p.is_empty()) {
                    let (r, p) = pair.split_once(':').ok_or_else(bad)?;
                    members.push((
                        r.parse::<usize>().map_err(|_| bad())?,
                        p.parse::<u16>().map_err(|_| bad())?,
                    ));
                }
                if members.is_empty() {
                    return Err(bad());
                }
                ControlMsg::Members { epoch, members }
            }
            "shutdown" => ControlMsg::Shutdown,
            _ => return Err(bad()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_roundtrips() {
        let msgs = vec![
            ControlMsg::Hello { rank: 3, data_port: 40113 },
            ControlMsg::Heartbeat { micro_steps: 17 },
            ControlMsg::Update { updates: 4 },
            ControlMsg::Checkpoint { updates: 4, path: "/tmp/ck/step_4.bsck".into() },
            ControlMsg::SyncFail {
                epoch: 1,
                reason: "rank 1 lost its ring neighbour at step 2".into(),
            },
            ControlMsg::Done { updates: 8, weights_hash: 0xdead_beef_cafe },
            ControlMsg::Members { epoch: 2, members: vec![(0, 4000), (2, 4002), (3, 4003)] },
            ControlMsg::Shutdown,
        ];
        for m in msgs {
            let line = m.to_line();
            assert!(!line.contains('\n'));
            let back = ControlMsg::from_line(&line).expect("roundtrip");
            assert_eq!(m, back, "line `{line}`");
        }
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for bad in ["", "frobnicate 1", "hello onlyrank", "hello x y", "members 1", "members 1 ,"] {
            assert!(ControlMsg::from_line(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn syncfail_reasons_survive_spaces() {
        let m = ControlMsg::SyncFail {
            epoch: 3,
            reason: "hop at ring step 3 failed after 4 attempts".into(),
        };
        assert_eq!(ControlMsg::from_line(&m.to_line()).expect("parse"), m);
    }
}
