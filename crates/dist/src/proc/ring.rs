//! The socket ring AllReduce: the threaded ring's algorithm, promoted to
//! TCP connections between genuinely separate workers.
//!
//! The hop structure is identical to [`crate::allreduce`] — `2(D-1)`
//! pipeline steps of reduce-scatter + all-gather over `D` chunks — and the
//! floating-point accumulation order is identical too, so the socket ring,
//! the threaded ring and the serial [`reference_allreduce`] simulation all
//! produce *bit-identical* results. That property is what makes the
//! recovery tests meaningful: a restarted or shrunk run can be compared
//! against an uninterrupted reference down to the last mantissa bit.
//!
//! Large payloads travel as [`plan_buckets`]-partitioned buckets
//! (`RingConfig::bucket_elems` elements each), each reduced by its own
//! ring pass; chunk frames ride the reliable transport, so socket faults
//! surface only in the stats.

use crate::allreduce::RingConfig;
use crate::proc::transport::{FrameConn, SocketFaults, TransportStats};
use crate::proc::DistError;
use bertscope_tensor::bucket::{decode_f32s, encode_f32s, plan_buckets};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Handshake magic for ring data connections.
const RING_MAGIC: &[u8; 4] = b"BSRG";

/// Statistics of one socket-ring collective.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Participating ranks.
    pub world: usize,
    /// Pipeline steps executed per bucket (`2(world-1)`).
    pub steps_per_bucket: usize,
    /// Buckets the payload was partitioned into.
    pub buckets: usize,
    /// Payload bytes this rank pushed onto the wire (excluding resends).
    pub bytes_sent: u64,
    /// Transport reliability counters (resends, timeouts, corrupt frames).
    pub transport: TransportStats,
    /// Wall time of the collective, in microseconds.
    pub elapsed_us: u64,
}

/// One rank's endpoints of a formed ring at a given membership epoch.
#[derive(Debug)]
pub struct SocketRing {
    /// Membership epoch this ring was formed at (bumped by every elastic
    /// reconfiguration).
    pub epoch: u32,
    /// This rank's position in the *active* member list (its ring index).
    pub position: usize,
    /// Active world size.
    pub world: usize,
    cfg: RingConfig,
    to_succ: FrameConn,
    from_pred: FrameConn,
}

fn io_err(e: &std::io::Error, what: &str) -> DistError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            DistError::Timeout { what: what.into() }
        }
        _ => DistError::Io(format!("{what}: {e}")),
    }
}

/// Form a ring at `epoch` among `members` (listen ports on localhost, in
/// ring order). `position` indexes this rank within `members`; `listener`
/// is this rank's own accepting socket (bound once, reused across
/// epochs). Stale connections from earlier epochs are drained and
/// dropped.
///
/// The whole formation runs under [`RingConfig::formation_timeout`]
/// rather than one hop timeout: after a fault, a surviving member may
/// only discover the re-formation once its receive/ack retry budget on
/// the dead ring is exhausted, and a fast-failing peer must keep
/// listening until then.
///
/// # Errors
///
/// Returns a timeout when the successor never accepts or the predecessor
/// never dials in, or a protocol error on a handshake mismatch.
///
/// # Panics
///
/// Panics when `position` is out of range of `members`.
pub fn form_ring(
    listener: &TcpListener,
    members: &[u16],
    position: usize,
    epoch: u32,
    cfg: &RingConfig,
) -> Result<SocketRing, DistError> {
    let world = members.len();
    assert!(position < world, "position {position} out of {world}");
    let succ_port = members[(position + 1) % world];
    let deadline = Instant::now() + cfg.formation_timeout();

    // Dial the successor (retrying while it re-forms), sending the
    // epoch-tagged handshake.
    let to_succ = loop {
        match TcpStream::connect(("127.0.0.1", succ_port)) {
            Ok(mut s) => {
                let mut hello = Vec::with_capacity(12);
                hello.extend_from_slice(RING_MAGIC);
                hello.extend_from_slice(&epoch.to_le_bytes());
                hello.extend_from_slice(&u32::try_from(position).expect("small").to_le_bytes());
                s.write_all(&hello).map_err(|e| io_err(&e, "ring handshake write"))?;
                break s;
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err(&e, "connect to ring successor"));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    to_succ.set_nodelay(true).map_err(|e| io_err(&e, "nodelay"))?;

    // Accept the predecessor, discarding stale-epoch dials.
    listener.set_nonblocking(false).map_err(|e| io_err(&e, "listener mode"))?;
    let from_pred = loop {
        if Instant::now() >= deadline {
            return Err(DistError::Timeout { what: format!("ring predecessor at epoch {epoch}") });
        }
        // A short accept timeout via nonblocking + poll keeps the deadline
        // honest without platform-specific socket options.
        listener.set_nonblocking(true).map_err(|e| io_err(&e, "listener mode"))?;
        let accepted = listener.accept();
        listener.set_nonblocking(false).map_err(|e| io_err(&e, "listener mode"))?;
        let mut stream = match accepted {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) => return Err(io_err(&e, "accept ring predecessor")),
        };
        stream.set_read_timeout(Some(cfg.timeout)).map_err(|e| io_err(&e, "handshake timeout"))?;
        let mut hello = [0u8; 12];
        if stream.read_exact(&mut hello).is_err() {
            continue; // half-open stale dial; drop it
        }
        if &hello[0..4] != RING_MAGIC {
            continue;
        }
        let peer_epoch = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes"));
        if peer_epoch != epoch {
            continue; // stale epoch: a member that has not reconfigured yet
        }
        break stream;
    };

    Ok(SocketRing {
        epoch,
        position,
        world,
        cfg: *cfg,
        to_succ: FrameConn::new(to_succ, *cfg)?,
        from_pred: FrameConn::new(from_pred, *cfg)?,
    })
}

impl SocketRing {
    /// Arm send-path faults for the next collective (reset afterwards).
    pub fn arm_faults(&mut self, faults: SocketFaults) {
        self.to_succ.faults = faults;
    }

    /// Sum-AllReduce `data` in place across the ring.
    ///
    /// Bit-exact against [`reference_allreduce`] with the same world size
    /// and bucket plan. A world of one returns immediately.
    ///
    /// # Errors
    ///
    /// Structured [`DistError`]s on peer death, hop timeout or retry
    /// exhaustion; on error the buffer contents are unspecified and the
    /// ring should be considered broken (re-form before retrying).
    pub fn allreduce(&mut self, data: &mut [f32]) -> Result<RingStats, DistError> {
        let start = Instant::now();
        let d = self.world;
        let mut stats = RingStats {
            world: d,
            steps_per_bucket: if d > 1 { 2 * (d - 1) } else { 0 },
            ..RingStats::default()
        };
        if d <= 1 || data.is_empty() {
            stats.elapsed_us = instant_us(start);
            return Ok(stats);
        }
        let rank = self.position;
        for bucket in plan_buckets(data.len(), self.cfg.bucket_elems) {
            stats.buckets += 1;
            let buf = &mut data[bucket];
            let len = buf.len();
            let bounds: Vec<(usize, usize)> =
                (0..d).map(|c| (c * len / d, (c + 1) * len / d)).collect();
            // Reduce-scatter then all-gather, same chunk schedule as the
            // threaded ring.
            for s in 0..d - 1 {
                let send_c = (rank + d - s) % d;
                let recv_c = (rank + d - s - 1) % d;
                stats.bytes_sent += self.hop(s, &bounds, send_c, recv_c, buf, true)?;
            }
            for s in 0..d - 1 {
                let send_c = (rank + 1 + d - s) % d;
                let recv_c = (rank + d - s) % d;
                stats.bytes_sent += self.hop(d - 1 + s, &bounds, send_c, recv_c, buf, false)?;
            }
        }
        // Faults are one-collective-scoped; a clean next step starts clean.
        self.to_succ.faults = SocketFaults::default();
        stats.transport.absorb(&self.to_succ.stats);
        stats.transport.absorb(&self.from_pred.stats);
        self.to_succ.stats = TransportStats::default();
        self.from_pred.stats = TransportStats::default();
        stats.elapsed_us = instant_us(start);
        Ok(stats)
    }

    /// One pipeline hop: push the outgoing chunk, service the inbound
    /// side, then reap the acknowledgement. The send-before-receive order
    /// plus TCP buffering keeps the simultaneous ring deadlock-free.
    fn hop(
        &mut self,
        step: usize,
        bounds: &[(usize, usize)],
        send_chunk: usize,
        recv_chunk: usize,
        buf: &mut [f32],
        reduce: bool,
    ) -> Result<u64, DistError> {
        let (a, b) = bounds[send_chunk];
        let payload = encode_f32s(&buf[a..b]);
        let seq = self.to_succ.send_data(&payload)?;
        let incoming = self.from_pred.recv_data()?;
        let incoming = decode_f32s(&incoming).map_err(DistError::Protocol)?;
        let (ra, rb) = bounds[recv_chunk];
        if incoming.len() != rb - ra {
            return Err(DistError::Protocol(format!(
                "hop {step}: got {} elements for a {}-element chunk",
                incoming.len(),
                rb - ra
            )));
        }
        if reduce {
            for (dst, src) in buf[ra..rb].iter_mut().zip(&incoming) {
                *dst += src;
            }
        } else {
            buf[ra..rb].copy_from_slice(&incoming);
        }
        self.to_succ.await_ack(seq, &payload, step)?;
        Ok(payload.len() as u64)
    }
}

fn instant_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Serial lockstep simulation of the ring: applies the exact per-step
/// chunk schedule and accumulation order of [`SocketRing::allreduce`] (and
/// the threaded ring) to all buffers at once, giving the bit-exact
/// expected result of the distributed collective.
///
/// # Panics
///
/// Panics when buffers have mismatched lengths or `buffers` is empty.
pub fn reference_allreduce(buffers: &mut [Vec<f32>], bucket_elems: usize) {
    let d = buffers.len();
    assert!(d > 0, "at least one rank required");
    let len = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == len), "buffer lengths must match");
    if d == 1 || len == 0 {
        return;
    }
    for bucket in plan_buckets(len, bucket_elems) {
        let blen = bucket.len();
        let bounds: Vec<(usize, usize)> =
            (0..d).map(|c| (c * blen / d, (c + 1) * blen / d)).collect();
        for s in 0..d - 1 {
            // Snapshot every rank's outgoing chunk from pre-step state,
            // then apply — the lockstep the parallel ring executes.
            let payloads: Vec<Vec<f32>> = (0..d)
                .map(|rank| {
                    let (a, b) = bounds[(rank + d - s) % d];
                    buffers[rank][bucket.start + a..bucket.start + b].to_vec()
                })
                .collect();
            for rank in 0..d {
                let from = (rank + d - 1) % d;
                let (ra, rb) = bounds[(rank + d - s - 1) % d];
                for (dst, src) in buffers[rank][bucket.start + ra..bucket.start + rb]
                    .iter_mut()
                    .zip(&payloads[from])
                {
                    *dst += src;
                }
            }
        }
        for s in 0..d - 1 {
            let payloads: Vec<Vec<f32>> = (0..d)
                .map(|rank| {
                    let (a, b) = bounds[(rank + 1 + d - s) % d];
                    buffers[rank][bucket.start + a..bucket.start + b].to_vec()
                })
                .collect();
            for rank in 0..d {
                let from = (rank + d - 1) % d;
                let (ra, rb) = bounds[(rank + d - s) % d];
                buffers[rank][bucket.start + ra..bucket.start + rb]
                    .copy_from_slice(&payloads[from]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::ring_allreduce;

    #[test]
    fn reference_matches_threaded_ring_bitwise() {
        // Non-associative f32 sums: agreement must be on bits, not within
        // epsilon. One bucket spanning the buffer mirrors the threaded
        // ring exactly.
        for d in [2usize, 3, 4, 8] {
            let len = 37;
            let base: Vec<Vec<f32>> = (0..d)
                .map(|r| (0..len).map(|i| ((r * len + i) as f32).sin() * 1.0e3).collect())
                .collect();
            let mut threaded = base.clone();
            ring_allreduce(&mut threaded);
            let mut reference = base.clone();
            reference_allreduce(&mut reference, len.max(1));
            for (rank, (t, r)) in threaded.iter().zip(&reference).enumerate() {
                for (i, (a, b)) in t.iter().zip(r.iter()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "d={d} rank={rank} elem {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn reference_bucketing_keeps_ranks_in_agreement() {
        // Bucketed chunk bounds differ from whole-buffer bounds, so the
        // *values* may differ in the last bits between plans — but within
        // one plan every rank must end bit-identical, and the result must
        // be the correct sum to f32 accuracy.
        let d = 4;
        let len = 101;
        let base: Vec<Vec<f32>> =
            (0..d).map(|r| (0..len).map(|i| ((r + i * 7) as f32).cos()).collect()).collect();
        let expected: Vec<f32> = (0..len).map(|i| base.iter().map(|b| b[i]).sum::<f32>()).collect();
        let mut bucketed = base.clone();
        reference_allreduce(&mut bucketed, 13);
        for rank in 1..d {
            for (i, (a, b)) in bucketed[0].iter().zip(&bucketed[rank]).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "rank {rank} elem {i} disagrees");
            }
        }
        for (got, want) in bucketed[0].iter().zip(&expected) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }
}
