//! Reliable framed transport over TCP for the socket ring.
//!
//! Wire format of one frame (all integers little-endian):
//!
//! ```text
//! [ payload_len: u32 ][ tag: u8 ][ seq: u64 ][ crc: u64 ][ payload ... ]
//! ```
//!
//! `crc` is the FNV-1a checksum of the payload
//! ([`bertscope_tensor::bucket::checksum64`]). DATA frames are positively
//! acknowledged: the receiver replies ACK on a clean frame and NACK on a
//! checksum mismatch, and the sender retransmits on NACK or
//! acknowledgement timeout, a bounded number of times with exponential
//! backoff ([`RingConfig::backoff_for`]). Duplicate DATA frames (a resend
//! racing a lost ACK) are detected by sequence number, re-acknowledged and
//! dropped. The result: the fault classes `FaultPlan` injects on the send
//! path — dropped writes, delayed writes, corrupted payloads — are
//! *absorbed* by the protocol and show up only as retry/timeout counts in
//! [`TransportStats`], while a genuinely dead peer degrades into a
//! structured [`DistError`] within the configured deadline.

use crate::allreduce::RingConfig;
use crate::proc::DistError;
use bertscope_tensor::bucket::checksum64;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Frame tags.
const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;
const TAG_NACK: u8 = 2;

/// Largest payload the receiver will accept (a corrupted length prefix
/// must not trigger a huge allocation).
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Deterministic send-path fault state, armed per training step from the
/// rank's [`FaultPlan`](bertscope_tensor::FaultPlan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketFaults {
    /// Silently skip the next `drop_sends` DATA writes (the frame is
    /// "sent" as far as the sender's protocol state is concerned, but
    /// never hits the wire).
    pub drop_sends: u32,
    /// Corrupt the payload of the next `corrupt_sends` DATA writes after
    /// their checksum is computed.
    pub corrupt_sends: u32,
    /// Sleep this long before every DATA write (a congested link).
    pub delay_send_micros: u64,
}

impl SocketFaults {
    /// Whether any fault is still armed.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.drop_sends > 0 || self.corrupt_sends > 0 || self.delay_send_micros > 0
    }
}

/// Counters of the reliability machinery's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// DATA frames written to the wire (including retransmissions).
    pub frames_sent: u64,
    /// Retransmissions performed (NACK- or timeout-triggered).
    pub retries: u64,
    /// Acknowledgement waits that expired and were absorbed by a resend.
    pub timeouts: u64,
    /// Frames received with a checksum mismatch (NACKed).
    pub corrupt_frames: u64,
    /// Duplicate DATA frames dropped (resend raced a lost ACK).
    pub duplicates: u64,
}

impl TransportStats {
    /// Accumulate another transport's counters into this one.
    pub fn absorb(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.corrupt_frames += other.corrupt_frames;
        self.duplicates += other.duplicates;
    }
}

/// One reliable, sequenced frame connection over a TCP stream.
///
/// A ring rank owns two: one toward its successor (it sends DATA, reads
/// ACKs) and one from its predecessor (it reads DATA, sends ACKs). The
/// same type serves both roles; the sequence counters are per-direction.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    cfg: RingConfig,
    next_send_seq: u64,
    next_recv_seq: u64,
    /// Armed send-path faults (consumed as they fire).
    pub faults: SocketFaults,
    /// Reliability counters for this connection.
    pub stats: TransportStats,
}

fn write_frame(
    stream: &mut TcpStream,
    tag: u8,
    seq: u64,
    crc: u64,
    payload: &[u8],
) -> Result<(), DistError> {
    let mut header = Vec::with_capacity(21 + payload.len());
    header.extend_from_slice(
        &u32::try_from(payload.len())
            .map_err(|_| {
                DistError::Protocol(format!(
                    "payload of {} bytes exceeds the frame format",
                    payload.len()
                ))
            })?
            .to_le_bytes(),
    );
    header.push(tag);
    header.extend_from_slice(&seq.to_le_bytes());
    header.extend_from_slice(&crc.to_le_bytes());
    header.extend_from_slice(payload);
    stream.write_all(&header)?;
    stream.flush()?;
    Ok(())
}

/// A decoded frame.
struct Frame {
    tag: u8,
    seq: u64,
    crc: u64,
    payload: Vec<u8>,
}

fn read_exact_timeout(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), DistError> {
    stream.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            DistError::Timeout { what: "frame from ring peer".into() }
        }
        std::io::ErrorKind::UnexpectedEof => DistError::Io("ring peer hung up".into()),
        _ => DistError::Io(e.to_string()),
    })
}

fn read_frame(stream: &mut TcpStream) -> Result<Frame, DistError> {
    let mut head = [0u8; 21];
    read_exact_timeout(stream, &mut head)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    if len > MAX_PAYLOAD {
        return Err(DistError::Protocol(format!("frame advertises {len} bytes")));
    }
    let tag = head[4];
    let seq = u64::from_le_bytes(head[5..13].try_into().expect("8 bytes"));
    let crc = u64::from_le_bytes(head[13..21].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len as usize];
    read_exact_timeout(stream, &mut payload)?;
    Ok(Frame { tag, seq, crc, payload })
}

impl FrameConn {
    /// Wrap a connected stream. The per-hop timeout from `cfg` becomes the
    /// socket read timeout.
    ///
    /// # Errors
    ///
    /// Returns an error when the socket options cannot be set.
    pub fn new(stream: TcpStream, cfg: RingConfig) -> Result<FrameConn, DistError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.timeout))?;
        Ok(FrameConn {
            stream,
            cfg,
            next_send_seq: 0,
            next_recv_seq: 0,
            faults: SocketFaults::default(),
            stats: TransportStats::default(),
        })
    }

    /// Fire-and-forget write of the next DATA frame (no acknowledgement
    /// wait). Pair with [`FrameConn::await_ack`] — splitting the two is
    /// what keeps a ring of simultaneous senders deadlock-free: every rank
    /// first pushes its frame into the socket buffer, then services its
    /// *inbound* side (which produces the ACKs), then reaps its own ACK.
    ///
    /// Armed [`SocketFaults`] fire here: a dropped write never reaches the
    /// wire, a corrupted write flips payload bits after the checksum, a
    /// delayed write sleeps first.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the peer's socket is gone.
    pub fn send_data(&mut self, payload: &[u8]) -> Result<u64, DistError> {
        let seq = self.next_send_seq;
        self.next_send_seq += 1;
        self.write_data_frame(seq, payload)?;
        Ok(seq)
    }

    /// (Re)write the DATA frame with the given sequence number, applying
    /// armed faults.
    fn write_data_frame(&mut self, seq: u64, payload: &[u8]) -> Result<(), DistError> {
        if self.faults.delay_send_micros > 0 {
            std::thread::sleep(Duration::from_micros(self.faults.delay_send_micros));
        }
        if self.faults.drop_sends > 0 {
            self.faults.drop_sends -= 1;
            // The frame vanishes on the "wire"; the ack wait will expire
            // and the retransmission path repairs the loss.
            return Ok(());
        }
        let crc = checksum64(payload);
        if self.faults.corrupt_sends > 0 {
            self.faults.corrupt_sends -= 1;
            let mut bad = payload.to_vec();
            if bad.is_empty() {
                bad.push(0xFF);
            } else {
                let mid = bad.len() / 2;
                bad[mid] ^= 0x40;
            }
            self.stats.frames_sent += 1;
            return write_frame(&mut self.stream, TAG_DATA, seq, crc, &bad);
        }
        self.stats.frames_sent += 1;
        write_frame(&mut self.stream, TAG_DATA, seq, crc, payload)
    }

    /// Wait for the acknowledgement of `seq`, retransmitting `payload` on
    /// NACK or timeout up to the configured retry budget.
    ///
    /// # Errors
    ///
    /// [`DistError::RetriesExhausted`] when the budget runs out, or an I/O
    /// error when the peer is gone. `step` only labels the error.
    pub fn await_ack(&mut self, seq: u64, payload: &[u8], step: usize) -> Result<(), DistError> {
        let mut attempt: u32 = 0;
        loop {
            match read_frame(&mut self.stream) {
                Ok(f) if f.tag == TAG_ACK && f.seq == seq => return Ok(()),
                // A stale ACK or NACK (for an earlier, already-satisfied
                // seq — e.g. our resend crossed the original ACK in
                // flight, or a corrupted duplicate of an already-delivered
                // frame drew a NACK). Both are about history, not `seq`.
                Ok(f) if (f.tag == TAG_ACK || f.tag == TAG_NACK) && f.seq < seq => {}
                Ok(f) if f.tag == TAG_NACK && f.seq == seq => {
                    attempt += 1;
                    if attempt > self.cfg.max_retries {
                        return Err(DistError::RetriesExhausted { step, attempts: attempt + 1 });
                    }
                    self.stats.retries += 1;
                    std::thread::sleep(self.cfg.backoff_for(attempt - 1));
                    self.write_data_frame(seq, payload)?;
                }
                Ok(f) => {
                    return Err(DistError::Protocol(format!(
                        "unexpected frame tag {} seq {} while awaiting ack {seq}",
                        f.tag, f.seq
                    )));
                }
                Err(DistError::Timeout { .. }) => {
                    attempt += 1;
                    if attempt > self.cfg.max_retries {
                        return Err(DistError::RetriesExhausted { step, attempts: attempt + 1 });
                    }
                    self.stats.timeouts += 1;
                    self.stats.retries += 1;
                    std::thread::sleep(self.cfg.backoff_for(attempt - 1));
                    self.write_data_frame(seq, payload)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Receive the next in-order DATA payload, acknowledging it.
    /// Checksum-mismatched frames are NACKed (the sender resends),
    /// duplicates are re-ACKed and dropped.
    ///
    /// The receive deadline spans the sender's whole retry budget
    /// (`(max_retries + 1) x timeout`): a frame lost on the wire only
    /// reaches us via a timeout-triggered resend, which lands *after* a
    /// single hop timeout has expired on our side.
    ///
    /// # Errors
    ///
    /// [`DistError::Timeout`] when no clean frame arrives within the
    /// sender's full retry window, or an I/O error when the peer is gone.
    pub fn recv_data(&mut self) -> Result<Vec<u8>, DistError> {
        let mut waits: u32 = 0;
        loop {
            let f = match read_frame(&mut self.stream) {
                Ok(f) => f,
                Err(DistError::Timeout { .. }) if waits < self.cfg.max_retries => {
                    waits += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if f.tag != TAG_DATA {
                return Err(DistError::Protocol(format!(
                    "unexpected frame tag {} while awaiting data",
                    f.tag
                )));
            }
            if f.seq < self.next_recv_seq {
                // Duplicate of an already-delivered frame: its ACK was
                // lost or late. Re-ACK so the sender can move on — before
                // the checksum check, so a *corrupted* duplicate is
                // re-ACKed rather than NACKed (the clean copy was already
                // delivered; a NACK would demand a pointless resend).
                self.stats.duplicates += 1;
                write_frame(&mut self.stream, TAG_ACK, f.seq, 0, &[])?;
                continue;
            }
            if checksum64(&f.payload) != f.crc {
                self.stats.corrupt_frames += 1;
                write_frame(&mut self.stream, TAG_NACK, f.seq, 0, &[])?;
                continue;
            }
            if f.seq > self.next_recv_seq {
                return Err(DistError::Protocol(format!(
                    "sequence gap: got {} expected {}",
                    f.seq, self.next_recv_seq
                )));
            }
            self.next_recv_seq += 1;
            write_frame(&mut self.stream, TAG_ACK, f.seq, 0, &[])?;
            return Ok(f.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair(cfg: RingConfig) -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (server, _) = listener.accept().expect("accept");
        let client = client.join().expect("join");
        (
            FrameConn::new(server, cfg).expect("server conn"),
            FrameConn::new(client, cfg).expect("client conn"),
        )
    }

    fn fast_cfg() -> RingConfig {
        RingConfig {
            timeout: Duration::from_millis(300),
            max_retries: 3,
            backoff: Duration::from_millis(5),
            ..RingConfig::default()
        }
    }

    /// Drive one reliable exchange: `a` sends `payload` to `b`, `b`
    /// receives (on its own thread, so ACKs flow while `a` waits).
    fn exchange(a: &mut FrameConn, b: &mut FrameConn, payload: &[u8]) -> Vec<u8> {
        let seq = a.send_data(payload).expect("send");
        thread::scope(|s| {
            let receiver = s.spawn(|| b.recv_data().expect("recv"));
            a.await_ack(seq, payload, 0).expect("ack");
            receiver.join().expect("join")
        })
    }

    #[test]
    fn clean_frames_roundtrip() {
        let (mut a, mut b) = pair(fast_cfg());
        let got = exchange(&mut a, &mut b, b"hello ring");
        assert_eq!(got, b"hello ring");
        assert_eq!(a.stats.retries, 0);
        assert_eq!(b.stats.corrupt_frames, 0);
        // Sequences advance.
        let got = exchange(&mut a, &mut b, b"second");
        assert_eq!(got, b"second");
        assert_eq!(a.stats.frames_sent, 2);
    }

    #[test]
    fn dropped_write_is_retransmitted() {
        let (mut a, mut b) = pair(fast_cfg());
        a.faults.drop_sends = 1;
        let got = exchange(&mut a, &mut b, b"survives a loss");
        assert_eq!(got, b"survives a loss");
        assert!(a.stats.retries >= 1, "loss must be repaired by a resend");
        assert!(a.stats.timeouts >= 1, "the repair is timeout-triggered");
    }

    #[test]
    fn corrupted_write_is_nacked_and_resent() {
        let (mut a, mut b) = pair(fast_cfg());
        a.faults.corrupt_sends = 1;
        let got = exchange(&mut a, &mut b, b"bitflip on the wire");
        assert_eq!(got, b"bitflip on the wire");
        assert!(a.stats.retries >= 1);
        assert_eq!(b.stats.corrupt_frames, 1, "receiver must detect the flip");
    }

    #[test]
    fn delayed_write_still_arrives() {
        let (mut a, mut b) = pair(fast_cfg());
        a.faults.delay_send_micros = 20_000;
        let got = exchange(&mut a, &mut b, b"slow but sure");
        assert_eq!(got, b"slow but sure");
    }

    #[test]
    fn persistent_loss_exhausts_the_retry_budget() {
        let (mut a, b) = pair(fast_cfg());
        // Drop every attempt: initial + all retries.
        a.faults.drop_sends = 10;
        let payload = b"never arrives";
        let seq = a.send_data(payload).expect("send");
        let err = a.await_ack(seq, payload, 7).expect_err("must exhaust");
        assert!(matches!(err, DistError::RetriesExhausted { step: 7, .. }), "{err}");
        drop(b);
    }

    #[test]
    fn dead_peer_is_an_io_error_not_a_hang() {
        let (mut a, b) = pair(fast_cfg());
        drop(b);
        let start = std::time::Instant::now();
        let err = a.recv_data().expect_err("peer is gone");
        assert!(matches!(err, DistError::Io(_)), "{err}");
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
