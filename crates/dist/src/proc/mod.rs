//! `dist::proc` — a real multi-process elastic data-parallel runtime.
//!
//! Everything below the analytic models in this crate runs inside one
//! process; this module is the step beyond: N *rank* workers (OS threads
//! for cheap tests, or genuinely separate processes re-exec'd from the
//! same binary) each train a full replica on the `bertscope-train`
//! substrate and exchange gradients over local TCP sockets via a
//! bucketed ring AllReduce. A supervisor process holds the control
//! plane: it launches ranks, distributes ring membership, listens to
//! heartbeats, and when a rank dies mid-step drives one of two recovery
//! modes:
//!
//! * **restart** — every rank is shut down and relaunched from the last
//!   bit-exact [`TrainCheckpoint`](bertscope_train::TrainCheckpoint);
//!   training resumes exactly where the interrupted run would have been;
//! * **elastic** — the survivors re-form the ring at `N-1`, gradient
//!   averaging is rescaled to the new world size, and training continues
//!   with a logged degradation event.
//!
//! Failures are structured, never hangs: every socket hop carries a
//! receive deadline, lost or corrupted frames are retransmitted a bounded
//! number of times with exponential backoff, and exhaustion surfaces as a
//! [`DistError`] that the trainer converts into a retryable
//! window-close — the seam the supervisor's recovery drives through.
//!
//! The module layout mirrors the runtime's layers:
//!
//! * [`transport`] — length-prefixed, checksummed, acknowledged frames
//!   over TCP, with deterministic socket-fault injection (drop / delay /
//!   corrupt) from the shared [`FaultPlan`](bertscope_tensor::FaultPlan);
//! * [`ring`] — the socket ring AllReduce (bit-exact against a serial
//!   reference simulation) plus epoch-tagged ring formation;
//! * [`control`] — the supervisor<->worker message vocabulary;
//! * [`worker`] — the per-rank training loop and its `GradSync` bridge
//!   into the trainer;
//! * [`supervisor`] — the launcher, failure detector and recovery driver,
//!   with interchangeable thread and process backends.

pub mod control;
pub mod ring;
pub mod supervisor;
pub mod transport;
pub mod worker;

pub use control::ControlMsg;
pub use ring::{reference_allreduce, RingStats, SocketRing};
pub use supervisor::{
    run_process_cluster, run_thread_cluster, ClusterConfig, ClusterReport, DegradationEvent,
    RecoveryMode,
};
pub use transport::{SocketFaults, TransportStats};
pub use worker::{worker_main, WorkerConfig, WorkerReport};

use std::fmt;

/// A structured failure of the multi-process runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// An OS-level socket or file operation failed.
    Io(String),
    /// A peer spoke something other than the expected protocol.
    Protocol(String),
    /// A bounded wait expired (handshake, hop receive, control read).
    Timeout {
        /// What the runtime was waiting for.
        what: String,
    },
    /// A hop exhausted its retransmission budget.
    RetriesExhausted {
        /// Ring pipeline step of the final failure.
        step: usize,
        /// Attempts made (initial send + resends).
        attempts: u32,
    },
    /// This rank was killed by the fault plan (thread backend; the
    /// process backend exits abruptly instead).
    Killed {
        /// The dead rank.
        rank: usize,
    },
    /// A worker failed for a reason the supervisor could not recover.
    WorkerFailed {
        /// The failed rank.
        rank: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// The training substrate itself failed (non-finite loss under an
    /// abort policy, checkpoint mismatch, ...).
    Train(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(msg) => write!(f, "io error: {msg}"),
            DistError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DistError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            DistError::RetriesExhausted { step, attempts } => {
                write!(f, "hop at ring step {step} failed after {attempts} attempts")
            }
            DistError::Killed { rank } => write!(f, "rank {rank} killed by fault plan"),
            DistError::WorkerFailed { rank, reason } => {
                write!(f, "rank {rank} failed: {reason}")
            }
            DistError::Train(msg) => write!(f, "training error: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e.to_string())
    }
}

impl From<bertscope_train::TrainError> for DistError {
    fn from(e: bertscope_train::TrainError) -> Self {
        DistError::Train(e.to_string())
    }
}
