//! Thread-backend cluster tests: clean convergence with replica
//! agreement, both fault-recovery modes (elastic shrink and bit-exact
//! restart-from-checkpoint), a kill-at-every-step property sweep, and
//! hazard analysis of per-rank traced operator streams.

use bertscope_check::{check_schedule, hazard, DepGraph, Schedule, Severity};
use bertscope_dist::{run_thread_cluster, ClusterConfig, RecoveryMode};
use bertscope_tensor::{FaultKind, FaultPlan, OpKind};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call (no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bertscope-proc-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn base_config(world: usize, updates: u64, tag: &str) -> ClusterConfig {
    ClusterConfig::new(world, updates, scratch(tag))
}

#[test]
fn clean_run_converges_with_agreeing_replicas() {
    let cfg = base_config(3, 2, "clean");
    let report = run_thread_cluster(&cfg).expect("clean cluster");
    assert_eq!(report.updates, 2);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.restarts, 0);
    assert!(report.events.is_empty(), "{:?}", report.events);
    assert_ne!(report.weights_hash, 0);
    let ckpt = report.final_checkpoint.expect("a checkpoint must have been written");
    assert!(ckpt.exists(), "checkpoint {} must exist", ckpt.display());
    assert_eq!(report.worker_reports.len(), 3);
    for w in &report.worker_reports {
        assert_eq!(w.updates, 2, "rank {}", w.orig_rank);
        assert_eq!(w.weights_hash, report.weights_hash, "rank {}", w.orig_rank);
        assert!(
            !w.ring_stats.is_empty(),
            "rank {} must have driven collectives through the ring",
            w.orig_rank
        );
    }
}

#[test]
fn elastic_shrink_survives_a_mid_window_kill() {
    let mut cfg = base_config(3, 3, "elastic");
    cfg.recovery = RecoveryMode::Elastic;
    // Accumulation 2: updates complete at micro-steps 2/4/6. Kill rank 1
    // at micro-step 3 — mid-window of the second update.
    cfg.faults = FaultPlan::new().with(3, FaultKind::KillProcess { rank: 1 });
    let report = run_thread_cluster(&cfg).expect("elastic recovery");
    assert_eq!(report.updates, 3, "training must still reach the target");
    assert_eq!(report.final_world, 2, "survivors continue at N-1");
    assert_eq!(report.restarts, 0, "elastic mode never restarts");
    assert_eq!(report.events.len(), 1, "{:?}", report.events);
    let ev = &report.events[0];
    assert_eq!(ev.dead_rank, 1);
    assert!(ev.action.contains("elastic-shrink to world 2"), "{}", ev.action);
    assert!(report.epochs >= 2, "the ring must have re-formed (epochs {})", report.epochs);
    // The killed rank produced no report; both survivors agree.
    assert_eq!(report.worker_reports.len(), 2);
    for w in &report.worker_reports {
        assert_ne!(w.orig_rank, 1);
        assert_eq!(w.weights_hash, report.weights_hash);
    }
}

/// Regression: a second fault after an elastic shrink. The first death's
/// syncfails from the survivors are stale responses to an incident the
/// supervisor already answered; if they triggered another membership
/// broadcast, every survivor would consume that stale membership first on
/// the *next* failure and try to form a ring containing the newly-dead
/// rank — cascading a recoverable second kill into a lost cluster.
#[test]
fn elastic_recovers_from_two_sequential_kills() {
    let mut cfg = base_config(4, 3, "elastic-twice");
    cfg.recovery = RecoveryMode::Elastic;
    // Accumulation 2: kills land mid-window of updates 2 and 3.
    cfg.faults = FaultPlan::new()
        .with(3, FaultKind::KillProcess { rank: 3 })
        .with(5, FaultKind::KillProcess { rank: 1 });
    let report = run_thread_cluster(&cfg).expect("second elastic recovery");
    assert_eq!(report.updates, 3);
    assert_eq!(report.final_world, 2, "4 -> 3 -> 2 across the two incidents");
    assert_eq!(report.restarts, 0);
    assert_eq!(report.events.len(), 2, "{:?}", report.events);
    assert_eq!(report.events[0].dead_rank, 3);
    assert_eq!(report.events[1].dead_rank, 1);
    assert_eq!(report.worker_reports.len(), 2);
    for w in &report.worker_reports {
        assert!(w.orig_rank == 0 || w.orig_rank == 2);
        assert_eq!(w.weights_hash, report.weights_hash, "rank {}", w.orig_rank);
    }
}

/// Regression: two kills aimed at the *same* rank at different steps
/// under restart recovery. Scrubbing must remove only the kill that
/// fired, so the relaunched worker still walks into the later one — two
/// full restarts, still bit-exact.
#[test]
fn restart_survives_repeated_kills_of_one_rank() {
    let baseline = run_thread_cluster(&base_config(2, 3, "rekill-base")).expect("baseline");
    let mut cfg = base_config(2, 3, "rekill");
    cfg.recovery = RecoveryMode::Restart;
    cfg.faults = FaultPlan::new()
        .with(3, FaultKind::KillProcess { rank: 1 })
        .with(5, FaultKind::KillProcess { rank: 1 });
    let report = run_thread_cluster(&cfg).expect("both kills must be recovered");
    assert_eq!(report.updates, 3);
    assert_eq!(report.restarts, 2, "each kill must trigger its own restart");
    assert_eq!(report.events.len(), 2, "{:?}", report.events);
    assert_eq!(report.weights_hash, baseline.weights_hash, "still bit-exact after two restarts");
}

#[test]
fn restart_recovery_is_bit_exact_with_an_unfaulted_run() {
    let baseline = run_thread_cluster(&base_config(3, 3, "restart-base")).expect("baseline");
    assert_eq!(baseline.updates, 3);

    let mut cfg = base_config(3, 3, "restart-faulted");
    cfg.recovery = RecoveryMode::Restart;
    // Kill rank 0 at micro-step 4 — after the first checkpoint (update 1,
    // micro-step 2) exists, at the close of the second window.
    cfg.faults = FaultPlan::new().with(4, FaultKind::KillProcess { rank: 0 });
    let report = run_thread_cluster(&cfg).expect("restart recovery");
    assert_eq!(report.updates, 3);
    assert_eq!(report.final_world, 3, "restart relaunches the full world");
    assert_eq!(report.restarts, 1);
    assert_eq!(report.events.len(), 1, "{:?}", report.events);
    assert!(report.events[0].action.contains("restart from"), "{}", report.events[0].action);
    // The heart of the claim: deterministic per-(seed, rank, step) batches
    // plus a bit-exact checkpoint make the recovered run indistinguishable
    // from one that never faulted.
    assert_eq!(
        report.weights_hash, baseline.weights_hash,
        "restart-from-checkpoint must be bit-exact"
    );
}

/// Kill-at-every-step sweep (satellite: proptest-style coverage): for
/// every micro-step k of a world-2 run and both recovery modes, the
/// cluster must complete — bit-exact under restart, shrunk-to-one with a
/// logged degradation under elastic. The sweep is exhaustive rather than
/// sampled: the space (4 steps x 2 modes) is small enough to enumerate,
/// which is strictly stronger than proptest sampling.
#[test]
fn kill_at_every_step_recovers_under_both_modes() {
    let baseline = run_thread_cluster(&base_config(2, 2, "sweep-base")).expect("baseline");
    for k in 1..=4u64 {
        for restart in [true, false] {
            let tag = format!("sweep-k{k}-{}", if restart { "restart" } else { "elastic" });
            let mut cfg = base_config(2, 2, &tag);
            cfg.recovery = if restart { RecoveryMode::Restart } else { RecoveryMode::Elastic };
            cfg.faults = FaultPlan::new().with(k, FaultKind::KillProcess { rank: 1 });
            let report = run_thread_cluster(&cfg)
                .unwrap_or_else(|e| panic!("kill at step {k} ({tag}): {e}"));
            assert_eq!(report.updates, 2, "{tag}");
            if restart {
                assert_eq!(report.final_world, 2, "{tag}");
                assert_eq!(report.restarts, 1, "{tag}");
                assert_eq!(
                    report.weights_hash, baseline.weights_hash,
                    "{tag}: restart must be bit-exact with the unfaulted run"
                );
            } else {
                assert_eq!(report.final_world, 1, "{tag}");
                assert_eq!(report.events.len(), 1, "{tag}: {:?}", report.events);
                assert_eq!(report.events[0].dead_rank, 1, "{tag}");
            }
        }
    }
}

#[test]
fn socket_faults_are_absorbed_without_recovery_events() {
    let mut cfg = base_config(2, 2, "sockfaults");
    // One dropped and one corrupted frame from rank 0, plus a straggler
    // delay on rank 1 — all absorbed by the transport protocol.
    cfg.faults = FaultPlan::new()
        .with(2, FaultKind::DropSend { rank: 0, count: 1 })
        .with(2, FaultKind::CorruptPayload { rank: 0, count: 1 })
        .with(4, FaultKind::DelaySend { rank: 1, micros: 2_000 });
    let baseline = run_thread_cluster(&base_config(2, 2, "sockfaults-base")).expect("baseline");
    let report = run_thread_cluster(&cfg).expect("faults must be absorbed");
    assert_eq!(report.updates, 2);
    assert_eq!(report.final_world, 2);
    assert!(report.events.is_empty(), "{:?}", report.events);
    assert_eq!(
        report.weights_hash, baseline.weights_hash,
        "absorbed transport faults must not perturb training"
    );
    let retries: u64 =
        report.worker_reports.iter().flat_map(|w| &w.ring_stats).map(|s| s.transport.retries).sum();
    assert!(retries >= 1, "the dropped/corrupted frames must show up as retries");
}

#[test]
fn traced_rank_streams_pass_hazard_analysis() {
    let mut cfg = base_config(2, 1, "trace");
    let trace_dir = scratch("trace-out");
    cfg.trace_dir = Some(trace_dir.clone());
    let report = run_thread_cluster(&cfg).expect("traced cluster");
    assert_eq!(report.updates, 1);

    for rank in 0..2 {
        let path = trace_dir.join(format!("rank{rank}.trace"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", path.display()));
        let ops = bertscope_tensor::tracefile::parse_records(&text).expect("parse trace");
        assert!(!ops.is_empty(), "rank {rank} trace is empty");
        assert!(
            ops.iter().any(|o| o.kind == OpKind::Comm && o.name.starts_with("proc.allreduce")),
            "rank {rank} stream must contain the ring AllReduce"
        );

        // The H-series analyses the racecheck CLI runs: program-order and
        // ASAP schedules against the dependence DAG, plus the
        // communication contract (H005: optimizer reads only
        // globally-reduced gradients; H004: cross-phase edges respect
        // phase barriers).
        let graph = DepGraph::build(&ops);
        let mut findings =
            check_schedule(&ops, &graph, &Schedule::program_order(ops.len()), "program");
        findings.extend(check_schedule(&ops, &graph, &Schedule::asap(&graph), "asap"));
        findings.extend(hazard::check_comm_ordering(&ops));
        let errors: Vec<_> = findings.iter().filter(|f| f.severity == Severity::Error).collect();
        assert!(errors.is_empty(), "rank {rank} stream has hazard errors: {errors:?}");
    }
}

/// The tentpole property of backward/AllReduce overlap: per-bucket
/// collectives fired mid-backward must leave the replicas bit-identical
/// to the eager aggregate sync, expose per-update wait measurements, and
/// emit traces the hazard rules (including H005's
/// AllReduce-before-optimizer contract) accept.
#[test]
fn overlapped_close_is_bit_identical_and_hazard_clean() {
    // Small buckets so the tiny model's gradients span several of them;
    // both runs use the same plan so the reduction order matches.
    let mut eager = base_config(2, 2, "overlap-eager");
    eager.ring.bucket_elems = 4096;
    let base = run_thread_cluster(&eager).expect("eager cluster");

    let mut ov = base_config(2, 2, "overlap-on");
    ov.overlap = true;
    ov.ring.bucket_elems = 4096;
    let trace_dir = scratch("overlap-trace");
    ov.trace_dir = Some(trace_dir.clone());
    let report = run_thread_cluster(&ov).expect("overlapped cluster");

    assert_eq!(report.updates, 2);
    assert_eq!(
        report.weights_hash, base.weights_hash,
        "overlapped training must be bit-identical to the eager sync"
    );
    for w in &report.worker_reports {
        assert_eq!(
            w.exposed_comm_us.len(),
            2,
            "rank {}: one exposed-time sample per overlapped update",
            w.orig_rank
        );
        let eager_buckets: usize = base
            .worker_reports
            .iter()
            .find(|b| b.orig_rank == w.orig_rank)
            .expect("matching eager rank")
            .ring_stats
            .iter()
            .map(|s| s.buckets)
            .sum();
        assert_eq!(
            w.ring_stats.len(),
            eager_buckets,
            "rank {}: one collective per gradient bucket",
            w.orig_rank
        );
        assert!(
            w.ring_stats.iter().all(|s| s.buckets == 1),
            "rank {}: overlapped collectives carry single buckets",
            w.orig_rank
        );
    }

    for rank in 0..2 {
        let path = trace_dir.join(format!("rank{rank}.trace"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", path.display()));
        let ops = bertscope_tensor::tracefile::parse_records(&text).expect("parse trace");
        let bucket_comms = ops
            .iter()
            .filter(|o| o.kind == OpKind::Comm && o.name.starts_with("proc.allreduce.bucket"))
            .count();
        assert!(bucket_comms > 1, "rank {rank}: expected per-bucket Comm ops, got {bucket_comms}");
        let graph = DepGraph::build(&ops);
        let mut findings =
            check_schedule(&ops, &graph, &Schedule::program_order(ops.len()), "program");
        findings.extend(check_schedule(&ops, &graph, &Schedule::asap(&graph), "asap"));
        findings.extend(hazard::check_comm_ordering(&ops));
        let errors: Vec<_> = findings.iter().filter(|f| f.severity == Severity::Error).collect();
        assert!(errors.is_empty(), "rank {rank} overlapped stream has hazard errors: {errors:?}");
    }
}
