//! Socket-ring AllReduce correctness across real threads and real TCP
//! sockets — bit-exact against the serial reference simulation, with and
//! without injected socket faults.

use bertscope_dist::proc::ring::{form_ring, reference_allreduce, RingStats};
use bertscope_dist::proc::transport::SocketFaults;
use bertscope_dist::RingConfig;
use std::net::TcpListener;
use std::time::Duration;

fn test_cfg(bucket_elems: usize) -> RingConfig {
    RingConfig {
        timeout: Duration::from_millis(500),
        max_retries: 4,
        backoff: Duration::from_millis(5),
        bucket_elems,
        ..RingConfig::default()
    }
}

/// Deterministic, rank-distinct, non-trivial payloads (values whose f32
/// sums are order-sensitive, so bit-exactness is a real claim).
fn payload(rank: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| {
            let x = (i as f32).mul_add(0.317_77, rank as f32 * 0.709_93);
            (x.sin() * 1_000.0) + 1.0e-4 * (i as f32)
        })
        .collect()
}

/// Run a `world`-rank socket ring over loopback TCP, one OS thread per
/// rank, each forming its side of the ring and reducing its payload.
/// `faults` are armed on rank 0 before the collective.
fn run_socket_ring(
    world: usize,
    elems: usize,
    cfg: &RingConfig,
    faults: SocketFaults,
) -> (Vec<Vec<f32>>, Vec<RingStats>) {
    let listeners: Vec<TcpListener> =
        (0..world).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let ports: Vec<u16> = listeners.iter().map(|l| l.local_addr().expect("addr").port()).collect();

    let mut results: Vec<Option<(Vec<f32>, RingStats)>> = (0..world).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .iter()
            .enumerate()
            .map(|(rank, listener)| {
                let ports = ports.clone();
                s.spawn(move || {
                    let mut ring =
                        form_ring(listener, &ports, rank, 1, cfg).expect("ring must form");
                    if rank == 0 {
                        ring.arm_faults(faults);
                    }
                    let mut buf = payload(rank, elems);
                    let stats = ring.allreduce(&mut buf).expect("allreduce");
                    (buf, stats)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank thread"));
        }
    });
    let mut bufs = Vec::new();
    let mut stats = Vec::new();
    for r in results.into_iter().flatten() {
        bufs.push(r.0);
        stats.push(r.1);
    }
    (bufs, stats)
}

fn reference(world: usize, elems: usize, bucket_elems: usize) -> Vec<Vec<f32>> {
    let mut bufs: Vec<Vec<f32>> = (0..world).map(|r| payload(r, elems)).collect();
    reference_allreduce(&mut bufs, bucket_elems);
    bufs
}

fn assert_bitwise(got: &[Vec<f32>], want: &[Vec<f32>]) {
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len());
        for (i, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "rank {rank} elem {i}: socket {a} != reference {b}"
            );
        }
    }
}

#[test]
fn socket_ring_matches_reference_bitwise() {
    for world in [2, 3, 4] {
        let cfg = test_cfg(64);
        let elems = 257; // not divisible by world or bucket: exercises remainders
        let (bufs, stats) = run_socket_ring(world, elems, &cfg, SocketFaults::default());
        assert_bitwise(&bufs, &reference(world, elems, cfg.bucket_elems));
        for st in &stats {
            assert_eq!(st.world, world);
            assert_eq!(st.transport.retries, 0, "clean run must not retry");
        }
    }
}

#[test]
fn bucketed_collective_splits_frames_but_not_results() {
    let cfg = test_cfg(32); // 200 elems -> 7 buckets
    let (bufs, stats) = run_socket_ring(4, 200, &cfg, SocketFaults::default());
    assert_bitwise(&bufs, &reference(4, 200, 32));
    assert!(stats[0].buckets >= 7, "expected >= 7 buckets, got {}", stats[0].buckets);
}

#[test]
fn dropped_frames_are_absorbed_by_retransmission() {
    let cfg = test_cfg(64);
    let faults = SocketFaults { drop_sends: 1, ..SocketFaults::default() };
    let (bufs, stats) = run_socket_ring(3, 100, &cfg, faults);
    assert_bitwise(&bufs, &reference(3, 100, 64));
    let total_retries: u64 = stats.iter().map(|s| s.transport.retries).sum();
    assert!(total_retries >= 1, "the dropped frame must have been resent");
}

#[test]
fn corrupted_frames_are_nacked_and_absorbed() {
    let cfg = test_cfg(64);
    let faults = SocketFaults { corrupt_sends: 2, ..SocketFaults::default() };
    let (bufs, stats) = run_socket_ring(4, 150, &cfg, faults);
    assert_bitwise(&bufs, &reference(4, 150, 64));
    let corrupt: u64 = stats.iter().map(|s| s.transport.corrupt_frames).sum();
    assert!(corrupt >= 2, "receivers must have detected the corruption, saw {corrupt}");
}

#[test]
fn delayed_sender_slows_but_does_not_break_the_ring() {
    let cfg = test_cfg(64);
    let faults = SocketFaults { delay_send_micros: 2_000, ..SocketFaults::default() };
    let (bufs, _) = run_socket_ring(3, 64, &cfg, faults);
    assert_bitwise(&bufs, &reference(3, 64, 64));
}

#[test]
fn consecutive_collectives_reuse_the_ring() {
    let world = 3;
    let cfg = test_cfg(128);
    let listeners: Vec<TcpListener> =
        (0..world).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let ports: Vec<u16> = listeners.iter().map(|l| l.local_addr().expect("addr").port()).collect();
    let mut expected1: Vec<Vec<f32>> = (0..world).map(|r| payload(r, 90)).collect();
    reference_allreduce(&mut expected1, cfg.bucket_elems);
    let mut expected2: Vec<Vec<f32>> = expected1.clone();
    reference_allreduce(&mut expected2, cfg.bucket_elems);

    std::thread::scope(|s| {
        for (rank, listener) in listeners.iter().enumerate() {
            let ports = ports.clone();
            let cfg = &cfg;
            let want1 = expected1[rank].clone();
            let want2 = expected2[rank].clone();
            s.spawn(move || {
                let mut ring = form_ring(listener, &ports, rank, 1, cfg).expect("form");
                let mut buf = payload(rank, 90);
                ring.allreduce(&mut buf).expect("first collective");
                assert_eq!(buf, want1, "rank {rank} first collective");
                ring.allreduce(&mut buf).expect("second collective");
                assert_eq!(buf, want2, "rank {rank} second collective");
            });
        }
    });
}
