//! Real multi-process cluster test: the supervisor re-execs *this test
//! binary* as the worker processes (rank role selected via environment),
//! kills one rank mid-step with a process-level fault, and proves the
//! restart recovery is bit-exact against an in-process baseline.
//!
//! The worker path runs when the harness is launched with
//! `BERTSCOPE_PROC_ROLE=worker` in the environment — the spawner passes
//! `--exact <this test> --test-threads=1` so the child enters the same
//! function, detects the role, runs [`worker_main`] and exits before the
//! harness machinery matters.

use bertscope_dist::proc::worker::{worker_main, WorkerConfig, ENV_ROLE};
use bertscope_dist::{run_process_cluster, run_thread_cluster, ClusterConfig, RecoveryMode};
use bertscope_tensor::{FaultKind, FaultPlan};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bertscope-procproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// If this invocation is a spawned rank process, run the worker and never
/// return. Exit code 0 = clean, 113 = injected kill (set inside
/// `worker_main`), 1 = genuine failure.
fn maybe_run_worker_role() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("worker") {
        return;
    }
    let cfg = WorkerConfig::from_env().expect("worker env");
    match worker_main(&cfg) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("rank {} failed: {e}", cfg.orig_rank);
            std::process::exit(1);
        }
    }
}

#[test]
fn four_process_cluster_survives_a_kill_bit_exactly() {
    maybe_run_worker_role();

    // In-process baseline: same seed, same world, no faults.
    let baseline =
        run_thread_cluster(&ClusterConfig::new(4, 2, scratch("baseline"))).expect("baseline");
    assert_eq!(baseline.updates, 2);

    let mut cfg = ClusterConfig::new(4, 2, scratch("cluster"));
    cfg.recovery = RecoveryMode::Restart;
    // Kill rank 2 at micro-step 3: after the first checkpoint (update 1 at
    // micro-step 2), mid-window of the second update.
    cfg.faults = FaultPlan::new().with(3, FaultKind::KillProcess { rank: 2 });

    let exe = std::env::current_exe().expect("current exe");
    let mut spawner = |wcfg: &WorkerConfig| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--exact")
            .arg("four_process_cluster_survives_a_kill_bit_exactly")
            .arg("--test-threads=1")
            .arg("--nocapture")
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (k, v) in wcfg.to_env() {
            cmd.env(k, v);
        }
        cmd.spawn()
    };
    let report = run_process_cluster(&cfg, &mut spawner).expect("process cluster");

    assert_eq!(report.updates, 2);
    assert_eq!(report.final_world, 4, "restart relaunches the full world");
    assert_eq!(report.restarts, 1, "{:?}", report.events);
    assert_eq!(report.events.len(), 1);
    assert_eq!(report.events[0].dead_rank, 2);
    assert_eq!(
        report.weights_hash, baseline.weights_hash,
        "process-backend restart recovery must be bit-exact with the in-process baseline"
    );
    assert!(report.worker_reports.is_empty(), "process backend reports via the control plane");
}

#[test]
fn two_process_elastic_shrink_completes() {
    maybe_run_worker_role();

    let mut cfg = ClusterConfig::new(2, 2, scratch("elastic"));
    cfg.recovery = RecoveryMode::Elastic;
    cfg.faults = FaultPlan::new().with(3, FaultKind::KillProcess { rank: 0 });

    let exe = std::env::current_exe().expect("current exe");
    let mut spawner = |wcfg: &WorkerConfig| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--exact")
            .arg("two_process_elastic_shrink_completes")
            .arg("--test-threads=1")
            .arg("--nocapture")
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (k, v) in wcfg.to_env() {
            cmd.env(k, v);
        }
        cmd.spawn()
    };
    let report = run_process_cluster(&cfg, &mut spawner).expect("elastic process cluster");
    assert_eq!(report.updates, 2);
    assert_eq!(report.final_world, 1, "the survivor finishes alone");
    assert_eq!(report.events.len(), 1);
    assert_eq!(report.events[0].dead_rank, 0);
    assert!(report.events[0].action.contains("elastic-shrink"), "{}", report.events[0].action);
}
