//! Blocked general matrix multiplication (GEMM) and batched GEMM.
//!
//! These are the substrate for every linear, attention and fully-connected
//! layer in BERT. The inner loop is a register-blocked [`MR`]`x`[`NR`]
//! microkernel over packed operand panels — AVX2+FMA `core::arch`
//! intrinsics on `x86_64` hosts that support them, with a portable
//! unrolled-array fallback selected once at runtime. Half-precision
//! operands are packed as raw f16/bf16 bit panels (half the panel traffic)
//! and widened lane-wise inside the microkernel.
//!
//! Accumulation is always performed in `f32` (matching the behaviour of GPU
//! matrix cores, which accumulate half-precision products in single
//! precision) over the full contraction depth in strictly ascending `k`
//! order for every output element, on both the serial and the pooled path —
//! results are therefore bit-identical at any thread count. The result is
//! quantized to the left operand's logical [`DType`](crate::DType) at tile
//! writeback, where a fused [`GemmEpilogue`] (bias / residual / scale+mask,
//! plus the bias+GeLU pair of [`gemm_bias_gelu`]) is applied while the tile
//! is still cache-hot.

use crate::alloc::Buffer;
use crate::dtype::{bf16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits, DType};
use crate::error::TensorError;
use crate::mathfn::gelu_scalar;
use crate::pool;
use crate::tensor::Tensor;
use crate::Result;

/// Whether an operand is transposed, i.e. the `transA`/`transB` flags of the
/// classic BLAS interface. The paper labels its GEMMs `(transposeA,
/// transposeB, M, N, K, [batch])` in Fig. 6; this type carries those flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// Short BLAS-style letter (`n` or `t`), used in trace labels.
    #[must_use]
    pub const fn letter(self) -> char {
        match self {
            Transpose::No => 'n',
            Transpose::Yes => 't',
        }
    }
}

/// Register-tile rows of the microkernel (one accumulator vector per row).
const MR: usize = 8;
/// Register-tile columns of the microkernel (one 8-lane f32 vector).
const NR: usize = 8;
/// Work threshold (in multiply-accumulates) above which rows are split
/// across the worker pool. Below it the microkernel runs inline on the
/// calling thread and pays no task-dispatch overhead.
const PARALLEL_THRESHOLD: usize = 1 << 21;
/// Target multiply-accumulates per pool task. The row grain derived from
/// this depends only on the problem shape — never on the thread count — so
/// chunk boundaries (and therefore results) are identical at any pool size.
const GRAIN_MACS: usize = 1 << 22;
/// Batch count at or above which `batched_gemm` parallelizes across whole
/// slices only (one task per slice) instead of also splitting rows.
const BATCH_SLICE_PARALLEL: usize = 8;

/// Rows per pool task for an `m x n x k` GEMM, derived only from the shape
/// and rounded up to a whole number of [`MR`]-row panels so every task owns
/// complete register tiles.
fn row_grain(m: usize, n: usize, k: usize) -> usize {
    let g = (GRAIN_MACS / (n * k).max(1)).clamp(1, m.max(1));
    g.div_ceil(MR) * MR
}

/// An elementwise tail fused into the GEMM's tile writeback, applied while
/// each output tile is still register/cache resident instead of as separate
/// memory-bound kernels afterwards.
///
/// The fused arithmetic rounds through the output dtype between steps in
/// exactly the order the unfused kernel sequence would (`quantize(gemm)`,
/// then `quantize(+bias)`, ...), so a fused path is *bit-identical* to its
/// unfused equivalent — fusion changes kernel counts and bytes moved, never
/// numerics. The bias+GeLU epilogue is exposed separately as
/// [`gemm_bias_gelu`] because it produces two outputs (backward needs the
/// pre-activation).
#[derive(Debug, Clone, Copy, Default)]
pub enum GemmEpilogue<'e> {
    /// Plain GEMM.
    #[default]
    None,
    /// `out[i][j] += bias[j]` — bias over the output columns.
    Bias(&'e [f32]),
    /// `out += bias`, then `out += residual` (the residual-add that feeds
    /// LayerNorm). `residual` is the full `m x n` output-shaped tensor.
    BiasResidual {
        /// Per-column bias, length `n`.
        bias: &'e [f32],
        /// Output-shaped residual input, length `m * n`.
        residual: &'e [f32],
    },
    /// `out *= scale` (attention-score scaling by `1/sqrt(d_h)`).
    Scale(f32),
    /// `out = out * scale + mask` — the fused scale+mask pair feeding the
    /// attention softmax. `mask` covers the full (batched) output,
    /// `batch * m * n` elements.
    ScaleMask {
        /// Score scale factor.
        scale: f32,
        /// Additive mask, length `batch * m * n`.
        mask: &'e [f32],
    },
}

/// Internal per-slice epilogue view: like [`GemmEpilogue`] but validated,
/// sliced to one batch slice, and including the dual-output bias+GeLU.
#[derive(Clone, Copy)]
enum EpView<'e> {
    None,
    Bias(&'e [f32]),
    BiasGelu(&'e [f32]),
    BiasResidual { bias: &'e [f32], residual: &'e [f32] },
    Scale(f32),
    ScaleMask { scale: f32, mask: &'e [f32] },
}

impl<'e> GemmEpilogue<'e> {
    /// Validate operand lengths against the output shape and build the
    /// executable view for batch slice 0.
    fn validate(&self, m: usize, n: usize, batch: usize) -> Result<EpView<'e>> {
        let check = |name: &str, len: usize, want: usize| -> Result<()> {
            if len == want {
                Ok(())
            } else {
                Err(TensorError::InvalidArgument(format!(
                    "gemm epilogue {name} has {len} elements, output needs {want}"
                )))
            }
        };
        Ok(match *self {
            GemmEpilogue::None => EpView::None,
            GemmEpilogue::Bias(b) => {
                check("bias", b.len(), n)?;
                EpView::Bias(b)
            }
            GemmEpilogue::BiasResidual { bias, residual } => {
                check("bias", bias.len(), n)?;
                check("residual", residual.len(), batch * m * n)?;
                EpView::BiasResidual { bias, residual }
            }
            GemmEpilogue::Scale(s) => EpView::Scale(s),
            GemmEpilogue::ScaleMask { scale, mask } => {
                check("mask", mask.len(), batch * m * n)?;
                EpView::ScaleMask { scale, mask }
            }
        })
    }
}

impl<'e> EpView<'e> {
    /// The view for batch slice `i`: output-shaped operands (residual,
    /// mask) are narrowed to the slice; broadcast operands are shared.
    fn slice(self, i: usize, m: usize, n: usize) -> EpView<'e> {
        let span = m * n;
        match self {
            EpView::BiasResidual { bias, residual } => {
                EpView::BiasResidual { bias, residual: &residual[i * span..(i + 1) * span] }
            }
            EpView::ScaleMask { scale, mask } => {
                EpView::ScaleMask { scale, mask: &mask[i * span..(i + 1) * span] }
            }
            other => other,
        }
    }

    /// Apply the fused tail to one accumulated output value at (`row`,
    /// `col`) of the slice, rounding through `dt` between steps exactly as
    /// the unfused kernel chain would. `BiasGelu` is handled by the caller
    /// (it writes two outputs).
    #[inline]
    fn apply(self, dt: DType, v: f32, row: usize, col: usize, n: usize) -> f32 {
        match self {
            EpView::None | EpView::BiasGelu(_) => dt.quantize(v),
            EpView::Bias(b) => dt.quantize(dt.quantize(v) + b[col]),
            EpView::BiasResidual { bias, residual } => {
                let x = dt.quantize(dt.quantize(v) + bias[col]);
                dt.quantize(x + residual[row * n + col])
            }
            EpView::Scale(s) => dt.quantize(dt.quantize(v) * s),
            EpView::ScaleMask { scale, mask } => {
                let x = dt.quantize(dt.quantize(v) * scale);
                dt.quantize(x + mask[row * n + col])
            }
        }
    }
}

/// The element encoding of a packed panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PanelKind {
    /// One f32 per element.
    F32,
    /// Raw IEEE f16 bits, two per f32 storage slot.
    F16,
    /// Raw bfloat16 bits, two per f32 storage slot.
    Bf16,
}

impl PanelKind {
    /// Half-bit panels are used only when *both* operands share the same
    /// half dtype; mixed-precision operand pairs fall back to f32 panels so
    /// packing never rounds an operand below its own precision.
    fn for_operands(a: DType, b: DType) -> PanelKind {
        match (a, b) {
            (DType::F16, DType::F16) => PanelKind::F16,
            (DType::BF16, DType::BF16) => PanelKind::Bf16,
            _ => PanelKind::F32,
        }
    }

    /// f32 storage slots per panel of depth `k`.
    fn panel_slots(self, k: usize) -> usize {
        match self {
            PanelKind::F32 => k * MR,
            PanelKind::F16 | PanelKind::Bf16 => k * MR / 2,
        }
    }
}

/// A packed operand: [`MR`]-row (A) or [`NR`]-column (B) panels, k-major
/// within each panel, zero-padded at ragged edges. Half-precision panels
/// store raw 16-bit patterns, two per f32 slot, and are widened lane-wise
/// inside the microkernel.
struct PanelBuf {
    buf: Buffer,
    k: usize,
    kind: PanelKind,
}

impl PanelBuf {
    fn panel(&self, p: usize) -> &[f32] {
        let w = self.kind.panel_slots(self.k);
        &self.buf[p * w..(p + 1) * w]
    }
}

/// Encode one value as the panel's 16-bit pattern.
#[inline]
fn half_bits(kind: PanelKind, v: f32) -> u16 {
    match kind {
        PanelKind::F16 => f32_to_f16_bits(v),
        PanelKind::Bf16 => f32_to_bf16_bits(v),
        PanelKind::F32 => unreachable!("f32 panels store full words"),
    }
}

/// Pack `op(A)` (`m x k` logical) into [`MR`]-row panels: for each panel
/// and each `kk`, the panel's `MR` row values are contiguous.
fn pack_a(
    x: &[f32],
    stride: usize,
    ta: Transpose,
    m: usize,
    k: usize,
    kind: PanelKind,
) -> PanelBuf {
    let panels = m.div_ceil(MR);
    let get = |i: usize, kk: usize| -> f32 {
        if i >= m {
            return 0.0;
        }
        match ta {
            Transpose::No => x[i * stride + kk],
            Transpose::Yes => x[kk * stride + i],
        }
    };
    let mut buf = Buffer::zeroed(panels * kind.panel_slots(k));
    match kind {
        PanelKind::F32 => {
            for p in 0..panels {
                let base = p * k * MR;
                for kk in 0..k {
                    for r in 0..MR {
                        buf[base + kk * MR + r] = get(p * MR + r, kk);
                    }
                }
            }
        }
        PanelKind::F16 | PanelKind::Bf16 => {
            for p in 0..panels {
                let base = p * k * MR / 2;
                for kk in 0..k {
                    for s in 0..MR / 2 {
                        let lo = half_bits(kind, get(p * MR + 2 * s, kk));
                        let hi = half_bits(kind, get(p * MR + 2 * s + 1, kk));
                        buf[base + kk * MR / 2 + s] =
                            f32::from_bits(u32::from(lo) | (u32::from(hi) << 16));
                    }
                }
            }
        }
    }
    PanelBuf { buf, k, kind }
}

/// Pack `op(B)` (`k x n` logical) into [`NR`]-column panels: for each panel
/// and each `kk`, the panel's `NR` column values are contiguous.
fn pack_b(
    x: &[f32],
    stride: usize,
    tb: Transpose,
    n: usize,
    k: usize,
    kind: PanelKind,
) -> PanelBuf {
    let panels = n.div_ceil(NR);
    let get = |kk: usize, j: usize| -> f32 {
        if j >= n {
            return 0.0;
        }
        match tb {
            Transpose::No => x[kk * stride + j],
            Transpose::Yes => x[j * stride + kk],
        }
    };
    let mut buf = Buffer::zeroed(panels * kind.panel_slots(k));
    match kind {
        PanelKind::F32 => {
            for q in 0..panels {
                let base = q * k * NR;
                for kk in 0..k {
                    for c in 0..NR {
                        buf[base + kk * NR + c] = get(kk, q * NR + c);
                    }
                }
            }
        }
        PanelKind::F16 | PanelKind::Bf16 => {
            for q in 0..panels {
                let base = q * k * NR / 2;
                for kk in 0..k {
                    for s in 0..NR / 2 {
                        let lo = half_bits(kind, get(kk, q * NR + 2 * s));
                        let hi = half_bits(kind, get(kk, q * NR + 2 * s + 1));
                        buf[base + kk * NR / 2 + s] =
                            f32::from_bits(u32::from(lo) | (u32::from(hi) << 16));
                    }
                }
            }
        }
    }
    PanelBuf { buf, k, kind }
}

/// Instruction sets the microkernel can target, detected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Isa {
    Portable,
    Avx2,
    Avx2F16c,
}

fn isa() -> Isa {
    static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
    *ISA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return if std::arch::is_x86_feature_detected!("f16c") {
                    Isa::Avx2F16c
                } else {
                    Isa::Avx2
                };
            }
        }
        Isa::Portable
    })
}

/// AVX2+FMA microkernels: one 8-lane accumulator vector per tile row,
/// broadcast-A x vector-B outer products over the full depth.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::{MR, NR};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// f32 panels: `a`/`b` point at `k * 8` floats each.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mk_f32(
        alpha: f32,
        a: *const f32,
        b: *const f32,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c = [_mm256_setzero_ps(); MR];
        for kk in 0..k {
            let bv = _mm256_loadu_ps(b.add(kk * NR));
            let ap = a.add(kk * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(alpha * *ap.add(r));
                *cr = _mm256_fmadd_ps(av, bv, *cr);
            }
        }
        for (row, cr) in acc.iter_mut().zip(&c) {
            _mm256_storeu_ps(row.as_mut_ptr(), *cr);
        }
    }

    /// Widen 8 bf16 bit patterns (4 f32 slots) to an f32 vector: zero-extend
    /// each u16 lane and shift into the high half of the f32 word.
    #[inline]
    unsafe fn widen_bf16(p: *const f32) -> __m256 {
        let h = _mm_loadu_si128(p.cast());
        _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16))
    }

    /// bf16 panels: `a`/`b` point at `k * 4` f32 slots (two bit patterns
    /// per slot).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mk_bf16(
        alpha: f32,
        a: *const f32,
        b: *const f32,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c = [_mm256_setzero_ps(); MR];
        let mut arow = [0.0f32; MR];
        for kk in 0..k {
            let bv = widen_bf16(b.add(kk * NR / 2));
            _mm256_storeu_ps(arow.as_mut_ptr(), widen_bf16(a.add(kk * MR / 2)));
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(alpha * arow[r]);
                *cr = _mm256_fmadd_ps(av, bv, *cr);
            }
        }
        for (row, cr) in acc.iter_mut().zip(&c) {
            _mm256_storeu_ps(row.as_mut_ptr(), *cr);
        }
    }

    /// f16 panels (requires F16C for the 8-lane half-to-single convert).
    #[target_feature(enable = "avx2,fma,f16c")]
    pub unsafe fn mk_f16(
        alpha: f32,
        a: *const f32,
        b: *const f32,
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c = [_mm256_setzero_ps(); MR];
        let mut arow = [0.0f32; MR];
        for kk in 0..k {
            let bv = _mm256_cvtph_ps(_mm_loadu_si128(b.add(kk * NR / 2).cast()));
            let av8 = _mm256_cvtph_ps(_mm_loadu_si128(a.add(kk * MR / 2).cast()));
            _mm256_storeu_ps(arow.as_mut_ptr(), av8);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(alpha * arow[r]);
                *cr = _mm256_fmadd_ps(av, bv, *cr);
            }
        }
        for (row, cr) in acc.iter_mut().zip(&c) {
            _mm256_storeu_ps(row.as_mut_ptr(), *cr);
        }
    }
}

/// Portable microkernel: the same outer-product loop over fixed-width
/// `[f32; 8]` arrays (auto-vectorizable), with identical per-element
/// accumulation order to the SIMD variants.
mod portable {
    use super::{bf16_bits_to_f32, PanelKind, MR, NR};
    use crate::dtype::f16_bits_to_f32;

    /// Decode the 8 panel values at depth `kk`.
    #[inline]
    fn load8(panel: &[f32], kk: usize, kind: PanelKind) -> [f32; 8] {
        match kind {
            PanelKind::F32 => panel[kk * 8..kk * 8 + 8].try_into().expect("panel width"),
            PanelKind::F16 | PanelKind::Bf16 => {
                let mut out = [0.0f32; 8];
                for s in 0..4 {
                    let bits = panel[kk * 4 + s].to_bits();
                    let (lo, hi) = ((bits & 0xFFFF) as u16, (bits >> 16) as u16);
                    let (lo, hi) = if kind == PanelKind::F16 {
                        (f16_bits_to_f32(lo), f16_bits_to_f32(hi))
                    } else {
                        (bf16_bits_to_f32(lo), bf16_bits_to_f32(hi))
                    };
                    out[2 * s] = lo;
                    out[2 * s + 1] = hi;
                }
                out
            }
        }
    }

    pub fn mk(
        kind: PanelKind,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        k: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c = [[0.0f32; NR]; MR];
        for kk in 0..k {
            let b8 = load8(b, kk, kind);
            let a8 = load8(a, kk, kind);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = alpha * a8[r];
                for (x, bv) in cr.iter_mut().zip(&b8) {
                    *x += av * bv;
                }
            }
        }
        *acc = c;
    }
}

/// Compute one full-depth [`MR`]`x`[`NR`] register tile into `acc`,
/// dispatching to the best microkernel for this host and panel encoding.
#[inline]
fn micro_tile(
    kind: PanelKind,
    alpha: f32,
    apan: &[f32],
    bpan: &[f32],
    k: usize,
    acc: &mut [[f32; NR]; MR],
) {
    #[cfg(target_arch = "x86_64")]
    {
        let is = isa();
        // SAFETY: the target features were verified by `isa()` at runtime,
        // and each panel slice holds exactly `panel_slots(k)` f32 words, so
        // every `kk`-indexed load below stays in bounds.
        #[allow(unsafe_code)]
        match kind {
            PanelKind::F32 if is >= Isa::Avx2 => {
                unsafe { simd::mk_f32(alpha, apan.as_ptr(), bpan.as_ptr(), k, acc) };
                return;
            }
            PanelKind::Bf16 if is >= Isa::Avx2 => {
                unsafe { simd::mk_bf16(alpha, apan.as_ptr(), bpan.as_ptr(), k, acc) };
                return;
            }
            PanelKind::F16 if is >= Isa::Avx2F16c => {
                unsafe { simd::mk_f16(alpha, apan.as_ptr(), bpan.as_ptr(), k, acc) };
                return;
            }
            _ => {}
        }
    }
    portable::mk(kind, alpha, apan, bpan, k, acc);
}

/// Compute the output rows `[row0, row0 + out.len() / n)` of one slice from
/// packed panels, accumulating each tile over the full depth and applying
/// `beta`-preloaded values, the epilogue, and output quantization at
/// writeback. `act` receives the activated second output for the
/// bias+GeLU epilogue.
#[allow(clippy::too_many_arguments)]
fn compute_rows(
    alpha: f32,
    apan: &PanelBuf,
    bpan: &PanelBuf,
    out: &mut [f32],
    mut act: Option<&mut [f32]>,
    row0: usize,
    n: usize,
    k: usize,
    dt: DType,
    ep: EpView<'_>,
) {
    debug_assert_eq!(row0 % MR, 0, "tasks own whole register-tile row panels");
    let rows = out.len() / n;
    let p0 = row0 / MR;
    let p1 = (row0 + rows).div_ceil(MR);
    let nq = n.div_ceil(NR);
    let mut acc = [[0.0f32; NR]; MR];
    for p in p0..p1 {
        let gr0 = p * MR;
        let tile_rows = (row0 + rows - gr0).min(MR);
        for q in 0..nq {
            let j0 = q * NR;
            let tile_cols = (n - j0).min(NR);
            micro_tile(apan.kind, alpha, apan.panel(p), bpan.panel(q), k, &mut acc);
            for (r, arow) in acc.iter().enumerate().take(tile_rows) {
                let gi = gr0 + r;
                let base = (gi - row0) * n + j0;
                if let EpView::BiasGelu(bias) = ep {
                    let act = act.as_deref_mut().expect("bias+gelu needs a second output");
                    for (c, &av) in arow.iter().enumerate().take(tile_cols) {
                        let pre = dt.quantize(dt.quantize(out[base + c] + av) + bias[j0 + c]);
                        out[base + c] = pre;
                        act[base + c] = dt.quantize(gelu_scalar(pre));
                    }
                } else {
                    for (c, &av) in arow.iter().enumerate().take(tile_cols) {
                        out[base + c] = ep.apply(dt, out[base + c] + av, gi, j0 + c, n);
                    }
                }
            }
        }
    }
}

/// Pack both operands and run the microkernel over one 2-D slice,
/// splitting row panels across the worker pool for large problems.
#[allow(clippy::too_many_arguments)]
fn gemm_into(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    out: &mut [f32],
    act: Option<&mut [f32]>,
    m: usize,
    n: usize,
    k: usize,
    kind: PanelKind,
    dt: DType,
    ep: EpView<'_>,
) {
    let apan = pack_a(a, a_stride, ta, m, k, kind);
    let bpan = pack_b(b, b_stride, tb, n, k, kind);
    if m * n * k >= PARALLEL_THRESHOLD && m >= 2 {
        let grain = row_grain(m, n, k);
        if let Some(act) = act {
            // Dual-output (bias+GeLU): split both outputs into matching
            // row chunks and dispatch them as one task wave.
            let apan = &apan;
            let bpan = &bpan;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                Vec::with_capacity(m.div_ceil(grain));
            for (ci, (oc, ac)) in
                out.chunks_mut(grain * n).zip(act.chunks_mut(grain * n)).enumerate()
            {
                tasks.push(Box::new(move || {
                    compute_rows(alpha, apan, bpan, oc, Some(ac), ci * grain, n, k, dt, ep);
                }));
            }
            pool::run_tasks(tasks);
        } else {
            pool::parallel_for_mut(out, grain * n, |offset, chunk| {
                compute_rows(alpha, &apan, &bpan, chunk, None, offset / n, n, k, dt, ep);
            });
        }
    } else {
        compute_rows(alpha, &apan, &bpan, out, act, 0, n, k, dt, ep);
    }
}

fn op_dims(rows: usize, cols: usize, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (rows, cols),
        Transpose::Yes => (cols, rows),
    }
}

/// Compute `alpha * op(A) * op(B) + beta * C` for 2-D tensors.
///
/// `op(A)` must be `m x k` and `op(B)` must be `k x n`. When `c` is `None`,
/// `beta` is ignored and the result is freshly allocated. The output adopts
/// `a`'s logical dtype and is quantized accordingly.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-2-D operands and
/// [`TensorError::ShapeMismatch`] when the inner or output dimensions do not
/// agree.
///
/// ```
/// use bertscope_tensor::{gemm, Tensor, Transpose};
/// # fn main() -> Result<(), bertscope_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn gemm(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    c: Option<&Tensor>,
) -> Result<Tensor> {
    gemm_ep(ta, tb, alpha, a, b, beta, c, GemmEpilogue::None)
}

/// [`gemm`] with a fused [`GemmEpilogue`] applied to output tiles at
/// writeback, while they are still cache-hot.
///
/// # Errors
///
/// As [`gemm`], plus [`TensorError::InvalidArgument`] when an epilogue
/// operand's length does not match the output shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ep(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    beta: f32,
    c: Option<&Tensor>,
    ep: GemmEpilogue<'_>,
) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "gemm requires 2-d operands, got ranks {} and {}",
            a.shape().rank(),
            b.shape().rank()
        )));
    }
    let (m, ka) = op_dims(a.dims()[0], a.dims()[1], ta);
    let (kb, n) = op_dims(b.dims()[0], b.dims()[1], tb);
    if ka != kb {
        return Err(TensorError::shape("gemm inner dimension", a.dims(), b.dims()));
    }
    let view = ep.validate(m, n, 1)?;
    let mut out = Buffer::zeroed(m * n);
    if let Some(c) = c {
        if c.dims() != [m, n] {
            return Err(TensorError::shape("gemm accumulator", &[m, n], c.dims()));
        }
        if beta != 0.0 {
            for (o, &cv) in out.iter_mut().zip(c.as_slice()) {
                *o = beta * cv;
            }
        }
    }
    let dt = a.dtype();
    let kind = PanelKind::for_operands(dt, b.dtype());
    gemm_into(
        ta,
        tb,
        alpha,
        a.as_slice(),
        a.dims()[1],
        b.as_slice(),
        b.dims()[1],
        &mut out,
        None,
        m,
        n,
        ka,
        kind,
        dt,
        view,
    );
    let mut t = Tensor::from_buffer(out, &[m, n])?;
    t.set_dtype_raw(dt);
    Ok(t)
}

/// Fused `linear + GeLU`: `pre = op(A) * op(B) + bias`, `act = GeLU(pre)`,
/// both produced by one kernel launch — the activation is evaluated on each
/// output tile while it is register-resident, and the pre-activation is
/// stored too because the backward pass consumes it.
///
/// Returns `(pre, act)`, both in `a`'s logical dtype, with values
/// bit-identical to the unfused `gemm` → bias-add → `gelu` sequence.
///
/// # Errors
///
/// As [`gemm`], plus a length check on `bias` (`n` elements).
pub fn gemm_bias_gelu(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
) -> Result<(Tensor, Tensor)> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "gemm requires 2-d operands, got ranks {} and {}",
            a.shape().rank(),
            b.shape().rank()
        )));
    }
    let (m, ka) = op_dims(a.dims()[0], a.dims()[1], ta);
    let (kb, n) = op_dims(b.dims()[0], b.dims()[1], tb);
    if ka != kb {
        return Err(TensorError::shape("gemm inner dimension", a.dims(), b.dims()));
    }
    if bias.numel() != n {
        return Err(TensorError::InvalidArgument(format!(
            "gemm bias+gelu epilogue: bias has {} elements, output needs {n}",
            bias.numel()
        )));
    }
    let mut pre = Buffer::zeroed(m * n);
    let mut act = Buffer::zeroed(m * n);
    let dt = a.dtype();
    let kind = PanelKind::for_operands(dt, b.dtype());
    gemm_into(
        ta,
        tb,
        alpha,
        a.as_slice(),
        a.dims()[1],
        b.as_slice(),
        b.dims()[1],
        &mut pre,
        Some(&mut act),
        m,
        n,
        ka,
        kind,
        dt,
        EpView::BiasGelu(bias.as_slice()),
    );
    let mut pre = Tensor::from_buffer(pre, &[m, n])?;
    pre.set_dtype_raw(dt);
    let mut act = Tensor::from_buffer(act, &[m, n])?;
    act.set_dtype_raw(dt);
    Ok((pre, act))
}

/// Compute a batched GEMM over 3-D tensors `[batch, rows, cols]`.
///
/// Every batch slice is multiplied independently, exactly like the
/// `B*h`-wide batched attention GEMMs of the paper (§3.2.2). The output is
/// `[batch, m, n]` in `a`'s logical dtype.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-3-D operands and
/// [`TensorError::ShapeMismatch`] when batch or inner dimensions disagree.
pub fn batched_gemm(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
) -> Result<Tensor> {
    batched_gemm_ep(ta, tb, alpha, a, b, GemmEpilogue::None)
}

/// [`batched_gemm`] with a fused [`GemmEpilogue`]. Output-shaped epilogue
/// operands (residual, mask) cover the whole `[batch, m, n]` output.
///
/// # Errors
///
/// As [`batched_gemm`], plus epilogue operand length checks.
pub fn batched_gemm_ep(
    ta: Transpose,
    tb: Transpose,
    alpha: f32,
    a: &Tensor,
    b: &Tensor,
    ep: GemmEpilogue<'_>,
) -> Result<Tensor> {
    if a.shape().rank() != 3 || b.shape().rank() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "batched_gemm requires 3-d operands, got ranks {} and {}",
            a.shape().rank(),
            b.shape().rank()
        )));
    }
    let batch = a.dims()[0];
    if b.dims()[0] != batch {
        return Err(TensorError::shape("batched_gemm batch", a.dims(), b.dims()));
    }
    let (m, ka) = op_dims(a.dims()[1], a.dims()[2], ta);
    let (kb, n) = op_dims(b.dims()[1], b.dims()[2], tb);
    if ka != kb {
        return Err(TensorError::shape("batched_gemm inner dimension", a.dims(), b.dims()));
    }
    let view = ep.validate(m, n, batch)?;
    let a_stride = a.dims()[1] * a.dims()[2];
    let b_stride = b.dims()[1] * b.dims()[2];
    let mut out = Buffer::zeroed(batch * m * n);
    let dt = a.dtype();
    let kind = PanelKind::for_operands(dt, b.dtype());
    if batch * m * n * ka >= PARALLEL_THRESHOLD {
        // Parallelize across batch x row-chunks: this is the `B*h`-wide
        // attention shape of the paper (§3.2.2), where the batch dimension
        // alone usually saturates the pool. Rows are split further only for
        // small batches — a shape-only rule, so chunking (and bits) never
        // depends on the thread count.
        let grain = if batch >= BATCH_SLICE_PARALLEL { m } else { row_grain(m, n, ka) };
        let a_sl = a.as_slice();
        let b_sl = b.as_slice();
        let (a_rs, b_rs) = (a.dims()[2], b.dims()[2]);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            Vec::with_capacity(batch * m.div_ceil(grain));
        for (i, slice_out) in out.chunks_mut(m * n).enumerate() {
            let a_s = &a_sl[i * a_stride..(i + 1) * a_stride];
            let b_s = &b_sl[i * b_stride..(i + 1) * b_stride];
            let ep_s = view.slice(i, m, n);
            for (ci, chunk) in slice_out.chunks_mut(grain * n).enumerate() {
                tasks.push(Box::new(move || {
                    let apan = pack_a(a_s, a_rs, ta, m, ka, kind);
                    let bpan = pack_b(b_s, b_rs, tb, n, ka, kind);
                    compute_rows(alpha, &apan, &bpan, chunk, None, ci * grain, n, ka, dt, ep_s);
                }));
            }
        }
        pool::run_tasks(tasks);
    } else {
        for (i, chunk) in out.chunks_mut(m * n).enumerate() {
            gemm_into(
                ta,
                tb,
                alpha,
                &a.as_slice()[i * a_stride..(i + 1) * a_stride],
                a.dims()[2],
                &b.as_slice()[i * b_stride..(i + 1) * b_stride],
                b.dims()[2],
                chunk,
                None,
                m,
                n,
                ka,
                kind,
                dt,
                view.slice(i, m, n),
            );
        }
    }
    let mut t = Tensor::from_buffer(out, &[batch, m, n])?;
    t.set_dtype_raw(dt);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(
        ta: Transpose,
        tb: Transpose,
        a: &Tensor,
        b: &Tensor,
        m: usize,
        n: usize,
        k: usize,
    ) -> Vec<f32> {
        let get_a = |i: usize, kk: usize| match ta {
            Transpose::No => a.as_slice()[i * a.dims()[1] + kk],
            Transpose::Yes => a.as_slice()[kk * a.dims()[1] + i],
        };
        let get_b = |kk: usize, j: usize| match tb {
            Transpose::No => b.as_slice()[kk * b.dims()[1] + j],
            Transpose::Yes => b.as_slice()[j * b.dims()[1] + kk],
        };
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += f64::from(get_a(i, kk)) * f64::from(get_b(kk, j));
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    fn rand_tensor(rng: &mut StdRng, dims: &[usize]) -> Tensor {
        let data = (0..dims.iter().product::<usize>()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn matches_naive_for_all_transpose_combinations() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, n, k) = (13, 9, 17);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let a_dims = if ta == Transpose::No { [m, k] } else { [k, m] };
                let b_dims = if tb == Transpose::No { [k, n] } else { [n, k] };
                let a = rand_tensor(&mut rng, &a_dims);
                let b = rand_tensor(&mut rng, &b_dims);
                let got = gemm(ta, tb, 1.0, &a, &b, 0.0, None).unwrap();
                let want = naive(ta, tb, &a, &b, m, n, k);
                for (g, w) in got.as_slice().iter().zip(&want) {
                    assert!((g - w).abs() < 1e-4, "ta={ta:?} tb={tb:?}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = Tensor::ones(&[2, 2]);
        let out = gemm(Transpose::No, Transpose::No, 2.0, &a, &b, 3.0, Some(&c)).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn rejects_dimension_mismatches() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).is_err());
        // but transposing b fixes it: (2x3)*(3x... no, b^T is 2x4 -> still bad k
        let b2 = Tensor::zeros(&[5, 3]);
        assert!(gemm(Transpose::No, Transpose::Yes, 1.0, &a, &b2, 0.0, None).is_ok());
        let v = Tensor::zeros(&[3]);
        assert!(gemm(Transpose::No, Transpose::No, 1.0, &a, &v, 0.0, None).is_err());
        let c_bad = Tensor::zeros(&[9, 9]);
        assert!(gemm(Transpose::No, Transpose::Yes, 1.0, &a, &b2, 1.0, Some(&c_bad)).is_err());
    }

    #[test]
    fn rejects_epilogue_operand_mismatches() {
        let a = Tensor::zeros(&[4, 3]);
        let b = Tensor::zeros(&[3, 5]);
        let short = vec![0.0f32; 4];
        assert!(gemm_ep(
            Transpose::No,
            Transpose::No,
            1.0,
            &a,
            &b,
            0.0,
            None,
            GemmEpilogue::Bias(&short)
        )
        .is_err());
        let bias = vec![0.0f32; 5];
        assert!(gemm_ep(
            Transpose::No,
            Transpose::No,
            1.0,
            &a,
            &b,
            0.0,
            None,
            GemmEpilogue::BiasResidual { bias: &bias, residual: &short }
        )
        .is_err());
        let ab = Tensor::zeros(&[2, 4, 3]);
        let bb = Tensor::zeros(&[2, 3, 5]);
        assert!(batched_gemm_ep(
            Transpose::No,
            Transpose::No,
            1.0,
            &ab,
            &bb,
            GemmEpilogue::ScaleMask { scale: 1.0, mask: &bias }
        )
        .is_err());
        let bad_bias = Tensor::zeros(&[4]);
        assert!(gemm_bias_gelu(Transpose::No, Transpose::No, 1.0, &a, &b, &bad_bias).is_err());
    }

    #[test]
    fn large_gemm_uses_parallel_path_and_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let (m, n, k) = (160, 96, 150); // m*n*k > PARALLEL_THRESHOLD
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let got = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap();
        let want = naive(Transpose::No, Transpose::No, &a, &b, m, n, k);
        for (g, w) in got.as_slice().iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn batched_matches_per_slice_gemm() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = rand_tensor(&mut rng, &[4, 5, 6]);
        let b = rand_tensor(&mut rng, &[4, 6, 3]);
        let out = batched_gemm(Transpose::No, Transpose::No, 1.0, &a, &b).unwrap();
        assert_eq!(out.dims(), &[4, 5, 3]);
        for i in 0..4 {
            let ai =
                Tensor::from_vec(a.as_slice()[i * 30..(i + 1) * 30].to_vec(), &[5, 6]).unwrap();
            let bi =
                Tensor::from_vec(b.as_slice()[i * 18..(i + 1) * 18].to_vec(), &[6, 3]).unwrap();
            let want = gemm(Transpose::No, Transpose::No, 1.0, &ai, &bi, 0.0, None).unwrap();
            let got = &out.as_slice()[i * 15..(i + 1) * 15];
            for (g, w) in got.iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn batched_transpose_b_is_attention_score_shape() {
        // q: [B*h, n, d/h], k: [B*h, n, d/h], scores = q * k^T : [B*h, n, n]
        let mut rng = StdRng::seed_from_u64(5);
        let q = rand_tensor(&mut rng, &[2, 4, 3]);
        let kt = rand_tensor(&mut rng, &[2, 4, 3]);
        let s = batched_gemm(Transpose::No, Transpose::Yes, 1.0, &q, &kt).unwrap();
        assert_eq!(s.dims(), &[2, 4, 4]);
    }

    #[test]
    fn batched_rejects_mismatches() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[3, 4, 5]);
        assert!(batched_gemm(Transpose::No, Transpose::No, 1.0, &a, &b).is_err());
        let b2 = Tensor::zeros(&[2, 5, 5]);
        assert!(batched_gemm(Transpose::No, Transpose::No, 1.0, &a, &b2).is_err());
        let m = Tensor::zeros(&[3, 4]);
        assert!(batched_gemm(Transpose::No, Transpose::No, 1.0, &a, &m).is_err());
    }

    #[test]
    fn half_precision_output_is_quantized() {
        let a = Tensor::full(&[2, 2], 1.0 / 3.0).to_dtype(DType::F16);
        let b = Tensor::eye(2);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap();
        assert_eq!(c.dtype(), DType::F16);
        for &x in c.as_slice() {
            assert_eq!(x, DType::F16.quantize(x), "output must be f16-representable");
        }
    }

    #[test]
    fn half_panel_packing_is_bit_lossless() {
        // Pre-quantized half values survive the u16 panel round trip
        // exactly: a half GEMM against the identity returns the input.
        for dt in [DType::F16, DType::BF16] {
            let mut rng = StdRng::seed_from_u64(23);
            let a = rand_tensor(&mut rng, &[11, 11]).to_dtype(dt);
            let eye = Tensor::eye(11).to_dtype(dt);
            let out = gemm(Transpose::No, Transpose::No, 1.0, &a, &eye, 0.0, None).unwrap();
            assert_eq!(out.as_slice(), a.as_slice(), "{dt:?}");
        }
    }

    /// The unfused reference chain for each epilogue, rounding through `dt`
    /// between steps exactly like the standalone kernels do.
    fn unfused_reference(base: &Tensor, ep: &GemmEpilogue<'_>, dt: DType) -> Vec<f32> {
        let n = *base.dims().last().unwrap();
        let out: Vec<f32> = match *ep {
            GemmEpilogue::None => base.as_slice().to_vec(),
            GemmEpilogue::Bias(b) => base
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| dt.quantize(v + b[i % n]))
                .collect(),
            GemmEpilogue::BiasResidual { bias, residual } => base
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| dt.quantize(dt.quantize(v + bias[i % n]) + residual[i]))
                .collect(),
            GemmEpilogue::Scale(s) => base.as_slice().iter().map(|&v| dt.quantize(v * s)).collect(),
            GemmEpilogue::ScaleMask { scale, mask } => base
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| dt.quantize(dt.quantize(v * scale) + mask[i]))
                .collect(),
        };
        out
    }

    #[test]
    fn fused_epilogues_match_unfused_chain_bitwise() {
        let (m, n, k) = (13, 10, 21);
        for dt in [DType::F32, DType::F16, DType::BF16] {
            let mut rng = StdRng::seed_from_u64(31);
            let a = rand_tensor(&mut rng, &[m, k]).to_dtype(dt);
            let b = rand_tensor(&mut rng, &[k, n]).to_dtype(dt);
            let bias: Vec<f32> = (0..n).map(|_| dt.quantize(rng.gen_range(-1.0..1.0))).collect();
            let res: Vec<f32> = (0..m * n).map(|_| dt.quantize(rng.gen_range(-1.0..1.0))).collect();
            let base = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap();
            let eps = [
                GemmEpilogue::Bias(&bias),
                GemmEpilogue::BiasResidual { bias: &bias, residual: &res },
                GemmEpilogue::Scale(0.125),
                GemmEpilogue::ScaleMask { scale: 0.125, mask: &res },
            ];
            for ep in eps {
                let fused =
                    gemm_ep(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None, ep).unwrap();
                let want = unfused_reference(&base, &ep, dt);
                assert_eq!(fused.as_slice(), &want[..], "{dt:?} {ep:?}");
            }
        }
    }

    #[test]
    fn fused_bias_gelu_matches_unfused_sequence_bitwise() {
        let (m, n, k) = (9, 14, 17);
        for dt in [DType::F32, DType::F16] {
            let mut rng = StdRng::seed_from_u64(41);
            let a = rand_tensor(&mut rng, &[m, k]).to_dtype(dt);
            let b = rand_tensor(&mut rng, &[k, n]).to_dtype(dt);
            let bias_v: Vec<f32> = (0..n).map(|_| dt.quantize(rng.gen_range(-1.0..1.0))).collect();
            let bias = Tensor::from_vec(bias_v.clone(), &[n]).unwrap();
            let (pre, act) =
                gemm_bias_gelu(Transpose::No, Transpose::No, 1.0, &a, &b, &bias).unwrap();
            let base = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap();
            for (i, (&p, &g)) in pre.as_slice().iter().zip(act.as_slice()).enumerate() {
                let want_pre = dt.quantize(base.as_slice()[i] + bias_v[i % n]);
                assert_eq!(p, want_pre, "{dt:?} pre[{i}]");
                assert_eq!(g, dt.quantize(gelu_scalar(want_pre)), "{dt:?} act[{i}]");
            }
            assert_eq!(pre.dtype(), dt);
            assert_eq!(act.dtype(), dt);
        }
    }

    #[test]
    fn batched_scale_mask_epilogue_slices_the_mask() {
        let (batch, m, n, k) = (3, 5, 4, 6);
        let mut rng = StdRng::seed_from_u64(47);
        let a = rand_tensor(&mut rng, &[batch, m, k]);
        let b = rand_tensor(&mut rng, &[batch, n, k]);
        let mask: Vec<f32> = (0..batch * m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let scale = 0.5;
        let fused = batched_gemm_ep(
            Transpose::No,
            Transpose::Yes,
            1.0,
            &a,
            &b,
            GemmEpilogue::ScaleMask { scale, mask: &mask },
        )
        .unwrap();
        let base = batched_gemm(Transpose::No, Transpose::Yes, 1.0, &a, &b).unwrap();
        for (i, (&f, &v)) in fused.as_slice().iter().zip(base.as_slice()).enumerate() {
            assert!((f - (v * scale + mask[i])).abs() < 1e-5, "[{i}]");
        }
    }

    #[test]
    fn ragged_shapes_match_naive_for_all_dtypes() {
        // Shapes deliberately not multiples of the 8x8 register tile.
        let shapes = [(1, 1, 1), (7, 9, 5), (8, 8, 8), (17, 23, 31), (9, 65, 12)];
        for dt in [DType::F32, DType::F16, DType::BF16] {
            for &(m, n, k) in &shapes {
                let mut rng = StdRng::seed_from_u64(m as u64 * 31 + n as u64);
                let a = rand_tensor(&mut rng, &[m, k]).to_dtype(dt);
                let b = rand_tensor(&mut rng, &[k, n]).to_dtype(dt);
                let got = gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 0.0, None).unwrap();
                let want = naive(Transpose::No, Transpose::No, &a, &b, m, n, k);
                let tol = match dt {
                    DType::F32 => 1e-4 * (k as f32).max(1.0),
                    DType::F16 => 3e-3 * (k as f32).max(1.0),
                    DType::BF16 => 2e-2 * (k as f32).max(1.0),
                };
                for (g, w) in got.as_slice().iter().zip(&want) {
                    assert!((g - w).abs() < tol, "{dt:?} ({m},{n},{k}): {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn transpose_letters() {
        assert_eq!(Transpose::No.letter(), 'n');
        assert_eq!(Transpose::Yes.letter(), 't');
    }

    #[test]
    fn row_grain_is_tile_aligned() {
        for (m, n, k) in [(1, 1, 1), (512, 1024, 1024), (100, 64, 64), (4096, 64, 64)] {
            let g = row_grain(m, n, k);
            assert_eq!(g % MR, 0, "grain {g} not a multiple of MR for ({m},{n},{k})");
            assert!(g >= 1);
        }
    }
}
